//! # cedr-durable
//!
//! Durable checkpoint images for the CEDR engine: a hand-rolled,
//! deterministic binary codec ([`codec`]), versioned image framing with a
//! manifest and named checksummed sections ([`image`]), and [`Persist`]
//! implementations for every temporal/stream substrate type that appears in
//! an engine checkpoint.
//!
//! The paper's determinism claim — output is a pure function of the logical
//! input streams — is what makes recovery *testable*: restoring a checkpoint
//! and replaying the remaining input must reproduce the exact stamped tape
//! of an unfailed run, bit for bit. Everything in this crate serves that
//! contract:
//!
//! * encodings are deterministic (sorted map orders, raw float bits, raw
//!   time-point words), so `checkpoint → restore → checkpoint` is
//!   byte-equal;
//! * decoding is total — corrupt, truncated or version-skewed images fail
//!   with a [`CodecError`] naming the offending section, never a panic;
//! * the image is validated in full (magic, version, content checksum,
//!   per-section checksums) *before* any payload is handed out, so a
//!   restore either sees a vetted image or touches nothing.
//!
//! The engine-level `Engine::checkpoint` / `Engine::restore` entry points
//! live in `cedr-core`; per-operator state hooks live in `cedr-runtime`.
//! This crate is deliberately low in the dependency order (temporal +
//! streams only) so both can build on it.

pub mod codec;
pub mod image;
mod impls;

pub use codec::{fnv1a, from_bytes, to_bytes, CodecError, Persist, Reader};
pub use image::{read_image, write_image, Manifest, Section, FORMAT_VERSION, MAGIC};
