//! [`Persist`] implementations for the temporal and stream substrate types
//! that appear inside engine checkpoints.
//!
//! Two invariants govern every impl here:
//!
//! * **Determinism** — the encoding of a value is a pure function of the
//!   value. Collections that reach this layer are already in a canonical
//!   order (the engine sorts hash-map content before encoding; see the
//!   `Parts` types of `cedr-streams`).
//! * **Bit-identity** — decode(encode(x)) == x at the bit level: floats go
//!   through raw IEEE bits, time points through their raw `u64` (tuple
//!   construction, because `TimePoint::new` rejects the `u64::MAX` infinity
//!   sentinel that legitimately appears in open lifetimes).

use crate::codec::{CodecError, Persist, Reader};
use cedr_streams::batch::MessageBatch;
use cedr_streams::collect::{CollectorParts, StreamStats};
use cedr_streams::delta::OutputDelta;
use cedr_streams::message::{Message, Retraction, Stamped};
use cedr_streams::resequence::{LaneParts, ResequencerParts};
use cedr_temporal::{
    ChainKey, Duration, Event, EventId, HistoryRow, HistoryTable, Interval, Lineage, Payload,
    TimePoint, Value,
};
use std::sync::Arc;

impl Persist for TimePoint {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        // Tuple construction: `TimePoint::new` panics on the infinity
        // sentinel, which is a perfectly valid persisted value.
        Ok(TimePoint(u64::decode(r)?))
    }
}

impl Persist for Duration {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Duration(u64::decode(r)?))
    }
}

impl Persist for Interval {
    fn encode(&self, out: &mut Vec<u8>) {
        self.start.encode(out);
        self.end.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let start = TimePoint::decode(r)?;
        let end = TimePoint::decode(r)?;
        Ok(Interval { start, end })
    }
}

impl Persist for EventId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(EventId(u64::decode(r)?))
    }
}

impl Persist for ChainKey {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ChainKey(u64::decode(r)?))
    }
}

impl Persist for Value {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Bool(b) => {
                out.push(1);
                b.encode(out);
            }
            Value::Int(i) => {
                out.push(2);
                i.encode(out);
            }
            Value::Float(f) => {
                out.push(3);
                f.encode(out);
            }
            Value::Str(s) => {
                out.push(4);
                s.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take(1)?[0] {
            0 => Ok(Value::Null),
            1 => Ok(Value::Bool(bool::decode(r)?)),
            2 => Ok(Value::Int(i64::decode(r)?)),
            3 => Ok(Value::Float(f64::decode(r)?)),
            4 => Ok(Value::Str(Arc::<str>::decode(r)?)),
            b => Err(CodecError::new(format!("invalid Value tag {b:#04x}"))),
        }
    }
}

impl Persist for Payload {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.0.len() as u64).encode(out);
        for v in self.0.iter() {
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Payload::from_values(Vec::<Value>::decode(r)?))
    }
}

impl Persist for Lineage {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.0.len() as u64).encode(out);
        for id in self.0.iter() {
            id.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Lineage::of(Vec::<EventId>::decode(r)?))
    }
}

impl Persist for Event {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.interval.encode(out);
        self.root_time.encode(out);
        self.lineage.encode(out);
        self.payload.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Event {
            id: EventId::decode(r)?,
            interval: Interval::decode(r)?,
            root_time: TimePoint::decode(r)?,
            lineage: Lineage::decode(r)?,
            payload: Payload::decode(r)?,
        })
    }
}

impl Persist for HistoryRow {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.valid.encode(out);
        self.occurrence.encode(out);
        self.cedr.encode(out);
        self.k.encode(out);
        self.payload.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(HistoryRow {
            id: EventId::decode(r)?,
            valid: Interval::decode(r)?,
            occurrence: Interval::decode(r)?,
            cedr: Interval::decode(r)?,
            k: ChainKey::decode(r)?,
            payload: Payload::decode(r)?,
        })
    }
}

impl Persist for HistoryTable {
    fn encode(&self, out: &mut Vec<u8>) {
        self.rows.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(HistoryTable {
            rows: Vec::<HistoryRow>::decode(r)?,
        })
    }
}

impl Persist for Retraction {
    fn encode(&self, out: &mut Vec<u8>) {
        self.event.encode(out);
        self.new_end.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        // Direct construction: `Retraction::new` debug-asserts lifetime
        // bounds that are already guaranteed by a well-formed image.
        Ok(Retraction {
            event: Arc::<Event>::decode(r)?,
            new_end: TimePoint::decode(r)?,
        })
    }
}

impl Persist for Message {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Message::Insert(e) => {
                out.push(0);
                e.encode(out);
            }
            Message::Retract(rt) => {
                out.push(1);
                rt.encode(out);
            }
            Message::Cti(t) => {
                out.push(2);
                t.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take(1)?[0] {
            0 => Ok(Message::Insert(Arc::<Event>::decode(r)?)),
            1 => Ok(Message::Retract(Retraction::decode(r)?)),
            2 => Ok(Message::Cti(TimePoint::decode(r)?)),
            b => Err(CodecError::new(format!("invalid Message tag {b:#04x}"))),
        }
    }
}

impl Persist for Stamped {
    fn encode(&self, out: &mut Vec<u8>) {
        self.cedr_time.encode(out);
        self.message.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Stamped {
            cedr_time: TimePoint::decode(r)?,
            message: Message::decode(r)?,
        })
    }
}

impl Persist for OutputDelta {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            OutputDelta::Insert { cedr_time, event } => {
                out.push(0);
                cedr_time.encode(out);
                event.encode(out);
            }
            OutputDelta::Retract {
                cedr_time,
                event,
                new_end,
            } => {
                out.push(1);
                cedr_time.encode(out);
                event.encode(out);
                new_end.encode(out);
            }
            OutputDelta::Cti {
                cedr_time,
                guarantee,
            } => {
                out.push(2);
                cedr_time.encode(out);
                guarantee.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take(1)?[0] {
            0 => Ok(OutputDelta::Insert {
                cedr_time: TimePoint::decode(r)?,
                event: Arc::<Event>::decode(r)?,
            }),
            1 => Ok(OutputDelta::Retract {
                cedr_time: TimePoint::decode(r)?,
                event: Arc::<Event>::decode(r)?,
                new_end: TimePoint::decode(r)?,
            }),
            2 => Ok(OutputDelta::Cti {
                cedr_time: TimePoint::decode(r)?,
                guarantee: TimePoint::decode(r)?,
            }),
            b => Err(CodecError::new(format!("invalid OutputDelta tag {b:#04x}"))),
        }
    }
}

impl Persist for MessageBatch {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for m in self.as_slice() {
            m.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        // Columnar caches rebuild lazily on first use; only messages are
        // persisted.
        Ok(MessageBatch::from(Vec::<Message>::decode(r)?))
    }
}

impl Persist for StreamStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.inserts.encode(out);
        self.retractions.encode(out);
        self.full_removals.encode(out);
        self.ctis.encode(out);
        self.data_messages.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(StreamStats {
            inserts: usize::decode(r)?,
            retractions: usize::decode(r)?,
            full_removals: usize::decode(r)?,
            ctis: usize::decode(r)?,
            data_messages: usize::decode(r)?,
        })
    }
}

impl Persist for CollectorParts {
    fn encode(&self, out: &mut Vec<u8>) {
        self.history.encode(out);
        self.stamped.encode(out);
        self.deltas.encode(out);
        self.stats.encode(out);
        self.current_end.encode(out);
        self.clock_ticks.encode(out);
        self.max_cti.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(CollectorParts {
            history: HistoryTable::decode(r)?,
            stamped: Vec::<Stamped>::decode(r)?,
            deltas: Vec::<OutputDelta>::decode(r)?,
            stats: StreamStats::decode(r)?,
            current_end: Vec::<(u64, TimePoint)>::decode(r)?,
            clock_ticks: u64::decode(r)?,
            max_cti: Option::<TimePoint>::decode(r)?,
        })
    }
}

impl<T: Persist> Persist for LaneParts<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.key.encode(out);
        self.base.encode(out);
        self.next_seq.encode(out);
        self.final_seq.encode(out);
        self.buffered.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(LaneParts {
            key: u64::decode(r)?,
            base: u64::decode(r)?,
            next_seq: u64::decode(r)?,
            final_seq: Option::<u64>::decode(r)?,
            buffered: Vec::<(u64, T)>::decode(r)?,
        })
    }
}

impl<T: Persist> Persist for ResequencerParts<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.frontier.encode(out);
        self.lanes.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ResequencerParts {
            frontier: u64::decode(r)?,
            lanes: Vec::<LaneParts<T>>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{from_bytes, to_bytes};
    use cedr_streams::{Collector, Resequencer};
    use cedr_temporal::interval::iv;
    use cedr_temporal::time::t;
    use std::fmt;

    fn round_trip<T: Persist + PartialEq + fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        assert_eq!(from_bytes::<T>(&bytes).unwrap(), v);
    }

    fn sample_event(id: u64) -> Event {
        Event {
            id: EventId(id),
            interval: iv(3, 9),
            root_time: t(3),
            lineage: Lineage::of(vec![EventId(1), EventId(2)]),
            payload: Payload::from_values(vec![
                Value::Null,
                Value::Bool(true),
                Value::Int(-5),
                Value::Float(2.75),
                Value::str("cedr"),
            ]),
        }
    }

    #[test]
    fn temporal_types_round_trip() {
        round_trip(TimePoint::INFINITY);
        round_trip(t(42));
        round_trip(Duration(0));
        round_trip(Interval {
            start: t(1),
            end: TimePoint::INFINITY,
        });
        round_trip(EventId(u64::MAX));
        round_trip(ChainKey(7));
        round_trip(sample_event(11));
        round_trip(HistoryTable::figure2());
    }

    #[test]
    fn infinity_survives_decode() {
        // TimePoint::new panics on the sentinel; the codec must not.
        let inf = from_bytes::<TimePoint>(&to_bytes(&TimePoint::INFINITY)).unwrap();
        assert!(!inf.is_finite());
    }

    #[test]
    fn stream_messages_round_trip() {
        let e = Arc::new(sample_event(5));
        round_trip(Message::Insert(e.clone()));
        round_trip(Message::Retract(Retraction {
            event: e.clone(),
            new_end: t(5),
        }));
        round_trip(Message::Cti(t(9)));
        round_trip(Stamped::new(t(2), Message::Cti(t(9))));
        round_trip(OutputDelta::Insert {
            cedr_time: t(0),
            event: e.clone(),
        });
        round_trip(OutputDelta::Retract {
            cedr_time: t(1),
            event: e,
            new_end: t(4),
        });
        round_trip(OutputDelta::Cti {
            cedr_time: t(2),
            guarantee: t(8),
        });
    }

    #[test]
    fn batches_round_trip_by_content() {
        let mut b = MessageBatch::new();
        b.push(Message::insert_event(sample_event(1)));
        b.push_cti(t(4));
        let got = from_bytes::<MessageBatch>(&to_bytes(&b)).unwrap();
        assert_eq!(got.as_slice(), b.as_slice());
    }

    #[test]
    fn collector_parts_round_trip_and_rebuild() {
        let mut c = Collector::new();
        c.push(Message::insert_event(sample_event(1)));
        c.push(Message::retract_event(sample_event(1), t(5)));
        c.push(Message::Cti(t(7)));
        let parts = c.to_parts();
        let decoded = from_bytes::<CollectorParts>(&to_bytes(&parts)).unwrap();
        assert_eq!(decoded, parts);
        let rebuilt = Collector::from_parts(decoded);
        assert_eq!(rebuilt.stamped(), c.stamped());
        assert_eq!(rebuilt.delta_log(), c.delta_log());
        assert_eq!(rebuilt.history(), c.history());
        assert_eq!(rebuilt.stats(), c.stats());
        assert_eq!(rebuilt.max_cti(), c.max_cti());
        // The clock continues where it left off: next stamp is sequential.
        assert_eq!(rebuilt.to_parts().clock_ticks, c.to_parts().clock_ticks);
    }

    #[test]
    fn resequencer_parts_round_trip_with_buffered_skew() {
        let mut rs: Resequencer<u64> = Resequencer::new();
        rs.register(1);
        rs.register(2);
        rs.accept(2, 0, 20);
        rs.accept(2, 1, 21); // producer 2 ahead; producer 1 owes round 0
        let parts = rs.to_parts();
        let decoded = from_bytes::<ResequencerParts<u64>>(&to_bytes(&parts)).unwrap();
        assert_eq!(decoded, parts);
        let mut rebuilt = Resequencer::from_parts(decoded);
        assert_eq!(rebuilt.buffered(), rs.buffered());
        assert_eq!(rebuilt.open_lanes(), rs.open_lanes());
        // The rebuilt resequencer resumes the exact same canonical order.
        rebuilt.accept(1, 0, 10);
        rebuilt.close(1, 1);
        rebuilt.close(2, 2);
        use cedr_streams::RoundStatus;
        assert_eq!(
            rebuilt.next_round(),
            RoundStatus::Ready(vec![(1, 10), (2, 20)])
        );
        assert_eq!(rebuilt.next_round(), RoundStatus::Ready(vec![(2, 21)]));
        assert_eq!(rebuilt.next_round(), RoundStatus::Idle);
    }

    #[test]
    fn identical_values_encode_identically() {
        assert_eq!(to_bytes(&sample_event(3)), to_bytes(&sample_event(3)));
        let mut c1 = Collector::new();
        let mut c2 = Collector::new();
        for c in [&mut c1, &mut c2] {
            c.push(Message::insert_event(sample_event(8)));
        }
        assert_eq!(to_bytes(&c1.to_parts()), to_bytes(&c2.to_parts()));
    }
}
