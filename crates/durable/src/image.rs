//! Checkpoint image framing: magic, format version, manifest, and named,
//! checksummed sections.
//!
//! An image is laid out as
//!
//! ```text
//! magic "CEDRCKPT" · format version u32
//! manifest: round u64 · config hash u64 · content checksum u64
//! section count u64
//! per section: name · payload len u64 · payload · FNV-1a(payload) u64
//! ```
//!
//! The *content checksum* is FNV-1a over everything after the manifest, so
//! any flipped bit in the body fails fast; the *per-section* checksums then
//! attribute a corruption to the section it landed in. [`read_image`]
//! validates all of it — magic, version, both checksum layers, framing —
//! before returning a single payload byte, which is what lets the engine
//! promise "no half-restore": nothing is applied until the whole image has
//! been vetted.

use crate::codec::{fnv1a, CodecError, Persist, Reader};

/// Image magic: identifies a byte stream as a CEDR checkpoint.
pub const MAGIC: [u8; 8] = *b"CEDRCKPT";

/// Current image format version. Bump on any wire-layout change.
pub const FORMAT_VERSION: u32 = 1;

/// The manifest header of a checkpoint image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// Engine rounds completed when the checkpoint was taken.
    pub round: u64,
    /// Hash of the engine configuration and registrations the image was
    /// taken under; restore refuses images from a differently configured
    /// engine.
    pub config_hash: u64,
    /// Seed-free FNV-1a checksum of the image body (everything after the
    /// manifest).
    pub content_checksum: u64,
}

/// One named section of an image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    pub name: String,
    pub payload: Vec<u8>,
}

/// Serialize a complete image: manifest + named sections, with the content
/// checksum computed over the section region.
pub fn write_image(round: u64, config_hash: u64, sections: &[Section]) -> Vec<u8> {
    let mut body = Vec::new();
    (sections.len() as u64).encode(&mut body);
    for s in sections {
        s.name.encode(&mut body);
        (s.payload.len() as u64).encode(&mut body);
        body.extend_from_slice(&s.payload);
        fnv1a(&s.payload).encode(&mut body);
    }
    let mut out = Vec::with_capacity(body.len() + 40);
    out.extend_from_slice(&MAGIC);
    FORMAT_VERSION.encode(&mut out);
    round.encode(&mut out);
    config_hash.encode(&mut out);
    fnv1a(&body).encode(&mut out);
    out.extend_from_slice(&body);
    out
}

/// Parse and fully validate an image: magic, format version, content
/// checksum, section framing and per-section checksums. Errors name the
/// offending layer ("header", "manifest") or section.
pub fn read_image(bytes: &[u8]) -> Result<(Manifest, Vec<Section>), CodecError> {
    let mut r = Reader::new(bytes);
    let magic = r.take(MAGIC.len()).map_err(|e| e.in_section("header"))?;
    if magic != MAGIC {
        return Err(CodecError::new("not a CEDR checkpoint image (bad magic)").in_section("header"));
    }
    let version = u32::decode(&mut r).map_err(|e| e.in_section("header"))?;
    if version != FORMAT_VERSION {
        return Err(CodecError::new(format!(
            "format version mismatch: image is v{version}, this build reads v{FORMAT_VERSION}"
        ))
        .in_section("header"));
    }
    let round = u64::decode(&mut r).map_err(|e| e.in_section("manifest"))?;
    let config_hash = u64::decode(&mut r).map_err(|e| e.in_section("manifest"))?;
    let content_checksum = u64::decode(&mut r).map_err(|e| e.in_section("manifest"))?;
    let body = r.take(r.remaining()).expect("remaining bytes");
    if fnv1a(body) != content_checksum {
        return Err(
            CodecError::new("content checksum mismatch (image corrupt or truncated)")
                .in_section("manifest"),
        );
    }

    let mut br = Reader::new(body);
    let count = u64::decode(&mut br).map_err(|e| e.in_section("manifest"))?;
    let mut sections = Vec::with_capacity((count as usize).min(body.len()));
    for i in 0..count {
        let frame = |e: CodecError| e.in_section(&format!("section #{i} framing"));
        let name = String::decode(&mut br).map_err(frame)?;
        let len = u64::decode(&mut br).map_err(frame)? as usize;
        let payload = br.take(len).map_err(|e| e.in_section(&name))?;
        let sum = u64::decode(&mut br).map_err(|e| e.in_section(&name))?;
        if fnv1a(payload) != sum {
            return Err(CodecError::new("section checksum mismatch").in_section(&name));
        }
        sections.push(Section {
            name,
            payload: payload.to_vec(),
        });
    }
    br.expect_exhausted()
        .map_err(|e| e.in_section("manifest"))?;
    Ok((
        Manifest {
            round,
            config_hash,
            content_checksum,
        },
        sections,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        write_image(
            7,
            0xdead_beef,
            &[
                Section {
                    name: "engine".into(),
                    payload: vec![1, 2, 3],
                },
                Section {
                    name: "query:q0".into(),
                    payload: vec![],
                },
            ],
        )
    }

    #[test]
    fn images_round_trip() {
        let bytes = sample();
        let (m, sections) = read_image(&bytes).unwrap();
        assert_eq!(m.round, 7);
        assert_eq!(m.config_hash, 0xdead_beef);
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].name, "engine");
        assert_eq!(sections[0].payload, vec![1, 2, 3]);
        assert_eq!(sections[1].name, "query:q0");
        assert!(sections[1].payload.is_empty());
    }

    #[test]
    fn identical_state_produces_identical_bytes() {
        assert_eq!(sample(), sample());
    }

    #[test]
    fn bad_magic_is_a_header_error() {
        let mut bytes = sample();
        bytes[0] ^= 0xff;
        let err = read_image(&bytes).unwrap_err();
        assert_eq!(err.section, "header");
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut bytes = sample();
        bytes[8] = 0xfe; // format version LE byte 0
        let err = read_image(&bytes).unwrap_err();
        assert_eq!(err.section, "header");
        assert!(err.detail.contains("version"), "{err}");
    }

    #[test]
    fn any_flipped_body_bit_fails_the_content_checksum() {
        let clean = sample();
        for pos in 40..clean.len() {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x01;
            let err = read_image(&bytes).unwrap_err();
            assert_eq!(err.section, "manifest", "flip at {pos}");
        }
    }

    #[test]
    fn truncation_anywhere_errors() {
        let clean = sample();
        for cut in 0..clean.len() {
            assert!(read_image(&clean[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn section_checksum_attributes_the_section() {
        // Rebuild with a corrupted section payload but a recomputed content
        // checksum, so only the per-section layer can catch it.
        let mut s = vec![
            Section {
                name: "engine".into(),
                payload: vec![1, 2, 3],
            },
            Section {
                name: "query:q0".into(),
                payload: vec![9, 9],
            },
        ];
        let good = write_image(1, 2, &s);
        // Tamper: swap a payload byte, then re-frame by hand (simulating a
        // buggy writer rather than wire corruption).
        s[1].payload[0] = 42;
        let mut body = Vec::new();
        (s.len() as u64).encode(&mut body);
        for (i, sec) in s.iter().enumerate() {
            sec.name.encode(&mut body);
            (sec.payload.len() as u64).encode(&mut body);
            body.extend_from_slice(&sec.payload);
            // Keep the ORIGINAL checksum for the tampered section.
            let sum = if i == 1 {
                fnv1a(&[9, 9])
            } else {
                fnv1a(&sec.payload)
            };
            sum.encode(&mut body);
        }
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        FORMAT_VERSION.encode(&mut bytes);
        (1u64).encode(&mut bytes);
        (2u64).encode(&mut bytes);
        fnv1a(&body).encode(&mut bytes);
        bytes.extend_from_slice(&body);
        assert_ne!(bytes, good);
        let err = read_image(&bytes).unwrap_err();
        assert_eq!(err.section, "query:q0");
        assert!(err.detail.contains("checksum"), "{err}");
    }
}
