//! The hand-rolled binary codec behind checkpoint images.
//!
//! The vendored `serde` is a no-op stand-in, so durability cannot lean on
//! derived serialization; instead every persisted type implements
//! [`Persist`] by hand against a deliberately small wire vocabulary:
//! little-endian fixed-width integers, `f64` as raw IEEE bits (so floats
//! round-trip *bit-identically*, NaNs and signed zeros included),
//! length-prefixed UTF-8 strings, and tag bytes for enums. Nothing is
//! implicit: the encoding of a value is a pure function of the value, never
//! of hash-map iteration order or platform endianness, which is what makes
//! `checkpoint → restore → checkpoint` byte-equality testable.
//!
//! Decoding is total: every primitive read is bounds-checked and every tag
//! validated, returning a typed [`CodecError`] (never panicking) so a
//! truncated or corrupt image surfaces as an error naming the offending
//! section — see [`crate::image`] for the framing that attributes errors.

use std::fmt;
use std::sync::Arc;

/// A decoding failure: what went wrong and (once framing attributes it)
/// which image section it happened in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// The image section the error was attributed to; empty until the
    /// framing layer calls [`CodecError::in_section`].
    pub section: String,
    /// Human-readable description of the failure.
    pub detail: String,
}

impl CodecError {
    pub fn new(detail: impl Into<String>) -> CodecError {
        CodecError {
            section: String::new(),
            detail: detail.into(),
        }
    }

    /// Attribute this error to `section` (first attribution wins, so the
    /// innermost framing layer names the section).
    pub fn in_section(mut self, section: &str) -> CodecError {
        if self.section.is_empty() {
            self.section = section.to_string();
        }
        self
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.section.is_empty() {
            write!(f, "{}", self.detail)
        } else {
            write!(f, "section `{}`: {}", self.section, self.detail)
        }
    }
}

impl std::error::Error for CodecError {}

/// A bounds-checked cursor over an encoded byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consume exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::new(format!(
                "unexpected end of data: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consume a `u64` length prefix and return a sub-reader over exactly
    /// that many bytes (used for nested, independently parseable blobs).
    pub fn sub_reader(&mut self) -> Result<Reader<'a>, CodecError> {
        let len = u64::decode(self)? as usize;
        Ok(Reader::new(self.take(len)?))
    }

    /// Error unless every byte was consumed — catches images whose payload
    /// is longer than its type expects (a symptom of version skew).
    pub fn expect_exhausted(&self) -> Result<(), CodecError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::new(format!(
                "{} trailing bytes after decode",
                self.remaining()
            )))
        }
    }
}

/// Hand-rolled binary serialization: deterministic encode into a byte
/// buffer, total (never-panicking) decode out of a [`Reader`].
pub trait Persist: Sized {
    fn encode(&self, out: &mut Vec<u8>);
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Encode as a `u64` length-prefixed blob (pairs with
    /// [`Reader::sub_reader`]).
    fn encode_prefixed(&self, out: &mut Vec<u8>) {
        let mut blob = Vec::new();
        self.encode(&mut blob);
        (blob.len() as u64).encode(out);
        out.extend_from_slice(&blob);
    }
}

impl Persist for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(r.take(1)?[0])
    }
}

impl Persist for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(u32::from_le_bytes(r.take(4)?.try_into().unwrap()))
    }
}

impl Persist for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(u64::from_le_bytes(r.take(8)?.try_into().unwrap()))
    }
}

impl Persist for i64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(i64::from_le_bytes(r.take(8)?.try_into().unwrap()))
    }
}

impl Persist for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let v = u64::decode(r)?;
        usize::try_from(v).map_err(|_| CodecError::new(format!("usize overflow: {v}")))
    }
}

impl Persist for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CodecError::new(format!("invalid bool byte {b:#04x}"))),
        }
    }
}

/// `f64` round-trips through its raw IEEE-754 bits: bit-identity survives
/// NaN payloads and signed zeros.
impl Persist for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl Persist for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = u64::decode(r)? as usize;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::new("invalid UTF-8 in string"))
    }
}

impl Persist for Arc<str> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Arc::from(String::decode(r)?.as_str()))
    }
}

impl<T: Persist> Persist for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            b => Err(CodecError::new(format!("invalid Option tag {b:#04x}"))),
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = u64::decode(r)? as usize;
        // Guard the preallocation: a corrupt length must not OOM before
        // the per-item reads run out of bytes.
        let mut out = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Persist> Persist for Arc<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (**self).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Arc::new(T::decode(r)?))
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

/// FNV-1a 64-bit: the checkpoint checksum. Seed-free and stable across
/// platforms and runs (unlike `std`'s randomly seeded hasher), so the same
/// logical state always produces the same manifest checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encode-then-decode helper for round-trip tests and config hashing.
pub fn to_bytes<T: Persist>(v: &T) -> Vec<u8> {
    let mut out = Vec::new();
    v.encode(&mut out);
    out
}

/// Decode a value from a standalone buffer, requiring full consumption.
pub fn from_bytes<T: Persist>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut r = Reader::new(bytes);
    let v = T::decode(&mut r)?;
    r.expect_exhausted()?;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Persist + PartialEq + fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        assert_eq!(from_bytes::<T>(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(i64::MIN);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(String::from("héllo"));
        round_trip(Arc::<str>::from("arc str"));
        round_trip(Option::<u64>::None);
        round_trip(Some(17u64));
        round_trip(vec![1u64, 2, 3]);
        round_trip((1u64, String::from("x")));
        round_trip((1u64, 2u64, 3u64));
        round_trip(Arc::new(9u64));
    }

    #[test]
    fn floats_round_trip_bitwise() {
        for v in [0.0f64, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY] {
            let got = from_bytes::<f64>(&to_bytes(&v)).unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        let got = from_bytes::<f64>(&to_bytes(&nan)).unwrap();
        assert_eq!(got.to_bits(), nan.to_bits(), "NaN payload preserved");
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let bytes = to_bytes(&vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            let err = from_bytes::<Vec<u64>>(&bytes[..cut]).unwrap_err();
            assert!(err.detail.contains("unexpected end"), "{err}");
        }
    }

    #[test]
    fn corrupt_length_does_not_overallocate() {
        let mut bytes = Vec::new();
        (u64::MAX).encode(&mut bytes); // absurd element count, no elements
        assert!(from_bytes::<Vec<u64>>(&bytes).is_err());
    }

    #[test]
    fn invalid_tags_are_typed_errors() {
        assert!(from_bytes::<bool>(&[7]).is_err());
        assert!(from_bytes::<Option<u64>>(&[9]).is_err());
        let mut bad_utf8 = Vec::new();
        (2u64).encode(&mut bad_utf8);
        bad_utf8.extend_from_slice(&[0xff, 0xfe]);
        assert!(from_bytes::<String>(&bad_utf8).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_bytes(&5u64);
        bytes.push(0);
        let err = from_bytes::<u64>(&bytes).unwrap_err();
        assert!(err.detail.contains("trailing"), "{err}");
    }

    #[test]
    fn section_attribution_is_first_wins() {
        let e = CodecError::new("boom")
            .in_section("inner")
            .in_section("outer");
        assert_eq!(e.section, "inner");
        assert_eq!(format!("{e}"), "section `inner`: boom");
    }

    #[test]
    fn fnv1a_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn prefixed_blobs_pair_with_sub_reader() {
        let mut out = Vec::new();
        vec![1u64, 2].encode_prefixed(&mut out);
        (77u64).encode(&mut out);
        let mut r = Reader::new(&out);
        let mut sub = r.sub_reader().unwrap();
        assert_eq!(Vec::<u64>::decode(&mut sub).unwrap(), vec![1, 2]);
        sub.expect_exhausted().unwrap();
        assert_eq!(u64::decode(&mut r).unwrap(), 77);
    }
}
