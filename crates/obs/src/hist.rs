//! Log2-bucketed latency histograms.
//!
//! 64 power-of-two buckets cover the whole `u64` nanosecond range with a
//! fixed-size, allocation-free footprint: bucket `i` holds values whose
//! bit length is `i` (i.e. `v` in `[2^(i-1), 2^i)`), so relative error is
//! bounded by 2x — plenty for the "is a round microseconds or
//! milliseconds" questions the report answers, and cheap enough to record
//! on every round without showing up in the overhead bench.

/// Number of buckets: one per possible `u64` bit length (0..=63, with the
/// top bucket absorbing everything that would need 64 bits).
pub const BUCKETS: usize = 64;

/// A fixed-footprint log2 histogram over `u64` samples (nanoseconds by
/// convention). `Default` is the empty histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

/// Bucket index of a sample: its bit length, clamped to the top bucket.
fn bucket_of(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the top bucket).
pub fn bucket_bound(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate quantile `q` in `[0, 1]`: the inclusive upper bound of
    /// the first bucket whose cumulative count reaches `q * count`.
    /// Returns 0 for an empty histogram. Accurate to within one power of
    /// two, clamped to the observed `max`.
    pub fn approx_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let threshold = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let threshold = threshold.max(1);
        let mut cumulative = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cumulative += b;
            if cumulative >= threshold {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Raw bucket counts (index = bit length of the sample).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Index of the highest non-empty bucket, or `None` when empty — the
    /// exposition uses it to truncate the `le` ladder.
    pub fn highest_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&b| b > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Every sample is <= its bucket's inclusive bound and > the
        // previous bucket's bound.
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40, u64::MAX] {
            let i = bucket_of(v);
            assert!(v <= bucket_bound(i), "{v} > bound of bucket {i}");
            if i > 0 {
                assert!(v > bucket_bound(i - 1));
            }
        }
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!((h.min(), h.max(), h.mean()), (0, 0, 0));
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 60);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 30);
        assert_eq!(h.mean(), 20);
    }

    #[test]
    fn merge_is_sum_of_parts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [1u64, 100, 10_000] {
            a.record(v);
            whole.record(v);
        }
        for v in [5u64, 50_000] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.approx_quantile(0.5);
        let p99 = h.approx_quantile(0.99);
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        assert!((990..=1023).contains(&p99), "p99 = {p99}");
        assert_eq!(h.approx_quantile(1.0), 1000); // clamped to max
    }
}
