//! Structured trace ring buffer.
//!
//! [`TraceEvent`] is a small `Copy` enum — recording one is a couple of
//! stores into a preallocated ring, cheap enough to leave on in
//! production. The ring is bounded: when full it overwrites the oldest
//! event and counts the overwrite in `dropped`, so a long run keeps the
//! most recent window instead of growing without bound.

/// One structured engine event. All payloads are plain integers so the
/// event is `Copy` and recording never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// `run_to_quiescence` began with this many staged batches.
    RoundStart { round: u64, staged_batches: u32 },
    /// `run_to_quiescence` finished; `nanos` is the drain duration.
    RoundEnd { round: u64, nanos: u64 },
    /// One engine shard's staged input was drained (parallel path: per
    /// worker; serial path: one event for the whole sweep with shard 0).
    ShardDrain {
        shard: u16,
        batches: u32,
        messages: u32,
        nanos: u64,
    },
    /// One node-scheduler worker finished its drain of a dataflow shard.
    WorkerDrain { shard: u16, nanos: u64 },
    /// An operator consumed one input run of `batch_len` messages.
    OperatorRun {
        query: u16,
        node: u16,
        batch_len: u32,
    },
    /// Ingress admission hit a full shard and drained (or errored).
    Backpressure { shard: u16 },
    /// A channel producer hit the full ingress channel.
    ChannelBackpressure { producer: u64 },
    /// The pump is holding buffered rounds waiting for a slow producer.
    ResequencerStall { waiting_on: u64, buffered: u32 },
    /// A checkpoint image was written.
    Checkpoint { bytes: u64, nanos: u64 },
    /// An image was restored into this engine.
    Restore { bytes: u64, nanos: u64 },
    /// The engine sealed (broadcast CTI(∞)) after this many rounds.
    Seal { round: u64 },
}

/// Bounded ring of [`TraceEvent`]s. Not thread-safe by itself — the hub
/// wraps it in a mutex.
#[derive(Clone, Debug)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    recorded: u64,
    dropped: u64,
    capacity: usize,
}

impl TraceRing {
    /// A ring holding at most `capacity` events (`capacity` must be > 0;
    /// a capacity of 0 is represented by not constructing a ring at all).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TraceRing capacity must be > 0");
        TraceRing {
            buf: Vec::with_capacity(capacity),
            head: 0,
            recorded: 0,
            dropped: 0,
            capacity,
        }
    }

    /// Append an event, overwriting the oldest when full.
    pub fn push(&mut self, event: TraceEvent) {
        self.recorded += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events in arrival order, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Total events ever pushed.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(round: u64) -> TraceEvent {
        TraceEvent::RoundEnd { round, nanos: 0 }
    }

    #[test]
    fn ring_keeps_most_recent_window() {
        let mut r = TraceRing::new(3);
        for i in 0..5 {
            r.push(round(i));
        }
        assert_eq!(r.events(), vec![round(2), round(3), round(4)]);
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn ring_below_capacity_preserves_order() {
        let mut r = TraceRing::new(8);
        r.push(round(1));
        r.push(round(2));
        assert_eq!(r.events(), vec![round(1), round(2)]);
        assert_eq!(r.dropped(), 0);
    }
}
