//! Text exposition: Prometheus text format 0.0.4 and a human dashboard.
//!
//! [`MetricsSnapshot::render_prometheus`] emits the classic
//! `# HELP` / `# TYPE` / sample line format (counters, gauges and
//! histograms with a log2 `le` ladder); [`validate_exposition`] is the
//! strict parser the test suite runs over that output. The human
//! [`MetricsSnapshot::render_report`] renders the same snapshot as a
//! fixed-width dashboard for examples and debugging sessions.

use crate::hist::{bucket_bound, Histogram};
use crate::snapshot::{MetricsSnapshot, OpCounters};
use std::fmt::Write as _;

/// One operator metric column: exposition name suffix, whether the value
/// is a monotone counter (vs a gauge/peak), and the accessor.
type NodeColumn = (&'static str, bool, fn(&OpCounters) -> u64);

/// Per-node operator metric columns.
const NODE_COLUMNS: &[NodeColumn] = &[
    ("arrivals", true, |s| s.arrivals),
    ("released", true, |s| s.released),
    ("forgotten", true, |s| s.forgotten),
    ("held_peak", false, |s| s.held_peak),
    ("blocked_ticks", true, |s| s.blocked_ticks),
    ("blocked_messages", true, |s| s.blocked_messages),
    ("state_peak", false, |s| s.state_peak),
    ("batches", true, |s| s.batches),
    ("delivered", true, |s| s.delivered),
    ("batch_peak", false, |s| s.batch_peak),
    ("group_refreshes", true, |s| s.group_refreshes),
    ("probe_batches", true, |s| s.probe_batches),
    ("fused_stages", false, |s| s.fused_stages),
    ("compiled_kernel_runs", true, |s| s.compiled_kernel_runs),
    ("out_inserts", true, |s| s.out_inserts),
    ("out_retractions", true, |s| s.out_retractions),
    ("out_ctis", true, |s| s.out_ctis),
];

/// Escape a label value per the text format: backslash, double-quote and
/// newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Incremental text-format writer.
struct Expo {
    out: String,
}

impl Expo {
    fn new() -> Self {
        Expo { out: String::new() }
    }

    /// Start a metric family: `# HELP` + `# TYPE`.
    fn family(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// One sample line. `labels` may be empty.
    fn sample(&mut self, name: &str, labels: &[(&str, String)], value: u64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {value}");
    }

    /// A whole histogram family with a log2 `le` ladder truncated at the
    /// highest non-empty bucket.
    fn histogram(&mut self, name: &str, help: &str, h: &Histogram) {
        self.family(name, "histogram", help);
        let mut cumulative = 0u64;
        if let Some(top) = h.highest_bucket() {
            for (i, &b) in h.buckets().iter().enumerate().take(top + 1) {
                cumulative += b;
                self.sample(
                    &format!("{name}_bucket"),
                    &[("le", bucket_bound(i).to_string())],
                    cumulative,
                );
            }
        }
        self.sample(
            &format!("{name}_bucket"),
            &[("le", "+Inf".into())],
            h.count(),
        );
        self.sample(&format!("{name}_sum"), &[], h.sum());
        self.sample(&format!("{name}_count"), &[], h.count());
    }
}

impl MetricsSnapshot {
    /// Render the snapshot in Prometheus text exposition format 0.0.4.
    /// Counter-class fields become `counter`/`gauge` families; the
    /// timing histograms become `histogram` families in nanoseconds.
    /// The output round-trips through [`validate_exposition`].
    pub fn render_prometheus(&self) -> String {
        let mut e = Expo::new();
        let c = &self.counters;

        e.family(
            "cedr_rounds_completed_total",
            "counter",
            "Completed run_to_quiescence rounds",
        );
        e.sample("cedr_rounds_completed_total", &[], c.rounds_completed);
        e.family("cedr_sealed", "gauge", "1 once the engine has sealed");
        e.sample("cedr_sealed", &[], u64::from(c.sealed));
        e.family("cedr_engine_threads", "gauge", "Configured worker threads");
        e.sample("cedr_engine_threads", &[], c.threads);

        // Per-query collector output (the semantic class).
        for (name, kind, help, get) in [
            (
                "cedr_query_output_inserts_total",
                "counter",
                "Insert messages emitted by the query",
                (|q| q.inserts) as fn(&crate::snapshot::QueryCounters) -> u64,
            ),
            (
                "cedr_query_output_retractions_total",
                "counter",
                "Retraction messages emitted by the query",
                |q| q.retractions,
            ),
            (
                "cedr_query_output_full_removals_total",
                "counter",
                "Full-removal retractions emitted by the query",
                |q| q.full_removals,
            ),
            (
                "cedr_query_output_ctis_total",
                "counter",
                "CTI punctuations emitted by the query",
                |q| q.ctis,
            ),
            (
                "cedr_query_output_messages_total",
                "counter",
                "Data messages (inserts + retractions) emitted by the query",
                |q| q.data_messages,
            ),
            (
                "cedr_query_deltas_logged_total",
                "counter",
                "Output delta-log length (subscription-visible changelog)",
                |q| q.deltas_logged,
            ),
        ] {
            e.family(name, kind, help);
            for q in &c.queries {
                e.sample(name, &[("query", q.name.clone())], get(q));
            }
        }
        e.family(
            "cedr_query_output_cti",
            "gauge",
            "Highest CTI observed on the query output",
        );
        for q in &c.queries {
            if let Some(cti) = q.output_cti {
                e.sample("cedr_query_output_cti", &[("query", q.name.clone())], cti);
            }
        }
        e.family(
            "cedr_subscription_lag",
            "gauge",
            "Deltas logged but not yet taken by the subscription cursor",
        );
        for q in &c.queries {
            for s in &q.subscriptions {
                e.sample(
                    "cedr_subscription_lag",
                    &[("query", q.name.clone()), ("subscriber", s.label.clone())],
                    s.lag,
                );
            }
        }

        // Per-node operator counters (the execution class).
        for (suffix, is_counter, get) in NODE_COLUMNS {
            let (name, kind) = if *is_counter {
                (format!("cedr_node_{suffix}_total"), "counter")
            } else {
                (format!("cedr_node_{suffix}"), "gauge")
            };
            e.family(&name, kind, "Per-node operator counter; see OpStats");
            for q in &c.queries {
                for n in &q.nodes {
                    e.sample(
                        &name,
                        &[("query", q.name.clone()), ("node", n.name.clone())],
                        get(&n.stats),
                    );
                }
            }
        }

        // Per-shard ingress counters.
        for (name, help, get) in [
            (
                "cedr_shard_staged_batches_total",
                "Batches staged into the shard",
                (|s| s.staged_batches) as fn(&crate::snapshot::IngressCounters) -> u64,
            ),
            (
                "cedr_shard_staged_messages_total",
                "Messages staged into the shard",
                |s| s.staged_messages,
            ),
            (
                "cedr_shard_admitted_batches_total",
                "Batches admitted from the shard into a round",
                |s| s.admitted_batches,
            ),
            (
                "cedr_shard_admitted_messages_total",
                "Messages admitted from the shard into a round",
                |s| s.admitted_messages,
            ),
            (
                "cedr_shard_backpressure_events_total",
                "Admissions that hit a full shard",
                |s| s.backpressure_events,
            ),
        ] {
            e.family(name, "counter", help);
            for (i, s) in c.shards.iter().enumerate() {
                e.sample(name, &[("shard", i.to_string())], get(s));
            }
        }

        if let Some(ch) = &c.channel {
            e.family(
                "cedr_channel_open_producers",
                "gauge",
                "Channel producer handles currently alive",
            );
            e.sample("cedr_channel_open_producers", &[], ch.open_producers);
            e.family(
                "cedr_channel_buffered_batches",
                "gauge",
                "Rounds buffered in the resequencer",
            );
            e.sample("cedr_channel_buffered_batches", &[], ch.buffered_batches);
            e.family(
                "cedr_channel_rounds_stalled",
                "gauge",
                "Consecutive pump passes stalled on one producer",
            );
            e.sample("cedr_channel_rounds_stalled", &[], ch.rounds_stalled);
            e.family(
                "cedr_channel_waiting_on",
                "gauge",
                "Producer key blocking resequenced admission",
            );
            if let Some(k) = ch.waiting_on {
                e.sample("cedr_channel_waiting_on", &[], k);
            }
            e.family(
                "cedr_channel_rounds_admitted_total",
                "counter",
                "Rounds admitted through the pump",
            );
            e.sample(
                "cedr_channel_rounds_admitted_total",
                &[],
                ch.rounds_admitted,
            );
            e.family(
                "cedr_channel_batches_admitted_total",
                "counter",
                "Batches admitted through the pump",
            );
            e.sample(
                "cedr_channel_batches_admitted_total",
                &[],
                ch.batches_admitted,
            );
            e.family(
                "cedr_channel_messages_admitted_total",
                "counter",
                "Messages admitted through the pump",
            );
            e.sample(
                "cedr_channel_messages_admitted_total",
                &[],
                ch.messages_admitted,
            );
            e.family(
                "cedr_channel_backpressure_total",
                "counter",
                "Full-channel events, attributed per producer key",
            );
            for &(key, n) in &ch.backpressure_by_producer {
                e.sample(
                    "cedr_channel_backpressure_total",
                    &[("producer", key.to_string())],
                    n,
                );
            }
            let attributed: u64 = ch.backpressure_by_producer.iter().map(|&(_, n)| n).sum();
            if ch.backpressure_total > attributed {
                // Restored from an image predating per-producer attribution.
                e.sample(
                    "cedr_channel_backpressure_total",
                    &[("producer", "unattributed".into())],
                    ch.backpressure_total - attributed,
                );
            }
        }

        e.family(
            "cedr_checkpoints_total",
            "counter",
            "Checkpoint images written",
        );
        e.sample("cedr_checkpoints_total", &[], c.checkpoints.checkpoints);
        e.family(
            "cedr_checkpoint_bytes_total",
            "counter",
            "Checkpoint bytes written",
        );
        e.sample(
            "cedr_checkpoint_bytes_total",
            &[],
            c.checkpoints.checkpoint_bytes,
        );
        e.family("cedr_restores_total", "counter", "Images restored");
        e.sample("cedr_restores_total", &[], c.checkpoints.restores);
        e.family(
            "cedr_restore_bytes_total",
            "counter",
            "Checkpoint bytes restored",
        );
        e.sample("cedr_restore_bytes_total", &[], c.checkpoints.restore_bytes);

        e.family(
            "cedr_trace_recorded_total",
            "counter",
            "Trace events ever recorded",
        );
        e.sample("cedr_trace_recorded_total", &[], self.trace.recorded);
        e.family(
            "cedr_trace_dropped_total",
            "counter",
            "Trace events overwritten by the bounded ring",
        );
        e.sample("cedr_trace_dropped_total", &[], self.trace.dropped);
        e.family("cedr_trace_buffered", "gauge", "Trace events in the ring");
        e.sample("cedr_trace_buffered", &[], self.trace.buffered);
        e.family("cedr_trace_capacity", "gauge", "Trace ring capacity");
        e.sample("cedr_trace_capacity", &[], self.trace.capacity);

        let t = &self.timings;
        for (name, help, h) in [
            (
                "cedr_round_drain_nanos",
                "run_to_quiescence drain duration",
                &t.round_drain,
            ),
            (
                "cedr_shard_drain_nanos",
                "Engine shard drain duration within a parallel round",
                &t.shard_drain,
            ),
            (
                "cedr_worker_drain_nanos",
                "Node-scheduler worker lifetime within a dataflow drain",
                &t.worker_drain,
            ),
            (
                "cedr_ingest_to_delta_nanos",
                "First staged admission to output deltas appended",
                &t.ingest_to_delta,
            ),
            (
                "cedr_flush_block_nanos",
                "Synchronous drain forced by a full shard on blocking flush",
                &t.flush_block,
            ),
            (
                "cedr_channel_block_nanos",
                "Producer blocked on the full ingress channel",
                &t.channel_block,
            ),
            (
                "cedr_pump_step_nanos",
                "Pump pass that admitted at least one round",
                &t.pump_step,
            ),
            (
                "cedr_checkpoint_write_nanos",
                "Checkpoint image serialisation",
                &t.checkpoint_write,
            ),
            (
                "cedr_checkpoint_restore_nanos",
                "Checkpoint image restore",
                &t.checkpoint_restore,
            ),
        ] {
            e.histogram(name, help, h);
        }

        e.out
    }

    /// Render a fixed-width human dashboard of the same snapshot.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        let c = &self.counters;
        let _ = writeln!(out, "== CEDR engine report ==");
        let _ = writeln!(
            out,
            "rounds completed {:>8}   sealed {}   threads {}",
            c.rounds_completed,
            if c.sealed { "yes" } else { "no " },
            c.threads
        );

        let _ = writeln!(out, "-- queries --");
        for q in &c.queries {
            let cti = match q.output_cti {
                Some(t) if t == u64::MAX => "cti @inf".to_string(),
                Some(t) => format!("cti @{t}"),
                None => "no cti".to_string(),
            };
            let _ = writeln!(
                out,
                "  [{}] {} ({})  inserts {}  retractions {}  ctis {}  deltas {}  {}",
                q.index,
                q.name,
                q.consistency,
                q.inserts,
                q.retractions,
                q.ctis,
                q.deltas_logged,
                cti
            );
            let _ = writeln!(
                out,
                "      ops: arrivals {}  released {}  blocked {}msg/{}t  state peak {}  fused stages {}  kernel runs {}",
                q.total.arrivals,
                q.total.released,
                q.total.blocked_messages,
                q.total.blocked_ticks,
                q.total.state_peak,
                q.total.fused_stages,
                q.total.compiled_kernel_runs
            );
            for s in &q.subscriptions {
                let _ = writeln!(
                    out,
                    "      subscription {}: position {}  lag {}",
                    s.label, s.position, s.lag
                );
            }
        }

        let _ = writeln!(out, "-- ingress --");
        for (i, s) in c.shards.iter().enumerate() {
            let _ = writeln!(
                out,
                "  shard {i}: staged {}/{}msg  admitted {}/{}msg  backpressure {}",
                s.staged_batches,
                s.staged_messages,
                s.admitted_batches,
                s.admitted_messages,
                s.backpressure_events
            );
        }
        let t = &c.ingress_total;
        let _ = writeln!(
            out,
            "  total:   staged {}/{}msg  admitted {}/{}msg  backpressure {}",
            t.staged_batches,
            t.staged_messages,
            t.admitted_batches,
            t.admitted_messages,
            t.backpressure_events
        );

        if let Some(ch) = &c.channel {
            let _ = writeln!(out, "-- channel pump --");
            let stall = match ch.waiting_on {
                Some(k) => format!(
                    "waiting on producer {k} ({} pump passes stalled)",
                    ch.rounds_stalled
                ),
                None => "not stalled".to_string(),
            };
            let _ = writeln!(
                out,
                "  open producers {}  buffered rounds {}  {}",
                ch.open_producers, ch.buffered_batches, stall
            );
            let _ = writeln!(
                out,
                "  admitted: {} rounds / {} batches / {} messages",
                ch.rounds_admitted, ch.batches_admitted, ch.messages_admitted
            );
            if ch.backpressure_total > 0 {
                let by = ch
                    .backpressure_by_producer
                    .iter()
                    .map(|(k, n)| format!("p{k}:{n}"))
                    .collect::<Vec<_>>()
                    .join("  ");
                let _ = writeln!(
                    out,
                    "  backpressure {} total  [{}]",
                    ch.backpressure_total, by
                );
            }
        }

        let ck = &c.checkpoints;
        if ck.checkpoints > 0 || ck.restores > 0 {
            let _ = writeln!(out, "-- durability --");
            let _ = writeln!(
                out,
                "  {} checkpoints ({} bytes)  {} restores ({} bytes)",
                ck.checkpoints, ck.checkpoint_bytes, ck.restores, ck.restore_bytes
            );
        }

        let _ = writeln!(out, "-- timings --");
        for (label, h) in [
            ("round drain    ", &self.timings.round_drain),
            ("shard drain    ", &self.timings.shard_drain),
            ("worker drain   ", &self.timings.worker_drain),
            ("ingest→delta   ", &self.timings.ingest_to_delta),
            ("flush block    ", &self.timings.flush_block),
            ("channel block  ", &self.timings.channel_block),
            ("pump step      ", &self.timings.pump_step),
            ("checkpoint     ", &self.timings.checkpoint_write),
            ("restore        ", &self.timings.checkpoint_restore),
        ] {
            if h.is_empty() {
                continue;
            }
            let _ = writeln!(
                out,
                "  {label} n={:<6} mean {:>9}  p50 ≈{:>9}  p99 ≈{:>9}  max {:>9}",
                h.count(),
                fmt_nanos(h.mean()),
                fmt_nanos(h.approx_quantile(0.5)),
                fmt_nanos(h.approx_quantile(0.99)),
                fmt_nanos(h.max())
            );
        }

        if self.trace.capacity > 0 {
            let _ = writeln!(
                out,
                "-- trace --\n  {} recorded  {} buffered  {} dropped  (capacity {})",
                self.trace.recorded, self.trace.buffered, self.trace.dropped, self.trace.capacity
            );
        }
        out
    }
}

/// Human-format a nanosecond quantity.
pub fn fmt_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.2}µs", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

/// What [`validate_exposition`] measured.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExpositionSummary {
    /// `# TYPE`-declared metric families.
    pub families: usize,
    /// Sample lines.
    pub samples: usize,
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// A parsed sample line: metric name, label pairs, value.
type Sample = (String, Vec<(String, String)>, f64);

/// Parse one sample line into `(name, labels, value)`.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("unclosed label set: {line}"))?;
            (
                &line[..brace],
                Some((&line[brace + 1..close], &line[close + 1..])),
            )
        }
        None => {
            let sp = line
                .find([' ', '\t'])
                .ok_or_else(|| format!("no value: {line}"))?;
            (&line[..sp], None::<(&str, &str)>)
        }
    };
    if !valid_metric_name(name_part) {
        return Err(format!("bad metric name: {name_part}"));
    }
    let (labels, value_part) = match rest {
        Some((label_str, tail)) => {
            let mut labels = Vec::new();
            let mut src = label_str;
            while !src.is_empty() {
                let eq = src
                    .find('=')
                    .ok_or_else(|| format!("label without '=': {src}"))?;
                let key = &src[..eq];
                if !valid_label_name(key) {
                    return Err(format!("bad label name: {key}"));
                }
                let after = &src[eq + 1..];
                if !after.starts_with('"') {
                    return Err(format!("unquoted label value: {src}"));
                }
                // Scan the quoted value honouring backslash escapes.
                let mut val = String::new();
                let mut it = after[1..].char_indices();
                let mut end = None;
                while let Some((i, c)) = it.next() {
                    match c {
                        '\\' => match it.next() {
                            Some((_, 'n')) => val.push('\n'),
                            Some((_, e)) => val.push(e),
                            None => return Err(format!("dangling escape: {src}")),
                        },
                        '"' => {
                            end = Some(i);
                            break;
                        }
                        _ => val.push(c),
                    }
                }
                let end = end.ok_or_else(|| format!("unterminated label value: {src}"))?;
                labels.push((key.to_string(), val));
                src = &after[1 + end + 1..];
                src = src.strip_prefix(',').unwrap_or(src);
            }
            (labels, tail.trim())
        }
        None => {
            let sp = line.find([' ', '\t']).unwrap();
            (Vec::new(), line[sp..].trim())
        }
    };
    // Value (and optional timestamp, which we reject for simplicity —
    // our renderer never emits one).
    let value = match value_part {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse::<f64>()
            .map_err(|e| format!("bad sample value {v:?}: {e}"))?,
    };
    Ok((name_part.to_string(), labels, value))
}

/// Family name a sample belongs to: histogram samples report under their
/// base name.
fn family_of(sample_name: &str, histogram_families: &[String]) -> String {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = sample_name.strip_suffix(suffix) {
            if histogram_families.iter().any(|f| f == base) {
                return base.to_string();
            }
        }
    }
    sample_name.to_string()
}

/// Strictly validate Prometheus text exposition format 0.0.4 as emitted
/// by [`MetricsSnapshot::render_prometheus`]: every sample must belong to
/// a previously `# TYPE`-declared family, histogram `le` ladders must be
/// increasing with non-decreasing cumulative counts, and the `+Inf`
/// bucket must equal `_count`.
pub fn validate_exposition(text: &str) -> Result<ExpositionSummary, String> {
    const KINDS: &[&str] = &["counter", "gauge", "histogram", "summary", "untyped"];
    let mut types: Vec<(String, String)> = Vec::new(); // (family, kind)
    let mut histograms: Vec<String> = Vec::new();
    // Per histogram family: bucket ladder (le, cumulative), sum, count.
    #[derive(Default)]
    struct HistState {
        ladder: Vec<(f64, f64)>,
        count: Option<f64>,
    }
    let mut hist_state: Vec<(String, HistState)> = Vec::new();
    let mut summary = ExpositionSummary::default();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let ctx = |msg: String| format!("line {}: {msg}", lineno + 1);
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.splitn(2, ' ');
                let name = parts.next().unwrap_or_default();
                let kind = parts.next().unwrap_or_default();
                if !valid_metric_name(name) {
                    return Err(ctx(format!("bad family name {name:?}")));
                }
                if !KINDS.contains(&kind) {
                    return Err(ctx(format!("bad metric kind {kind:?}")));
                }
                if types.iter().any(|(n, _)| n == name) {
                    return Err(ctx(format!("duplicate TYPE for {name}")));
                }
                types.push((name.to_string(), kind.to_string()));
                if kind == "histogram" {
                    histograms.push(name.to_string());
                    hist_state.push((name.to_string(), HistState::default()));
                }
                summary.families += 1;
            } else if comment.strip_prefix("HELP ").is_none() {
                return Err(ctx(format!("unknown comment: {line}")));
            }
            continue;
        }
        let (name, labels, value) = parse_sample(line).map_err(ctx)?;
        let family = family_of(&name, &histograms);
        let Some((_, kind)) = types.iter().find(|(n, _)| *n == family) else {
            return Err(ctx(format!("sample {name} has no TYPE declaration")));
        };
        if kind == "counter" && value < 0.0 {
            return Err(ctx(format!("negative counter {name} = {value}")));
        }
        if kind == "histogram" {
            let state = &mut hist_state.iter_mut().find(|(n, _)| *n == family).unwrap().1;
            if name.ends_with("_bucket") {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .ok_or_else(|| ctx(format!("bucket without le label: {line}")))?;
                let bound = if le.1 == "+Inf" {
                    f64::INFINITY
                } else {
                    le.1.parse::<f64>()
                        .map_err(|e| ctx(format!("bad le {:?}: {e}", le.1)))?
                };
                if let Some(&(prev_bound, prev_cum)) = state.ladder.last() {
                    if bound <= prev_bound {
                        return Err(ctx(format!("le ladder not increasing in {family}")));
                    }
                    if value < prev_cum {
                        return Err(ctx(format!("cumulative count decreased in {family}")));
                    }
                }
                state.ladder.push((bound, value));
            } else if name.ends_with("_count") {
                state.count = Some(value);
            }
        }
        summary.samples += 1;
    }

    for (family, state) in &hist_state {
        let Some(&(last_bound, last_cum)) = state.ladder.last() else {
            return Err(format!("histogram {family} has no buckets"));
        };
        if last_bound != f64::INFINITY {
            return Err(format!("histogram {family} missing +Inf bucket"));
        }
        match state.count {
            Some(count) if count == last_cum => {}
            Some(count) => {
                return Err(format!(
                    "histogram {family}: +Inf bucket {last_cum} != count {count}"
                ))
            }
            None => return Err(format!("histogram {family} missing _count")),
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{ChannelCounters, IngressCounters, NodeCounters, QueryCounters};

    fn sample_snapshot() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.rounds_completed = 12;
        snap.counters.threads = 4;
        snap.counters.shards = vec![IngressCounters::default(); 4];
        let mut q = QueryCounters {
            index: 0,
            name: "load\"avg\"".into(), // exercises label escaping
            consistency: "Strong".into(),
            inserts: 100,
            retractions: 3,
            ctis: 9,
            deltas_logged: 112,
            output_cti: Some(47),
            ..Default::default()
        };
        q.nodes.push(NodeCounters {
            name: "0:Select".into(),
            ..Default::default()
        });
        q.subscriptions.push(crate::snapshot::SubscriptionLag {
            label: "dash".into(),
            position: 100,
            lag: 12,
        });
        snap.counters.queries.push(q);
        snap.counters.channel = Some(ChannelCounters {
            open_producers: 2,
            backpressure_total: 5,
            backpressure_by_producer: vec![(1, 2), (7, 3)],
            ..Default::default()
        });
        snap.timings.round_drain.record(1_000);
        snap.timings.round_drain.record(9_000);
        snap.trace.capacity = 64;
        snap.trace.recorded = 10;
        snap.trace.buffered = 10;
        snap
    }

    #[test]
    fn rendered_prometheus_validates() {
        let text = sample_snapshot().render_prometheus();
        let summary = validate_exposition(&text).expect("output must parse");
        assert!(summary.families > 20, "families = {}", summary.families);
        assert!(summary.samples > 30, "samples = {}", summary.samples);
        assert!(text.contains("cedr_rounds_completed_total 12"));
        assert!(text.contains("producer=\"7\"} 3"));
        assert!(text.contains("query=\"load\\\"avg\\\"\""));
    }

    #[test]
    fn validator_rejects_malformed_exposition() {
        for bad in [
            "cedr_x 1",                                              // no TYPE
            "# TYPE cedr_x counter\ncedr_x{le=\"a} 1",               // unterminated label
            "# TYPE cedr_x counter\ncedr_x oops",                    // bad value
            "# TYPE cedr_x histogram\ncedr_x_sum 0\ncedr_x_count 0", // no buckets
        ] {
            assert!(validate_exposition(bad).is_err(), "accepted: {bad:?}");
        }
        // Histogram with a decreasing ladder.
        let bad = "# TYPE h histogram\nh_bucket{le=\"4\"} 2\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3";
        assert!(validate_exposition(bad).is_err());
    }

    #[test]
    fn report_mentions_every_section() {
        let text = sample_snapshot().render_report();
        for needle in [
            "CEDR engine report",
            "queries",
            "ingress",
            "channel pump",
            "timings",
            "trace",
            "subscription dash",
            "waiting on",
        ] {
            // `waiting on` appears as `not stalled` when None — accept either.
            if needle == "waiting on" {
                assert!(
                    text.contains("not stalled") || text.contains("waiting on"),
                    "missing stall line in:\n{text}"
                );
            } else {
                assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
            }
        }
    }

    #[test]
    fn fmt_nanos_scales_units() {
        assert_eq!(fmt_nanos(5), "5ns");
        assert_eq!(fmt_nanos(1_500), "1.50µs");
        assert_eq!(fmt_nanos(2_500_000), "2.50ms");
        assert_eq!(fmt_nanos(3_000_000_000), "3.00s");
    }
}
