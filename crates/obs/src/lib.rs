//! Dependency-free observability primitives for the CEDR engine.
//!
//! The paper's central claim is that consistency is a *measurable*
//! trade-off (Figure 8 plots blocking, state and output size against the
//! guarantee level). This crate supplies the measuring instruments that
//! the engine crates wire into the data path:
//!
//! - [`clock`] — the **clock seam**: every wall-clock read goes through
//!   the [`ObsClock`] trait so tests can inject a [`ManualClock`] and
//!   prove that counters never depend on timing.
//! - [`hist`] — allocation-free log2-bucketed [`Histogram`]s for latency
//!   distributions (round drain, shard drain, ingest→delta, blocking).
//! - [`trace`] — a bounded, allocation-light [`TraceRing`] of structured
//!   [`TraceEvent`]s; disabled rings cost one branch per hook.
//! - [`hub`] — [`ObsHub`], the shared handle threaded through the engine,
//!   scheduler workers and channel producers.
//! - [`snapshot`] — the typed [`MetricsSnapshot`] returned by
//!   `Engine::metrics()`, split into **counter-class** fields (exact,
//!   replayable) and **timing-class** fields (wall-clock, behind the
//!   seam). [`CounterSnapshot::semantic`] further projects the subset
//!   that is bit-identical across worker counts and fuse/compile modes.
//! - [`expo`] — text exposition: Prometheus text format 0.0.4
//!   ([`MetricsSnapshot::render_prometheus`]), a human dashboard
//!   ([`MetricsSnapshot::render_report`]), and a format validator used by
//!   tests ([`validate_exposition`]).
//!
//! The crate deliberately has **no dependencies** (not even on the other
//! CEDR crates) so it can sit below `cedr-runtime`: runtime and core
//! convert their own stats structs into the mirror types defined here.

pub mod clock;
pub mod expo;
pub mod hist;
pub mod hub;
pub mod snapshot;
pub mod trace;

pub use clock::{ManualClock, MonotonicClock, ObsClock};
pub use expo::{validate_exposition, ExpositionSummary};
pub use hist::Histogram;
pub use hub::{ObsHub, Timings};
pub use snapshot::{
    ChannelCounters, CheckpointCounters, CounterSnapshot, IngressCounters, MetricsSnapshot,
    NodeCounters, OpCounters, QueryCounters, SemanticChannel, SemanticCounters, SemanticQuery,
    SubscriptionLag, TraceStats,
};
pub use trace::{TraceEvent, TraceRing};
