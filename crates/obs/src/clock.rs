//! The clock seam: all wall-clock reads go through [`ObsClock`].
//!
//! Timing-class metrics are inherently non-deterministic, so the engine
//! never reads `Instant::now()` directly — it asks the hub's clock.
//! Production uses [`MonotonicClock`]; determinism tests swap in a
//! [`ManualClock`] to prove that counter-class metrics are unaffected by
//! what the clock returns.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source. Implementations must be cheap and
/// thread-safe: the engine reads it from scheduler workers and channel
/// producer threads.
pub trait ObsClock: Send + Sync {
    /// Nanoseconds since an arbitrary (per-clock) origin. Must be
    /// monotone non-decreasing per clock instance.
    fn now_nanos(&self) -> u64;
}

/// The production clock: nanoseconds since the clock was created,
/// measured with [`Instant`].
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsClock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        // Saturate rather than wrap: u64 nanoseconds cover ~584 years.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-cranked clock for tests: returns exactly what it was told,
/// advancing only via [`ManualClock::set`] / [`ManualClock::advance`].
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin the clock to an absolute reading. Readings are clamped to be
    /// monotone: setting the clock backwards is ignored.
    pub fn set(&self, nanos: u64) {
        self.nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Advance the clock by `delta` nanoseconds.
    pub fn advance(&self, delta: u64) {
        self.nanos.fetch_add(delta, Ordering::Relaxed);
    }
}

impl ObsClock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotone() {
        let c = MonotonicClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_obeys_set_and_advance() {
        let c = ManualClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.set(100);
        assert_eq!(c.now_nanos(), 100);
        c.advance(50);
        assert_eq!(c.now_nanos(), 150);
        c.set(10); // backwards: ignored
        assert_eq!(c.now_nanos(), 150);
    }
}
