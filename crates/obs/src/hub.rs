//! [`ObsHub`] — the shared observability handle.
//!
//! One hub is created per engine and threaded (as an `Arc`) into every
//! place that measures: the engine round loop, the node-scheduler
//! workers, the ingest pump and the channel producer handles. It owns
//! the clock seam, the latency histograms and the optional trace ring.
//!
//! Hooks are designed so the disabled configuration stays out of the hot
//! path: tracing with the ring off is a single `Option` check, and
//! timing records happen at round/worker granularity, never per message.

use crate::clock::{MonotonicClock, ObsClock};
use crate::hist::Histogram;
use crate::snapshot::TraceStats;
use crate::trace::{TraceEvent, TraceRing};
use std::sync::{Arc, Mutex};

/// All latency histograms, in nanoseconds. Cloned wholesale into
/// [`crate::snapshot::MetricsSnapshot`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Timings {
    /// One `run_to_quiescence` drain, end to end.
    pub round_drain: Histogram,
    /// One engine shard's staged-input drain within a parallel round.
    pub shard_drain: Histogram,
    /// One node-scheduler worker's lifetime within a dataflow drain.
    pub worker_drain: Histogram,
    /// First staged admission of a round → that round's output deltas
    /// appended (the ingestion→subscription-visible latency).
    pub ingest_to_delta: Histogram,
    /// Synchronous drain forced by a full shard on a blocking flush.
    pub flush_block: Histogram,
    /// Channel producer blocked in `send` on the full ingress channel.
    pub channel_block: Histogram,
    /// One pump pass that admitted at least one resequenced round.
    pub pump_step: Histogram,
    /// Checkpoint image serialisation.
    pub checkpoint_write: Histogram,
    /// Checkpoint image restore (validate + rebuild).
    pub checkpoint_restore: Histogram,
}

/// Shared observability state: clock seam + histograms + optional trace
/// ring. Thread-safe; cheap to clone via `Arc`.
pub struct ObsHub {
    clock: Mutex<Arc<dyn ObsClock>>,
    trace: Option<Mutex<TraceRing>>,
    timings: Mutex<Timings>,
}

impl std::fmt::Debug for ObsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsHub")
            .field("tracing", &self.tracing())
            .finish_non_exhaustive()
    }
}

impl ObsHub {
    /// A hub with a [`MonotonicClock`] and a trace ring of
    /// `trace_capacity` events (0 disables tracing entirely).
    pub fn new(trace_capacity: usize) -> Self {
        ObsHub {
            clock: Mutex::new(Arc::new(MonotonicClock::new())),
            trace: (trace_capacity > 0).then(|| Mutex::new(TraceRing::new(trace_capacity))),
            timings: Mutex::new(Timings::default()),
        }
    }

    /// Current clock reading in nanoseconds.
    pub fn now(&self) -> u64 {
        self.clock.lock().unwrap().now_nanos()
    }

    /// Swap the clock (tests inject [`crate::ManualClock`] here). Takes
    /// effect for all subsequent readings; histograms already recorded
    /// are untouched.
    pub fn set_clock(&self, clock: Arc<dyn ObsClock>) {
        *self.clock.lock().unwrap() = clock;
    }

    /// Is the trace ring enabled?
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Record a trace event. The closure is only evaluated when tracing
    /// is on, so hooks cost one branch when the ring is disabled.
    pub fn trace(&self, make: impl FnOnce() -> TraceEvent) {
        if let Some(ring) = &self.trace {
            ring.lock().unwrap().push(make());
        }
    }

    /// Mutate the histograms under the lock.
    pub fn with_timings(&self, f: impl FnOnce(&mut Timings)) {
        f(&mut self.timings.lock().unwrap());
    }

    /// Snapshot (clone) the histograms.
    pub fn timings(&self) -> Timings {
        self.timings.lock().unwrap().clone()
    }

    /// Drain-free view of the trace ring, oldest event first. Empty when
    /// tracing is off.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        match &self.trace {
            Some(ring) => ring.lock().unwrap().events(),
            None => Vec::new(),
        }
    }

    /// Ring occupancy counters for the snapshot.
    pub fn trace_stats(&self) -> TraceStats {
        match &self.trace {
            Some(ring) => {
                let ring = ring.lock().unwrap();
                TraceStats {
                    capacity: ring.capacity() as u64,
                    recorded: ring.recorded(),
                    dropped: ring.dropped(),
                    buffered: ring.len() as u64,
                }
            }
            None => TraceStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn hub_without_tracing_records_nothing_and_skips_closures() {
        let hub = ObsHub::new(0);
        assert!(!hub.tracing());
        hub.trace(|| panic!("must not be evaluated when tracing is off"));
        assert!(hub.trace_events().is_empty());
        assert_eq!(hub.trace_stats(), TraceStats::default());
    }

    #[test]
    fn hub_records_timings_and_traces() {
        let hub = ObsHub::new(4);
        hub.with_timings(|t| t.round_drain.record(500));
        hub.trace(|| TraceEvent::Seal { round: 3 });
        assert_eq!(hub.timings().round_drain.count(), 1);
        assert_eq!(hub.trace_events(), vec![TraceEvent::Seal { round: 3 }]);
        assert_eq!(hub.trace_stats().recorded, 1);
    }

    #[test]
    fn clock_seam_swaps_live() {
        let hub = ObsHub::new(0);
        let manual = Arc::new(ManualClock::new());
        manual.set(42);
        hub.set_clock(manual.clone());
        assert_eq!(hub.now(), 42);
        manual.advance(8);
        assert_eq!(hub.now(), 50);
    }
}
