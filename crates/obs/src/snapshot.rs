//! The typed metrics snapshot returned by `Engine::metrics()`.
//!
//! One [`MetricsSnapshot`] unifies everything the engine can observe:
//! per-query / per-node operator counters, per-shard ingress counters,
//! channel pump and resequencer state, checkpoint accounting, the
//! latency histograms and trace-ring occupancy. The struct is plain data
//! — no `Persist`, no engine references — so callers can diff, store or
//! render it freely.
//!
//! # Determinism classes
//!
//! Fields fall into three classes, and the split is load-bearing for the
//! engine's bit-identity contract:
//!
//! 1. **Semantic counters** ([`CounterSnapshot::semantic`]) — equal
//!    across worker counts *and* fuse/compile modes: collector output
//!    counts, delta-log lengths, output CTIs, rounds completed, pump
//!    admission totals, checkpoint/restore counts.
//! 2. **Execution counters** (the rest of [`CounterSnapshot`]) — exact
//!    and replayable for a *fixed* configuration, but configuration-
//!    dependent: per-node operator stats vary with fuse/compile (a fused
//!    graph has fewer nodes), per-shard ingress stats vary with the
//!    thread count (each target shard stages separately), and channel
//!    backpressure depends on producer/consumer timing.
//! 3. **Timing metrics** ([`MetricsSnapshot::timings`]) — wall-clock
//!    histograms behind the [`crate::ObsClock`] seam; never compared for
//!    equality.

use crate::hub::Timings;

/// Mirror of the runtime's per-operator `OpStats` (this crate sits below
/// `cedr-runtime`, so it cannot name that type). Field names and
/// meanings match one for one; `cedr-core` performs the conversion.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpCounters {
    pub arrivals: u64,
    pub released: u64,
    pub forgotten: u64,
    pub held_peak: u64,
    pub blocked_ticks: u64,
    pub blocked_messages: u64,
    pub state_peak: u64,
    pub batches: u64,
    pub delivered: u64,
    pub batch_peak: u64,
    pub group_refreshes: u64,
    pub probe_batches: u64,
    pub fused_stages: u64,
    pub compiled_kernel_runs: u64,
    pub out_inserts: u64,
    pub out_retractions: u64,
    pub out_ctis: u64,
}

/// One dataflow node's counters, labelled with its graph name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeCounters {
    pub name: String,
    pub stats: OpCounters,
}

/// A consumer cursor observed against a query's delta log.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SubscriptionLag {
    pub label: String,
    /// The cursor's position in the delta log.
    pub position: u64,
    /// `deltas_logged - position`: deltas appended but not yet taken.
    pub lag: u64,
}

/// One standing query's counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryCounters {
    /// Registration index (stable across runs).
    pub index: u64,
    pub name: String,
    /// Debug rendering of the query's consistency spec.
    pub consistency: String,
    /// Collector output counts (semantic: inserts + retractions + CTIs
    /// actually emitted to the subscriber-visible stream).
    pub inserts: u64,
    pub retractions: u64,
    pub full_removals: u64,
    pub ctis: u64,
    pub data_messages: u64,
    /// Length of the append-only output delta log.
    pub deltas_logged: u64,
    /// Highest CTI observed on the output (`None` before the first CTI).
    pub output_cti: Option<u64>,
    /// Operator counters summed over the whole dataflow.
    pub total: OpCounters,
    /// Per-node operator counters in topological order.
    pub nodes: Vec<NodeCounters>,
    /// Consumer cursors registered via
    /// [`MetricsSnapshot::record_subscription`].
    pub subscriptions: Vec<SubscriptionLag>,
}

/// Mirror of the engine's per-shard `IngressStats`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IngressCounters {
    pub staged_batches: u64,
    pub staged_messages: u64,
    pub admitted_batches: u64,
    pub admitted_messages: u64,
    pub backpressure_events: u64,
}

impl IngressCounters {
    /// Fold another shard's counters into this one.
    pub fn absorb(&mut self, other: &IngressCounters) {
        self.staged_batches += other.staged_batches;
        self.staged_messages += other.staged_messages;
        self.admitted_batches += other.admitted_batches;
        self.admitted_messages += other.admitted_messages;
        self.backpressure_events += other.backpressure_events;
    }
}

/// Channel ingress (pump + resequencer) state and totals. Present only
/// when the engine has a channel source attached (or had one at seal).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChannelCounters {
    /// Producer handles currently alive.
    pub open_producers: u64,
    /// Rounds buffered in the resequencer, not yet admissible.
    pub buffered_batches: u64,
    /// Producer key blocking resequenced admission, if stalled.
    pub waiting_on: Option<u64>,
    /// Consecutive pump passes spent in that stall.
    pub rounds_stalled: u64,
    /// Cumulative rounds admitted through the pump (semantic).
    pub rounds_admitted: u64,
    /// Cumulative batches admitted through the pump (semantic).
    pub batches_admitted: u64,
    /// Cumulative messages admitted through the pump (semantic).
    pub messages_admitted: u64,
    /// Full-channel events across all producers.
    pub backpressure_total: u64,
    /// Full-channel events per producer key, sorted by key — the
    /// per-origin attribution of `backpressure_total`.
    pub backpressure_by_producer: Vec<(u64, u64)>,
}

/// Checkpoint/restore accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointCounters {
    pub checkpoints: u64,
    pub checkpoint_bytes: u64,
    pub restores: u64,
    pub restore_bytes: u64,
}

/// Trace-ring occupancy at snapshot time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    pub capacity: u64,
    pub recorded: u64,
    pub dropped: u64,
    pub buffered: u64,
}

/// Every counter-class metric the engine exposes (classes 1 and 2 of the
/// module-level taxonomy).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Completed `run_to_quiescence` rounds (semantic).
    pub rounds_completed: u64,
    pub sealed: bool,
    /// Worker thread count of the configuration that produced this
    /// snapshot (execution context, not semantic).
    pub threads: u64,
    pub queries: Vec<QueryCounters>,
    /// Per-shard ingress counters (length = thread count).
    pub shards: Vec<IngressCounters>,
    /// All shards folded together, including channel backpressure.
    pub ingress_total: IngressCounters,
    pub channel: Option<ChannelCounters>,
    pub checkpoints: CheckpointCounters,
}

/// The mode-invariant projection of one query (see
/// [`CounterSnapshot::semantic`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SemanticQuery {
    pub name: String,
    pub consistency: String,
    pub inserts: u64,
    pub retractions: u64,
    pub full_removals: u64,
    pub ctis: u64,
    pub data_messages: u64,
    pub deltas_logged: u64,
    pub output_cti: Option<u64>,
}

/// The mode-invariant projection of the channel pump.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SemanticChannel {
    pub rounds_admitted: u64,
    pub batches_admitted: u64,
    pub messages_admitted: u64,
}

/// The subset of [`CounterSnapshot`] that is **bit-identical across
/// `CEDR_THREADS`, `CEDR_FUSE` and `CEDR_COMPILE` modes** for the same
/// logical workload. Pinned by `tests/metrics_determinism.rs`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SemanticCounters {
    pub rounds_completed: u64,
    pub sealed: bool,
    pub queries: Vec<SemanticQuery>,
    pub channel: Option<SemanticChannel>,
    pub checkpoints: u64,
    pub restores: u64,
}

impl CounterSnapshot {
    /// Project the semantic (mode-invariant) counters; see the module
    /// docs for the taxonomy.
    pub fn semantic(&self) -> SemanticCounters {
        SemanticCounters {
            rounds_completed: self.rounds_completed,
            sealed: self.sealed,
            queries: self
                .queries
                .iter()
                .map(|q| SemanticQuery {
                    name: q.name.clone(),
                    consistency: q.consistency.clone(),
                    inserts: q.inserts,
                    retractions: q.retractions,
                    full_removals: q.full_removals,
                    ctis: q.ctis,
                    data_messages: q.data_messages,
                    deltas_logged: q.deltas_logged,
                    output_cti: q.output_cti,
                })
                .collect(),
            channel: self.channel.as_ref().map(|c| SemanticChannel {
                rounds_admitted: c.rounds_admitted,
                batches_admitted: c.batches_admitted,
                messages_admitted: c.messages_admitted,
            }),
            checkpoints: self.checkpoints.checkpoints,
            restores: self.checkpoints.restores,
        }
    }
}

/// The unified snapshot: counters + timings + trace occupancy.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub counters: CounterSnapshot,
    pub timings: Timings,
    pub trace: TraceStats,
}

impl MetricsSnapshot {
    /// Shorthand for [`CounterSnapshot::semantic`].
    pub fn semantic(&self) -> SemanticCounters {
        self.counters.semantic()
    }

    /// Record a consumer cursor against query `index` so the exposition
    /// can show subscription lag. `position` is the cursor's delta-log
    /// position; lag is computed against `deltas_logged`. No-op when
    /// `index` is out of range.
    pub fn record_subscription(&mut self, index: usize, label: &str, position: u64) {
        if let Some(q) = self.counters.queries.get_mut(index) {
            q.subscriptions.push(SubscriptionLag {
                label: label.to_string(),
                position,
                lag: q.deltas_logged.saturating_sub(position),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.rounds_completed = 7;
        snap.counters.queries.push(QueryCounters {
            index: 0,
            name: "q".into(),
            consistency: "Strong".into(),
            inserts: 10,
            deltas_logged: 12,
            ..Default::default()
        });
        snap
    }

    #[test]
    fn semantic_projection_drops_execution_counters() {
        let mut a = sample();
        let mut b = sample();
        // Execution-class divergence: different shard layouts and node
        // stats must not affect the semantic view.
        a.counters.threads = 1;
        a.counters.shards.push(IngressCounters {
            staged_batches: 5,
            ..Default::default()
        });
        b.counters.threads = 4;
        b.counters.queries[0].total.fused_stages = 3;
        assert_eq!(a.semantic(), b.semantic());
    }

    #[test]
    fn subscription_lag_is_deltas_minus_position() {
        let mut snap = sample();
        snap.record_subscription(0, "dashboard", 9);
        snap.record_subscription(42, "out-of-range", 0);
        let subs = &snap.counters.queries[0].subscriptions;
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].lag, 3);
    }
}
