//! Tritemporal history tables (Section 4).
//!
//! A history table records everything the CEDR server has seen: for each row
//! the valid interval `[Vs, Ve)`, the occurrence interval `[Os, Oe)`, the
//! CEDR interval `[Cs, Ce)` and the chain key `K` grouping an initial insert
//! with all of its retractions (each retraction *reduces* `Oe` relative to
//! the previous entry of the same chain).
//!
//! Canonicalisation — **reduction** followed by **truncation** — collapses a
//! history table to the logical state it describes, which is the basis of
//! logical equivalence (Definition 1) and of every correctness statement in
//! the paper. Figures 2–6 are reproduced verbatim by the constructors below.

use crate::event::{ChainKey, EventId, Payload};
use crate::interval::Interval;
use crate::time::TimePoint;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One row of a tritemporal history table.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HistoryRow {
    pub id: EventId,
    pub valid: Interval,
    pub occurrence: Interval,
    pub cedr: Interval,
    pub k: ChainKey,
    pub payload: Payload,
}

impl HistoryRow {
    /// A row carrying only the retraction-relevant columns (K, Os, Oe, Cs,
    /// Ce), as in Figures 3–6 where the paper drops valid time and IDs.
    /// Valid time is set to a fixed placeholder so it cannot influence
    /// equivalence comparisons.
    pub fn occurrence_only(k: ChainKey, occurrence: Interval, cedr: Interval) -> HistoryRow {
        HistoryRow {
            id: EventId(k.0),
            valid: Interval::from(TimePoint::ZERO),
            occurrence,
            cedr,
            k,
            payload: Payload::empty(),
        }
    }
}

impl fmt::Debug for HistoryRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} V={} O={} C={} K={} {}",
            self.id, self.valid, self.occurrence, self.cedr, self.k, self.payload
        )
    }
}

/// A row of the *annotated* history table (Figure 6): a history row plus the
/// derived `Sync` column. For insertions `Sync = Os`; for retractions
/// `Sync = Oe`.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnnotatedRow {
    pub row: HistoryRow,
    pub sync: TimePoint,
    pub is_retraction: bool,
}

impl fmt::Debug for AnnotatedRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "K={} Sync={} O={} C={}{}",
            self.row.k,
            self.sync,
            self.row.occurrence,
            self.row.cedr,
            if self.is_retraction {
                " (retraction)"
            } else {
                " (insert)"
            }
        )
    }
}

/// A tritemporal history table.
#[derive(Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryTable {
    pub rows: Vec<HistoryRow>,
}

impl HistoryTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, row: HistoryRow) {
        self.rows.push(row);
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// **Reduction** (Section 4): for each chain key `K`, retain only the
    /// entry with the earliest `Oe`. Chains whose surviving occurrence
    /// interval is empty (`Oe == Os`, i.e. the event was completely removed)
    /// are dropped — they describe no logical state.
    pub fn reduce(&self) -> HistoryTable {
        let mut best: BTreeMap<ChainKey, &HistoryRow> = BTreeMap::new();
        for row in &self.rows {
            best.entry(row.k)
                .and_modify(|cur| {
                    if row.occurrence.end < cur.occurrence.end {
                        *cur = row;
                    }
                })
                .or_insert(row);
        }
        let mut rows: Vec<HistoryRow> = best
            .into_values()
            .filter(|r| !r.occurrence.is_empty())
            .cloned()
            .collect();
        rows.sort_by_key(|r| (r.occurrence.start, r.k));
        HistoryTable { rows }
    }

    /// **Truncation** (Section 4): cap every `Oe > to` at `to` and drop rows
    /// whose `Os > to`.
    pub fn truncate(&self, to: TimePoint) -> HistoryTable {
        let rows = self
            .rows
            .iter()
            .filter(|r| r.occurrence.start <= to)
            .map(|r| {
                let mut r = r.clone();
                r.occurrence = r.occurrence.truncate_end(to);
                r
            })
            .collect();
        HistoryTable { rows }
    }

    /// The canonical history table **to** `to`: reduction then truncation.
    pub fn canonical_to(&self, to: TimePoint) -> HistoryTable {
        self.reduce().truncate(to)
    }

    /// The canonical history table **at** `to`: the canonical table to `to`
    /// with rows whose occurrence interval does not reach `to` removed.
    ///
    /// "Reach" uses the interval's closure (`Os ≤ to ≤ Oe`): after
    /// truncation every live chain ends exactly at `to`, and the paper's
    /// Figure 3 example requires those rows to survive ("the two streams …
    /// are logically equivalent to 3 *and at 3*").
    pub fn canonical_at(&self, to: TimePoint) -> HistoryTable {
        let reduced = self.canonical_to(to);
        let rows = reduced
            .rows
            .into_iter()
            .filter(|r| r.occurrence.start <= to && r.occurrence.end >= to)
            .collect();
        HistoryTable { rows }
    }

    /// The *ideal history table* (Section 6): the infinite canonical table
    /// with the CEDR time fields projected out. Retractions and out-of-order
    /// delivery are resolved away; what remains is pure logical content.
    pub fn ideal(&self) -> HistoryTable {
        let mut t = self.reduce();
        for r in &mut t.rows {
            r.cedr = Interval::from(TimePoint::ZERO);
        }
        t
    }

    /// The **annotated** history table (Figure 6): adds the `Sync` column.
    ///
    /// Rows are classified per chain in CEDR-arrival (`Cs`) order: the first
    /// entry of a chain is its insertion (`Sync = Os`), every later entry is
    /// a retraction (`Sync = Oe`).
    pub fn annotate(&self) -> Vec<AnnotatedRow> {
        let mut idx: Vec<usize> = (0..self.rows.len()).collect();
        idx.sort_by_key(|&i| (self.rows[i].cedr.start, i));
        let mut seen: BTreeMap<ChainKey, bool> = BTreeMap::new();
        let mut out: Vec<AnnotatedRow> = Vec::with_capacity(self.rows.len());
        for i in idx {
            let row = &self.rows[i];
            let is_retraction = *seen.get(&row.k).unwrap_or(&false);
            seen.insert(row.k, true);
            let sync = if is_retraction {
                row.occurrence.end
            } else {
                row.occurrence.start
            };
            out.push(AnnotatedRow {
                row: row.clone(),
                sync,
                is_retraction,
            });
        }
        out
    }

    /// The **shredded canonical form** (Section 3.3.2): starting from the
    /// canonical table `R*`, each row with occurrence interval `[Os, Oe)` is
    /// replaced by `Oe − Os` rows identical in all attributes except that
    /// their occurrence intervals are the unit slices partitioning
    /// `[Os, Oe)`. Rows with infinite `Oe` must be truncated first.
    pub fn shredded(&self) -> HistoryTable {
        let reduced = self.reduce();
        let mut rows = Vec::new();
        for r in &reduced.rows {
            assert!(
                r.occurrence.end.is_finite(),
                "shredding requires a truncated (finite) table"
            );
            let mut s = r.occurrence.start;
            while s < r.occurrence.end {
                let mut slice = r.clone();
                slice.occurrence = Interval::point(s);
                rows.push(slice);
                s += crate::time::Duration(1);
            }
        }
        HistoryTable { rows }
    }

    /// Figure 2 of the paper: a retraction and a modification modelled
    /// simultaneously in tritemporal form.
    pub fn figure2() -> HistoryTable {
        use crate::interval::{iv, iv_inf};
        let e0 = EventId(0);
        let p = Payload::empty();
        let row = |valid: Interval, occ: Interval, cedr: Interval, k: u64| HistoryRow {
            id: e0,
            valid,
            occurrence: occ,
            cedr,
            k: ChainKey(k),
            payload: p.clone(),
        };
        HistoryTable {
            rows: vec![
                row(iv_inf(1), iv(1, 5), iv(1, 4), 0),
                row(iv(1, 10), iv_inf(5), iv(2, 6), 1),
                row(iv_inf(1), iv(1, 3), iv_inf(4), 0),
                row(iv(1, 10), iv(5, 5), iv_inf(5), 1),
                row(iv(1, 10), iv_inf(3), iv_inf(6), 2),
            ],
        }
    }

    /// Figure 3, left table: `E0 [1,5) @C[1,3)` then retraction `[1,3) @C[3,∞)`.
    pub fn figure3_left() -> HistoryTable {
        use crate::interval::{iv, iv_inf};
        HistoryTable {
            rows: vec![
                HistoryRow::occurrence_only(ChainKey(0), iv(1, 5), iv(1, 3)),
                HistoryRow::occurrence_only(ChainKey(0), iv(1, 3), iv_inf(3)),
            ],
        }
    }

    /// Figure 3, right table: `E0 [1,∞) @C[1,2)` then retraction `[1,5) @C[2,∞)`.
    pub fn figure3_right() -> HistoryTable {
        use crate::interval::{iv, iv_inf};
        HistoryTable {
            rows: vec![
                HistoryRow::occurrence_only(ChainKey(0), iv_inf(1), iv(1, 2)),
                HistoryRow::occurrence_only(ChainKey(0), iv(1, 5), iv_inf(2)),
            ],
        }
    }

    /// Figure 6 of the paper: the annotated history table example.
    pub fn figure6() -> HistoryTable {
        use crate::interval::iv;
        HistoryTable {
            rows: vec![
                HistoryRow::occurrence_only(ChainKey(0), iv(1, 10), iv(0, 7)),
                HistoryRow::occurrence_only(ChainKey(0), iv(1, 5), iv(7, 10)),
            ],
        }
    }

    /// Render with the paper's column layout (`K Os Oe Cs Ce`).
    pub fn render_occurrence_table(&self) -> String {
        let mut s = String::from("K    Os   Oe   Cs   Ce\n");
        for r in &self.rows {
            s.push_str(&format!(
                "{:<4} {:<4} {:<4} {:<4} {:<4}\n",
                r.k.to_string(),
                r.occurrence.start.to_string(),
                r.occurrence.end.to_string(),
                r.cedr.start.to_string(),
                r.cedr.end.to_string(),
            ));
        }
        s
    }
}

impl fmt::Debug for HistoryTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rows {
            writeln!(f, "{r:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::{iv, iv_inf};
    use crate::time::t;

    #[test]
    fn reduction_keeps_earliest_oe_per_chain() {
        // Figure 3 → Figure 4.
        let left = HistoryTable::figure3_left().reduce();
        assert_eq!(left.len(), 1);
        assert_eq!(left.rows[0].occurrence, iv(1, 3));
        let right = HistoryTable::figure3_right().reduce();
        assert_eq!(right.len(), 1);
        assert_eq!(right.rows[0].occurrence, iv(1, 5));
    }

    #[test]
    fn truncation_produces_figure5() {
        // Figure 4 → Figure 5: canonical history tables to 3.
        let left = HistoryTable::figure3_left().canonical_to(t(3));
        let right = HistoryTable::figure3_right().canonical_to(t(3));
        assert_eq!(left.rows[0].occurrence, iv(1, 3));
        assert_eq!(right.rows[0].occurrence, iv(1, 3));
    }

    #[test]
    fn truncation_drops_rows_starting_after_to() {
        let mut t1 = HistoryTable::new();
        t1.push(HistoryRow::occurrence_only(ChainKey(0), iv(1, 5), iv(1, 2)));
        t1.push(HistoryRow::occurrence_only(ChainKey(1), iv(7, 9), iv(2, 3)));
        let c = t1.canonical_to(t(4));
        assert_eq!(c.len(), 1);
        assert_eq!(c.rows[0].k, ChainKey(0));
        assert_eq!(c.rows[0].occurrence, iv(1, 4));
    }

    #[test]
    fn reduction_drops_fully_removed_chains() {
        // Figure 2's E1 chain is completely removed (Oe set to Os).
        let fig2 = HistoryTable::figure2().reduce();
        let chains: Vec<ChainKey> = fig2.rows.iter().map(|r| r.k).collect();
        assert_eq!(chains, vec![ChainKey(0), ChainKey(2)]);
        // E0 survives with occurrence [1,3); E2 with [3,∞).
        assert_eq!(fig2.rows[0].occurrence, iv(1, 3));
        assert_eq!(fig2.rows[1].occurrence, iv_inf(3));
    }

    #[test]
    fn figure2_net_effect_matches_paper_narrative() {
        // "at CEDR time 7, the stream describes the same valid time change,
        // except at occurrence time 3 instead of 5": the reduced table holds
        // an insert whose occurrence ends at 3 and a modification from 3 on.
        let ideal = HistoryTable::figure2().ideal();
        assert_eq!(ideal.len(), 2);
        assert_eq!(ideal.rows[0].valid, iv_inf(1));
        assert_eq!(ideal.rows[0].occurrence, iv(1, 3));
        assert_eq!(ideal.rows[1].valid, iv(1, 10));
        assert_eq!(ideal.rows[1].occurrence, iv_inf(3));
    }

    #[test]
    fn canonical_at_keeps_rows_reaching_to() {
        let left = HistoryTable::figure3_left().canonical_at(t(3));
        let right = HistoryTable::figure3_right().canonical_at(t(3));
        assert_eq!(left.len(), 1);
        assert_eq!(right.len(), 1);
        // A chain retracted strictly before `to` disappears from the
        // at-snapshot but stays in the to-table.
        let mut tbl = HistoryTable::new();
        tbl.push(HistoryRow::occurrence_only(ChainKey(0), iv(1, 2), iv(1, 2)));
        assert_eq!(tbl.canonical_to(t(3)).len(), 1);
        assert_eq!(tbl.canonical_at(t(3)).len(), 0);
    }

    #[test]
    fn annotate_reproduces_figure6_sync_column() {
        let ann = HistoryTable::figure6().annotate();
        assert_eq!(ann.len(), 2);
        assert_eq!(ann[0].sync, t(1), "insertion: Sync = Os");
        assert!(!ann[0].is_retraction);
        assert_eq!(ann[1].sync, t(5), "retraction: Sync = Oe");
        assert!(ann[1].is_retraction);
    }

    #[test]
    fn annotate_orders_by_cedr_arrival() {
        // Rows stored out of Cs order still classify correctly.
        let mut tbl = HistoryTable::new();
        tbl.push(HistoryRow::occurrence_only(
            ChainKey(0),
            iv(1, 5),
            iv_inf(9),
        ));
        tbl.push(HistoryRow::occurrence_only(
            ChainKey(0),
            iv(1, 10),
            iv(2, 9),
        ));
        let ann = tbl.annotate();
        assert!(!ann[0].is_retraction);
        assert_eq!(ann[0].sync, t(1));
        assert!(ann[1].is_retraction);
        assert_eq!(ann[1].sync, t(5));
    }

    #[test]
    fn shredding_splits_into_unit_slices() {
        let mut tbl = HistoryTable::new();
        tbl.push(HistoryRow::occurrence_only(ChainKey(0), iv(2, 5), iv(0, 1)));
        let sh = tbl.shredded();
        assert_eq!(sh.len(), 3);
        assert_eq!(sh.rows[0].occurrence, iv(2, 3));
        assert_eq!(sh.rows[1].occurrence, iv(3, 4));
        assert_eq!(sh.rows[2].occurrence, iv(4, 5));
        // All other attributes preserved.
        for r in &sh.rows {
            assert_eq!(r.k, ChainKey(0));
        }
    }

    #[test]
    #[should_panic]
    fn shredding_rejects_infinite_tables() {
        let mut tbl = HistoryTable::new();
        tbl.push(HistoryRow::occurrence_only(
            ChainKey(0),
            iv_inf(2),
            iv(0, 1),
        ));
        let _ = tbl.shredded();
    }

    #[test]
    fn ideal_projects_out_cedr_time() {
        let ideal = HistoryTable::figure3_left().ideal();
        assert_eq!(ideal.rows[0].cedr, Interval::from(TimePoint::ZERO));
    }

    #[test]
    fn render_matches_paper_layout() {
        let s = HistoryTable::figure6().render_occurrence_table();
        assert!(s.starts_with("K    Os   Oe   Cs   Ce"));
        assert!(s.contains("E0   1    10   0    7"));
    }
}
