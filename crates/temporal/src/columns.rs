//! Typed payload value columns: the struct-of-arrays form of a run of
//! payloads.
//!
//! A [`PayloadColumns`] lays the payload attributes of a run of rows out as
//! contiguous typed columns — `i64` / `f64` / string columns with null
//! bitmaps, plus an exact [`Value`] fallback column for mixed-type runs —
//! so a compiled kernel can sweep one attribute across a whole run without
//! chasing one `Arc` per row.
//!
//! The cell-level contract is exact: for every row `i` and column `j`,
//! [`PayloadColumns::value_at`] reproduces
//! `payload.get(j).cloned().unwrap_or(Value::Null)` — the fallback
//! `Scalar::eval_payload` uses — bit for bit. Ragged rows (payloads shorter
//! than the widest row of the run, empty payloads, rows with no payload at
//! all such as CTIs) and explicit `Value::Null` attributes both materialise
//! as null-bitmap entries; `Int` and `Float` never promote into each other
//! (`Value` equality is type-strict), so a column holding both keeps exact
//! `Value`s instead.

use crate::event::Payload;
use crate::value::Value;
use std::sync::Arc;

/// One payload attribute laid out across a run of rows.
#[derive(Clone, Debug, PartialEq)]
pub enum Column {
    /// Every row is null (missing or explicit `Value::Null`). The row count
    /// lives on the owning [`PayloadColumns`].
    Null,
    /// Homogeneous `Value::Int` rows; `nulls[i]` masks `vals[i]`.
    Int { vals: Vec<i64>, nulls: Vec<bool> },
    /// Homogeneous `Value::Float` rows; `nulls[i]` masks `vals[i]`.
    Float { vals: Vec<f64>, nulls: Vec<bool> },
    /// Homogeneous string rows; `None` is null.
    Str(Vec<Option<Arc<str>>>),
    /// Mixed-type (or boolean) rows kept as exact `Value`s. Missing cells
    /// are stored as `Value::Null`, so no separate bitmap is needed.
    Values(Vec<Value>),
}

impl Column {
    /// The exact value of row `i`, reproducing
    /// `payload.get(j).cloned().unwrap_or(Value::Null)`.
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            Column::Null => Value::Null,
            Column::Int { vals, nulls } => {
                if nulls[i] {
                    Value::Null
                } else {
                    Value::Int(vals[i])
                }
            }
            Column::Float { vals, nulls } => {
                if nulls[i] {
                    Value::Null
                } else {
                    Value::Float(vals[i])
                }
            }
            Column::Str(vals) => match &vals[i] {
                Some(s) => Value::Str(s.clone()),
                None => Value::Null,
            },
            Column::Values(vals) => vals[i].clone(),
        }
    }

    /// Is row `i` null (missing, beyond the row's arity, or an explicit
    /// `Value::Null`)?
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            Column::Null => true,
            Column::Int { nulls, .. } | Column::Float { nulls, .. } => nulls[i],
            Column::Str(vals) => vals[i].is_none(),
            Column::Values(vals) => matches!(vals[i], Value::Null),
        }
    }
}

/// Typed payload columns over a run of rows. Column `j` holds attribute
/// `j` of every row; rows without a payload (e.g. CTI messages) read as
/// all-null. Width is the maximum arity across the run, so mixed-arity
/// runs are ragged: short rows read `Value::Null` beyond their own arity.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PayloadColumns {
    cols: Vec<Column>,
    rows: usize,
}

/// One column's speculative single-pass builder. A column starts `Empty`
/// (nulls are implied by the row index), commits to the typed layout of
/// its first non-null value, and demotes to exact `Values` the moment a
/// second type appears — so homogeneous runs are built in one pass with
/// no `Value` clones (primitives are copied, strings bump one `Arc`).
enum ColBuilder {
    /// Masked out by the caller: never materialised.
    Skipped,
    /// Only nulls so far (count implied by the current row index).
    Empty,
    Int {
        vals: Vec<i64>,
        nulls: Vec<bool>,
    },
    Float {
        vals: Vec<f64>,
        nulls: Vec<bool>,
    },
    Str(Vec<Option<Arc<str>>>),
    Values(Vec<Value>),
}

impl ColBuilder {
    /// Commit `Empty` to the layout of first non-null value `v`, with `i`
    /// leading nulls.
    fn start(i: usize, v: &Value, n: usize) -> ColBuilder {
        let mut b = match v {
            Value::Null => unreachable!("start is called on non-null cells"),
            Value::Int(_) => ColBuilder::Int {
                vals: Vec::with_capacity(n),
                nulls: Vec::with_capacity(n),
            },
            Value::Float(_) => ColBuilder::Float {
                vals: Vec::with_capacity(n),
                nulls: Vec::with_capacity(n),
            },
            Value::Str(_) => ColBuilder::Str(Vec::with_capacity(n)),
            Value::Bool(_) => ColBuilder::Values(Vec::with_capacity(n)),
        };
        for _ in 0..i {
            b.push_null();
        }
        b.push(i, v, n);
        b
    }

    fn push_null(&mut self) {
        match self {
            ColBuilder::Skipped | ColBuilder::Empty => {}
            ColBuilder::Int { vals, nulls } => {
                vals.push(0);
                nulls.push(true);
            }
            ColBuilder::Float { vals, nulls } => {
                vals.push(0.0);
                nulls.push(true);
            }
            ColBuilder::Str(vals) => vals.push(None),
            ColBuilder::Values(vals) => vals.push(Value::Null),
        }
    }

    /// Demote a typed builder to exact `Values`, replaying what it holds.
    fn demote(&mut self) {
        let vals = match self {
            ColBuilder::Int { vals, nulls } => vals
                .iter()
                .zip(nulls.iter())
                .map(|(v, null)| if *null { Value::Null } else { Value::Int(*v) })
                .collect(),
            ColBuilder::Float { vals, nulls } => vals
                .iter()
                .zip(nulls.iter())
                .map(|(v, null)| if *null { Value::Null } else { Value::Float(*v) })
                .collect(),
            ColBuilder::Str(vals) => vals
                .iter()
                .map(|v| match v {
                    Some(s) => Value::Str(s.clone()),
                    None => Value::Null,
                })
                .collect(),
            _ => unreachable!("only typed builders demote"),
        };
        *self = ColBuilder::Values(vals);
    }

    /// Append row `i`'s cell (`n` = total rows, for capacity hints).
    fn push(&mut self, i: usize, cell: &Value, n: usize) {
        match (&mut *self, cell) {
            (ColBuilder::Skipped, _) => {}
            (_, Value::Null) => self.push_null(),
            (ColBuilder::Empty, v) => *self = ColBuilder::start(i, v, n),
            (ColBuilder::Int { vals, nulls }, Value::Int(x)) => {
                vals.push(*x);
                nulls.push(false);
            }
            (ColBuilder::Float { vals, nulls }, Value::Float(x)) => {
                vals.push(*x);
                nulls.push(false);
            }
            (ColBuilder::Str(vals), Value::Str(s)) => vals.push(Some(s.clone())),
            (ColBuilder::Values(vals), v) => vals.push(v.clone()),
            (_, v) => {
                self.demote();
                self.push(i, v, n);
            }
        }
    }

    fn finish(self) -> Column {
        match self {
            ColBuilder::Skipped | ColBuilder::Empty => Column::Null,
            ColBuilder::Int { vals, nulls } => Column::Int { vals, nulls },
            ColBuilder::Float { vals, nulls } => Column::Float { vals, nulls },
            ColBuilder::Str(vals) => Column::Str(vals),
            ColBuilder::Values(vals) => Column::Values(vals),
        }
    }
}

impl PayloadColumns {
    /// Materialise columns over a run of rows; `None` rows (payload-less
    /// messages) read as all-null.
    pub fn from_rows<'a, I>(rows: I) -> PayloadColumns
    where
        I: IntoIterator<Item = Option<&'a Payload>>,
    {
        PayloadColumns::from_rows_where(rows, |_| true)
    }

    /// [`PayloadColumns::from_rows`], materialising only the columns `j`
    /// with `keep(j)`. Skipped columns are left as cheap all-null
    /// placeholders, so a caller that knows which attributes its kernels
    /// read (a compiled fused chain) avoids scanning — and for string
    /// columns, ref-counting — the attributes it never touches. Reads of
    /// a skipped column return `Value::Null`, **not** the underlying
    /// cell, so the mask must cover every column the caller evaluates.
    pub fn from_rows_where<'a, I>(rows: I, keep: impl Fn(usize) -> bool) -> PayloadColumns
    where
        I: IntoIterator<Item = Option<&'a Payload>>,
    {
        let rows: Vec<Option<&Payload>> = rows.into_iter().collect();
        let n = rows.len();
        let width = rows
            .iter()
            .map(|p| p.map_or(0, |p| p.len()))
            .max()
            .unwrap_or(0);
        let mut builders: Vec<ColBuilder> = (0..width)
            .map(|j| {
                if keep(j) {
                    ColBuilder::Empty
                } else {
                    ColBuilder::Skipped
                }
            })
            .collect();
        // Single row-major pass: each builder speculates on its first
        // non-null value's layout and demotes to `Values` on a mismatch.
        for (i, row) in rows.iter().enumerate() {
            for (j, b) in builders.iter_mut().enumerate() {
                match row.and_then(|p| p.get(j)) {
                    Some(v) => b.push(i, v, n),
                    None => b.push_null(),
                }
            }
        }
        PayloadColumns {
            cols: builders.into_iter().map(ColBuilder::finish).collect(),
            rows: n,
        }
    }

    /// Number of rows the columns were built over.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of materialised columns: the maximum payload arity across
    /// the run. Reads beyond the width are `Value::Null`.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Column `j`, if within the width.
    pub fn col(&self, j: usize) -> Option<&Column> {
        self.cols.get(j)
    }

    /// The exact cell value: `payload.get(j).cloned().unwrap_or(Value::Null)`
    /// of row `i`, including columns beyond the width (always null).
    pub fn value_at(&self, j: usize, i: usize) -> Value {
        match self.cols.get(j) {
            Some(c) => c.value_at(i),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(vals: Vec<Value>) -> Payload {
        Payload::from_values(vals)
    }

    /// The cell contract: `value_at(j, i)` is exactly the scalar
    /// evaluator's `payload.get(j).cloned().unwrap_or(Value::Null)`.
    fn assert_matches_rows(cols: &PayloadColumns, rows: &[Option<&Payload>]) {
        assert_eq!(cols.rows(), rows.len());
        for (i, row) in rows.iter().enumerate() {
            for j in 0..cols.width() + 2 {
                let expect = row.and_then(|p| p.get(j)).cloned().unwrap_or(Value::Null);
                assert_eq!(cols.value_at(j, i), expect, "row {i} col {j}");
            }
        }
    }

    #[test]
    fn homogeneous_int_column_is_typed() {
        let a = p(vec![Value::Int(1)]);
        let b = p(vec![Value::Int(2)]);
        let cols = PayloadColumns::from_rows([Some(&a), Some(&b)]);
        assert!(matches!(cols.col(0), Some(Column::Int { .. })));
        assert_matches_rows(&cols, &[Some(&a), Some(&b)]);
    }

    #[test]
    fn mixed_int_float_column_keeps_exact_values() {
        // Int and Float must not promote into each other: `Value` equality
        // is type-strict, so a projected Int(1) is not Float(1.0).
        let a = p(vec![Value::Int(1)]);
        let b = p(vec![Value::Float(1.0)]);
        let cols = PayloadColumns::from_rows([Some(&a), Some(&b)]);
        assert!(matches!(cols.col(0), Some(Column::Values(_))));
        assert_eq!(cols.value_at(0, 0), Value::Int(1));
        assert_eq!(cols.value_at(0, 1), Value::Float(1.0));
        assert_ne!(cols.value_at(0, 0), cols.value_at(0, 1));
    }

    #[test]
    fn ragged_short_empty_and_missing_rows_read_null() {
        let wide = p(vec![Value::Int(1), Value::str("x"), Value::Float(2.0)]);
        let short = p(vec![Value::Int(2)]);
        let empty = p(vec![]);
        let rows = [Some(&wide), Some(&short), Some(&empty), None];
        let cols = PayloadColumns::from_rows(rows);
        assert_eq!(cols.width(), 3);
        assert_matches_rows(&cols, &rows);
        // The short row's missing tail cells are nulls in the bitmaps.
        assert!(cols.col(1).unwrap().is_null(1));
        assert!(cols.col(2).unwrap().is_null(2));
        assert!(cols.col(0).unwrap().is_null(3), "payload-less row");
    }

    #[test]
    fn explicit_null_values_set_the_bitmap() {
        let a = p(vec![Value::Null, Value::Int(1)]);
        let b = p(vec![Value::Int(3), Value::Null]);
        let rows = [Some(&a), Some(&b)];
        let cols = PayloadColumns::from_rows(rows);
        assert!(matches!(cols.col(0), Some(Column::Int { .. })));
        assert!(cols.col(0).unwrap().is_null(0));
        assert!(cols.col(1).unwrap().is_null(1));
        assert_matches_rows(&cols, &rows);
    }

    #[test]
    fn all_null_column_collapses() {
        let a = p(vec![Value::Null]);
        let b = p(vec![Value::Null]);
        let cols = PayloadColumns::from_rows([Some(&a), Some(&b)]);
        assert_eq!(cols.col(0), Some(&Column::Null));
        assert_eq!(cols.value_at(0, 0), Value::Null);
    }

    #[test]
    fn bool_and_str_mixes_fall_back_to_values() {
        let a = p(vec![Value::Bool(true), Value::str("s")]);
        let b = p(vec![Value::Bool(false), Value::Int(4)]);
        let rows = [Some(&a), Some(&b)];
        let cols = PayloadColumns::from_rows(rows);
        assert!(matches!(cols.col(0), Some(Column::Values(_))), "bools");
        assert!(matches!(cols.col(1), Some(Column::Values(_))), "str+int");
        assert_matches_rows(&cols, &rows);
    }

    #[test]
    fn str_column_shares_the_arcs() {
        let s: Arc<str> = Arc::from("shared");
        let a = p(vec![Value::Str(s.clone())]);
        let cols = PayloadColumns::from_rows([Some(&a)]);
        match cols.col(0) {
            Some(Column::Str(vals)) => {
                assert!(Arc::ptr_eq(vals[0].as_ref().unwrap(), &s));
            }
            other => panic!("expected a string column, got {other:?}"),
        }
    }

    #[test]
    fn masked_build_skips_unkept_columns() {
        let a = p(vec![Value::Int(1), Value::str("x"), Value::Float(2.0)]);
        let b = p(vec![Value::Int(2), Value::str("y"), Value::Float(3.0)]);
        let cols = PayloadColumns::from_rows_where([Some(&a), Some(&b)], |j| j != 1);
        assert_eq!(cols.width(), 3, "masking keeps the run's width");
        assert!(matches!(cols.col(0), Some(Column::Int { .. })));
        assert_eq!(cols.col(1), Some(&Column::Null), "skipped placeholder");
        assert!(matches!(cols.col(2), Some(Column::Float { .. })));
        assert_eq!(cols.value_at(0, 1), Value::Int(2));
        assert_eq!(cols.value_at(2, 0), Value::Float(2.0));
    }

    #[test]
    fn empty_run_has_no_columns() {
        let cols = PayloadColumns::from_rows(std::iter::empty());
        assert_eq!((cols.rows(), cols.width()), (0, 0));
        let cols = PayloadColumns::from_rows([None, None]);
        assert_eq!((cols.rows(), cols.width()), (2, 0));
        assert_eq!(cols.value_at(0, 1), Value::Null);
    }
}
