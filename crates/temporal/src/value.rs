//! Payload values.
//!
//! The paper treats payloads as "immediately available data, rather like a
//! stack frame … opaque to the operator definitions" (Section 3.3.1), but the
//! WHERE clause compares payload attributes, aggregates fold over them, and
//! group-by partitions on them, so we need a small dynamically-typed value
//! domain with total ordering and hashing.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A dynamically typed payload attribute value.
///
/// `Value` implements a *total* order and `Eq`/`Hash` (floats are compared by
/// IEEE bit pattern with NaN canonicalised), so values can serve as group-by
/// and correlation keys.
#[derive(Clone, Serialize, Deserialize)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Type tag used for the cross-type total order.
    fn tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }

    /// Canonicalised float bits: all NaNs collapse to one representation and
    /// `-0.0` folds onto `0.0`, making `Eq`/`Hash`/`Ord` coherent.
    fn float_bits(f: f64) -> u64 {
        if f.is_nan() {
            f64::NAN.to_bits()
        } else if f == 0.0 {
            0.0f64.to_bits()
        } else {
            f.to_bits()
        }
    }

    /// Numeric view, coercing ints to floats; `None` for non-numerics.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view; `None` for anything else.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Comparison used by WHERE-clause predicates: numerics compare across
    /// `Int`/`Float`, otherwise values compare within their own type;
    /// cross-type comparisons order by type tag (total, never panics).
    pub fn compare(&self, other: &Value) -> Ordering {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a
                .partial_cmp(&b)
                .unwrap_or_else(|| Value::float_bits(a).cmp(&Value::float_bits(b))),
            _ => match (self, other) {
                (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
                (Value::Str(a), Value::Str(b)) => a.as_ref().cmp(b.as_ref()),
                (Value::Null, Value::Null) => Ordering::Equal,
                _ => self.tag().cmp(&other.tag()),
            },
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => Value::float_bits(*a) == Value::float_bits(*b),
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.tag().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => Value::float_bits(*f).hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        // Within-type ordering with a type-tag fallback. Note this is
        // deliberately *not* `compare`: Ord must agree with Eq, so Int(1)
        // and Float(1.0) are unequal here but `compare` treats them equal.
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => match a.partial_cmp(b) {
                Some(o) => o,
                None => Value::float_bits(*a).cmp(&Value::float_bits(*b)),
            },
            (Value::Str(a), Value::Str(b)) => a.as_ref().cmp(b.as_ref()),
            _ => self.tag().cmp(&other.tag()),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equality_within_types() {
        assert_eq!(Value::Int(3), Value::Int(3));
        assert_ne!(Value::Int(3), Value::Int(4));
        assert_eq!(Value::str("a"), Value::str("a"));
        assert_ne!(Value::Int(1), Value::Float(1.0), "Eq is type-strict");
    }

    #[test]
    fn float_equality_canonicalises_nan_and_zero() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
        assert_eq!(
            hash_of(&Value::Float(f64::NAN)),
            hash_of(&Value::Float(f64::from_bits(0x7ff8_0000_0000_0001)))
        );
    }

    #[test]
    fn compare_coerces_numerics() {
        assert_eq!(Value::Int(1).compare(&Value::Float(1.0)), Ordering::Equal);
        assert_eq!(Value::Int(1).compare(&Value::Float(1.5)), Ordering::Less);
        assert_eq!(Value::Float(2.5).compare(&Value::Int(2)), Ordering::Greater);
    }

    #[test]
    fn compare_is_total_across_types() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(5),
            Value::Float(2.0),
            Value::str("x"),
        ];
        for a in &vals {
            for b in &vals {
                // compare never panics and is antisymmetric
                let ab = a.compare(b);
                let ba = b.compare(a);
                assert_eq!(ab, ba.reverse());
            }
        }
    }

    #[test]
    fn ord_agrees_with_eq() {
        let a = Value::Int(1);
        let b = Value::Float(1.0);
        assert_ne!(a, b);
        assert_ne!(a.cmp(&b), Ordering::Equal);
    }

    #[test]
    fn views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("hi").as_str(), Some("hi"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(Value::str("BARGA_XP03").to_string(), "'BARGA_XP03'");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
