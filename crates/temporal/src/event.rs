//! Events and their headers.
//!
//! Section 3.3.1 of the paper fixes the conceptual event representation
//! `(ID, Vs, Ve, Os, Oe, Rt, cbt[]; p)`: six header attributes (ID, the
//! valid and occurrence intervals, the root time `Rt` and the contributor
//! lineage `cbt[]`) followed by an opaque payload `p`.
//!
//! This module defines the shared pieces — identities, payloads, lineage —
//! and the *unitemporal runtime event* of Section 6, where occurrence and
//! valid time are merged into a single valid-time axis whose lifetime can
//! only be shortened by retractions.

use crate::interval::Interval;
use crate::time::TimePoint;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// An event identity.
///
/// Primitive events receive provider-assigned IDs; composite events receive
/// IDs from the `idgen` pairing function (see `cedr-algebra::idgen`), which
/// is injective-in-practice (64-bit mix); correctness-critical code relies on
/// the exact `cbt[]` lineage instead of hash uniqueness.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventId(pub u64);

impl fmt::Debug for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{:x}", self.0)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{:x}", self.0)
    }
}

/// The `K` column of the tritemporal history table (Figure 2): one unique
/// value per initial insert *and all its associated retractions*.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChainKey(pub u64);

impl fmt::Debug for ChainKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

impl fmt::Display for ChainKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

/// An immutable, cheaply clonable payload: the event body `p`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Payload(pub Arc<[Value]>);

impl Payload {
    /// The empty payload (the paper's examples "ignore the content payload").
    pub fn empty() -> Payload {
        Payload(Arc::from(Vec::new()))
    }

    /// Build a payload from values.
    pub fn from_values(vals: Vec<Value>) -> Payload {
        Payload(Arc::from(vals))
    }

    /// Field access by position.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.0.get(idx)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload has no attributes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Concatenation, as used by join and the sequencing operators
    /// (`e1.p, e2.p, …, ek.p`).
    pub fn concat(&self, other: &Payload) -> Payload {
        let mut v = Vec::with_capacity(self.len() + other.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Payload(Arc::from(v))
    }

    /// Concatenate many payloads in contributor order.
    pub fn concat_all<'a>(parts: impl IntoIterator<Item = &'a Payload>) -> Payload {
        let mut v = Vec::new();
        for p in parts {
            v.extend_from_slice(&p.0);
        }
        Payload(Arc::from(v))
    }

    /// Iterate over the attribute values.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.0.iter()
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Payload {
    fn from(v: Vec<Value>) -> Self {
        Payload::from_values(v)
    }
}

/// The contributor lineage `cbt[]`: an ordered sequence of references to the
/// events that formed a composite event. Empty (`NULL` in the paper) for
/// primitive events.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Lineage(pub Arc<[EventId]>);

impl Lineage {
    /// Lineage of a primitive event.
    pub fn primitive() -> Lineage {
        Lineage(Arc::from(Vec::new()))
    }

    /// Lineage `[e1, e2, …, ek]` of a composite event.
    pub fn of(ids: Vec<EventId>) -> Lineage {
        Lineage(Arc::from(ids))
    }

    /// `cbt[n]` with the paper's 1-based indexing (as in `e1.cbt[n].Vs`).
    pub fn nth(&self, n: usize) -> Option<EventId> {
        if n == 0 {
            return None;
        }
        self.0.get(n - 1).copied()
    }

    /// Number of contributors.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether this is a primitive event's (empty) lineage.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether `id` contributed (directly) to this event.
    pub fn contains(&self, id: EventId) -> bool {
        self.0.contains(&id)
    }
}

impl fmt::Debug for Lineage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

/// A unitemporal runtime event (Section 6 regime): `(ID, Vs, Ve, Rt, cbt[]; p)`.
///
/// `interval` is the valid-time lifetime `[Vs, Ve)`; retractions may only
/// shorten it. `root_time` (`Rt`) is the minimum root time among
/// contributors (equal to `Vs` for primitive events) and drives
/// CANCEL-WHEN's scope.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Event {
    pub id: EventId,
    pub interval: Interval,
    pub root_time: TimePoint,
    pub lineage: Lineage,
    pub payload: Payload,
}

impl Event {
    /// A primitive event: `Rt = Vs`, empty lineage.
    pub fn primitive(id: EventId, interval: Interval, payload: Payload) -> Event {
        Event {
            id,
            interval,
            root_time: interval.start,
            lineage: Lineage::primitive(),
            payload,
        }
    }

    /// A composite event with explicit root time and lineage.
    pub fn composite(
        id: EventId,
        interval: Interval,
        root_time: TimePoint,
        lineage: Lineage,
        payload: Payload,
    ) -> Event {
        Event {
            id,
            interval,
            root_time,
            lineage,
            payload,
        }
    }

    /// Valid start time `Vs`.
    #[inline]
    pub fn vs(&self) -> TimePoint {
        self.interval.start
    }

    /// Valid end time `Ve`.
    #[inline]
    pub fn ve(&self) -> TimePoint {
        self.interval.end
    }

    /// A copy with the lifetime shortened to `[Vs, new_end)` — the effect of
    /// applying a retraction. `new_end == Vs` removes the event entirely.
    pub fn shortened(&self, new_end: TimePoint) -> Event {
        let mut e = self.clone();
        e.interval = Interval::new(self.interval.start, new_end);
        e
    }
}

impl fmt::Debug for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{} rt={} cbt={:?} p={}",
            self.id, self.interval, self.root_time, self.lineage, self.payload
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::iv;
    use crate::time::t;

    fn payload(vals: &[i64]) -> Payload {
        Payload::from_values(vals.iter().map(|v| Value::Int(*v)).collect())
    }

    #[test]
    fn payload_concat_preserves_order() {
        let p = payload(&[1, 2]).concat(&payload(&[3]));
        assert_eq!(p.len(), 3);
        assert_eq!(p.get(2), Some(&Value::Int(3)));
        let q = Payload::concat_all([&payload(&[1]), &payload(&[2]), &payload(&[3])]);
        assert_eq!(q, payload(&[1, 2, 3]));
    }

    #[test]
    fn lineage_is_one_indexed_like_the_paper() {
        let l = Lineage::of(vec![EventId(10), EventId(20)]);
        assert_eq!(l.nth(1), Some(EventId(10)));
        assert_eq!(l.nth(2), Some(EventId(20)));
        assert_eq!(l.nth(0), None);
        assert_eq!(l.nth(3), None);
        assert!(l.contains(EventId(20)));
        assert!(!l.contains(EventId(30)));
    }

    #[test]
    fn primitive_event_roots_at_vs() {
        let e = Event::primitive(EventId(1), iv(4, 9), Payload::empty());
        assert_eq!(e.root_time, t(4));
        assert!(e.lineage.is_empty());
        assert_eq!(e.vs(), t(4));
        assert_eq!(e.ve(), t(9));
    }

    #[test]
    fn shortening_models_retraction() {
        let e = Event::primitive(EventId(1), iv(4, 9), Payload::empty());
        let s = e.shortened(t(6));
        assert_eq!(s.interval, iv(4, 6));
        let gone = e.shortened(t(4));
        assert!(gone.interval.is_empty());
        assert_eq!(gone.id, e.id);
    }

    #[test]
    fn payload_equality_and_hash_are_structural() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(payload(&[1, 2]));
        assert!(s.contains(&payload(&[1, 2])));
        assert!(!s.contains(&payload(&[2, 1])));
    }

    #[test]
    fn display_formats() {
        assert_eq!(EventId(0xab).to_string(), "eab");
        assert_eq!(ChainKey(2).to_string(), "E2");
        assert_eq!(payload(&[7]).to_string(), "(7)");
    }
}
