//! The conceptual bitemporal stream representation of Section 2.
//!
//! A stream is modelled as a time-varying relation whose tuples carry a
//! validity interval `[Vs, Ve)` and an occurrence interval `[Os, Oe)`. An
//! *insert* event of an ID is the tuple with minimum `Os` among all tuples
//! with that ID; the others are *modification* events (changes to the
//! validity interval issued later by the provider).
//!
//! Figure 1 of the paper is reproduced verbatim by
//! [`BiTemporalTable::figure1`] and asserted in the tests.

use crate::event::{EventId, Payload};
use crate::interval::Interval;
use crate::time::TimePoint;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One row of the conceptual schema `(ID, Vs, Ve, Os, Oe, Payload)`.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BiTemporalRow {
    pub id: EventId,
    pub valid: Interval,
    pub occurrence: Interval,
    pub payload: Payload,
}

impl BiTemporalRow {
    pub fn new(id: EventId, valid: Interval, occurrence: Interval, payload: Payload) -> Self {
        BiTemporalRow {
            id,
            valid,
            occurrence,
            payload,
        }
    }
}

impl fmt::Debug for BiTemporalRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} V={} O={} {}",
            self.id, self.valid, self.occurrence, self.payload
        )
    }
}

/// A bitemporal relation: the input/output type of CEDR query semantics
/// (Section 3: "the output type of a query should be a bitemporal relation").
#[derive(Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BiTemporalTable {
    pub rows: Vec<BiTemporalRow>,
}

impl BiTemporalTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, row: BiTemporalRow) {
        self.rows.push(row);
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The *insert event* for `id`: the row with minimum `Os` (Section 2).
    pub fn insert_event(&self, id: EventId) -> Option<&BiTemporalRow> {
        self.rows
            .iter()
            .filter(|r| r.id == id)
            .min_by_key(|r| r.occurrence.start)
    }

    /// The *modification events* for `id`: every row that is not the insert
    /// event, in occurrence-start order.
    pub fn modification_events(&self, id: EventId) -> Vec<&BiTemporalRow> {
        let Some(ins) = self.insert_event(id) else {
            return Vec::new();
        };
        let ins_os = ins.occurrence.start;
        let mut mods: Vec<&BiTemporalRow> = self
            .rows
            .iter()
            .filter(|r| r.id == id && r.occurrence.start != ins_os)
            .collect();
        mods.sort_by_key(|r| r.occurrence.start);
        mods
    }

    /// The continuous query of Section 2: "at each time instance `t`, return
    /// all tuples that are still valid at `t`" — evaluated against the
    /// provider's knowledge *as of occurrence time `as_of`*.
    ///
    /// For each ID the authoritative version at `as_of` is the row whose
    /// occurrence interval contains `as_of`; the tuple is reported if its
    /// validity interval contains `t`.
    pub fn valid_at(&self, t: TimePoint, as_of: TimePoint) -> Vec<&BiTemporalRow> {
        let mut current: BTreeMap<EventId, &BiTemporalRow> = BTreeMap::new();
        for row in &self.rows {
            if row.occurrence.contains(as_of) {
                current.insert(row.id, row);
            }
        }
        current
            .into_values()
            .filter(|r| r.valid.contains(t))
            .collect()
    }

    /// Distinct IDs, in first-appearance order.
    pub fn ids(&self) -> Vec<EventId> {
        let mut seen = Vec::new();
        for r in &self.rows {
            if !seen.contains(&r.id) {
                seen.push(r.id);
            }
        }
        seen
    }

    /// Figure 1 of the paper: at time 1, `e0` is inserted with validity
    /// `[1, ∞)`; at time 2 its validity is modified to `[1, 10)`; at time 3
    /// it is modified to `[1, 5)` and `e1` is inserted with validity `[4, 9)`.
    pub fn figure1() -> BiTemporalTable {
        use crate::interval::{iv, iv_inf};
        let e0 = EventId(0);
        let e1 = EventId(1);
        let p = Payload::empty();
        BiTemporalTable {
            rows: vec![
                BiTemporalRow::new(e0, iv_inf(1), iv(1, 2), p.clone()),
                BiTemporalRow::new(e0, iv(1, 10), iv(2, 3), p.clone()),
                BiTemporalRow::new(e0, iv(1, 5), iv_inf(3), p.clone()),
                BiTemporalRow::new(e1, iv(4, 9), iv_inf(3), p),
            ],
        }
    }
}

impl fmt::Debug for BiTemporalTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ID   Vs   Ve   Os   Oe   Payload")?;
        for r in &self.rows {
            writeln!(
                f,
                "{}   {}   {}   {}   {}   {}",
                r.id, r.valid.start, r.valid.end, r.occurrence.start, r.occurrence.end, r.payload
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::{iv, iv_inf};
    use crate::time::t;

    #[test]
    fn figure1_matches_the_paper() {
        let tbl = BiTemporalTable::figure1();
        assert_eq!(tbl.len(), 4);
        // (ID, Vs, Ve, Os, Oe) columns exactly as printed in Figure 1.
        assert_eq!(tbl.rows[0].valid, iv_inf(1));
        assert_eq!(tbl.rows[0].occurrence, iv(1, 2));
        assert_eq!(tbl.rows[1].valid, iv(1, 10));
        assert_eq!(tbl.rows[1].occurrence, iv(2, 3));
        assert_eq!(tbl.rows[2].valid, iv(1, 5));
        assert_eq!(tbl.rows[2].occurrence, iv_inf(3));
        assert_eq!(tbl.rows[3].valid, iv(4, 9));
        assert_eq!(tbl.rows[3].occurrence, iv_inf(3));
    }

    #[test]
    fn insert_vs_modification_classification() {
        let tbl = BiTemporalTable::figure1();
        let ins = tbl.insert_event(EventId(0)).unwrap();
        assert_eq!(ins.occurrence.start, t(1));
        let mods = tbl.modification_events(EventId(0));
        assert_eq!(mods.len(), 2);
        assert_eq!(mods[0].occurrence.start, t(2));
        assert_eq!(mods[1].occurrence.start, t(3));
        assert!(tbl.modification_events(EventId(1)).is_empty());
    }

    #[test]
    fn validity_query_respects_provider_knowledge() {
        let tbl = BiTemporalTable::figure1();
        // As of occurrence time 1, e0 is valid forever.
        assert_eq!(tbl.valid_at(t(100), t(1)).len(), 1);
        // As of occurrence time 2, e0's validity is [1,10): not valid at 100.
        assert!(tbl.valid_at(t(100), t(2)).is_empty());
        assert_eq!(tbl.valid_at(t(7), t(2)).len(), 1);
        // As of occurrence time 3, e0 is valid on [1,5) and e1 on [4,9).
        let at4 = tbl.valid_at(t(4), t(3));
        assert_eq!(at4.len(), 2);
        let at7 = tbl.valid_at(t(7), t(3));
        assert_eq!(at7.len(), 1);
        assert_eq!(at7[0].id, EventId(1));
    }

    #[test]
    fn ids_in_first_appearance_order() {
        let tbl = BiTemporalTable::figure1();
        assert_eq!(tbl.ids(), vec![EventId(0), EventId(1)]);
    }
}
