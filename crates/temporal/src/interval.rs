//! Half-open temporal intervals `[start, end)`.
//!
//! Every temporal extent in CEDR — validity intervals, occurrence intervals,
//! CEDR intervals, negation scopes — is a half-open interval. Definition 10
//! of the paper ("meets", used by coalescing) is implemented here.

use crate::time::{Duration, TimePoint};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open interval `[start, end)` over a temporal axis.
///
/// `start == end` denotes the empty interval (the paper uses `Oe = Os` to
/// mark an event as completely removed, Section 4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Interval {
    pub start: TimePoint,
    pub end: TimePoint,
}

impl Interval {
    /// Build `[start, end)`. `end < start` is normalised to the empty
    /// interval at `start`, so callers can clip freely.
    #[inline]
    pub fn new(start: TimePoint, end: TimePoint) -> Self {
        if end < start {
            Interval { start, end: start }
        } else {
            Interval { start, end }
        }
    }

    /// `[start, ∞)`.
    #[inline]
    pub fn from(start: TimePoint) -> Self {
        Interval {
            start,
            end: TimePoint::INFINITY,
        }
    }

    /// `[t, t+1)`: the unit interval used by shredding (Section 3.3.2).
    #[inline]
    pub fn point(t: TimePoint) -> Self {
        Interval {
            start: t,
            end: t + Duration(1),
        }
    }

    /// The empty interval anchored at `t`.
    #[inline]
    pub fn empty_at(t: TimePoint) -> Self {
        Interval { start: t, end: t }
    }

    /// Is this interval empty (`start >= end`)?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Does `[start, end)` contain the point `t`?
    #[inline]
    pub fn contains(&self, t: TimePoint) -> bool {
        self.start <= t && t < self.end
    }

    /// Length of the interval (`∞` for open-ended intervals).
    #[inline]
    pub fn duration(&self) -> Duration {
        self.end.since(self.start).unwrap_or(Duration::ZERO)
    }

    /// Do two intervals share at least one point?
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.is_empty() && !other.is_empty() && self.start < other.end && other.start < self.end
    }

    /// Definition 10: `[T1,T2)` and `[T1',T2')` *meet* iff `T2 == T1'`.
    #[inline]
    pub fn meets(&self, other: &Interval) -> bool {
        self.end == other.start
    }

    /// Pointwise intersection; empty result anchored at the later start.
    #[inline]
    pub fn intersect(&self, other: &Interval) -> Interval {
        let start = TimePoint::max_of(self.start, other.start);
        let end = TimePoint::min_of(self.end, other.end);
        Interval::new(start, end)
    }

    /// Clip the end of the interval to at most `t` (truncation, Section 4).
    #[inline]
    pub fn truncate_end(&self, t: TimePoint) -> Interval {
        Interval::new(self.start, TimePoint::min_of(self.end, t))
    }

    /// The smallest interval covering both inputs (used by scope analysis).
    #[inline]
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval::new(
            TimePoint::min_of(self.start, other.start),
            TimePoint::max_of(self.end, other.end),
        )
    }

    /// Is `self` entirely contained in `other`?
    #[inline]
    pub fn within(&self, other: &Interval) -> bool {
        self.is_empty() || (other.start <= self.start && self.end <= other.end)
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// Shorthand for `Interval::new(t(a), t(b))` in tests and examples.
pub fn iv(a: u64, b: u64) -> Interval {
    Interval::new(TimePoint(a), TimePoint(b))
}

/// Shorthand for `[a, ∞)`.
pub fn iv_inf(a: u64) -> Interval {
    Interval::from(TimePoint(a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::t;

    #[test]
    fn construction_normalises_inverted() {
        let i = Interval::new(t(5), t(3));
        assert!(i.is_empty());
        assert_eq!(i.start, t(5));
    }

    #[test]
    fn containment_is_half_open() {
        let i = iv(1, 5);
        assert!(i.contains(t(1)));
        assert!(i.contains(t(4)));
        assert!(!i.contains(t(5)));
        assert!(!i.contains(t(0)));
    }

    #[test]
    fn open_ended_contains_everything_after_start() {
        let i = iv_inf(4);
        assert!(i.contains(t(4)));
        assert!(i.contains(t(1_000_000)));
        assert!(!i.contains(t(3)));
        assert!(
            !i.contains(TimePoint::INFINITY),
            "∞ itself is never a member"
        );
    }

    #[test]
    fn overlap_cases() {
        assert!(iv(1, 5).overlaps(&iv(4, 9)));
        assert!(
            !iv(1, 5).overlaps(&iv(5, 9)),
            "touching intervals do not overlap"
        );
        assert!(!iv(1, 5).overlaps(&iv(6, 9)));
        assert!(iv(1, 10).overlaps(&iv(3, 4)));
        assert!(!iv(3, 3).overlaps(&iv(1, 10)), "empty never overlaps");
        assert!(iv_inf(0).overlaps(&iv_inf(1_000)));
    }

    #[test]
    fn meets_per_definition_10() {
        assert!(iv(1, 5).meets(&iv(5, 9)));
        assert!(!iv(1, 5).meets(&iv(6, 9)));
        assert!(!iv(1, 5).meets(&iv(4, 9)));
    }

    #[test]
    fn intersection_clips() {
        assert_eq!(iv(1, 5).intersect(&iv(4, 9)), iv(4, 5));
        assert!(iv(1, 5).intersect(&iv(7, 9)).is_empty());
        assert_eq!(iv_inf(2).intersect(&iv(0, 6)), iv(2, 6));
    }

    #[test]
    fn truncation_caps_end() {
        assert_eq!(iv_inf(1).truncate_end(t(10)), iv(1, 10));
        assert_eq!(iv(1, 5).truncate_end(t(10)), iv(1, 5));
        assert!(iv(4, 9).truncate_end(t(2)).is_empty());
    }

    #[test]
    fn hull_and_within() {
        assert_eq!(iv(1, 3).hull(&iv(6, 9)), iv(1, 9));
        assert!(iv(2, 3).within(&iv(1, 5)));
        assert!(!iv(0, 3).within(&iv(1, 5)));
        assert!(iv(4, 4).within(&iv(1, 2)), "empty is within anything");
    }

    #[test]
    fn duration_of_intervals() {
        assert_eq!(iv(3, 10).duration(), Duration(7));
        assert_eq!(iv_inf(3).duration(), Duration::INFINITE);
        assert_eq!(iv(3, 3).duration(), Duration::ZERO);
    }

    #[test]
    fn point_interval_is_unit_length() {
        let p = Interval::point(t(7));
        assert_eq!(p, iv(7, 8));
        assert_eq!(p.duration(), Duration(1));
    }
}
