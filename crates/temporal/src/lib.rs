//! # cedr-temporal
//!
//! The temporal foundation of CEDR ("Consistent Streaming Through Time",
//! Barga et al., CIDR 2007): the tritemporal stream model of Section 2, the
//! history-table machinery of Section 4 (reduction, truncation, canonical
//! forms, annotated tables, sync points, logical equivalence) and the
//! unitemporal regime of Section 6 (coalescing, the `*` operator, shredded
//! canonical form).
//!
//! CEDR separates three notions of time:
//!
//! * **valid time** (`Vs`, `Ve`) — when a fact holds, from the event
//!   provider's perspective;
//! * **occurrence time** (`Os`, `Oe`) — when the provider asserted or
//!   revised that fact (insertions and modifications);
//! * **CEDR time** (`Cs`, `Ce`) — when the CEDR server learned about it;
//!   this is the axis on which out-of-order delivery and retractions live.
//!
//! All intervals in this crate are half-open `[start, end)`, exactly as in
//! the paper.

pub mod bitemporal;
pub mod columns;
pub mod equivalence;
pub mod event;
pub mod history;
pub mod interval;
pub mod sync;
pub mod time;
pub mod unitemporal;
pub mod value;

pub use bitemporal::{BiTemporalRow, BiTemporalTable};
pub use columns::{Column, PayloadColumns};
pub use equivalence::{
    logically_equivalent, logically_equivalent_at, logically_equivalent_to, EquivalenceOptions,
};
pub use event::{ChainKey, Event, EventId, Lineage, Payload};
pub use history::{AnnotatedRow, HistoryRow, HistoryTable};
pub use interval::Interval;
pub use sync::{is_sync_point, sync_points, SyncPoint};
pub use time::{Duration, TimePoint};
pub use unitemporal::{UniTemporalRow, UniTemporalTable};
pub use value::Value;

/// Convenience prelude for downstream crates.
pub mod prelude {
    pub use crate::bitemporal::{BiTemporalRow, BiTemporalTable};
    pub use crate::columns::{Column, PayloadColumns};
    pub use crate::equivalence::{
        logically_equivalent, logically_equivalent_at, logically_equivalent_to, EquivalenceOptions,
    };
    pub use crate::event::{ChainKey, Event, EventId, Lineage, Payload};
    pub use crate::history::{AnnotatedRow, HistoryRow, HistoryTable};
    pub use crate::interval::Interval;
    pub use crate::sync::{is_sync_point, sync_points, SyncPoint};
    pub use crate::time::{Duration, TimePoint};
    pub use crate::unitemporal::{UniTemporalRow, UniTemporalTable};
    pub use crate::value::Value;
}
