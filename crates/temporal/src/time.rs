//! Logical time points and durations.
//!
//! CEDR time values are drawn from a discrete, totally ordered domain with a
//! distinguished `∞` ("never expires", used e.g. for the valid end time of an
//! open-ended event, Figure 1 of the paper). We model the domain as `u64`
//! ticks; `u64::MAX` is reserved for `∞`. Arithmetic saturates at `∞` so that
//! expressions like `e1.Vs + w` from the operator denotations are total.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point on a CEDR temporal axis (valid, occurrence or CEDR time).
/// `Default` is the origin of time.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TimePoint(pub u64);

/// A span of logical time. `Duration::INFINITE` represents an unbounded
/// scope (e.g. the lifetime assigned by `Inserts(S) = Π_{Vs,∞}(S)`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Duration(pub u64);

impl TimePoint {
    /// The origin of time.
    pub const ZERO: TimePoint = TimePoint(0);
    /// The distinguished `∞` value: later than every finite time point.
    pub const INFINITY: TimePoint = TimePoint(u64::MAX);

    /// Construct a finite time point. Panics if `t` collides with `∞`.
    #[inline]
    pub fn new(t: u64) -> Self {
        assert!(
            t != u64::MAX,
            "u64::MAX is reserved for TimePoint::INFINITY"
        );
        TimePoint(t)
    }

    /// Whether this is the `∞` sentinel.
    #[inline]
    pub fn is_infinite(self) -> bool {
        self == Self::INFINITY
    }

    /// Whether this is a finite tick count.
    #[inline]
    pub fn is_finite(self) -> bool {
        !self.is_infinite()
    }

    /// Saturating addition of a duration; `∞` is absorbing.
    #[inline]
    pub fn saturating_add(self, d: Duration) -> TimePoint {
        if self.is_infinite() || d.is_infinite() {
            Self::INFINITY
        } else {
            match self.0.checked_add(d.0) {
                Some(v) if v != u64::MAX => TimePoint(v),
                _ => Self::INFINITY,
            }
        }
    }

    /// Saturating subtraction of a duration. `∞ - d = ∞` (the horizon below
    /// an infinite watermark is still infinite); finite points floor at 0.
    #[inline]
    pub fn saturating_sub(self, d: Duration) -> TimePoint {
        if self.is_infinite() {
            Self::INFINITY
        } else if d.is_infinite() {
            TimePoint::ZERO
        } else {
            TimePoint(self.0.saturating_sub(d.0))
        }
    }

    /// Distance from `earlier` to `self`; `None` if `self < earlier`.
    /// `∞ - finite = ∞`; `∞ - ∞ = 0` by convention.
    #[inline]
    pub fn since(self, earlier: TimePoint) -> Option<Duration> {
        if self < earlier {
            return None;
        }
        if self.is_infinite() {
            if earlier.is_infinite() {
                Some(Duration::ZERO)
            } else {
                Some(Duration::INFINITE)
            }
        } else {
            Some(Duration(self.0 - earlier.0))
        }
    }

    /// The smaller of two time points.
    #[inline]
    pub fn min_of(a: TimePoint, b: TimePoint) -> TimePoint {
        if a <= b {
            a
        } else {
            b
        }
    }

    /// The larger of two time points.
    #[inline]
    pub fn max_of(a: TimePoint, b: TimePoint) -> TimePoint {
        if a >= b {
            a
        } else {
            b
        }
    }
}

impl Duration {
    /// The empty duration.
    pub const ZERO: Duration = Duration(0);
    /// An unbounded duration; absorbing under addition.
    pub const INFINITE: Duration = Duration(u64::MAX);

    /// Construct a finite duration. Panics on the `∞` sentinel value.
    #[inline]
    pub fn new(d: u64) -> Self {
        assert!(d != u64::MAX, "u64::MAX is reserved for Duration::INFINITE");
        Duration(d)
    }

    /// Whether this is the unbounded duration.
    #[inline]
    pub fn is_infinite(self) -> bool {
        self == Self::INFINITE
    }

    /// One tick models one second for the query-language time units.
    pub fn seconds(n: u64) -> Self {
        Duration::new(n)
    }

    /// `n` minutes in ticks.
    pub fn minutes(n: u64) -> Self {
        Duration::new(n * 60)
    }

    /// `n` hours in ticks.
    pub fn hours(n: u64) -> Self {
        Duration::new(n * 3600)
    }

    /// `n` days in ticks.
    pub fn days(n: u64) -> Self {
        Duration::new(n * 86_400)
    }

    /// Saturating addition; `∞` is absorbing.
    #[inline]
    pub fn saturating_add(self, other: Duration) -> Duration {
        if self.is_infinite() || other.is_infinite() {
            Duration::INFINITE
        } else {
            match self.0.checked_add(other.0) {
                Some(v) if v != u64::MAX => Duration(v),
                _ => Duration::INFINITE,
            }
        }
    }
}

impl Add<Duration> for TimePoint {
    type Output = TimePoint;
    #[inline]
    fn add(self, d: Duration) -> TimePoint {
        self.saturating_add(d)
    }
}

impl AddAssign<Duration> for TimePoint {
    #[inline]
    fn add_assign(&mut self, d: Duration) {
        *self = self.saturating_add(d);
    }
}

impl Sub<Duration> for TimePoint {
    type Output = TimePoint;
    #[inline]
    fn sub(self, d: Duration) -> TimePoint {
        self.saturating_sub(d)
    }
}

impl From<u64> for TimePoint {
    fn from(t: u64) -> Self {
        TimePoint::new(t)
    }
}

impl From<u64> for Duration {
    fn from(d: u64) -> Self {
        Duration::new(d)
    }
}

impl fmt::Debug for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// Shorthand used pervasively in tests and examples: `t(5)` is tick 5.
pub fn t(v: u64) -> TimePoint {
    TimePoint::new(v)
}

/// Shorthand for a finite duration in ticks.
pub fn dur(v: u64) -> Duration {
    Duration::new(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinity_ordering() {
        assert!(TimePoint::INFINITY > t(u64::MAX - 1));
        assert!(t(0) < t(1));
        assert!(TimePoint::INFINITY.is_infinite());
        assert!(t(7).is_finite());
    }

    #[test]
    fn saturating_add_absorbs_infinity() {
        assert_eq!(TimePoint::INFINITY + dur(5), TimePoint::INFINITY);
        assert_eq!(t(5) + Duration::INFINITE, TimePoint::INFINITY);
        assert_eq!(t(5) + dur(3), t(8));
        // Near-overflow saturates rather than wrapping into the sentinel.
        assert_eq!(t(u64::MAX - 2) + dur(100), TimePoint::INFINITY);
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        assert_eq!(t(5) - dur(10), TimePoint::ZERO);
        assert_eq!(t(10) - dur(3), t(7));
        assert_eq!(TimePoint::INFINITY - dur(10), TimePoint::INFINITY);
        assert_eq!(t(10) - Duration::INFINITE, TimePoint::ZERO);
    }

    #[test]
    fn since_measures_distance() {
        assert_eq!(t(10).since(t(4)), Some(dur(6)));
        assert_eq!(t(4).since(t(10)), None);
        assert_eq!(TimePoint::INFINITY.since(t(4)), Some(Duration::INFINITE));
        assert_eq!(
            TimePoint::INFINITY.since(TimePoint::INFINITY),
            Some(Duration::ZERO)
        );
    }

    #[test]
    fn duration_units_scale() {
        assert_eq!(Duration::minutes(5), dur(300));
        assert_eq!(Duration::hours(12), dur(43_200));
        assert_eq!(Duration::days(1), dur(86_400));
        assert_eq!(Duration::seconds(9), dur(9));
    }

    #[test]
    fn duration_saturating_add() {
        assert_eq!(dur(3).saturating_add(dur(4)), dur(7));
        assert_eq!(
            Duration::INFINITE.saturating_add(dur(1)),
            Duration::INFINITE
        );
        assert_eq!(dur(u64::MAX - 1).saturating_add(dur(5)), Duration::INFINITE);
    }

    #[test]
    #[should_panic]
    fn sentinel_construction_rejected() {
        let _ = TimePoint::new(u64::MAX);
    }

    #[test]
    fn display_uses_infinity_symbol() {
        assert_eq!(format!("{}", TimePoint::INFINITY), "∞");
        assert_eq!(format!("{}", t(42)), "42");
        assert_eq!(format!("{}", Duration::INFINITE), "∞");
    }

    #[test]
    fn min_max_helpers() {
        assert_eq!(TimePoint::min_of(t(3), t(9)), t(3));
        assert_eq!(
            TimePoint::max_of(t(3), TimePoint::INFINITY),
            TimePoint::INFINITY
        );
    }
}
