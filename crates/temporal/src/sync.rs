//! Synchronization points (Definition 2).
//!
//! A **sync point** w.r.t. an annotated history table `AH` is a pair of
//! occurrence time and CEDR time `(to, T)` such that for each tuple `e`,
//! either `e.Cs ≤ T ∧ e.Sync ≤ to`, or `e.Cs > T ∧ e.Sync > to`: a point
//! that cleanly separates past from future in both time domains at once.

use crate::history::AnnotatedRow;
use crate::time::TimePoint;

/// A sync point `(to, T)`: occurrence time `to`, CEDR time `T`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SyncPoint {
    pub occurrence: TimePoint,
    pub cedr: TimePoint,
}

/// Definition 2, checked literally against every tuple.
pub fn is_sync_point(rows: &[AnnotatedRow], to: TimePoint, cedr: TimePoint) -> bool {
    rows.iter().all(|r| {
        let cs = r.row.cedr.start;
        (cs <= cedr && r.sync <= to) || (cs > cedr && r.sync > to)
    })
}

/// Enumerate the non-trivial sync points induced by the table's own rows:
/// for each prefix of the CEDR-arrival order, the candidate
/// `(max Sync of prefix, max Cs of prefix)` is tested against Definition 2.
///
/// The result is deduplicated and sorted. The empty prefix — which is
/// trivially a sync point below all data — is not reported.
pub fn sync_points(rows: &[AnnotatedRow]) -> Vec<SyncPoint> {
    let mut ordered: Vec<&AnnotatedRow> = rows.iter().collect();
    ordered.sort_by_key(|r| r.row.cedr.start);
    let mut out = Vec::new();
    let mut max_sync = TimePoint::ZERO;
    for (i, r) in ordered.iter().enumerate() {
        max_sync = TimePoint::max_of(max_sync, r.sync);
        let cedr = r.row.cedr.start;
        // Only the last row of a Cs-tie can close a prefix.
        if i + 1 < ordered.len() && ordered[i + 1].row.cedr.start == cedr {
            continue;
        }
        if is_sync_point(rows, max_sync, cedr) {
            out.push(SyncPoint {
                occurrence: max_sync,
                cedr,
            });
        }
    }
    out.dedup();
    out
}

/// The orderliness criterion of Section 4: a stream has no out-of-order
/// events iff sorting by `Cs` equals sorting by the compound key
/// `⟨Sync, Cs⟩`.
pub fn is_totally_ordered(rows: &[AnnotatedRow]) -> bool {
    let mut by_cs: Vec<&AnnotatedRow> = rows.iter().collect();
    by_cs.sort_by_key(|r| r.row.cedr.start);
    by_cs.windows(2).all(|w| w[0].sync <= w[1].sync)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ChainKey;
    use crate::history::{HistoryRow, HistoryTable};
    use crate::interval::{iv, iv_inf};
    use crate::time::t;

    fn table(rows: Vec<HistoryRow>) -> Vec<AnnotatedRow> {
        HistoryTable { rows }.annotate()
    }

    #[test]
    fn figure6_sync_points() {
        let ann = HistoryTable::figure6().annotate();
        // After the insert (Sync=1, Cs=0): (1, 0) separates cleanly since the
        // retraction has Sync=5 > 1 and Cs=7 > 0.
        assert!(is_sync_point(&ann, t(1), t(0)));
        // After both rows: (5, 7).
        assert!(is_sync_point(&ann, t(5), t(7)));
        // (5, 0) is not: the retraction has Cs=7 > 0 but Sync=5 ≤ 5.
        assert!(!is_sync_point(&ann, t(5), t(0)));
        let pts = sync_points(&ann);
        assert_eq!(
            pts,
            vec![
                SyncPoint {
                    occurrence: t(1),
                    cedr: t(0)
                },
                SyncPoint {
                    occurrence: t(5),
                    cedr: t(7)
                },
            ]
        );
    }

    #[test]
    fn out_of_order_arrival_suppresses_sync_points() {
        // Two inserts delivered in inverted occurrence order: the earlier
        // arrival (Cs=0) carries the *later* occurrence time, so no prefix
        // of size 1 separates the domains.
        let ann = table(vec![
            HistoryRow::occurrence_only(ChainKey(0), iv_inf(5), iv(0, 1)),
            HistoryRow::occurrence_only(ChainKey(1), iv_inf(2), iv(1, 2)),
        ]);
        assert!(!is_sync_point(&ann, t(5), t(0)));
        let pts = sync_points(&ann);
        assert_eq!(pts.len(), 1);
        assert_eq!(
            pts[0],
            SyncPoint {
                occurrence: t(5),
                cedr: t(1)
            }
        );
        assert!(!is_totally_ordered(&ann));
    }

    #[test]
    fn ordered_stream_has_sync_point_after_every_row() {
        let ann = table(vec![
            HistoryRow::occurrence_only(ChainKey(0), iv_inf(1), iv(0, 1)),
            HistoryRow::occurrence_only(ChainKey(1), iv_inf(2), iv(1, 2)),
            HistoryRow::occurrence_only(ChainKey(2), iv_inf(3), iv(2, 3)),
        ]);
        assert!(is_totally_ordered(&ann));
        assert_eq!(sync_points(&ann).len(), 3);
    }

    #[test]
    fn strong_consistency_shape_every_entry_is_sync_point() {
        // Definition 3's condition 2: for each entry E there exists a sync
        // point (E.Sync, E.Cs). True for ordered streams.
        let ann = table(vec![
            HistoryRow::occurrence_only(ChainKey(0), iv(1, 4), iv(0, 1)),
            HistoryRow::occurrence_only(ChainKey(0), iv(1, 5), iv(1, 2)),
        ]);
        // Insert Sync=1 @Cs=0; retraction of [1,4)?? — here the second row
        // has *later* Oe so reduction keeps row 1; still, annotation marks
        // row 2 as retraction with Sync=Oe=5 ≥ 1: ordered.
        for r in &ann {
            assert!(is_sync_point(&ann, r.sync, r.row.cedr.start));
        }
    }

    #[test]
    fn cs_ties_close_together() {
        // Two rows sharing Cs=1: prefix cannot be closed between them.
        let ann = table(vec![
            HistoryRow::occurrence_only(ChainKey(0), iv_inf(1), iv(1, 2)),
            HistoryRow::occurrence_only(ChainKey(1), iv_inf(2), iv(1, 2)),
        ]);
        let pts = sync_points(&ann);
        assert_eq!(
            pts,
            vec![SyncPoint {
                occurrence: t(2),
                cedr: t(1)
            }]
        );
    }
}
