//! Logical equivalence of streams (Definition 1).
//!
//! Two streams are **logically equivalent to `to` (at `to`)** iff their
//! canonical history tables to `to` (at `to`) agree on the projection
//! `π_X` where `X` contains every attribute *except* `Cs` and `Ce` — i.e.
//! they describe the same logical state of the underlying database
//! regardless of arrival order.

use crate::event::Payload;
use crate::history::HistoryTable;
use crate::interval::Interval;
use crate::time::TimePoint;

/// Attribute-selection options for the `π_X` projection.
///
/// The paper's `X` includes everything but the CEDR interval; that is the
/// default. When comparing outputs of *independent runs* (where chain keys
/// and generated IDs need not align), `include_k` / `include_id` can be
/// switched off.
#[derive(Clone, Copy, Debug)]
pub struct EquivalenceOptions {
    pub include_k: bool,
    pub include_id: bool,
    pub include_valid: bool,
    pub include_payload: bool,
}

impl Default for EquivalenceOptions {
    fn default() -> Self {
        EquivalenceOptions {
            include_k: true,
            include_id: true,
            include_valid: true,
            include_payload: true,
        }
    }
}

impl EquivalenceOptions {
    /// Paper-faithful Definition 1: everything except `Cs`, `Ce`.
    pub fn definition1() -> Self {
        Self::default()
    }

    /// Content-only comparison: ignores system-assigned identities, keeping
    /// valid time, occurrence time and payload.
    pub fn content_only() -> Self {
        EquivalenceOptions {
            include_k: false,
            include_id: false,
            include_valid: true,
            include_payload: true,
        }
    }
}

/// The projected row image used for multiset comparison.
type RowImage = (
    Option<u64>,      // K
    Option<u64>,      // ID
    Option<Interval>, // valid
    Interval,         // occurrence (always compared)
    Option<Payload>,  // payload
);

fn project(table: &HistoryTable, opts: EquivalenceOptions) -> Vec<RowImage> {
    let mut rows: Vec<RowImage> = table
        .rows
        .iter()
        .map(|r| {
            (
                opts.include_k.then_some(r.k.0),
                opts.include_id.then_some(r.id.0),
                opts.include_valid.then_some(r.valid),
                r.occurrence,
                opts.include_payload.then(|| r.payload.clone()),
            )
        })
        .collect();
    rows.sort();
    rows
}

/// `π_X(CH1) = π_X(CH2)` on the canonical tables **to** `to`.
pub fn logically_equivalent_to(
    s1: &HistoryTable,
    s2: &HistoryTable,
    to: TimePoint,
    opts: EquivalenceOptions,
) -> bool {
    project(&s1.canonical_to(to), opts) == project(&s2.canonical_to(to), opts)
}

/// `π_X(CH1) = π_X(CH2)` on the canonical tables **at** `to`.
pub fn logically_equivalent_at(
    s1: &HistoryTable,
    s2: &HistoryTable,
    to: TimePoint,
    opts: EquivalenceOptions,
) -> bool {
    project(&s1.canonical_at(to), opts) == project(&s2.canonical_at(to), opts)
}

/// Equivalence "to infinity" (used by well-behavedness, Definition 6).
pub fn logically_equivalent(
    s1: &HistoryTable,
    s2: &HistoryTable,
    opts: EquivalenceOptions,
) -> bool {
    logically_equivalent_to(s1, s2, TimePoint::INFINITY, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ChainKey;
    use crate::history::HistoryRow;
    use crate::interval::{iv, iv_inf};
    use crate::time::t;

    #[test]
    fn figure3_streams_are_equivalent_to_and_at_3() {
        let l = HistoryTable::figure3_left();
        let r = HistoryTable::figure3_right();
        let opts = EquivalenceOptions::definition1();
        assert!(logically_equivalent_to(&l, &r, t(3), opts));
        assert!(logically_equivalent_at(&l, &r, t(3), opts));
    }

    #[test]
    fn figure3_streams_differ_beyond_3() {
        let l = HistoryTable::figure3_left();
        let r = HistoryTable::figure3_right();
        let opts = EquivalenceOptions::definition1();
        // Left settles at Oe=3, right at Oe=5: they diverge from to=4 on.
        assert!(!logically_equivalent_to(&l, &r, t(4), opts));
        assert!(!logically_equivalent(&l, &r, opts));
    }

    #[test]
    fn equivalence_ignores_cedr_time() {
        let mut a = HistoryTable::new();
        a.push(HistoryRow::occurrence_only(ChainKey(0), iv(1, 5), iv(0, 9)));
        let mut b = HistoryTable::new();
        b.push(HistoryRow::occurrence_only(
            ChainKey(0),
            iv(1, 5),
            iv(700, 900),
        ));
        assert!(logically_equivalent(
            &a,
            &b,
            EquivalenceOptions::definition1()
        ));
    }

    #[test]
    fn equivalence_is_order_insensitive() {
        let mut a = HistoryTable::new();
        a.push(HistoryRow::occurrence_only(ChainKey(0), iv(1, 5), iv(0, 1)));
        a.push(HistoryRow::occurrence_only(ChainKey(1), iv(2, 9), iv(1, 2)));
        let mut b = HistoryTable::new();
        b.push(HistoryRow::occurrence_only(ChainKey(1), iv(2, 9), iv(5, 6)));
        b.push(HistoryRow::occurrence_only(ChainKey(0), iv(1, 5), iv(6, 7)));
        assert!(logically_equivalent(
            &a,
            &b,
            EquivalenceOptions::definition1()
        ));
    }

    #[test]
    fn content_only_ignores_chain_keys() {
        let mut a = HistoryTable::new();
        a.push(HistoryRow::occurrence_only(ChainKey(0), iv(1, 5), iv(0, 1)));
        let mut b = HistoryTable::new();
        b.push(HistoryRow::occurrence_only(
            ChainKey(42),
            iv(1, 5),
            iv(0, 1),
        ));
        assert!(!logically_equivalent(
            &a,
            &b,
            EquivalenceOptions::definition1()
        ));
        assert!(logically_equivalent(
            &a,
            &b,
            EquivalenceOptions::content_only()
        ));
    }

    #[test]
    fn retraction_chains_compare_by_net_effect() {
        // One stream inserts [1,10) then retracts to [1,4); another inserts
        // [1,∞) then retracts to [1,6) then to [1,4). Same net effect.
        let mut a = HistoryTable::new();
        a.push(HistoryRow::occurrence_only(
            ChainKey(7),
            iv(1, 10),
            iv(0, 1),
        ));
        a.push(HistoryRow::occurrence_only(
            ChainKey(7),
            iv(1, 4),
            iv_inf(1),
        ));
        let mut b = HistoryTable::new();
        b.push(HistoryRow::occurrence_only(
            ChainKey(7),
            iv_inf(1),
            iv(0, 1),
        ));
        b.push(HistoryRow::occurrence_only(ChainKey(7), iv(1, 6), iv(1, 2)));
        b.push(HistoryRow::occurrence_only(
            ChainKey(7),
            iv(1, 4),
            iv_inf(2),
        ));
        assert!(logically_equivalent(
            &a,
            &b,
            EquivalenceOptions::definition1()
        ));
    }
}
