//! Unitemporal ideal history tables (Section 6, Figure 10).
//!
//! For the run-time operator semantics the paper assumes no modifications
//! and merges occurrence and valid time into a single valid-time axis whose
//! lifetimes may only be *shortened* by retractions. The resulting ideal
//! history tables have one temporal dimension and rows `(ID, Vs, Ve,
//! Payload)`.
//!
//! This module also implements Definition 10 — `meets`, `coalesce` and the
//! `*` (star) operator — which underpin **view update compliance**
//! (Definition 11): an operator must be insensitive to how changes in state
//! are packaged into events.

use crate::event::{EventId, Payload};
use crate::interval::Interval;
use crate::time::TimePoint;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One row of a unitemporal ideal history table: `(ID, Vs, Ve, Payload)`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UniTemporalRow {
    pub id: EventId,
    pub interval: Interval,
    pub payload: Payload,
}

impl UniTemporalRow {
    pub fn new(id: EventId, interval: Interval, payload: Payload) -> Self {
        UniTemporalRow {
            id,
            interval,
            payload,
        }
    }
}

impl fmt::Debug for UniTemporalRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.id, self.interval, self.payload)
    }
}

/// A unitemporal ideal history table.
#[derive(Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UniTemporalTable {
    pub rows: Vec<UniTemporalRow>,
}

impl UniTemporalTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, row: UniTemporalRow) {
        self.rows.push(row);
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Drop empty-interval rows (events fully removed by retraction).
    pub fn without_empty(&self) -> UniTemporalTable {
        UniTemporalTable {
            rows: self
                .rows
                .iter()
                .filter(|r| !r.interval.is_empty())
                .cloned()
                .collect(),
        }
    }

    /// Definition 10's `*` operator: repeatedly coalesce events with equal
    /// payloads whose valid intervals *meet*, until no further coalescing is
    /// possible. IDs are not part of the coalesced image (coalescing is a
    /// statement about the *state* the table describes), so the result
    /// carries synthetic IDs in deterministic order.
    ///
    /// On tables satisfying the paper's relation precondition (no duplicate
    /// payloads with overlapping valid intervals — checkable via
    /// [`UniTemporalTable::check_relation`]) this is exactly repeated
    /// coalescence. We compute it as the per-payload *coverage union*
    /// (merging overlapping as well as meeting intervals), which coincides
    /// on valid relations and degrades gracefully on bag-like inputs.
    pub fn star(&self) -> UniTemporalTable {
        let mut by_payload: BTreeMap<Payload, Vec<Interval>> = BTreeMap::new();
        for r in &self.rows {
            if r.interval.is_empty() {
                continue;
            }
            by_payload
                .entry(r.payload.clone())
                .or_default()
                .push(r.interval);
        }
        let mut rows = Vec::new();
        let mut next_id = 0u64;
        for (payload, mut ivs) in by_payload {
            ivs.sort();
            let mut merged: Vec<Interval> = Vec::with_capacity(ivs.len());
            for iv in ivs {
                match merged.last_mut() {
                    Some(last) if iv.start <= last.end => {
                        last.end = TimePoint::max_of(last.end, iv.end);
                    }
                    _ => merged.push(iv),
                }
            }
            for iv in merged {
                rows.push(UniTemporalRow::new(EventId(next_id), iv, payload.clone()));
                next_id += 1;
            }
        }
        UniTemporalTable { rows }
    }

    /// Do two tables describe identical state after maximal coalescing?
    /// This is the equality used by view update compliance (Definition 11).
    pub fn star_equal(&self, other: &UniTemporalTable) -> bool {
        let image = |t: &UniTemporalTable| {
            let mut v: Vec<(Payload, Interval)> = t
                .star()
                .rows
                .into_iter()
                .map(|r| (r.payload, r.interval))
                .collect();
            v.sort();
            v
        };
        image(self) == image(other)
    }

    /// Multiset equality on `(interval, payload)` without coalescing.
    pub fn content_equal(&self, other: &UniTemporalTable) -> bool {
        let image = |t: &UniTemporalTable| {
            let mut v: Vec<(Interval, Payload)> = t
                .without_empty()
                .rows
                .into_iter()
                .map(|r| (r.interval, r.payload))
                .collect();
            v.sort();
            v
        };
        image(self) == image(other)
    }

    /// Verify the relation precondition: no equal payloads with overlapping
    /// valid intervals. Returns the first violating pair if any.
    pub fn check_relation(&self) -> Result<(), (UniTemporalRow, UniTemporalRow)> {
        let mut by_payload: BTreeMap<Payload, Vec<&UniTemporalRow>> = BTreeMap::new();
        for r in &self.rows {
            by_payload.entry(r.payload.clone()).or_default().push(r);
        }
        for rows in by_payload.values() {
            let mut sorted: Vec<&&UniTemporalRow> = rows.iter().collect();
            sorted.sort_by_key(|r| r.interval);
            for w in sorted.windows(2) {
                if w[0].interval.overlaps(&w[1].interval) {
                    return Err(((*w[0]).clone(), (*w[1]).clone()));
                }
            }
        }
        Ok(())
    }

    /// The relation's snapshot at time `t`: payloads valid at `t`.
    pub fn snapshot_at(&self, t: TimePoint) -> Vec<&UniTemporalRow> {
        self.rows
            .iter()
            .filter(|r| r.interval.contains(t))
            .collect()
    }

    /// Figure 10 of the paper.
    pub fn figure10() -> UniTemporalTable {
        use crate::interval::iv;
        use crate::value::Value;
        UniTemporalTable {
            rows: vec![
                UniTemporalRow::new(
                    EventId(0),
                    iv(1, 5),
                    Payload::from_values(vec![Value::str("P1")]),
                ),
                UniTemporalRow::new(
                    EventId(1),
                    iv(4, 9),
                    Payload::from_values(vec![Value::str("P2")]),
                ),
            ],
        }
    }
}

impl fmt::Debug for UniTemporalTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ID   Vs   Ve   Payload")?;
        for r in &self.rows {
            writeln!(
                f,
                "{}   {}   {}   {}",
                r.id, r.interval.start, r.interval.end, r.payload
            )?;
        }
        Ok(())
    }
}

impl FromIterator<UniTemporalRow> for UniTemporalTable {
    fn from_iter<I: IntoIterator<Item = UniTemporalRow>>(iter: I) -> Self {
        UniTemporalTable {
            rows: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::iv;
    use crate::time::t;
    use crate::value::Value;

    fn p(s: &str) -> Payload {
        Payload::from_values(vec![Value::str(s)])
    }

    fn row(id: u64, a: u64, b: u64, pay: &str) -> UniTemporalRow {
        UniTemporalRow::new(EventId(id), iv(a, b), p(pay))
    }

    #[test]
    fn figure10_matches_paper() {
        let tbl = UniTemporalTable::figure10();
        assert_eq!(tbl.len(), 2);
        assert_eq!(tbl.rows[0].interval, iv(1, 5));
        assert_eq!(tbl.rows[1].interval, iv(4, 9));
    }

    #[test]
    fn star_coalesces_meeting_intervals_with_equal_payloads() {
        let tbl: UniTemporalTable = vec![row(0, 1, 5, "P"), row(1, 5, 9, "P")]
            .into_iter()
            .collect();
        let s = tbl.star();
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0].interval, iv(1, 9));
    }

    #[test]
    fn star_does_not_merge_gaps_or_different_payloads() {
        let tbl: UniTemporalTable = vec![
            row(0, 1, 5, "P"),
            row(1, 6, 9, "P"), // gap at [5,6)
            row(2, 5, 6, "Q"), // different payload
        ]
        .into_iter()
        .collect();
        let s = tbl.star();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn star_chains_transitively() {
        let tbl: UniTemporalTable = vec![row(0, 1, 3, "P"), row(1, 3, 5, "P"), row(2, 5, 8, "P")]
            .into_iter()
            .collect();
        let s = tbl.star();
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0].interval, iv(1, 8));
    }

    #[test]
    fn star_equality_is_packaging_insensitive() {
        // "a payload whose lifetime is chopped into several insert events"
        // equals "one event with a larger, equivalent lifetime" (Def 11).
        let chopped: UniTemporalTable = vec![row(0, 1, 4, "P"), row(1, 4, 7, "P")]
            .into_iter()
            .collect();
        let whole: UniTemporalTable = vec![row(9, 1, 7, "P")].into_iter().collect();
        assert!(chopped.star_equal(&whole));
        assert!(!chopped.content_equal(&whole));
    }

    #[test]
    fn relation_check_rejects_overlapping_duplicates() {
        let bad: UniTemporalTable = vec![row(0, 1, 5, "P"), row(1, 3, 7, "P")]
            .into_iter()
            .collect();
        assert!(bad.check_relation().is_err());
        let good: UniTemporalTable = vec![row(0, 1, 5, "P"), row(1, 3, 7, "Q")]
            .into_iter()
            .collect();
        assert!(good.check_relation().is_ok());
    }

    #[test]
    fn snapshot_reports_valid_rows() {
        let tbl = UniTemporalTable::figure10();
        assert_eq!(tbl.snapshot_at(t(4)).len(), 2);
        assert_eq!(tbl.snapshot_at(t(1)).len(), 1);
        assert_eq!(tbl.snapshot_at(t(8)).len(), 1);
        assert!(tbl.snapshot_at(t(9)).is_empty());
    }

    #[test]
    fn empty_rows_are_invisible() {
        let tbl: UniTemporalTable = vec![row(0, 5, 5, "P"), row(1, 1, 2, "Q")]
            .into_iter()
            .collect();
        assert_eq!(tbl.without_empty().len(), 1);
        assert_eq!(tbl.star().len(), 1);
    }
}
