//! Observability overhead: the telemetry layer must be (nearly) free.
//!
//! Workload: the fused fan-out steady state — 8 standing stateless
//! chains (fusion and compiled kernels on) consuming one canonical
//! ordered tape in fixed chunks. Two engines run it back to back:
//!
//! * **off** — tracing disabled (`trace_capacity = 0`, the shipped
//!   default), no snapshots taken. Trace closures are never run; the
//!   only telemetry cost is the clock reads around rounds.
//! * **instrumented** — a 4096-slot trace ring on plus a full
//!   [`Engine::metrics`] snapshot every fourth chunk, the cadence of a
//!   scraping exporter.
//!
//! The gated `instrumented_vs_off` column is `t_off / t_instrumented`:
//! ~1.0 when telemetry is free, below 1.0 by exactly the overhead
//! fraction. The harness enforces the contract's floor of 0.95 (≤ 5 %
//! overhead) directly, asserts both tapes bit-identical (telemetry must
//! observe, not perturb), and CI's `bench-regression` job additionally
//! gates the column against the committed `BENCH_obs.json`.

use cedr_bench::summary::{summary_reps, BenchSummary};
use cedr_core::prelude::*;
use cedr_streams::MessageBatch;
use cedr_temporal::time::dur;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Instant;

const N_EVENTS: u64 = 4_000;
const N_QUERIES: usize = 8;
const CHUNK: usize = 256;
/// Take a full metrics snapshot every this many chunks (instrumented
/// side only) — roughly the cadence of an external scraper.
const SNAPSHOT_EVERY: usize = 4;
/// Contract floor for `instrumented_vs_off` (≤ 5 % overhead).
const FLOOR: f64 = 0.95;

/// The fused fan-out engine: 8 stateless chains, fusion + compiled
/// kernels on, tracing per `trace_capacity`.
fn engine(trace_capacity: usize) -> Engine {
    let mut e = Engine::with_config(
        EngineConfig::serial()
            .with_fuse(true)
            .with_compile_kernels(true)
            .with_trace_capacity(trace_capacity),
    );
    e.register_event_type(
        "TICK",
        vec![("sym", FieldType::Int), ("px", FieldType::Int)],
    );
    for i in 0..N_QUERIES {
        let b = PlanBuilder::source("TICK");
        let b = if i % 2 == 0 { b.window(dur(40)) } else { b };
        let plan = b
            .select(Pred::cmp(
                Scalar::Field(0),
                CmpOp::Ge,
                Scalar::lit((i % 4) as i64),
            ))
            .project(
                vec![Scalar::Field(0), Scalar::Field(1)],
                vec!["sym".into(), "px".into()],
            )
            .into_plan();
        e.register_plan(&format!("q{i}"), plan, ConsistencySpec::middle())
            .unwrap();
    }
    e
}

/// One canonical ordered tape with periodic CTIs and retractions, shared
/// by both engines.
fn workload() -> MessageBatch {
    let mut b = StreamBuilder::new();
    for i in 0..N_EVENTS {
        let e = b.insert(
            Interval::new(t(i), t(i + 12)),
            Payload::from_values(vec![Value::Int((i % 16) as i64), Value::Int(i as i64)]),
        );
        if i % 8 == 0 {
            b.retract(e.clone(), e.vs() + dur(6));
        }
    }
    MessageBatch::from(b.build_ordered(Some(dur(50)), true))
}

/// Run the tape chunked. `instrumented` turns the trace ring on and
/// scrapes a full snapshot every [`SNAPSHOT_EVERY`] chunks.
fn run(msgs: &MessageBatch, instrumented: bool) -> Engine {
    let mut e = engine(if instrumented { 4_096 } else { 0 });
    let mut scraped = 0u64;
    for (i, chunk) in msgs.chunks_of(CHUNK).into_iter().enumerate() {
        e.enqueue_batch("TICK", &chunk).unwrap();
        e.run_to_quiescence();
        if instrumented && i % SNAPSHOT_EVERY == 0 {
            scraped += e.metrics().counters.rounds_completed;
        }
    }
    e.seal();
    if instrumented {
        assert!(scraped > 0, "snapshots were taken");
        assert!(e.tracing() && !e.trace_events().is_empty());
    }
    e
}

fn bench_obs(c: &mut Criterion) {
    let msgs = workload();
    let mut g = c.benchmark_group("obs_fanout");
    g.sample_size(10);
    g.throughput(Throughput::Elements(N_EVENTS));
    g.bench_function("off", |b| b.iter(|| run(&msgs, false)));
    g.bench_function("instrumented", |b| b.iter(|| run(&msgs, true)));
    g.finish();
    write_summary(&msgs);
}

/// Interleaved best-of reps (drift biases both columns equally), then
/// the observe-don't-perturb check before any number is reported.
fn write_summary(msgs: &MessageBatch) {
    let off = run(msgs, false);
    let instrumented = run(msgs, true);
    for q in 0..N_QUERIES {
        let q = QueryId(q);
        assert_eq!(
            off.collector(q).stamped(),
            instrumented.collector(q).stamped(),
            "telemetry perturbed the tape on {q:?}"
        );
    }
    let snap = instrumented.metrics();
    assert_eq!(snap.counters.queries.len(), N_QUERIES);
    assert!(snap.trace.recorded > 0);

    let reps = summary_reps(7);
    let mut best = [f64::INFINITY; 2];
    for _ in 0..reps {
        for (slot, instrumented) in [false, true].into_iter().enumerate() {
            let start = Instant::now();
            let e = run(msgs, instrumented);
            let elapsed = start.elapsed().as_secs_f64();
            assert!(e.query_count() == N_QUERIES);
            best[slot] = best[slot].min(elapsed);
        }
    }
    let [off_s, instrumented_s] = best;
    let ratio = off_s / instrumented_s;
    assert!(
        ratio >= FLOOR,
        "telemetry overhead {:.1}% exceeds the 5% contract \
         (off {off_s:.4}s, instrumented {instrumented_s:.4}s)",
        (1.0 - ratio) * 100.0
    );

    let mut s = BenchSummary::new("obs", 0);
    s.ratio("instrumented_vs_off", ratio);
    s.info("events", N_EVENTS as f64)
        .info("queries", N_QUERIES as f64)
        .info("chunk", CHUNK as f64)
        .info("snapshot_every", SNAPSHOT_EVERY as f64)
        .info("off_seconds", off_s)
        .info("instrumented_seconds", instrumented_s)
        .info("floor", FLOOR);
    s.write(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json"));
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
