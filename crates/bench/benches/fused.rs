//! Fused-vs-unfused stateless pipelines: the perf claim behind the
//! plan-time fusion pass (`cedr_lang::physical`) and the columnar
//! `FusedStatelessOp` (`cedr_runtime::fused`).
//!
//! Workload: 8 standing queries over one input stream, each a stateless
//! chain of depth ≥ 3 (select → project → slice, half of them with a
//! window in front). Unfused, every operator is its own shell — one
//! queue hop, one stamp and one consistency-monitor admission per
//! message per stage. Fused, each chain is one shell evaluating the
//! composed stage IR in a single pass per run over the columnar batch
//! view. Both engines consume the **same canonical schedule** — the
//! identical ordered tape, in identical chunks — back to back, and the
//! harness asserts their stamped collector tapes are bit-identical
//! before it reports a single number.
//!
//! A second, **payload-heavy** workload measures the compiled-kernel
//! claim (`cedr_algebra::kernel`): wide 8-field events (ints, floats,
//! strings) screened by an 8-literal venue IN-list, a quantity band, an
//! arithmetic projection and a projected symbol gate. Interpreted
//! evaluation walks the predicate tree per row — one payload `Value`
//! clone (an `Arc` bump) per IN-list literal per row — while the
//! compiled chain builds the venue column once per run, sweeps it per
//! literal with later literals masked to undecided rows, and drops
//! non-survivors before they become per-message work at all. Compiled,
//! interpreted and unfused tapes are asserted bit-identical at every
//! consistency level (Strong, Middle, Weak) before any number is
//! reported.
//!
//! Emits `BENCH_fused.json` at the repository root; the
//! `fused_vs_unfused` and `compiled_vs_interpreted` speedup ratios are
//! gated by the CI `bench-regression` job against the committed baseline.

use cedr_bench::summary::{summary_reps, BenchSummary};
use cedr_core::prelude::*;
use cedr_streams::MessageBatch;
use cedr_temporal::time::dur;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Instant;

const N_EVENTS: u64 = 4_000;
const N_QUERIES: usize = 8;
const CHUNK: usize = 256;

const N_WIDE_EVENTS: u64 = 8_000;
const N_WIDE_QUERIES: usize = 6;
const WIDE_CHUNK: usize = 2_048;

/// The venues events actually carry (uniform via a multiplicative hash).
const VENUE_POOL: [&str; 8] = [
    "XADF", "XARC", "XBAT", "XBOS", "XCHI", "XCIS", "NYSE", "NASD",
];
/// The whitelist every wide query screens against: mostly non-matching
/// MICs (the realistic shape of a venue whitelist) with the two live
/// venues last, so the interpreter's left-to-right short-circuit must
/// walk essentially the whole list on every row.
const VENUE_SCREEN: [&str; 8] = [
    "XNGS", "XNYS", "XASE", "XPHL", "XPSX", "XBYX", "NYSE", "NASD",
];

/// `field ∈ {lits}` as the algebra spells it: a left-associated chain of
/// `Or`-ed equality comparisons.
fn in_list(j: usize, lits: &[&str]) -> Pred {
    lits.iter()
        .map(|s| Pred::cmp(Scalar::Field(j), CmpOp::Eq, Scalar::lit(*s)))
        .reduce(|acc, p| Pred::Or(Box::new(acc), Box::new(p)))
        .expect("non-empty literal list")
}

/// An engine with `N_QUERIES` stateless-chain queries over one stream,
/// with the fusion pass on or off. Chains alternate between depth 3
/// (select → project → slice-valid) and depth 4 (window → select →
/// project → slice-occurrence) so both the identity-lifetime head and
/// the lifetime-mapping head are on the measured path.
fn engine(fuse: bool) -> Engine {
    let mut e = Engine::with_config(
        EngineConfig::serial()
            .with_fuse(fuse)
            .with_compile_kernels(true),
    );
    e.register_event_type(
        "TICK",
        vec![("sym", FieldType::Int), ("px", FieldType::Int)],
    );
    for i in 0..N_QUERIES {
        let b = PlanBuilder::source("TICK");
        let b = if i % 2 == 0 { b.window(dur(40)) } else { b };
        let b = b
            .select(Pred::cmp(
                Scalar::Field(0),
                CmpOp::Ge,
                Scalar::lit((i % 4) as i64),
            ))
            .project(
                vec![Scalar::Field(0), Scalar::Field(1)],
                vec!["sym".into(), "px".into()],
            );
        let plan = if i % 2 == 0 {
            b.slice_occurrence(t(0), t(N_EVENTS + 100)).into_plan()
        } else {
            b.slice_valid(t(5 + i as u64), t(N_EVENTS + 60)).into_plan()
        };
        e.register_plan(&format!("q{i}"), plan, ConsistencySpec::middle())
            .unwrap();
    }
    e
}

/// The canonical schedule both engines consume: an ordered tape with
/// periodic CTIs and a sprinkling of retractions, so the fused boundary
/// emulation (alignment, forgetting, CTI cascade) is on the clock too.
fn workload() -> MessageBatch {
    let mut b = StreamBuilder::new();
    for i in 0..N_EVENTS {
        let e = b.insert(
            Interval::new(t(i), t(i + 12)),
            Payload::from_values(vec![Value::Int((i % 16) as i64), Value::Int(i as i64)]),
        );
        if i % 8 == 0 {
            b.retract(e.clone(), e.vs() + dur(6));
        }
    }
    MessageBatch::from(b.build_ordered(Some(dur(50)), true))
}

/// Run the whole tape in fixed chunks: several delivery rounds, one
/// quiescence pass each — the batched steady state.
fn run(msgs: &MessageBatch, fuse: bool) -> Engine {
    let mut e = engine(fuse);
    for chunk in msgs.chunks_of(CHUNK) {
        e.enqueue_batch("TICK", &chunk).unwrap();
        e.run_to_quiescence();
    }
    e.seal();
    e
}

/// An engine with `N_WIDE_QUERIES` payload-heavy chains over one wide
/// stream, at an explicit ⟨fuse, compile, spec⟩ point. Each chain is
/// select → project → select → slice over 8-field events: a venue
/// whitelist screen (the 8-literal IN-list above, ~25 % pass) conjoined
/// with a quantity band, an arithmetic projection, then a selective
/// symbol gate on the projected payload (~1 % survive overall).
/// Interpreted, every row re-reads the venue attribute — one payload
/// `Value` clone per IN-list literal per row — before it can be
/// rejected; compiled, the venue column is built once per run and swept
/// per literal, each literal masked to the rows the previous ones left
/// undecided, and the head's bitmap drops ~85 % of rows before they
/// become per-message work at all.
fn wide_engine(fuse: bool, compile: bool, spec: ConsistencySpec) -> Engine {
    let mut e = Engine::with_config(
        EngineConfig::serial()
            .with_fuse(fuse)
            .with_compile_kernels(compile),
    );
    e.register_event_type(
        "TICK_W",
        vec![
            ("sym", FieldType::Int),
            ("px", FieldType::Int),
            ("ratio", FieldType::Float),
            ("venue", FieldType::Str),
            ("qty", FieldType::Int),
            ("fee", FieldType::Float),
            ("seq", FieldType::Int),
            ("tag", FieldType::Str),
        ],
    );
    for i in 0..N_WIDE_QUERIES {
        let plan = PlanBuilder::source("TICK_W")
            .select(Pred::And(
                Box::new(in_list(3, &VENUE_SCREEN)),
                Box::new(Pred::cmp(Scalar::Field(4), CmpOp::Lt, Scalar::lit(60i64))),
            ))
            .project(
                vec![
                    Scalar::Field(0),
                    Scalar::Add(Box::new(Scalar::Field(1)), Box::new(Scalar::Field(6))),
                    Scalar::Mul(Box::new(Scalar::Field(2)), Box::new(Scalar::Field(5))),
                    Scalar::Field(3),
                ],
                vec!["sym".into(), "px_seq".into(), "cost".into(), "venue".into()],
            )
            .select(Pred::cmp(
                Scalar::Field(0),
                CmpOp::Eq,
                Scalar::lit((2 * i) as i64),
            ))
            .slice_valid(t(5), t(N_WIDE_EVENTS + 60))
            .into_plan();
        e.register_plan(&format!("w{i}"), plan, spec).unwrap();
    }
    e
}

/// The wide canonical schedule: 8-field payloads mixing ints, floats and
/// strings. Venues are drawn uniformly from [`VENUE_POOL`] through a
/// multiplicative hash so the screen's pass set is decorrelated from the
/// symbol gate; retractions and CTIs keep the boundary emulation on the
/// clock.
fn wide_workload() -> MessageBatch {
    let mut b = StreamBuilder::new();
    for i in 0..N_WIDE_EVENTS {
        let venue = VENUE_POOL[(i.wrapping_mul(2_654_435_761) >> 7) as usize % 8];
        let e = b.insert(
            Interval::new(t(i), t(i + 12)),
            Payload::from_values(vec![
                Value::Int((i % 16) as i64),
                Value::Int(i as i64),
                Value::Float(i as f64 * 0.25),
                Value::str(venue),
                Value::Int((i % 100) as i64),
                Value::Float((i % 7) as f64 * 1.5),
                Value::Int((i * 31 % 997) as i64),
                Value::str("lot"),
            ]),
        );
        if i % 32 == 0 {
            b.retract(e.clone(), e.vs() + dur(6));
        }
    }
    MessageBatch::from(b.build_ordered(Some(dur(500)), true))
}

fn run_wide(msgs: &MessageBatch, fuse: bool, compile: bool, spec: ConsistencySpec) -> Engine {
    let mut e = wide_engine(fuse, compile, spec);
    for chunk in msgs.chunks_of(WIDE_CHUNK) {
        e.enqueue_batch("TICK_W", &chunk).unwrap();
        e.run_to_quiescence();
    }
    e.seal();
    e
}

fn bench_fused(c: &mut Criterion) {
    let msgs = workload();
    let mut g = c.benchmark_group("fused_8_chains");
    g.sample_size(10);
    g.throughput(Throughput::Elements(N_EVENTS));
    g.bench_function("unfused", |b| b.iter(|| run(&msgs, false)));
    g.bench_function("fused", |b| b.iter(|| run(&msgs, true)));
    g.finish();

    let wide = wide_workload();
    let mut g = c.benchmark_group("fused_wide_chains");
    g.sample_size(10);
    g.throughput(Throughput::Elements(N_WIDE_EVENTS));
    let middle = ConsistencySpec::middle();
    g.bench_function("interpreted", |b| {
        b.iter(|| run_wide(&wide, true, false, middle))
    });
    g.bench_function("compiled", |b| {
        b.iter(|| run_wide(&wide, true, true, middle))
    });
    g.finish();

    write_summary(&msgs, &wide);
}

/// Best-of timing with fused/unfused reps interleaved, so machine drift
/// biases both columns equally; then the bit-identity check that makes
/// the ratio meaningful — a fused engine that produced a different tape
/// would be fast and wrong.
fn write_summary(msgs: &MessageBatch, wide: &MessageBatch) {
    let reps = summary_reps(7);
    let mut best = [f64::INFINITY; 2];
    for fuse in [false, true] {
        run(msgs, fuse); // warm-up
    }
    for _ in 0..reps {
        for (slot, fuse) in [false, true].into_iter().enumerate() {
            let start = Instant::now();
            let e = run(msgs, fuse);
            let elapsed = start.elapsed().as_secs_f64();
            assert!(e.query_count() == N_QUERIES);
            best[slot] = best[slot].min(elapsed);
        }
    }
    let [unfused_s, fused_s] = best;

    let unfused = run(msgs, false);
    let fused = run(msgs, true);
    let mut fused_stages = 0usize;
    for q in 0..N_QUERIES {
        let q = QueryId(q);
        assert_eq!(
            unfused.collector(q).stamped(),
            fused.collector(q).stamped(),
            "fused tape diverged on {q:?}"
        );
        assert!(fused.stats(q).fused_stages >= 3, "fusion did not engage");
        assert_eq!(unfused.stats(q).fused_stages, 0);
        fused_stages += fused.stats(q).fused_stages;
    }

    // Wide workload: the bit-identity check at every consistency level
    // first — a compiled chain that produced a different tape would be
    // fast and wrong — then interleaved best-of compiled vs interpreted.
    for (spec, level) in [
        (ConsistencySpec::strong(), "strong"),
        (ConsistencySpec::middle(), "middle"),
        (ConsistencySpec::weak(dur(100_000)), "weak"),
    ] {
        let reference = run_wide(wide, false, false, spec);
        let interp = run_wide(wide, true, false, spec);
        let compiled = run_wide(wide, true, true, spec);
        for q in 0..N_WIDE_QUERIES {
            let q = QueryId(q);
            let tape = reference.collector(q).stamped();
            assert_eq!(
                tape,
                interp.collector(q).stamped(),
                "{level}: interpreted wide tape diverged on {q:?}"
            );
            assert_eq!(
                tape,
                compiled.collector(q).stamped(),
                "{level}: compiled wide tape diverged on {q:?}"
            );
            assert!(
                compiled.stats(q).compiled_kernel_runs > 0,
                "{level}: compiled kernels did not engage on {q:?}"
            );
            assert_eq!(interp.stats(q).compiled_kernel_runs, 0);
        }
    }
    let middle = ConsistencySpec::middle();
    let mut wide_best = [f64::INFINITY; 2];
    for compile in [false, true] {
        run_wide(wide, true, compile, middle); // warm-up
    }
    for _ in 0..reps {
        for (slot, compile) in [false, true].into_iter().enumerate() {
            let start = Instant::now();
            let e = run_wide(wide, true, compile, middle);
            let elapsed = start.elapsed().as_secs_f64();
            assert!(e.query_count() == N_WIDE_QUERIES);
            wide_best[slot] = wide_best[slot].min(elapsed);
        }
    }
    let [interpreted_s, compiled_s] = wide_best;

    let mut s = BenchSummary::new("fused", 0);
    s.ratio("fused_vs_unfused", unfused_s / fused_s);
    s.ratio("compiled_vs_interpreted", interpreted_s / compiled_s);
    s.info("events", N_EVENTS as f64)
        .info("queries", N_QUERIES as f64)
        .info("chunk", CHUNK as f64)
        .info("unfused_seconds", unfused_s)
        .info("fused_seconds", fused_s)
        .info("fused_stages_total", fused_stages as f64)
        .info("wide_events", N_WIDE_EVENTS as f64)
        .info("wide_queries", N_WIDE_QUERIES as f64)
        .info("interpreted_seconds", interpreted_s)
        .info("compiled_seconds", compiled_s);
    s.write(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_fused.json"
    ));
}

criterion_group!(benches, bench_fused);
criterion_main!(benches);
