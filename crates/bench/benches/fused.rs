//! Fused-vs-unfused stateless pipelines: the perf claim behind the
//! plan-time fusion pass (`cedr_lang::physical`) and the columnar
//! `FusedStatelessOp` (`cedr_runtime::fused`).
//!
//! Workload: 8 standing queries over one input stream, each a stateless
//! chain of depth ≥ 3 (select → project → slice, half of them with a
//! window in front). Unfused, every operator is its own shell — one
//! queue hop, one stamp and one consistency-monitor admission per
//! message per stage. Fused, each chain is one shell evaluating the
//! composed stage IR in a single pass per run over the columnar batch
//! view. Both engines consume the **same canonical schedule** — the
//! identical ordered tape, in identical chunks — back to back, and the
//! harness asserts their stamped collector tapes are bit-identical
//! before it reports a single number.
//!
//! Emits `BENCH_fused.json` at the repository root; the
//! `fused_vs_unfused` speedup ratio is gated by the CI
//! `bench-regression` job against the committed baseline.

use cedr_bench::summary::{summary_reps, BenchSummary};
use cedr_core::prelude::*;
use cedr_streams::MessageBatch;
use cedr_temporal::time::dur;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Instant;

const N_EVENTS: u64 = 4_000;
const N_QUERIES: usize = 8;
const CHUNK: usize = 256;

/// An engine with `N_QUERIES` stateless-chain queries over one stream,
/// with the fusion pass on or off. Chains alternate between depth 3
/// (select → project → slice-valid) and depth 4 (window → select →
/// project → slice-occurrence) so both the identity-lifetime head and
/// the lifetime-mapping head are on the measured path.
fn engine(fuse: bool) -> Engine {
    let mut e = Engine::with_config(EngineConfig::serial().with_fuse(fuse));
    e.register_event_type(
        "TICK",
        vec![("sym", FieldType::Int), ("px", FieldType::Int)],
    );
    for i in 0..N_QUERIES {
        let b = PlanBuilder::source("TICK");
        let b = if i % 2 == 0 { b.window(dur(40)) } else { b };
        let b = b
            .select(Pred::cmp(
                Scalar::Field(0),
                CmpOp::Ge,
                Scalar::lit((i % 4) as i64),
            ))
            .project(
                vec![Scalar::Field(0), Scalar::Field(1)],
                vec!["sym".into(), "px".into()],
            );
        let plan = if i % 2 == 0 {
            b.slice_occurrence(t(0), t(N_EVENTS + 100)).into_plan()
        } else {
            b.slice_valid(t(5 + i as u64), t(N_EVENTS + 60)).into_plan()
        };
        e.register_plan(&format!("q{i}"), plan, ConsistencySpec::middle())
            .unwrap();
    }
    e
}

/// The canonical schedule both engines consume: an ordered tape with
/// periodic CTIs and a sprinkling of retractions, so the fused boundary
/// emulation (alignment, forgetting, CTI cascade) is on the clock too.
fn workload() -> MessageBatch {
    let mut b = StreamBuilder::new();
    for i in 0..N_EVENTS {
        let e = b.insert(
            Interval::new(t(i), t(i + 12)),
            Payload::from_values(vec![Value::Int((i % 16) as i64), Value::Int(i as i64)]),
        );
        if i % 8 == 0 {
            b.retract(e.clone(), e.vs() + dur(6));
        }
    }
    MessageBatch::from(b.build_ordered(Some(dur(50)), true))
}

/// Run the whole tape in fixed chunks: several delivery rounds, one
/// quiescence pass each — the batched steady state.
fn run(msgs: &MessageBatch, fuse: bool) -> Engine {
    let mut e = engine(fuse);
    for chunk in msgs.chunks_of(CHUNK) {
        e.enqueue_batch("TICK", &chunk).unwrap();
        e.run_to_quiescence();
    }
    e.seal();
    e
}

fn bench_fused(c: &mut Criterion) {
    let msgs = workload();
    let mut g = c.benchmark_group("fused_8_chains");
    g.sample_size(10);
    g.throughput(Throughput::Elements(N_EVENTS));
    g.bench_function("unfused", |b| b.iter(|| run(&msgs, false)));
    g.bench_function("fused", |b| b.iter(|| run(&msgs, true)));
    g.finish();

    write_summary(&msgs);
}

/// Best-of timing with fused/unfused reps interleaved, so machine drift
/// biases both columns equally; then the bit-identity check that makes
/// the ratio meaningful — a fused engine that produced a different tape
/// would be fast and wrong.
fn write_summary(msgs: &MessageBatch) {
    let reps = summary_reps(7);
    let mut best = [f64::INFINITY; 2];
    for fuse in [false, true] {
        run(msgs, fuse); // warm-up
    }
    for _ in 0..reps {
        for (slot, fuse) in [false, true].into_iter().enumerate() {
            let start = Instant::now();
            let e = run(msgs, fuse);
            let elapsed = start.elapsed().as_secs_f64();
            assert!(e.query_count() == N_QUERIES);
            best[slot] = best[slot].min(elapsed);
        }
    }
    let [unfused_s, fused_s] = best;

    let unfused = run(msgs, false);
    let fused = run(msgs, true);
    let mut fused_stages = 0usize;
    for q in 0..N_QUERIES {
        let q = QueryId(q);
        assert_eq!(
            unfused.collector(q).stamped(),
            fused.collector(q).stamped(),
            "fused tape diverged on {q:?}"
        );
        assert!(fused.stats(q).fused_stages >= 3, "fusion did not engage");
        assert_eq!(unfused.stats(q).fused_stages, 0);
        fused_stages += fused.stats(q).fused_stages;
    }

    let mut s = BenchSummary::new("fused", 0);
    s.ratio("fused_vs_unfused", unfused_s / fused_s);
    s.info("events", N_EVENTS as f64)
        .info("queries", N_QUERIES as f64)
        .info("chunk", CHUNK as f64)
        .info("unfused_seconds", unfused_s)
        .info("fused_seconds", fused_s)
        .info("fused_stages_total", fused_stages as f64);
    s.write(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_fused.json"
    ));
}

criterion_group!(benches, bench_fused);
criterion_main!(benches);
