//! The Figure-8 matrix as a wall-clock benchmark: the CIDR07_Example plan
//! under each consistency level × orderliness regime.

use cedr_bench::{high_orderliness, low_orderliness, machine_streams, run_cell};
use cedr_runtime::ConsistencySpec;
use cedr_temporal::Duration;
use cedr_workload::machines::MachineWorkloadConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_consistency_matrix(c: &mut Criterion) {
    let cfg = MachineWorkloadConfig {
        machines: 6,
        episodes: 10,
        ..Default::default()
    };
    let (streams, _) = machine_streams(&cfg, Duration::minutes(10));
    let mut g = c.benchmark_group("fig08_consistency");
    g.sample_size(10);
    let specs = [
        ("strong", ConsistencySpec::strong()),
        ("middle", ConsistencySpec::middle()),
        ("weak_30m", ConsistencySpec::weak(Duration::minutes(30))),
    ];
    for (sname, spec) in specs {
        for (oname, mk) in [
            (
                "high_order",
                high_orderliness as fn(u64) -> cedr_streams::DisorderConfig,
            ),
            (
                "low_order",
                low_orderliness as fn(u64) -> cedr_streams::DisorderConfig,
            ),
        ] {
            g.bench_with_input(
                BenchmarkId::new(sname, oname),
                &(spec, oname),
                |b, (spec, _)| {
                    b.iter(|| run_cell(*spec, mk(3), &streams));
                },
            );
        }
    }
    g.finish();
}

fn bench_cti_frequency(c: &mut Criterion) {
    // Ablation: how CTI (sync point) frequency affects a middle run —
    // state purge effectiveness at constant data volume.
    let mut g = c.benchmark_group("cti_frequency");
    g.sample_size(10);
    for period in [1u64, 10, 100] {
        let cfg = MachineWorkloadConfig {
            machines: 6,
            episodes: 10,
            ..Default::default()
        };
        let trace = cedr_workload::machines::generate(&cfg);
        let streams = trace.to_streams(Some(Duration::minutes(period)));
        g.bench_with_input(BenchmarkId::from_parameter(period), &period, |b, _| {
            b.iter(|| {
                run_cell(
                    ConsistencySpec::middle(),
                    cedr_streams::DisorderConfig::heavy(7, 3_600, 20),
                    &streams,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_consistency_matrix, bench_cti_frequency);
criterion_main!(benches);
