//! Concurrent-ingestion benchmark: the 8-query fan-out workload driven by
//! {1, 2, 4} provider threads through `ChannelSource`s + `run_pipelined`,
//! against the single-threaded staged baseline (borrowed `SourceHandle`,
//! one flush per round, one drain per round — the same canonical schedule
//! the pump admits, so the modes are bit-identical and the comparison is
//! pure ingestion overhead).
//!
//! The harness emits `BENCH_ingest.json` at the repository root (uniform
//! [`BenchSummary`] schema) with per-provider-count timings, the
//! channel-vs-staged overhead/speedup (gated `ratios` — the concurrency
//! machinery must stay free), the pump's ingress counters, and the
//! machine's core count — provider scaling is only meaningful where
//! `cores` is comfortably above 1 (single-core CI boxes time-slice the
//! provider threads against the pump, so expect ~1.0× there; that column
//! is ungated `info`).

use cedr_bench::summary::{summary_reps, BenchSummary};
use cedr_core::prelude::*;
use cedr_streams::MessageBatch;
use cedr_temporal::time::dur;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Instant;

const N_EVENTS: u64 = 4_000;
const N_QUERIES: usize = 8;
const PROVIDERS: [usize; 3] = [1, 2, 4];
/// Messages per flushed emission (the pump's unit of admission).
const EMISSION: usize = 256;

/// An engine with `N_QUERIES` windowed-count queries over one stream.
fn engine() -> Engine {
    let mut e = Engine::with_config(EngineConfig::serial());
    e.register_event_type(
        "TICK",
        vec![("sym", FieldType::Int), ("px", FieldType::Int)],
    );
    for i in 0..N_QUERIES {
        let plan = PlanBuilder::source("TICK")
            .select(Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(0i64)))
            .window(dur(20 + i as u64))
            .group_aggregate(vec![Scalar::Field(0)], AggFunc::Count)
            .into_plan();
        e.register_plan(&format!("q{i}"), plan, ConsistencySpec::middle())
            .unwrap();
    }
    e
}

/// Per-provider emission scripts: one sync-ordered tape cut into
/// `EMISSION`-sized chunks and dealt round-robin, so provider `p`'s
/// emission `r` is chunk `r·P + p`. The pump's canonical
/// `(round, producer)` admission then reconstructs the tape **in its
/// original order for every provider count** — a partitioned feed of one
/// ordered stream — which keeps the engine-side work constant and makes
/// the provider-count axis measure pure ingestion overhead rather than
/// disorder-repair traffic.
fn scripts(providers: usize) -> Vec<Vec<MessageBatch>> {
    let mut b = StreamBuilder::with_id_base(1_000_000);
    for vs in 0..N_EVENTS {
        b.insert(
            Interval::new(t(vs), t(vs + 10)),
            Payload::from_values(vec![Value::Int((vs % 16) as i64), Value::Int(vs as i64)]),
        );
    }
    let tape: MessageBatch = b.build_ordered(Some(dur(64)), false).into_iter().collect();
    let chunks = tape.chunks(tape.len().div_ceil(EMISSION));
    let mut out = vec![Vec::new(); providers];
    for (i, chunk) in chunks.into_iter().enumerate() {
        out[i % providers].push(chunk);
    }
    out
}

/// Single-threaded staged baseline: the canonical schedule spelled out
/// with borrowed handles — per round, one flush per provider in key
/// order, then one drain.
fn run_staged(scripts: &[Vec<MessageBatch>]) -> Engine {
    let mut e = engine();
    let rounds = scripts.iter().map(Vec::len).max().unwrap_or(0);
    for r in 0..rounds {
        for script in scripts {
            if let Some(batch) = script.get(r) {
                let mut h = e.source("TICK").unwrap().manual_flush();
                h.stage_batch(batch);
                h.flush();
            }
        }
        e.run_to_quiescence();
    }
    e.seal();
    e
}

/// Concurrent ingestion: one provider thread per script feeding a
/// `ChannelSource` while the engine pumps.
fn run_channel(scripts: &[Vec<MessageBatch>]) -> Engine {
    let mut e = engine();
    let sources: Vec<ChannelSource> = scripts
        .iter()
        .map(|_| e.channel_source("TICK").unwrap())
        .collect();
    std::thread::scope(|scope| {
        for (src, script) in sources.into_iter().zip(scripts.iter()) {
            scope.spawn(move || {
                let mut src = src.manual_flush();
                for batch in script {
                    src.stage_batch(batch);
                    src.flush();
                }
            });
        }
        e.run_pipelined().unwrap();
    });
    e.seal();
    e
}

fn bench_ingest(c: &mut Criterion) {
    let mut g = c.benchmark_group("ingest_8_queries");
    g.sample_size(10);
    g.throughput(Throughput::Elements(N_EVENTS));
    g.bench_function("staged_baseline", |b| {
        let s = scripts(1);
        b.iter(|| run_staged(&s))
    });
    for providers in PROVIDERS {
        g.bench_function(format!("providers_{providers}"), |b| {
            let s = scripts(providers);
            b.iter(|| run_channel(&s))
        });
    }
    g.finish();

    write_summary();
}

/// Time every mode explicitly and record a machine-readable summary.
fn write_summary() {
    let reps = summary_reps(5);
    let best_of = |f: &dyn Fn() -> Engine| {
        let mut best = f64::INFINITY;
        f(); // warm-up
        for _ in 0..reps {
            let start = Instant::now();
            let e = f();
            let elapsed = start.elapsed().as_secs_f64();
            assert_eq!(e.query_count(), N_QUERIES);
            best = best.min(elapsed);
        }
        best
    };

    // Sanity first: every provider count is bit-identical to the staged
    // baseline over the same scripts (the subsystem's core guarantee).
    for providers in PROVIDERS {
        let s = scripts(providers);
        let staged = run_staged(&s);
        let channel = run_channel(&s);
        for q in 0..N_QUERIES {
            assert_eq!(
                staged.collector(QueryId(q)).stamped(),
                channel.collector(QueryId(q)).stamped(),
                "channel ingestion diverged on q{q} at {providers} providers"
            );
        }
    }

    let staged_s = {
        let s = scripts(1);
        best_of(&move || run_staged(&s))
    };
    let mut provider_secs = Vec::new();
    for providers in PROVIDERS {
        let s = scripts(providers);
        provider_secs.push((providers, best_of(&move || run_channel(&s))));
    }
    // Ingress counters from one instrumented run (stats are engine-side
    // and identical across reps).
    let probe = run_channel(&scripts(4));
    let ingress = probe.ingress_stats();

    let s1 = provider_secs[0].1;
    let s4 = provider_secs.last().expect("non-empty").1;
    let mut s = BenchSummary::new("ingest", 0);
    // The channel-vs-staged columns hover at ~1.0 by design (the
    // concurrency machinery is free, not faster): a percentage floor on
    // a near-1.0 ratio measured with quick-profile reps on a shared CI
    // runner is pure flake exposure, so they are recorded here, never
    // gated. The gated speedup columns live in the fanout/parallel/
    // stateful summaries.
    s.info("channel_1p_vs_staged", staged_s / s1)
        .info("channel_4p_vs_staged", staged_s / s4);
    s.info("events", N_EVENTS as f64)
        .info("queries", N_QUERIES as f64)
        .info("emission_messages", EMISSION as f64)
        .info("staged_baseline_seconds", staged_s)
        // Provider scaling is machine-dependent (time-sliced on 1 core):
        // recorded, never gated.
        .info("scaling_4p_vs_1p", s1 / s4)
        .info("ingress_staged_batches", ingress.staged_batches as f64)
        .info(
            "ingress_admitted_messages",
            ingress.admitted_messages as f64,
        );
    for (p, secs) in &provider_secs {
        s.info(&format!("providers_{p}_seconds"), *secs);
    }
    s.write(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_ingest.json"
    ));
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
