//! Design-choice ablations called out in DESIGN.md §6:
//! alignment-buffer overhead (Figure 7), retraction repair vs recompute in
//! the join, and SC-mode cost in SEQUENCE.

use cedr_algebra::expr::{CmpOp, Pred, Scalar};
use cedr_algebra::pattern::{Consumption, ScMode, Selection};
use cedr_runtime::join::JoinOp;
use cedr_runtime::sequence::SequenceOp;
use cedr_runtime::{ConsistencySpec, OperatorShell};
use cedr_streams::{Message, Retraction};
use cedr_temporal::time::{dur, t};
use cedr_temporal::{Event, EventId, Interval, Payload, TimePoint, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn point_events(n: u64, kinds: u64) -> Vec<Event> {
    (0..n)
        .map(|i| {
            Event::primitive(
                EventId(i),
                Interval::new(t(i), t(i + 15)),
                Payload::from_values(vec![Value::Int((i % kinds) as i64)]),
            )
        })
        .collect()
}

/// Figure-7 ablation: the cost of the alignment buffer. The same ordered
/// stream (with per-message CTIs) through a strong shell (every message
/// transits the buffer) vs a middle shell (buffer bypassed).
fn bench_alignment_overhead(c: &mut Criterion) {
    let events = point_events(4_000, 8);
    let mut msgs = Vec::with_capacity(events.len() * 2);
    for e in &events {
        msgs.push(Message::insert_event(e.clone()));
        msgs.push(Message::Cti(e.vs()));
    }
    msgs.push(Message::Cti(TimePoint::INFINITY));

    let mut g = c.benchmark_group("alignment_overhead");
    g.sample_size(10);
    for (name, spec) in [
        ("strong_buffered", ConsistencySpec::strong()),
        ("middle_bypass", ConsistencySpec::middle()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut shell = OperatorShell::new(
                    Box::new(cedr_runtime::stateless::SelectOp::new(Pred::True)),
                    spec,
                );
                let mut n = 0;
                for (i, m) in msgs.iter().enumerate() {
                    n += shell.push(0, m.clone(), i as u64).len();
                }
                n
            })
        });
    }
    g.finish();
}

/// Retraction-cascade cost in the join: fraction of inputs later retracted.
fn bench_join_retraction(c: &mut Criterion) {
    let mut g = c.benchmark_group("join_retraction");
    g.sample_size(10);
    for pct in [0u64, 10, 30] {
        let events = point_events(2_000, 8);
        g.bench_with_input(BenchmarkId::from_parameter(pct), &pct, |b, &pct| {
            b.iter(|| {
                let mut shell = OperatorShell::new(
                    Box::new(
                        JoinOp::new(Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0)))
                            .with_keys(Scalar::Field(0), Scalar::Field(0)),
                    ),
                    ConsistencySpec::middle(),
                );
                let mut n = 0;
                for (i, e) in events.iter().enumerate() {
                    let port = i % 2;
                    n += shell
                        .push(port, Message::insert_event(e.clone()), i as u64)
                        .len();
                    if pct > 0 && (i as u64).is_multiple_of(100 / pct) {
                        let r = Retraction::new(e.clone(), e.vs() + cedr_temporal::Duration(5));
                        n += shell.push(port, Message::Retract(r), i as u64).len();
                    }
                }
                n
            })
        });
    }
    g.finish();
}

/// SC-mode ablation: the Each/Reuse incremental fast path vs the
/// recompute-and-diff path that restrictive modes force.
fn bench_sc_modes(c: &mut Criterion) {
    let events = point_events(600, 4);
    let mut g = c.benchmark_group("sc_modes");
    g.sample_size(10);
    let modes: [(&str, [ScMode; 2]); 3] = [
        ("each_reuse", [ScMode::EACH_REUSE; 2]),
        (
            "first_reuse",
            [
                ScMode::new(Selection::First, Consumption::Reuse),
                ScMode::EACH_REUSE,
            ],
        ),
        (
            "each_consume",
            [
                ScMode::new(Selection::Each, Consumption::Consume),
                ScMode::EACH_REUSE,
            ],
        ),
    ];
    for (name, m) in modes {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut shell = OperatorShell::new(
                    Box::new(SequenceOp::with_modes(2, dur(20), Pred::True, m.to_vec())),
                    ConsistencySpec::middle(),
                );
                let mut n = 0;
                for (i, e) in events.iter().enumerate() {
                    n += shell
                        .push(i % 2, Message::insert_event(e.clone()), i as u64)
                        .len();
                }
                n
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_alignment_overhead,
    bench_join_retraction,
    bench_sc_modes
);
criterion_main!(benches);
