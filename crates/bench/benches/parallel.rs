//! Parallel sharded-scheduler benchmark: the 8-query fan-out workload of
//! `benches/fanout.rs` driven through [`EngineConfig::threaded`] at 1, 2
//! and 4 workers, against the PR 1 per-event serial ingestion baseline.
//!
//! Every query is an independent dataflow, so the engine's sharded
//! routing table spreads the 8 standing queries over the worker threads
//! and drains them concurrently; outputs are asserted bit-identical
//! across all thread counts before any number is reported.
//!
//! The harness emits `BENCH_parallel.json` at the repository root
//! (uniform [`BenchSummary`] schema) with per-thread-count timings, the
//! 4-vs-1-worker scaling, the speedup over the per-event baseline, and
//! the machine's core count — thread scaling is only meaningful where
//! `cores` is comfortably above 1 (single-core CI boxes run the workers
//! time-sliced, so expect ~1.0× there, not a regression; that column
//! therefore lives in ungated `info`, while the batched-vs-per-event
//! speedups are gated `ratios`).

use cedr_bench::summary::{summary_reps, BenchSummary};
use cedr_core::prelude::*;
use cedr_streams::{merge_by_sync, MessageBatch};
use cedr_temporal::time::dur;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Instant;

const N_EVENTS: u64 = 4_000;
const N_QUERIES: usize = 8;
const N_PROVIDERS: u64 = 4;
const THREADS: [usize; 3] = [1, 2, 4];

/// An engine with `N_QUERIES` windowed-count queries over one stream.
fn engine(threads: usize) -> Engine {
    let mut e = Engine::with_config(EngineConfig::threaded(threads));
    e.register_event_type(
        "TICK",
        vec![("sym", FieldType::Int), ("px", FieldType::Int)],
    );
    for i in 0..N_QUERIES {
        let plan = PlanBuilder::source("TICK")
            .select(Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(0i64)))
            .window(dur(20 + i as u64))
            .group_aggregate(vec![Scalar::Field(0)], AggFunc::Count)
            .into_plan();
        e.register_plan(&format!("q{i}"), plan, ConsistencySpec::middle())
            .unwrap();
    }
    e
}

/// Build the tape as `N_PROVIDERS` per-provider streams merged by the
/// deterministic `(sync, provider, position)` rule.
fn workload() -> MessageBatch {
    let per = N_EVENTS / N_PROVIDERS;
    let providers: Vec<MessageBatch> = (0..N_PROVIDERS)
        .map(|p| {
            let mut b = StreamBuilder::with_id_base(1_000_000 * p);
            for i in 0..per {
                let vs = i * N_PROVIDERS + p;
                b.insert(
                    Interval::new(t(vs), t(vs + 10)),
                    Payload::from_values(vec![Value::Int((vs % 16) as i64), Value::Int(vs as i64)]),
                );
            }
            b.build_ordered(Some(dur(64)), false).into_iter().collect()
        })
        .collect();
    merge_by_sync(&providers)
}

/// Staged ingestion: the tape is cut into provider-delivery rounds with
/// `MessageBatch::chunks` (order-preserving, `Arc`-shared), each round is
/// staged on the sharded ingress, and one drain runs every query's
/// dataflow over the union.
fn run_threads(threads: usize, batch: &MessageBatch) -> Engine {
    let mut e = engine(threads);
    for round in batch.chunks(N_PROVIDERS as usize) {
        e.enqueue_batch("TICK", &round).unwrap();
    }
    e.run_to_quiescence();
    e.seal();
    e
}

/// The PR 1 per-event baseline, kept on the deprecated string-keyed shim
/// so the trajectory stays comparable across PRs.
#[allow(deprecated)]
fn run_per_event(batch: &MessageBatch) -> Engine {
    let mut e = engine(1);
    for m in batch {
        e.push("TICK", m.clone()).unwrap();
    }
    e.seal();
    e
}

fn bench_parallel(c: &mut Criterion) {
    let batch = workload();
    let mut g = c.benchmark_group("parallel_8_queries");
    g.sample_size(10);
    g.throughput(Throughput::Elements(N_EVENTS));
    for threads in THREADS {
        g.bench_function(format!("workers_{threads}"), |b| {
            b.iter(|| run_threads(threads, &batch))
        });
    }
    g.finish();

    write_summary(&batch);
}

/// Time every mode explicitly and record a machine-readable summary.
fn write_summary(batch: &MessageBatch) {
    let reps = summary_reps(5);
    let best_of = |f: &dyn Fn() -> Engine| {
        let mut best = f64::INFINITY;
        f(); // warm-up
        for _ in 0..reps {
            let start = Instant::now();
            let e = f();
            let elapsed = start.elapsed().as_secs_f64();
            assert_eq!(e.query_count(), N_QUERIES);
            best = best.min(elapsed);
        }
        best
    };

    // Sanity first: every worker count must be bit-identical to serial.
    let serial = run_threads(1, batch);
    for threads in [2usize, 4] {
        let par = run_threads(threads, batch);
        for q in 0..N_QUERIES {
            assert_eq!(
                serial.collector(QueryId(q)).stamped(),
                par.collector(QueryId(q)).stamped(),
                "parallel run diverged on q{q} at {threads} workers"
            );
        }
    }

    let per_event_s = best_of(&|| run_per_event(batch));
    let mut thread_secs = Vec::new();
    for threads in THREADS {
        thread_secs.push((threads, best_of(&|| run_threads(threads, batch))));
    }
    let s1 = thread_secs[0].1;
    let s4 = thread_secs.last().expect("non-empty").1;

    let mut s = BenchSummary::new("parallel", 0);
    s.ratio("batched_1w_vs_per_event", per_event_s / s1)
        .ratio("batched_4w_vs_per_event", per_event_s / s4);
    s.info("events", N_EVENTS as f64)
        .info("queries", N_QUERIES as f64)
        .info("per_event_seconds", per_event_s)
        // Worker scaling is machine-dependent (time-sliced on 1 core):
        // recorded, never gated.
        .info("scaling_4w_vs_1w", s1 / s4);
    for (t, secs) in &thread_secs {
        s.info(&format!("workers_{t}_seconds"), *secs);
    }
    s.write(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_parallel.json"
    ));
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
