//! Operator micro-benchmarks: throughput of each physical operator on
//! fixed synthetic workloads (events/sec shapes, not absolute testbed
//! numbers — see EXPERIMENTS.md).

use cedr_algebra::expr::{CmpOp, Pred, Scalar};
use cedr_algebra::relational::AggFunc;
use cedr_runtime::aggregate::GroupAggregateOp;
use cedr_runtime::join::JoinOp;
use cedr_runtime::negation::NegationOp;
use cedr_runtime::sequence::SequenceOp;
use cedr_runtime::stateless::{AlterLifetimeOp, SelectOp};
use cedr_runtime::{ConsistencySpec, OperatorModule, OperatorShell};
use cedr_streams::Message;
use cedr_temporal::time::{dur, t};
use cedr_temporal::{Event, EventId, Interval, Payload, TimePoint, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn events(n: u64, kinds: u64) -> Vec<Message> {
    (0..n)
        .map(|i| {
            Message::insert_event(Event::primitive(
                EventId(i),
                Interval::new(t(i), t(i + 20)),
                Payload::from_values(vec![Value::Int((i % kinds) as i64), Value::Int(i as i64)]),
            ))
        })
        .collect()
}

fn drive(module: impl Fn() -> Box<dyn OperatorModule>, msgs: &[Message], two_ports: bool) -> usize {
    let mut shell = OperatorShell::new(module(), ConsistencySpec::middle());
    let mut out = 0;
    for (i, m) in msgs.iter().enumerate() {
        let port = if two_ports { i % 2 } else { 0 };
        out += shell.push(port, m.clone(), i as u64).len();
    }
    out += shell
        .push(0, Message::Cti(TimePoint::INFINITY), msgs.len() as u64)
        .len();
    if two_ports {
        out += shell
            .push(1, Message::Cti(TimePoint::INFINITY), msgs.len() as u64 + 1)
            .len();
    }
    out
}

fn bench_operators(c: &mut Criterion) {
    let n = 4_000u64;
    let msgs = events(n, 16);
    let mut g = c.benchmark_group("operators");
    g.throughput(Throughput::Elements(n));
    g.sample_size(10);

    g.bench_function("select", |b| {
        b.iter(|| {
            drive(
                || {
                    Box::new(SelectOp::new(Pred::cmp(
                        Scalar::Field(1),
                        CmpOp::Ge,
                        Scalar::lit(0i64),
                    )))
                },
                &msgs,
                false,
            )
        })
    });

    g.bench_function("window", |b| {
        b.iter(|| drive(|| Box::new(AlterLifetimeOp::window(dur(10))), &msgs, false))
    });

    g.bench_function("group_count", |b| {
        b.iter(|| {
            drive(
                || {
                    Box::new(GroupAggregateOp::new(
                        vec![Scalar::Field(0)],
                        AggFunc::Count,
                    ))
                },
                &msgs,
                false,
            )
        })
    });

    g.bench_function("equi_join", |b| {
        b.iter(|| {
            drive(
                || {
                    Box::new(
                        JoinOp::new(Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0)))
                            .with_keys(Scalar::Field(0), Scalar::Field(0)),
                    )
                },
                &msgs,
                true,
            )
        })
    });

    g.bench_function("sequence_w20", |b| {
        b.iter(|| {
            drive(
                || Box::new(SequenceOp::new(2, dur(20), Pred::True)),
                &msgs,
                true,
            )
        })
    });

    g.bench_function("unless_w20", |b| {
        b.iter(|| {
            drive(
                || Box::new(NegationOp::unless(dur(20), Pred::True)),
                &msgs,
                true,
            )
        })
    });
    g.finish();
}

fn bench_sequence_scope(c: &mut Criterion) {
    // Ablation: pattern state and match volume vs scope w.
    let msgs = events(2_000, 16);
    let mut g = c.benchmark_group("sequence_scope");
    g.sample_size(10);
    for w in [5u64, 20, 80, 320] {
        g.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, &w| {
            b.iter(|| {
                drive(
                    || Box::new(SequenceOp::new(2, dur(w), Pred::True)),
                    &msgs,
                    true,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_operators, bench_sequence_scope);
criterion_main!(benches);
