//! Stateful batch-native operator benchmark: per-message vs batch-native
//! delivery for the two hottest stateful families — **group-aggregate**
//! (one refresh per touched group per run vs one per state-changing
//! message) and **join** (memoised probe: one candidate lookup per
//! distinct key per run) — at 1 and 4 workers over the *same* canonical
//! schedule (the same sync-ordered tape, cut into 1-message vs
//! 256-message ingestion rounds).
//!
//! The workload is retraction-heavy and hammers few groups, so one
//! 256-message run touches the same group dozens of times — exactly what
//! the one-refresh-per-run collapse amortises. Net output is asserted
//! `star_equal` across modes (and bit-identical across worker counts)
//! before any number is reported.
//!
//! The harness emits `BENCH_stateful.json` at the repository root
//! (uniform [`BenchSummary`] schema): the batch-vs-per-message speedups
//! are gated `ratios` — the ISSUE-5 acceptance floor is ≥ 1.3× on
//! `agg_batch_vs_per_message_1w` — while wall-clock timings and refresh
//! counters live in ungated `info`.

use cedr_bench::summary::{summary_reps, BenchSummary};
use cedr_core::prelude::*;
use cedr_streams::MessageBatch;
use cedr_temporal::time::dur;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Instant;

const N_EVENTS: u64 = 3_000;
const GROUPS: u64 = 8;
const KEYS: u64 = 64;
const RUN: usize = 256;
const SEED: u64 = 0x5EED5;
const WORKERS: [usize; 2] = [1, 4];

/// Group-aggregate engine: windowed per-group Sum over one stream.
fn agg_engine(threads: usize) -> Engine {
    let mut e = Engine::with_config(EngineConfig::threaded(threads));
    e.register_event_type(
        "TICK",
        vec![("sym", FieldType::Int), ("val", FieldType::Int)],
    );
    let plan = PlanBuilder::source("TICK")
        .window(dur(64))
        .group_aggregate(vec![Scalar::Field(0)], AggFunc::Sum(Scalar::Field(1)))
        .into_plan();
    e.register_plan("agg", plan, ConsistencySpec::middle())
        .unwrap();
    e
}

/// Join engine: hash equi-join of two streams on their first field.
fn join_engine(threads: usize) -> Engine {
    let mut e = Engine::with_config(EngineConfig::threaded(threads));
    for ty in ["L_T", "R_T"] {
        e.register_event_type(ty, vec![("k", FieldType::Int), ("val", FieldType::Int)]);
    }
    let plan = PlanBuilder::source("L_T")
        .join(
            PlanBuilder::source("R_T"),
            Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0)),
        )
        .into_plan();
    e.register_plan("join", plan, ConsistencySpec::middle())
        .unwrap();
    e
}

/// A sync-ordered, retraction-heavy tape over `keys` distinct key values:
/// four arrivals per tick with overlapping 16-tick lifetimes, every third
/// event retracted (half of those fully) — one 256-message run touches
/// the same group `RUN / keys / 1.5 ≈` dozens of times.
fn tape(id_base: u64, keys: u64) -> MessageBatch {
    let mut b = StreamBuilder::with_id_base(id_base);
    for i in 0..N_EVENTS {
        let vs = i / 4;
        let e = b.insert(
            Interval::new(t(vs), t(vs + 16)),
            Payload::from_values(vec![
                Value::Int(((i ^ SEED) % keys) as i64),
                Value::Int(i as i64),
            ]),
        );
        if i % 3 == 0 {
            let keep = if i % 6 == 0 { 0 } else { 8 };
            b.retract(e.clone(), e.vs() + dur(keep));
        }
    }
    b.build_ordered(Some(dur(128)), true).into_iter().collect()
}

/// Group-aggregate run at one (workers, run-length) point: every
/// `chunk`-message round is staged and drained, so `chunk` *is* the
/// delivery-run length the module sees (a drain concatenates everything
/// staged since the last one).
fn run_agg(threads: usize, chunk: usize, batch: &MessageBatch) -> Engine {
    let mut e = agg_engine(threads);
    for round in batch.chunks_of(chunk) {
        e.enqueue_batch("TICK", &round).unwrap();
        e.run_to_quiescence();
    }
    e.seal();
    e
}

/// Join run: left and right rounds interleaved, one drain per round, so
/// each port sees `chunk`-message delivery runs.
fn run_join(threads: usize, chunk: usize, l: &MessageBatch, r: &MessageBatch) -> Engine {
    let mut e = join_engine(threads);
    let (lc, rc) = (l.chunks_of(chunk), r.chunks_of(chunk));
    for i in 0..lc.len().max(rc.len()) {
        if let Some(c) = lc.get(i) {
            e.enqueue_batch("L_T", c).unwrap();
        }
        if let Some(c) = rc.get(i) {
            e.enqueue_batch("R_T", c).unwrap();
        }
        e.run_to_quiescence();
    }
    e.seal();
    e
}

fn bench_stateful(c: &mut Criterion) {
    let agg_tape = tape(1_000_000, GROUPS);
    let (l_tape, r_tape) = (tape(2_000_000, KEYS), tape(3_000_000, KEYS));
    let mut g = c.benchmark_group("stateful_batch_native");
    g.sample_size(10);
    g.throughput(Throughput::Elements(N_EVENTS));
    for (mode, chunk) in [("per_message", 1usize), ("batch", RUN)] {
        g.bench_function(format!("agg_{mode}"), |b| {
            b.iter(|| run_agg(1, chunk, &agg_tape))
        });
        g.bench_function(format!("join_{mode}"), |b| {
            b.iter(|| run_join(1, chunk, &l_tape, &r_tape))
        });
    }
    g.finish();

    write_summary(&agg_tape, &l_tape, &r_tape);
}

/// Time every mode explicitly and record a machine-readable summary.
fn write_summary(agg_tape: &MessageBatch, l_tape: &MessageBatch, r_tape: &MessageBatch) {
    let reps = summary_reps(5);
    let best_of = |f: &dyn Fn() -> Engine| {
        let mut best = f64::INFINITY;
        f(); // warm-up
        for _ in 0..reps {
            let start = Instant::now();
            let e = f();
            let elapsed = start.elapsed().as_secs_f64();
            assert_eq!(e.query_count(), 1);
            best = best.min(elapsed);
        }
        best
    };

    // Sanity first: per-message and batch-native modes agree on every
    // net table (the collapse is a physical optimisation), and each mode
    // is bit-identical across worker counts.
    let q = QueryId(0);
    for chunk in [1usize, RUN] {
        let (a1, j1) = (
            run_agg(1, chunk, agg_tape),
            run_join(1, chunk, l_tape, r_tape),
        );
        let (a4, j4) = (
            run_agg(4, chunk, agg_tape),
            run_join(4, chunk, l_tape, r_tape),
        );
        assert_eq!(
            a1.collector(q).stamped(),
            a4.collector(q).stamped(),
            "aggregate diverged across workers at chunk {chunk}"
        );
        assert_eq!(
            j1.collector(q).stamped(),
            j4.collector(q).stamped(),
            "join diverged across workers at chunk {chunk}"
        );
    }
    let agg_pm = run_agg(1, 1, agg_tape);
    let agg_bn = run_agg(1, RUN, agg_tape);
    assert!(
        agg_pm
            .collector(q)
            .net_table()
            .star_equal(&agg_bn.collector(q).net_table()),
        "collapse changed the aggregate's net content"
    );
    let join_pm = run_join(1, 1, l_tape, r_tape);
    let join_bn = run_join(1, RUN, l_tape, r_tape);
    assert!(
        join_pm
            .collector(q)
            .net_table()
            .star_equal(&join_bn.collector(q).net_table()),
        "probe memoisation changed the join's net content"
    );
    let refreshes =
        |e: &Engine| -> usize { e.node_stats(q).iter().map(|(_, s)| s.group_refreshes).sum() };
    let (r_pm, r_bn) = (refreshes(&agg_pm), refreshes(&agg_bn));
    assert!(
        r_bn * 4 <= r_pm,
        "expected ≥4× refresh amortisation, got {r_pm} per-message vs {r_bn} batched"
    );

    let mut s = BenchSummary::new("stateful", SEED);
    let mut secs: Vec<(String, f64)> = Vec::new();
    for workers in WORKERS {
        let agg_pm_s = best_of(&|| run_agg(workers, 1, agg_tape));
        let agg_bn_s = best_of(&|| run_agg(workers, RUN, agg_tape));
        let join_pm_s = best_of(&|| run_join(workers, 1, l_tape, r_tape));
        let join_bn_s = best_of(&|| run_join(workers, RUN, l_tape, r_tape));
        s.ratio(
            &format!("agg_batch_vs_per_message_{workers}w"),
            agg_pm_s / agg_bn_s,
        );
        s.ratio(
            &format!("join_batch_vs_per_message_{workers}w"),
            join_pm_s / join_bn_s,
        );
        secs.push((format!("agg_per_message_{workers}w_seconds"), agg_pm_s));
        secs.push((format!("agg_batch_{workers}w_seconds"), agg_bn_s));
        secs.push((format!("join_per_message_{workers}w_seconds"), join_pm_s));
        secs.push((format!("join_batch_{workers}w_seconds"), join_bn_s));
    }
    s.info("events", N_EVENTS as f64)
        .info("groups", GROUPS as f64)
        .info("join_keys", KEYS as f64)
        .info("run_messages", RUN as f64)
        .info("group_refreshes_per_message", r_pm as f64)
        .info("group_refreshes_batch", r_bn as f64);
    for (k, v) in &secs {
        s.info(k, *v);
    }
    s.write(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_stateful.json"
    ));
}

criterion_group!(benches, bench_stateful);
criterion_main!(benches);
