//! Durable checkpoint/restore benchmark: what a round-boundary image
//! costs, and what it buys.
//!
//! The workload is the recovery suite's all-families engine (fused
//! stateless chain, group-aggregate, join, sequence + negation) fed a
//! retraction-bearing three-stream tape. Four measurements:
//!
//! * **straight** — the unfailed run, every round then seal;
//! * **recovered** — kill at the half-way boundary: checkpoint, fresh
//!   engine, restore, replay the second half, seal (the full recovery
//!   path end to end);
//! * **checkpoint** / **restore** — the image operations alone;
//! * **replay** — re-running the first half from scratch, i.e. what
//!   recovery would cost *without* the image.
//!
//! Outputs are asserted bit-identical (stamped tape and output CTI,
//! straight vs recovered) before any number is reported. The gated
//! ratios in `BENCH_durable.json`: `restore_vs_replay` (how much faster
//! restoring the image is than recomputing it — the reason the subsystem
//! exists) and `straight_vs_recovered` (end-to-end recovery overhead,
//! which must stay near 1).

use cedr_bench::summary::{summary_reps, BenchSummary};
use cedr_core::prelude::*;
use cedr_streams::MessageBatch;
use cedr_temporal::time::{dur, t};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

const N_EVENTS: u64 = 400; // per stream
const CHUNK: usize = 16;
const SEED: u64 = 0xD07A;
const TYPES: [&str; 3] = ["A_T", "B_T", "C_T"];

/// All five operator families, same shapes as `tests/recovery.rs`.
fn build_engine() -> (Engine, Vec<QueryId>) {
    let mut engine = Engine::with_config(EngineConfig::serial());
    for ty in TYPES {
        engine.register_event_type(ty, vec![("val", FieldType::Int)]);
    }
    let sel_win = PlanBuilder::source("A_T")
        .select(Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(1i64)))
        .window(dur(30))
        .into_plan();
    let sel_agg = PlanBuilder::source("A_T")
        .select(Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(0i64)))
        .window(dur(50))
        .group_aggregate(vec![Scalar::Field(0)], AggFunc::Count)
        .into_plan();
    let join = PlanBuilder::source("A_T")
        .join(
            PlanBuilder::source("B_T"),
            Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0)),
        )
        .into_plan();
    let seq_unless = PlanBuilder::sequence(
        vec![PlanBuilder::source("A_T"), PlanBuilder::source("B_T")],
        dur(40),
        Pred::True,
    )
    .unless(PlanBuilder::source("C_T"), dur(20), Pred::True)
    .into_plan();
    let spec = ConsistencySpec::middle();
    let qs = vec![
        engine.register_plan("sel_win", sel_win, spec).unwrap(),
        engine.register_plan("sel_agg", sel_agg, spec).unwrap(),
        engine.register_plan("join", join, spec).unwrap(),
        engine
            .register_plan("seq_unless", seq_unless, spec)
            .unwrap(),
    ];
    (engine, qs)
}

/// Pre-minted, retraction-bearing rounds per stream.
fn scripts() -> Vec<(&'static str, Vec<MessageBatch>)> {
    TYPES
        .iter()
        .enumerate()
        .map(|(p, &ty)| {
            let mut b = StreamBuilder::with_id_base(1_000_000 * (p as u64 + 1));
            for i in 0..N_EVENTS {
                let vs = (i * 7 + p as u64 * 5) % 900;
                let len = 5 + (i * 11 + p as u64) % 40;
                let e = b.insert(
                    Interval::new(t(vs), t(vs + len)),
                    Payload::from_values(vec![Value::Int(((i ^ SEED) % 5) as i64)]),
                );
                if i % 4 == p as u64 % 4 {
                    b.retract(e.clone(), e.vs() + dur(len / 2));
                }
            }
            let rounds = b
                .build_ordered(Some(dur(60)), true)
                .chunks(CHUNK)
                .map(|c| c.iter().cloned().collect::<MessageBatch>())
                .collect();
            (ty, rounds)
        })
        .collect()
}

fn total_rounds(scripts: &[(&'static str, Vec<MessageBatch>)]) -> usize {
    scripts.iter().map(|(_, b)| b.len()).max().unwrap_or(0)
}

fn feed(
    engine: &mut Engine,
    scripts: &[(&'static str, Vec<MessageBatch>)],
    rounds: std::ops::Range<usize>,
) {
    for r in rounds {
        for (ty, batches) in scripts {
            if let Some(batch) = batches.get(r) {
                engine.enqueue_batch(ty, batch).unwrap();
            }
        }
        engine.run_to_quiescence();
    }
}

fn run_straight(scripts: &[(&'static str, Vec<MessageBatch>)]) -> (Engine, Vec<QueryId>) {
    let (mut engine, qs) = build_engine();
    feed(&mut engine, scripts, 0..total_rounds(scripts));
    engine.seal();
    (engine, qs)
}

/// The full recovery path: run to the boundary, checkpoint, crash,
/// restore into a fresh engine, replay the rest, seal.
fn run_recovered(scripts: &[(&'static str, Vec<MessageBatch>)]) -> (Engine, Vec<QueryId>) {
    let total = total_rounds(scripts);
    let image = {
        let (mut engine, _) = build_engine();
        feed(&mut engine, scripts, 0..total / 2);
        engine.checkpoint_to_vec().unwrap()
    };
    let (mut engine, qs) = build_engine();
    engine.restore_from_slice(&image).unwrap();
    feed(&mut engine, scripts, total / 2..total);
    engine.seal();
    (engine, qs)
}

fn bench_durable(c: &mut Criterion) {
    let scripts = scripts();
    let total = total_rounds(&scripts);

    // Engine parked at the half-way boundary, plus its image.
    let (mut at_boundary, _) = build_engine();
    feed(&mut at_boundary, &scripts, 0..total / 2);
    let image = at_boundary.checkpoint_to_vec().unwrap();

    let mut g = c.benchmark_group("durable");
    g.sample_size(10);
    g.bench_function("checkpoint", |b| {
        b.iter(|| at_boundary.checkpoint_to_vec().unwrap())
    });
    g.bench_function("restore", |b| {
        let (mut engine, _) = build_engine();
        b.iter(|| engine.restore_from_slice(&image).unwrap())
    });
    g.bench_function("recovered_end_to_end", |b| {
        b.iter(|| run_recovered(&scripts))
    });
    g.finish();

    write_summary(&scripts, &mut at_boundary, &image);
}

fn write_summary(
    scripts: &[(&'static str, Vec<MessageBatch>)],
    at_boundary: &mut Engine,
    image: &[u8],
) {
    let total = total_rounds(scripts);
    let reps = summary_reps(5);
    let best_of = |f: &mut dyn FnMut()| {
        let mut best = f64::INFINITY;
        f(); // warm-up
        for _ in 0..reps {
            let start = Instant::now();
            f();
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };

    // Sanity first: recovery is invisible at the bit level, and the image
    // of the restored engine is byte-equal to the one it came from.
    let (straight, qs) = run_straight(scripts);
    let (recovered, qr) = run_recovered(scripts);
    for (qa, qb) in qs.iter().zip(qr.iter()) {
        assert_eq!(
            straight.collector(*qa).stamped(),
            recovered.collector(*qb).stamped(),
            "recovered tape diverged on {}",
            straight.query_name(*qa)
        );
        assert_eq!(
            straight.collector(*qa).max_cti(),
            recovered.collector(*qb).max_cti(),
            "recovered output guarantee diverged"
        );
    }
    {
        let (mut engine, _) = build_engine();
        engine.restore_from_slice(image).unwrap();
        assert_eq!(
            engine.checkpoint_to_vec().unwrap().as_slice(),
            image,
            "checkpoint → restore → checkpoint must be byte-equal"
        );
    }

    let straight_secs = best_of(&mut || {
        run_straight(scripts);
    });
    let recovered_secs = best_of(&mut || {
        run_recovered(scripts);
    });
    let checkpoint_secs = best_of(&mut || {
        at_boundary.checkpoint_to_vec().unwrap();
    });
    let restore_secs = {
        let (mut engine, _) = build_engine();
        best_of(&mut || engine.restore_from_slice(image).unwrap())
    };
    // What recovery costs without the image: recompute the first half.
    let replay_secs = best_of(&mut || {
        let (mut engine, _) = build_engine();
        feed(&mut engine, scripts, 0..total / 2);
    });

    let mut s = BenchSummary::new("durable", SEED);
    s.ratio("restore_vs_replay", replay_secs / restore_secs)
        .ratio("straight_vs_recovered", straight_secs / recovered_secs)
        .info("events_per_stream", N_EVENTS as f64)
        .info("rounds", total as f64)
        .info("image_bytes", image.len() as f64)
        .info("checkpoint_seconds", checkpoint_secs)
        .info("restore_seconds", restore_secs)
        .info("replay_half_seconds", replay_secs)
        .info("straight_seconds", straight_secs)
        .info("recovered_seconds", recovered_secs);
    s.write(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_durable.json"
    ));
}

criterion_group!(benches, bench_durable);
criterion_main!(benches);
