//! Fan-out benchmark: per-event `Engine::push` vs `Engine::push_batch`
//! with 8 standing queries subscribed to one input stream.
//!
//! This is the workload the Arc-shared, batch-at-a-time core was built
//! for: every message fans out to every query, so the old clone-per-query
//! ingestion paid 8 payload deep-copies and 8 full cascades per event.
//! The batched path pays 8 refcount bumps and one amortised drain per
//! query per batch.
//!
//! Besides the criterion groups, the harness emits `BENCH_fanout.json` at
//! the repository root so future PRs can track the trajectory.

use cedr_core::prelude::*;
use cedr_streams::MessageBatch;
use cedr_temporal::time::dur;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Instant;

const N_EVENTS: u64 = 2_000;
const N_QUERIES: usize = 8;

/// An engine with `N_QUERIES` windowed-count queries over one stream.
fn engine() -> Engine {
    let mut e = Engine::new();
    e.register_event_type(
        "TICK",
        vec![("sym", FieldType::Int), ("px", FieldType::Int)],
    );
    for i in 0..N_QUERIES {
        let plan = PlanBuilder::source("TICK")
            .select(Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(0i64)))
            .window(dur(20 + i as u64))
            .group_aggregate(vec![Scalar::Field(0)], AggFunc::Count)
            .into_plan();
        e.register_plan(&format!("q{i}"), plan, ConsistencySpec::middle())
            .unwrap();
    }
    e
}

fn workload() -> Vec<Message> {
    let mut b = StreamBuilder::new();
    for i in 0..N_EVENTS {
        b.insert(
            Interval::new(t(i), t(i + 10)),
            Payload::from_values(vec![Value::Int((i % 16) as i64), Value::Int(i as i64)]),
        );
    }
    b.build_ordered(Some(dur(50)), true)
}

fn run_per_event(msgs: &[Message]) -> Engine {
    let mut e = engine();
    for m in msgs {
        e.push("TICK", m.clone()).unwrap();
    }
    e
}

fn run_batched(msgs: &[Message]) -> Engine {
    let mut e = engine();
    let batch = MessageBatch::from(msgs.to_vec());
    e.push_batch("TICK", &batch).unwrap();
    e
}

fn bench_fanout(c: &mut Criterion) {
    let msgs = workload();
    let mut g = c.benchmark_group("fanout_8_queries");
    g.sample_size(10);
    g.throughput(Throughput::Elements(N_EVENTS));
    g.bench_function("push_per_event", |b| b.iter(|| run_per_event(&msgs)));
    g.bench_function("push_batch", |b| b.iter(|| run_batched(&msgs)));
    g.finish();

    write_summary(&msgs);
}

/// Time both paths explicitly and record a machine-readable summary.
fn write_summary(msgs: &[Message]) {
    const REPS: u32 = 5;
    let time = |f: &dyn Fn(&[Message]) -> Engine| {
        let mut best = f64::INFINITY;
        f(msgs); // warm-up
        for _ in 0..REPS {
            let start = Instant::now();
            let e = f(msgs);
            let elapsed = start.elapsed().as_secs_f64();
            assert!(e.query_count() == N_QUERIES);
            best = best.min(elapsed);
        }
        best
    };
    let per_event_s = time(&run_per_event);
    let batch_s = time(&run_batched);

    // Sanity: both paths agree on every query's net output.
    let a = run_per_event(msgs);
    let b = run_batched(msgs);
    for q in 0..N_QUERIES {
        assert!(
            a.output(QueryId(q))
                .net_table()
                .star_equal(&b.output(QueryId(q)).net_table()),
            "fan-out paths diverged on q{q}"
        );
    }
    let amortisation = b.stats(QueryId(0)).mean_batch_len();

    let json = format!(
        "{{\n  \"bench\": \"fanout\",\n  \"events\": {N_EVENTS},\n  \"queries\": {N_QUERIES},\n  \
         \"per_event_seconds\": {per_event_s:.6},\n  \"push_batch_seconds\": {batch_s:.6},\n  \
         \"speedup\": {:.3},\n  \"mean_batch_len\": {amortisation:.2}\n}}\n",
        per_event_s / batch_s,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fanout.json");
    std::fs::write(path, &json).expect("write BENCH_fanout.json");
    println!("wrote {path}:\n{json}");
}

criterion_group!(benches, bench_fanout);
criterion_main!(benches);
