//! Fan-out benchmark: string-keyed per-event `Engine::push` vs batched
//! ingestion vs the sessioned `SourceHandle` paths, with 8 standing
//! queries subscribed to one input stream.
//!
//! This is the workload the Arc-shared, batch-at-a-time core was built
//! for: every message fans out to every query, so the old clone-per-query
//! ingestion paid 8 payload deep-copies and 8 full cascades per event.
//! The batched path pays 8 refcount bumps and one amortised drain per
//! query per batch. The sessioned paths resolve the event type and shard
//! routing **once** per handle instead of once per push:
//! `handle_per_event` isolates that resolve-once saving at identical
//! (per-message) delivery semantics, while `handle_stream` adds staged
//! batching — the mode a continuous provider would actually run.
//!
//! Besides the criterion groups, the harness emits `BENCH_fanout.json` at
//! the repository root (uniform [`BenchSummary`] schema: the speedup
//! columns in `ratios` are gated by the CI `bench-regression` job) so
//! future PRs can track the trajectory.

use cedr_bench::summary::{summary_reps, BenchSummary};
use cedr_core::prelude::*;
use cedr_streams::MessageBatch;
use cedr_temporal::time::dur;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Instant;

const N_EVENTS: u64 = 2_000;
const N_QUERIES: usize = 8;

/// An engine with `N_QUERIES` windowed-count queries over one stream.
fn engine() -> Engine {
    let mut e = Engine::new();
    e.register_event_type(
        "TICK",
        vec![("sym", FieldType::Int), ("px", FieldType::Int)],
    );
    for i in 0..N_QUERIES {
        let plan = PlanBuilder::source("TICK")
            .select(Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(0i64)))
            .window(dur(20 + i as u64))
            .group_aggregate(vec![Scalar::Field(0)], AggFunc::Count)
            .into_plan();
        e.register_plan(&format!("q{i}"), plan, ConsistencySpec::middle())
            .unwrap();
    }
    e
}

fn workload() -> Vec<Message> {
    let mut b = StreamBuilder::new();
    for i in 0..N_EVENTS {
        b.insert(
            Interval::new(t(i), t(i + 10)),
            Payload::from_values(vec![Value::Int((i % 16) as i64), Value::Int(i as i64)]),
        );
    }
    b.build_ordered(Some(dur(50)), true)
}

/// The historical string-keyed shim: catalog + routing lookups per push.
#[allow(deprecated)]
fn run_per_event(msgs: &[Message]) -> Engine {
    let mut e = engine();
    for m in msgs {
        e.push("TICK", m.clone()).unwrap();
    }
    e
}

#[allow(deprecated)]
fn run_batched(msgs: &[Message]) -> Engine {
    let mut e = engine();
    let batch = MessageBatch::from(msgs.to_vec());
    e.push_batch("TICK", &batch).unwrap();
    e
}

/// Sessioned, per-message: resolve once, then `send` each message with
/// the same immediate-cascade semantics as `run_per_event`.
fn run_handle_per_event(msgs: &[Message]) -> Engine {
    let mut e = engine();
    let mut h = e.source("TICK").unwrap();
    for m in msgs {
        h.send(m.clone());
    }
    drop(h);
    e
}

/// Sessioned, streaming: resolve once, stage through the handle's local
/// batch, auto-flushing against the bounded ingress.
fn run_handle_stream(msgs: &[Message]) -> Engine {
    let mut e = engine();
    let mut h = e.source("TICK").unwrap();
    for m in msgs {
        h.stage(m.clone());
    }
    h.sync();
    drop(h);
    e
}

fn bench_fanout(c: &mut Criterion) {
    let msgs = workload();
    let mut g = c.benchmark_group("fanout_8_queries");
    g.sample_size(10);
    g.throughput(Throughput::Elements(N_EVENTS));
    g.bench_function("push_per_event", |b| b.iter(|| run_per_event(&msgs)));
    g.bench_function("push_batch", |b| b.iter(|| run_batched(&msgs)));
    g.bench_function("handle_per_event", |b| {
        b.iter(|| run_handle_per_event(&msgs))
    });
    g.bench_function("handle_stream", |b| b.iter(|| run_handle_stream(&msgs)));
    g.finish();

    write_summary(&msgs);
}

/// Time every path explicitly and record a machine-readable summary.
/// Reps are interleaved round-robin across the paths so machine drift
/// (noisy neighbours on a shared core) biases every column equally
/// instead of whichever path happened to be measured last.
fn write_summary(msgs: &[Message]) {
    let reps = summary_reps(7);
    let paths: [fn(&[Message]) -> Engine; 4] = [
        run_per_event,
        run_batched,
        run_handle_per_event,
        run_handle_stream,
    ];
    let mut best = [f64::INFINITY; 4];
    for f in paths {
        f(msgs); // warm-up
    }
    for _ in 0..reps {
        for (slot, f) in paths.iter().enumerate() {
            let start = Instant::now();
            let e = f(msgs);
            let elapsed = start.elapsed().as_secs_f64();
            assert!(e.query_count() == N_QUERIES);
            best[slot] = best[slot].min(elapsed);
        }
    }
    let [per_event_s, batch_s, handle_event_s, handle_stream_s] = best;

    // Sanity: every path agrees on every query's net output, and the
    // handle path's subscription view matches its collector.
    let a = run_per_event(msgs);
    let b = run_batched(msgs);
    let h = run_handle_stream(msgs);
    for q in 0..N_QUERIES {
        let q = QueryId(q);
        assert!(
            a.collector(q)
                .net_table()
                .star_equal(&b.collector(q).net_table()),
            "fan-out paths diverged on {q:?}"
        );
        assert!(
            a.collector(q)
                .net_table()
                .star_equal(&h.collector(q).net_table()),
            "handle path diverged on {q:?}"
        );
        let mut sub = h.subscribe(q).unwrap();
        assert_eq!(
            sub.drain_ready(&h).len(),
            h.collector(q).delta_log().len(),
            "subscription must observe the whole change stream"
        );
    }
    let amortisation = h.stats(QueryId(0)).mean_batch_len();

    let mut s = BenchSummary::new("fanout", 0);
    s.ratio("push_batch_vs_per_event", per_event_s / batch_s)
        .ratio(
            "handle_per_event_vs_per_event",
            per_event_s / handle_event_s,
        )
        .ratio("handle_stream_vs_per_event", per_event_s / handle_stream_s);
    s.info("events", N_EVENTS as f64)
        .info("queries", N_QUERIES as f64)
        .info("per_event_seconds", per_event_s)
        .info("push_batch_seconds", batch_s)
        .info("handle_per_event_seconds", handle_event_s)
        .info("handle_stream_seconds", handle_stream_s)
        .info("mean_batch_len", amortisation);
    s.write(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_fanout.json"
    ));
}

criterion_group!(benches, bench_fanout);
criterion_main!(benches);
