//! The consistency-spectrum bench: gated *deterministic* ratios.
//!
//! Runs a three-scenario slice of the adversarial matrix
//! (`cedr_workload::matrix`) — disorder, retraction churn and key skew —
//! and derives the gated columns from **semantic counters**, not
//! wall-clock, so the committed `BENCH_scenarios.json` baseline holds
//! exactly on any machine and any profile:
//!
//! * `strong_vs_weak_state_peak` — how much operator state the Weak
//!   level's forgetting horizon saves relative to Strong (the paper's
//!   memory-for-accuracy trade).
//! * `middle_vs_strong_deltas` — the consumer-visible churn Middle pays
//!   for non-blocking output (speculation + repairs) relative to
//!   Strong's repair-free tape.
//!
//! Both are ratios of deterministic counters measured back to back in
//! one process; a change in either means the spectrum semantics moved,
//! which is exactly what the bench-regression gate should catch.
//! Wall-clock totals land in `info`, ungated. Every matrix cell also
//! re-asserts the bit-identity pins (workers {1,4}, unfused,
//! interpreted) before any counter is read.

use cedr_bench::summary::BenchSummary;
use cedr_workload::matrix::run_matrix;
use cedr_workload::scenario::ScenarioConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

const SEED: u64 = 0xC1D7;

fn slice() -> Vec<ScenarioConfig> {
    vec![
        ScenarioConfig {
            disorder: 40,
            cti_period: 9,
            ..ScenarioConfig::tame("late_storm", SEED ^ 0x02)
        },
        ScenarioConfig {
            retraction_rate: 0.35,
            disorder: 10,
            ..ScenarioConfig::tame("retraction_churn", SEED ^ 0x03)
        },
        ScenarioConfig {
            keys: 16,
            key_skew: 1.5,
            disorder: 8,
            ..ScenarioConfig::tame("hot_keys", SEED ^ 0x04)
        },
    ]
}

fn bench_scenarios(c: &mut Criterion) {
    let configs = slice();
    let mut g = c.benchmark_group("scenario_matrix");
    g.sample_size(10);
    g.bench_function("three_scenarios", |b| b.iter(|| run_matrix(SEED, &configs)));
    g.finish();
    write_summary(&configs);
}

fn write_summary(configs: &[ScenarioConfig]) {
    let start = Instant::now();
    let report = run_matrix(SEED, configs);
    let seconds = start.elapsed().as_secs_f64();

    let aggregates = report.level_aggregates();
    let get = |level: &str| {
        aggregates
            .iter()
            .find(|(l, _)| *l == level)
            .unwrap_or_else(|| panic!("level {level} missing"))
            .1
            .clone()
    };
    let strong = get("Strong");
    let middle = get("Middle");
    let weak = get("Weak");
    assert!(weak.forgotten > 0, "weak horizon must bite");
    assert!(weak.state_peak_sum > 0 && strong.deltas > 0);

    let mut s = BenchSummary::new("scenarios", SEED);
    s.ratio(
        "strong_vs_weak_state_peak",
        strong.state_peak_sum as f64 / weak.state_peak_sum as f64,
    );
    s.ratio(
        "middle_vs_strong_deltas",
        middle.deltas as f64 / strong.deltas as f64,
    );
    s.info("scenarios", configs.len() as f64)
        .info("identity_checks", report.identity_checks as f64)
        .info("strong_blocked_ticks", strong.blocked_ticks as f64)
        .info("middle_blocked_ticks", middle.blocked_ticks as f64)
        .info("middle_retractions", middle.retractions as f64)
        .info("weak_forgotten", weak.forgotten as f64)
        .info("weak_mean_f1", weak.f1_sum / weak.cells.max(1) as f64)
        .info("matrix_seconds", seconds);
    s.write(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_scenarios.json"
    ));
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
