//! One regeneration function per paper artifact. Each returns the rendered
//! report; the `src/bin/*` targets are thin wrappers, and `repro_all` runs
//! everything (this is what EXPERIMENTS.md records).

use crate::{high_orderliness, low_orderliness, machine_catalog, machine_streams, run_cell};
use cedr_algebra::expr::{CmpOp, Pred, Scalar};
use cedr_algebra::pattern as pat;
use cedr_runtime::{ConsistencySpec, OperatorShell};
use cedr_streams::Message;
use cedr_temporal::time::{dur, t};
use cedr_temporal::{
    BiTemporalTable, Duration, Event, EventId, HistoryTable, Interval, Payload, TimePoint,
    UniTemporalTable,
};
use cedr_workload::machines::MachineWorkloadConfig;
use cedr_workload::metrics::accuracy_f1;
use cedr_workload::report::{classify, Table};
use std::fmt::Write as _;

fn pt_ev(id: u64, vs: u64) -> Event {
    Event::primitive(EventId(id), Interval::point(t(vs)), Payload::empty())
}

/// Figure 1: the conceptual bitemporal stream representation.
pub fn fig01() -> String {
    let tbl = BiTemporalTable::figure1();
    let mut out = String::new();
    let _ = writeln!(out, "Figure 1 — Conceptual stream representation");
    let _ = writeln!(out, "{tbl:?}");
    let _ = writeln!(
        out,
        "Continuous query \"tuples valid at t, as of occurrence time o\":"
    );
    for (tv, o) in [(100u64, 1u64), (7, 2), (4, 3), (7, 3)] {
        let rows = tbl.valid_at(t(tv), t(o));
        let ids: Vec<String> = rows.iter().map(|r| r.id.to_string()).collect();
        let _ = writeln!(
            out,
            "  valid at t={tv:<3} as of o={o}: {{{}}}",
            ids.join(", ")
        );
    }
    out
}

/// Figure 2: the tritemporal history table, its reduction and ideal form.
pub fn fig02() -> String {
    let tbl = HistoryTable::figure2();
    let mut out = String::new();
    let _ = writeln!(out, "Figure 2 — Tritemporal history table");
    let _ = writeln!(out, "{}", tbl.render_occurrence_table());
    let _ = writeln!(out, "Reduced (net effect per chain K):");
    let _ = writeln!(out, "{}", tbl.reduce().render_occurrence_table());
    let _ = writeln!(
        out,
        "Narrative check: the stream ultimately describes an insert with\n\
         occurrence [1,3) and a modification from occurrence 3 on — the\n\
         valid-time change moved from occurrence time 5 to 3."
    );
    out
}

/// Figures 3–5: reduction, truncation and logical equivalence.
pub fn fig03_05() -> String {
    let left = HistoryTable::figure3_left();
    let right = HistoryTable::figure3_right();
    let mut out = String::new();
    let _ = writeln!(out, "Figure 3 — Two history tables");
    let _ = writeln!(out, "LEFT:\n{}", left.render_occurrence_table());
    let _ = writeln!(out, "RIGHT:\n{}", right.render_occurrence_table());
    let _ = writeln!(out, "Figure 4 — Reduced");
    let _ = writeln!(out, "LEFT:\n{}", left.reduce().render_occurrence_table());
    let _ = writeln!(out, "RIGHT:\n{}", right.reduce().render_occurrence_table());
    let _ = writeln!(out, "Figure 5 — Canonical to 3");
    let _ = writeln!(
        out,
        "LEFT:\n{}",
        left.canonical_to(t(3)).render_occurrence_table()
    );
    let _ = writeln!(
        out,
        "RIGHT:\n{}",
        right.canonical_to(t(3)).render_occurrence_table()
    );
    let opts = cedr_temporal::EquivalenceOptions::definition1();
    let _ = writeln!(
        out,
        "logically equivalent to 3: {}",
        cedr_temporal::logically_equivalent_to(&left, &right, t(3), opts)
    );
    let _ = writeln!(
        out,
        "logically equivalent at 3: {}",
        cedr_temporal::logically_equivalent_at(&left, &right, t(3), opts)
    );
    let _ = writeln!(
        out,
        "logically equivalent to 4: {} (they diverge beyond 3)",
        cedr_temporal::logically_equivalent_to(&left, &right, t(4), opts)
    );
    out
}

/// Figure 6: the annotated history table and its sync points.
pub fn fig06() -> String {
    let tbl = HistoryTable::figure6();
    let ann = tbl.annotate();
    let mut out = String::new();
    let _ = writeln!(out, "Figure 6 — Annotated history table");
    let _ = writeln!(out, "K    Sync  Os   Oe   Cs   Ce");
    for r in &ann {
        let _ = writeln!(
            out,
            "{:<4} {:<5} {:<4} {:<4} {:<4} {:<4}",
            r.row.k.to_string(),
            r.sync.to_string(),
            r.row.occurrence.start.to_string(),
            r.row.occurrence.end.to_string(),
            r.row.cedr.start.to_string(),
            r.row.cedr.end.to_string(),
        );
    }
    let pts = cedr_temporal::sync_points(&ann);
    let _ = writeln!(out, "Sync points (to, T): {pts:?}");
    let _ = writeln!(
        out,
        "Totally ordered (sort-by-Cs == sort-by-⟨Sync,Cs⟩): {}",
        cedr_temporal::sync::is_totally_ordered(&ann)
    );
    out
}

/// Figure 7: the anatomy of a CEDR operator, demonstrated live.
pub fn fig07() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 7 — Anatomy of a CEDR operator (consistency monitor +\n\
         alignment buffer + operational module), demonstrated on a\n\
         two-input SEQUENCE fed identical out-of-order input under\n\
         different monitor configurations:\n"
    );
    let mut table = Table::new(
        "operator anatomy in action",
        &[
            "spec",
            "held peak",
            "blocked msgs",
            "blocked ticks",
            "out inserts",
            "out retractions",
        ],
    );
    for (name, spec) in [
        ("Strong ⟨B=∞,M=∞⟩", ConsistencySpec::strong()),
        ("Middle ⟨B=0,M=∞⟩", ConsistencySpec::middle()),
        ("Weak ⟨B=0,M=40⟩", ConsistencySpec::weak(dur(40))),
    ] {
        let mut shell = OperatorShell::new(
            Box::new(cedr_runtime::sequence::SequenceOp::new(
                2,
                dur(30),
                Pred::True,
            )),
            spec,
        );
        // Out-of-order arrivals on both ports, then a closing guarantee.
        let deliveries: Vec<(usize, Message)> = vec![
            (0, Message::insert_event(pt_ev(1, 50))),
            (1, Message::insert_event(pt_ev(10, 60))),
            (0, Message::insert_event(pt_ev(2, 10))), // late
            (1, Message::insert_event(pt_ev(11, 20))), // late
            (0, Message::Cti(TimePoint::INFINITY)),
            (1, Message::Cti(TimePoint::INFINITY)),
        ];
        for (i, (port, m)) in deliveries.into_iter().enumerate() {
            let _ = shell.push(port, m, i as u64);
        }
        let s = shell.stats();
        table.row(vec![
            name.into(),
            s.held_peak.to_string(),
            s.blocked_messages.to_string(),
            s.blocked_ticks.to_string(),
            s.out_inserts.to_string(),
            s.out_retractions.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out
}

/// Figure 8: the consistency trade-off matrix, measured.
pub fn fig08() -> String {
    let cfg = MachineWorkloadConfig {
        machines: 12,
        episodes: 25,
        ..Default::default()
    };
    let (streams, expected) = machine_streams(&cfg, Duration::minutes(10));
    let data_events: usize = streams
        .iter()
        .map(|(_, s)| s.iter().filter(|m| m.is_data()).count())
        .sum();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 8 — Consistency trade-offs, measured on the CIDR07_Example\n\
         machine-monitoring workload ({data_events} events, {expected} true alerts).\n\
         Orderliness: High = globally ordered delivery + per-message CTIs;\n\
         Low = delivery delays up to 2 days + CTIs every 50 messages.\n"
    );
    let specs = [
        ("Strong", ConsistencySpec::strong()),
        ("Middle", ConsistencySpec::middle()),
        ("Weak", ConsistencySpec::weak(crate::weak_memory())),
    ];
    // Reference output for accuracy: strong on ordered input.
    let reference = run_cell(ConsistencySpec::strong(), high_orderliness(3), &streams).sink_net;

    let mut table = Table::new(
        "measured",
        &[
            "Consistency",
            "Orderliness",
            "Blocking(ticks)",
            "State(peak)",
            "Output(msgs)",
            "Retractions",
            "Forgotten",
            "Accuracy(F1)",
        ],
    );
    let mut qual = Table::new(
        "qualitative (paper vocabulary; units = the ordered Strong/Middle cells)",
        &[
            "Consistency",
            "Orderliness",
            "Blocking",
            "State Size",
            "Output Size",
        ],
    );
    // Yardsticks: Strong/High for blocking, Middle/High for state & output,
    // mirroring the paper's own calibration points.
    let strong_hi = run_cell(ConsistencySpec::strong(), high_orderliness(3), &streams);
    let middle_hi = run_cell(ConsistencySpec::middle(), high_orderliness(3), &streams);
    let unit_blocking = 1.0_f64.max(strong_hi.total.blocked_ticks as f64);
    let unit_state = 1.0_f64.max(middle_hi.total.state_peak as f64);
    let unit_output = 1.0_f64.max(middle_hi.output.data_messages as f64);

    for (sname, spec) in specs {
        for (oname, disorder) in [("High", high_orderliness(3)), ("Low", low_orderliness(3))] {
            let r = run_cell(spec, disorder, &streams);
            let f1 = accuracy_f1(&r.sink_net, &reference);
            table.row(vec![
                sname.into(),
                oname.into(),
                r.total.blocked_ticks.to_string(),
                r.total.state_peak.to_string(),
                r.output.data_messages.to_string(),
                r.output.retractions.to_string(),
                r.total.forgotten.to_string(),
                format!("{f1:.3}"),
            ]);
            qual.row(vec![
                sname.into(),
                oname.into(),
                classify(r.total.blocked_ticks as f64, unit_blocking).into(),
                classify(r.total.state_peak as f64, unit_state).into(),
                classify(r.output.data_messages as f64, unit_output).into(),
            ]);
        }
    }
    out.push_str(&table.render());
    out.push('\n');
    out.push_str(&qual.render());
    let _ = writeln!(
        out,
        "\nPaper's Figure 8 for comparison (per consistency level,\n\
         ordered/out-of-order): Strong blocking Low/High, state Low/High,\n\
         output Minimal each; Middle blocking None, state Low/High, output\n\
         Low/High; Weak blocking None, state Low/Low-, output Low/Low-."
    );
    out.push('\n');
    out.push_str(&fig08b());
    out
}

/// Figure 8 companion: the same matrix on a *monotone* operator pipeline
/// (windowed per-machine count), where late arrivals rewrite previously
/// emitted aggregate segments — the regime in which the middle level's
/// output grows with disorder, exactly as the paper's table reads.
pub fn fig08b() -> String {
    use cedr_algebra::relational::AggFunc;
    use cedr_lang::{lower, LogicalOp};
    let cfg = MachineWorkloadConfig {
        machines: 12,
        episodes: 25,
        ..Default::default()
    };
    let trace = cedr_workload::machines::generate(&cfg);
    let streams = vec![(
        "INSTALL".to_string(),
        cedr_workload::finance::to_stream(&trace.installs, Some(Duration::minutes(10))),
    )];
    let make_plan = |spec: ConsistencySpec| {
        let plan = LogicalOp::GroupAggregate {
            input: Box::new(LogicalOp::AlterLifetime {
                input: Box::new(LogicalOp::Source {
                    event_type: "INSTALL".into(),
                }),
                fvs: cedr_algebra::alter_lifetime::VsFn::Vs,
                fdelta: cedr_algebra::alter_lifetime::DeltaFn::Const(Duration::hours(1)),
            }),
            key: Vec::new(), // global count: cross-machine windows overlap
            agg: AggFunc::Count,
        };
        lower(&plan, &machine_catalog(), spec).expect("lowers")
    };
    let run = |spec: ConsistencySpec, disorder| {
        cedr_workload::metrics::run_experiment(
            make_plan(spec),
            &streams,
            &cedr_workload::metrics::Experiment { spec, disorder },
        )
    };
    let reference = run(ConsistencySpec::strong(), high_orderliness(5)).sink_net;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 8b — the same matrix on a monotone pipeline\n\
         (global 1-hour windowed count over INSTALL events, whose\n\
         overlapping windows make late arrivals rewrite emitted\n\
         segments):\n"
    );
    let mut table = Table::new(
        "measured",
        &[
            "Consistency",
            "Orderliness",
            "Blocking(ticks)",
            "State(peak)",
            "Output(msgs)",
            "Retractions",
            "Accuracy(F1)",
        ],
    );
    for (sname, spec) in [
        ("Strong", ConsistencySpec::strong()),
        ("Middle", ConsistencySpec::middle()),
        ("Weak", ConsistencySpec::weak(crate::weak_memory())),
    ] {
        for (oname, disorder) in [("High", high_orderliness(5)), ("Low", low_orderliness(5))] {
            let r = run(spec, disorder);
            let f1 = accuracy_f1(&r.sink_net, &reference);
            table.row(vec![
                sname.into(),
                oname.into(),
                r.total.blocked_ticks.to_string(),
                r.total.state_peak.to_string(),
                r.output.data_messages.to_string(),
                r.output.retractions.to_string(),
                format!("{f1:.3}"),
            ]);
        }
    }
    out.push_str(&table.render());
    out
}

/// Figure 9: the ⟨M, B⟩ consistency spectrum, swept.
pub fn fig09() -> String {
    let cfg = MachineWorkloadConfig {
        machines: 8,
        episodes: 15,
        ..Default::default()
    };
    let (streams, _expected) = machine_streams(&cfg, Duration::minutes(10));
    let reference = run_cell(ConsistencySpec::strong(), high_orderliness(9), &streams).sink_net;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 9 — The ⟨max-memory M, max-blocking B⟩ spectrum under low\n\
         orderliness. Only B ≤ M is meaningful; corners: ⟨0,0⟩ = weakest,\n\
         ⟨0,∞⟩ = middle, ⟨∞,∞⟩ = strong.\n"
    );
    let mut table = Table::new(
        "spectrum sweep",
        &[
            "M",
            "B",
            "Blocking(ticks)",
            "State(peak)",
            "Output(msgs)",
            "Forgotten",
            "Accuracy(F1)",
        ],
    );
    let axis = [
        Duration::ZERO,
        Duration::minutes(10),
        Duration::hours(2),
        Duration::hours(14),
        Duration::INFINITE,
    ];
    for m in axis {
        for b in axis {
            if b > m {
                continue; // the inert upper-left triangle
            }
            let spec = ConsistencySpec::custom(b, m);
            let r = run_cell(spec, low_orderliness(9), &streams);
            let f1 = accuracy_f1(&r.sink_net, &reference);
            table.row(vec![
                m.to_string(),
                b.to_string(),
                r.total.blocked_ticks.to_string(),
                r.total.state_peak.to_string(),
                r.total.output_size().to_string(),
                r.total.forgotten.to_string(),
                format!("{f1:.3}"),
            ]);
        }
    }
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\nExpected shape: accuracy and state grow along M; blocking grows\n\
         along B while retraction volume falls; ⟨∞,∞⟩ and ⟨0,∞⟩ agree on\n\
         accuracy 1.0."
    );
    out
}

/// Figure 10: the unitemporal ideal history table and coalescing.
pub fn fig10() -> String {
    let tbl = UniTemporalTable::figure10();
    let mut out = String::new();
    let _ = writeln!(out, "Figure 10 — Unitemporal ideal history table");
    let _ = writeln!(out, "{tbl:?}");
    let _ = writeln!(
        out,
        "Snapshots: t=4 -> {} rows; t=8 -> {} rows",
        tbl.snapshot_at(t(4)).len(),
        tbl.snapshot_at(t(8)).len()
    );
    // Coalescing demo (Definition 10).
    let chopped: UniTemporalTable = vec![
        cedr_temporal::UniTemporalRow::new(
            EventId(0),
            cedr_temporal::interval::iv(1, 4),
            Payload::from_values(vec![cedr_temporal::Value::str("P")]),
        ),
        cedr_temporal::UniTemporalRow::new(
            EventId(1),
            cedr_temporal::interval::iv(4, 7),
            Payload::from_values(vec![cedr_temporal::Value::str("P")]),
        ),
    ]
    .into_iter()
    .collect();
    let _ = writeln!(
        out,
        "\nDefinition 10 — coalescing `*`:\n{:?}*(that) =\n{:?}",
        chopped,
        chopped.star()
    );
    out
}

/// §3.3.2 sequencing-operator table, evaluated on a shared fixture.
pub fn tab01() -> String {
    let e1 = vec![pt_ev(1, 1)];
    let e2 = vec![pt_ev(2, 3)];
    let e3 = vec![pt_ev(3, 5)];
    let slots = [e1, e2, e3];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "§3.3.2 sequencing operators on E1@1, E2@3, E3@5 (w = 10):\n"
    );
    let mut table = Table::new("", &["operator", "outputs (Vs, Ve, |cbt|)"]);
    let fmt = |evs: &[Event]| {
        let mut v: Vec<String> = evs
            .iter()
            .map(|e| format!("({}, {}, {})", e.vs(), e.ve(), e.lineage.len()))
            .collect();
        v.sort();
        v.join(" ")
    };
    table.row(vec![
        "SEQUENCE(E1,E2,E3,10)".into(),
        fmt(&pat::sequence(&slots, dur(10), &Pred::True)),
    ]);
    table.row(vec![
        "ATLEAST(2,E1,E2,E3,10)".into(),
        fmt(&pat::atleast(2, &slots, dur(10), &Pred::True)),
    ]);
    table.row(vec![
        "ALL(E1,E2,E3,10)".into(),
        fmt(&pat::all(&slots, dur(10), &Pred::True)),
    ]);
    table.row(vec![
        "ANY(E1,E2,E3)".into(),
        fmt(&pat::any(&slots, &Pred::True)),
    ]);
    table.row(vec![
        "ATMOST(1,E1,E2,E3,10)".into(),
        fmt(&pat::atmost(1, &slots, dur(10))),
    ]);
    out.push_str(&table.render());
    out
}

/// §3.3.2 negation-operator table.
pub fn tab02() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "§3.3.2 negation operators:\n");
    let mut table = Table::new("", &["operator", "scenario", "outputs"]);
    let fmt = |evs: &[Event]| {
        let mut v: Vec<String> = evs
            .iter()
            .map(|e| format!("({}, {})", e.vs(), e.ve()))
            .collect();
        v.sort();
        if v.is_empty() {
            "(none)".to_string()
        } else {
            v.join(" ")
        }
    };
    let e1 = vec![pt_ev(1, 10)];
    table.row(vec![
        "UNLESS(E1,E2,5)".into(),
        "no E2 in (10,15)".into(),
        fmt(&pat::unless(&e1, &[pt_ev(2, 20)], dur(5), &Pred::True)),
    ]);
    table.row(vec![
        "UNLESS(E1,E2,5)".into(),
        "E2@12 ∈ (10,15)".into(),
        fmt(&pat::unless(&e1, &[pt_ev(2, 12)], dur(5), &Pred::True)),
    ]);
    // UNLESS′ anchored at the composite's first contributor.
    let c1 = pt_ev(100, 2);
    let c2 = pt_ev(101, 10);
    let comp = Event::composite(
        cedr_algebra::idgen(&[c1.id, c2.id]),
        Interval::new(t(10), t(20)),
        t(2),
        cedr_temporal::Lineage::of(vec![c1.id, c2.id]),
        Payload::empty(),
    );
    let pool = vec![c1, c2];
    table.row(vec![
        "UNLESS'(E1,E2,n=1,5)".into(),
        "scope (2,7); E2@8 outside".into(),
        fmt(&pat::unless_prime(
            std::slice::from_ref(&comp),
            &[pt_ev(5, 8)],
            1,
            dur(5),
            &Pred::True,
            &pool,
        )),
    ]);
    let seq_inputs = [vec![pt_ev(1, 1)], vec![pt_ev(2, 10)]];
    table.row(vec![
        "NOT(E,SEQ(E1,E2,20))".into(),
        "E@5 between contributors".into(),
        fmt(&pat::not_sequence(
            &[pt_ev(3, 5)],
            &seq_inputs,
            dur(20),
            &Pred::True,
            &Pred::True,
        )),
    ]);
    table.row(vec![
        "NOT(E,SEQ(E1,E2,20))".into(),
        "E@25 outside".into(),
        fmt(&pat::not_sequence(
            &[pt_ev(3, 25)],
            &seq_inputs,
            dur(20),
            &Pred::True,
            &Pred::True,
        )),
    ]);
    table.row(vec![
        "CANCEL-WHEN(E1,E2)".into(),
        "E2@5 ∈ (rt=2, Vs=10)".into(),
        fmt(&pat::cancel_when(
            std::slice::from_ref(&comp),
            &[pt_ev(4, 5)],
            &Pred::True,
        )),
    ]);
    table.row(vec![
        "CANCEL-WHEN(E1,E2)".into(),
        "E2@1 before rt".into(),
        fmt(&pat::cancel_when(&[comp], &[pt_ev(4, 1)], &Pred::True)),
    ]);
    out.push_str(&table.render());
    out
}

/// The full language pipeline on the paper's CIDR07_Example query.
pub fn tab03() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "CIDR07_Example — full pipeline\n\nQuery text:");
    let _ = writeln!(out, "{}\n", cedr_lang::parser::CIDR07_EXAMPLE);
    let cat = machine_catalog();
    let q = cedr_lang::parse_query(cedr_lang::parser::CIDR07_EXAMPLE).unwrap();
    let b = cedr_lang::bind(&q, &cat).unwrap();
    let o = cedr_lang::optimize(b.root.clone());
    let _ = writeln!(out, "Optimized logical plan (predicates injected):\n{o}");
    // Run it.
    let cfg = MachineWorkloadConfig {
        machines: 6,
        episodes: 10,
        ..Default::default()
    };
    let (streams, expected) = machine_streams(&cfg, Duration::minutes(10));
    let r = run_cell(ConsistencySpec::middle(), low_orderliness(4), &streams);
    let _ = writeln!(
        out,
        "Run on {expected} ground-truth alerts (disordered delivery):\n  \
         detected = {}, retractions emitted = {}, accuracy vs truth: exact = {}",
        r.sink_net.len(),
        r.output.retractions,
        r.sink_net.len() == expected
    );
    out
}

/// Definitions 7–12: view-update compliance and the AlterLifetime family.
pub fn tab04() -> String {
    use cedr_algebra::compliance::{check_view_update_compliance, fixture_events};
    use cedr_algebra::{alter_lifetime as al, relational as rel};
    let mut out = String::new();
    let _ = writeln!(out, "Definitions 7–12 — view update compliance (Def 11):\n");
    let mut table = Table::new("", &["operator", "view-update compliant?"]);
    let events = fixture_events(24, 60, 6);
    let sel_pred = Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(2i64));
    table.row(vec![
        "σ (selection)".into(),
        check_view_update_compliance(|i| rel::select(i, &sel_pred), &events, 4).to_string(),
    ]);
    table.row(vec![
        "π (projection)".into(),
        check_view_update_compliance(|i| rel::project(i, &[Scalar::Field(0)]), &events, 4)
            .to_string(),
    ]);
    table.row(vec![
        "count aggregate".into(),
        check_view_update_compliance(
            |i| rel::group_aggregate(i, &[], &rel::AggFunc::Count),
            &events,
            4,
        )
        .to_string(),
    ]);
    let long = vec![Event::primitive(
        EventId(1),
        cedr_temporal::interval::iv(0, 30),
        Payload::empty(),
    )];
    table.row(vec![
        "W_5 (moving window)".into(),
        check_view_update_compliance(|i| al::moving_window(i, dur(5)), &long, 4).to_string(),
    ]);
    table.row(vec![
        "Inserts = Π(Vs,∞)".into(),
        check_view_update_compliance(al::inserts, &long, 4).to_string(),
    ]);
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\nAs the paper states: the relational family is view-update\n\
         compliant; AlterLifetime-derived windows and the inserts/deletes\n\
         separation are NOT (yet all are well behaved, Def 6 — checked by\n\
         the property suite in tests/)."
    );
    let e = Event::primitive(
        EventId(9),
        cedr_temporal::interval::iv(2, 9),
        Payload::empty(),
    );
    let _ = writeln!(out, "\nAlterLifetime family on one event [2,9):");
    let _ = writeln!(
        out,
        "  W_3       -> {:?}",
        al::moving_window(std::slice::from_ref(&e), dur(3))[0].interval
    );
    let _ = writeln!(
        out,
        "  Inserts   -> {:?}",
        al::inserts(std::slice::from_ref(&e))[0].interval
    );
    let _ = writeln!(
        out,
        "  Deletes   -> {:?}",
        al::deletes(std::slice::from_ref(&e))[0].interval
    );
    let _ = writeln!(
        out,
        "  Hop(5,5)  -> {:?}",
        al::hopping_window(&[e], 5, dur(5))[0].interval
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figures_render_without_panicking() {
        for (name, s) in [
            ("fig01", fig01()),
            ("fig02", fig02()),
            ("fig03_05", fig03_05()),
            ("fig06", fig06()),
            ("fig07", fig07()),
            ("fig10", fig10()),
            ("tab01", tab01()),
            ("tab02", tab02()),
            ("tab04", tab04()),
        ] {
            assert!(!s.is_empty(), "{name} produced no output");
        }
    }

    #[test]
    fn fig07_shows_the_monitor_difference() {
        let s = fig07();
        assert!(s.contains("Strong"));
        assert!(s.contains("Middle"));
        // Strong holds messages; the report must show nonzero held peak on
        // the strong row and zero on middle.
        let strong_line = s.lines().find(|l| l.contains("Strong")).unwrap();
        assert!(!strong_line.contains("  0  0  0"));
    }

    #[test]
    fn tab02_negation_scenarios_behave() {
        let s = tab02();
        assert!(s.contains("(none)"), "negated scenarios suppress output");
    }
}
