//! Regenerates the paper artifact; see DESIGN.md §4.
fn main() {
    print!("{}", cedr_bench::figures::fig06());
}
