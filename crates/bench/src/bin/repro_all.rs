//! Regenerates every figure and table of the paper in one run; the output
//! is what EXPERIMENTS.md records.
#[allow(clippy::type_complexity)]
fn main() {
    let artifacts: [(&str, fn() -> String); 12] = [
        ("Figure 1", cedr_bench::figures::fig01),
        ("Figure 2", cedr_bench::figures::fig02),
        ("Figures 3-5", cedr_bench::figures::fig03_05),
        ("Figure 6", cedr_bench::figures::fig06),
        ("Figure 7", cedr_bench::figures::fig07),
        ("Figure 8", cedr_bench::figures::fig08),
        ("Figure 9", cedr_bench::figures::fig09),
        ("Figure 10", cedr_bench::figures::fig10),
        ("Table: sequencing ops", cedr_bench::figures::tab01),
        ("Table: negation ops", cedr_bench::figures::tab02),
        ("CIDR07_Example pipeline", cedr_bench::figures::tab03),
        ("Defs 7-12 / view update", cedr_bench::figures::tab04),
    ];
    for (name, f) in artifacts {
        println!("{}", "=".repeat(72));
        println!("{name}");
        println!("{}", "=".repeat(72));
        println!("{}", f());
    }
}
