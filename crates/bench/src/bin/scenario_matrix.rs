//! `scenario_matrix` — regenerate (or verify) `docs/CONSISTENCY.md`.
//!
//! Runs the full adversarial scenario gallery through the consistency
//! matrix harness (`cedr_workload::matrix`) and renders the measured
//! spectrum as markdown. The committed report contains **only
//! deterministic fields** (application-time ticks, message counts,
//! F1 scores — never wall-clock), so regeneration is byte-identical on
//! any machine and CI can gate drift with a plain diff:
//!
//! ```text
//! cargo run --release -p cedr-bench --bin scenario_matrix            # rewrite
//! cargo run --release -p cedr-bench --bin scenario_matrix -- --check # verify (CI)
//! ```
//!
//! Wall-clock ingest→delta latency summaries and pump-stall
//! observations are printed to stdout only.

use cedr_workload::matrix::{run_matrix, LevelRun, MatrixReport};
use cedr_workload::report::Table;
use cedr_workload::scenario::gallery;
use std::fmt::Write as _;
use std::process::ExitCode;

/// The committed seed: the whole report is a pure function of it.
const SEED: u64 = 0xC1D7;

fn default_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/CONSISTENCY.md")
}

fn fmt_cti(cti: Option<u64>) -> String {
    match cti {
        None => "-".to_string(),
        Some(u64::MAX) => "inf".to_string(),
        Some(t) => t.to_string(),
    }
}

fn level_table(run: &LevelRun) -> Vec<Vec<String>> {
    run.cells
        .iter()
        .map(|c| {
            vec![
                run.level.to_string(),
                c.family.to_string(),
                c.blocked_ticks.to_string(),
                c.blocked_messages.to_string(),
                c.state_peak.to_string(),
                c.held_peak.to_string(),
                c.retractions.to_string(),
                c.full_removals.to_string(),
                c.forgotten.to_string(),
                c.deltas.to_string(),
                fmt_cti(c.output_cti),
                format!("{:.3}", c.accuracy_vs_strong),
            ]
        })
        .collect()
}

/// Render the deterministic markdown report.
fn render(report: &MatrixReport) -> String {
    let mut out = String::new();
    let w = |out: &mut String, s: &str| {
        out.push_str(s);
        out.push('\n');
    };
    w(&mut out, "# The consistency spectrum, measured");
    w(&mut out, "");
    w(
        &mut out,
        "<!-- GENERATED FILE - do not edit by hand.\n     \
         Regenerate: cargo run --release -p cedr-bench --bin scenario_matrix\n     \
         Verify:     cargo run --release -p cedr-bench --bin scenario_matrix -- --check -->",
    );
    w(&mut out, "");
    let _ = writeln!(
        out,
        "The paper's central claim is a *spectrum* of consistency guarantees: \
         **Strong** blocks output until input-time guarantees (CTIs) arrive and \
         never revises what it emitted; **Middle** emits speculatively and \
         repairs through retractions; **Weak** bounds operator memory with a \
         forgetting horizon and pays for it in accuracy. This report measures \
         that trade-off instead of asserting it: seed `{:#x}` drives \
         {} adversarial scenarios x {{Strong, Middle, Weak}} x 5 operator \
         families through the engine's concurrent ingestion surface \
         (`ChannelSource` + pump + `Subscription`).",
        report.seed,
        report.scenarios.len()
    );
    w(&mut out, "");
    let _ = writeln!(
        out,
        "Before any cell is measured, it is **pinned**: each scenario x level \
         runs on four engine legs - 1 worker (canonical), 4 workers, fusion \
         off, compiled kernels off - and the stamped output tape, subscription \
         deltas and output CTI must be bit-identical across all legs. \
         {} per-query identity checks passed while generating this report. \
         Every number below is deterministic (application-time ticks, message \
         counts, F1 scores - never wall-clock), so CI regenerates this file \
         and fails on any byte of drift.",
        report.identity_checks
    );
    w(&mut out, "");
    w(&mut out, "## Reading the columns");
    w(&mut out, "");
    for line in [
        "- **blocked ticks / msgs** - alignment blocking: application-time ticks \
         (and messages held) spent waiting for an input guarantee before emitting. \
         The price of Strong.",
        "- **repairs / removals** - output retractions (lifetime revisions / full \
         removals) at the sink: the churn Middle pays instead of blocking.",
        "- **forgotten** - state evicted by Weak's memory horizon before it could \
         be matched; the source of Weak's accuracy loss.",
        "- **state / held peak** - peak operator state and peak alignment-buffer \
         residency across the plan.",
        "- **deltas** - consumer-visible delta-log volume (what a `Subscription` \
         drains).",
        "- **out CTI** - the output guarantee's high-water mark (`inf` = sealed).",
        "- **F1 vs Strong** - net-content accuracy against the Strong cell of the \
         same scenario and family. Middle must score 1.000 (eventual agreement); \
         Weak scores what its horizon left it.",
    ] {
        w(&mut out, line);
    }
    w(&mut out, "");
    w(&mut out, "## Scenarios");
    for scenario in &report.scenarios {
        w(&mut out, "");
        let _ = writeln!(out, "### `{}`", scenario.name);
        w(&mut out, "");
        let _ = writeln!(out, "> `{}`", scenario.characterization);
        w(&mut out, "");
        let mut t = Table::new(
            "",
            &[
                "level",
                "family",
                "blocked ticks",
                "blocked msgs",
                "state peak",
                "held peak",
                "repairs",
                "removals",
                "forgotten",
                "deltas",
                "out CTI",
                "F1 vs Strong",
            ],
        );
        for run in &scenario.levels {
            for row in level_table(run) {
                t.row(row);
            }
        }
        out.push_str(&t.to_markdown());
        // Deterministic stall observations (pump-vs-schedule, not wall
        // time): present only when a producer actually fell behind.
        let stalls: Vec<String> = scenario
            .levels
            .iter()
            .filter(|r| r.stall_rounds_peak > 0)
            .map(|r| {
                format!(
                    "{}: peak {} stalled pump checks, waiting on producer key(s) {:?}",
                    r.level, r.stall_rounds_peak, r.waited_on
                )
            })
            .collect();
        if !stalls.is_empty() {
            w(&mut out, "");
            let _ = writeln!(
                out,
                "Pump stalls while a producer was silent - {}.",
                stalls.join("; ")
            );
        }
    }
    w(&mut out, "");
    w(&mut out, "## Spectrum summary");
    w(&mut out, "");
    w(
        &mut out,
        "Aggregated over every scenario and operator family:",
    );
    w(&mut out, "");
    let mut t = Table::new(
        "",
        &[
            "level",
            "blocked ticks",
            "blocked msgs",
            "repairs",
            "removals",
            "forgotten",
            "state peak (sum)",
            "deltas",
            "mean F1 vs Strong",
        ],
    );
    for (level, agg) in report.level_aggregates() {
        t.row(vec![
            level.to_string(),
            agg.blocked_ticks.to_string(),
            agg.blocked_messages.to_string(),
            agg.retractions.to_string(),
            agg.full_removals.to_string(),
            agg.forgotten.to_string(),
            agg.state_peak_sum.to_string(),
            agg.deltas.to_string(),
            format!("{:.3}", agg.f1_sum / agg.cells.max(1) as f64),
        ]);
    }
    out.push_str(&t.to_markdown());
    w(&mut out, "");
    w(
        &mut out,
        "The shape is the paper's: Strong pays its whole cost in blocking and \
         none in repairs; Middle never blocks, converging to the same net \
         content through retraction churn; Weak caps state by forgetting and \
         surrenders accuracy for it. Latency (wall-clock ingest-to-delta \
         histograms) is intentionally not in this file - run the generator to \
         see it on stdout, or the `scenarios` bench for the gated, \
         deterministic spectrum ratios in `BENCH_scenarios.json`.",
    );
    out
}

/// Nondeterministic observations - stdout only.
fn print_wallclock(report: &MatrixReport) {
    let mut t = Table::new(
        "wall-clock ingest->delta latency (stdout only, never committed)",
        &["scenario", "level", "deltas", "mean us", "max us"],
    );
    for scenario in &report.scenarios {
        for run in &scenario.levels {
            let (count, mean_us, max_us) = run.wall_ingest_to_delta;
            t.row(vec![
                scenario.name.clone(),
                run.level.to_string(),
                count.to_string(),
                format!("{mean_us:.1}"),
                format!("{max_us:.1}"),
            ]);
        }
    }
    println!("{}", t.render());
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(default_path);

    let report = run_matrix(SEED, &gallery(SEED));
    let rendered = render(&report);
    print_wallclock(&report);

    if check {
        let committed = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("FAIL: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        if committed == rendered {
            println!(
                "OK: {} is byte-identical to the regenerated report",
                path.display()
            );
            ExitCode::SUCCESS
        } else {
            let diverged = committed
                .lines()
                .zip(rendered.lines())
                .position(|(a, b)| a != b)
                .map_or_else(
                    || committed.lines().count().min(rendered.lines().count()) + 1,
                    |i| i + 1,
                );
            eprintln!(
                "FAIL: {} drifted from the regenerated report (first difference \
                 at line {diverged}). Rerun without --check and commit the result.",
                path.display()
            );
            ExitCode::FAILURE
        }
    } else {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create docs dir");
        }
        std::fs::write(&path, &rendered)
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("wrote {} ({} bytes)", path.display(), rendered.len());
        ExitCode::SUCCESS
    }
}
