//! CI bench-regression gate.
//!
//! Compares freshly-regenerated `BENCH_*.json` summaries against the
//! committed baselines and fails (exit 1) when any **ratio** column —
//! the gated batched/batch-native speedup columns; see
//! `cedr_bench::summary` — regresses by more than the tolerance
//! (default 15%). Only ratios are gated: they compare two modes measured
//! back to back on the same machine, so they are robust to the noisy
//! absolute wall-clock of a 1-core CI runner, which is deliberately not
//! compared at all.
//!
//! ```text
//! bench_regression <baseline_dir> <fresh_dir> [tolerance]
//! ```
//!
//! Every `BENCH_*.json` in `baseline_dir` must exist in `fresh_dir` with
//! at least the same ratio columns (renaming or dropping a gated column
//! is itself a failure — update the baseline in the same commit instead).

use cedr_bench::summary::BenchSummary;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const DEFAULT_TOLERANCE: f64 = 0.15;

fn baseline_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            let name = path.file_name()?.to_str()?;
            (name.starts_with("BENCH_") && name.ends_with(".json")).then_some(path)
        })
        .collect();
    files.sort();
    files
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline_dir, fresh_dir, rest @ ..] = args.as_slice() else {
        eprintln!("usage: bench_regression <baseline_dir> <fresh_dir> [tolerance]");
        return ExitCode::FAILURE;
    };
    let tolerance: f64 = match rest {
        [] => DEFAULT_TOLERANCE,
        [t] => t.parse().expect("tolerance must be a number"),
        _ => {
            eprintln!("usage: bench_regression <baseline_dir> <fresh_dir> [tolerance]");
            return ExitCode::FAILURE;
        }
    };

    let baselines = baseline_files(Path::new(baseline_dir));
    assert!(
        !baselines.is_empty(),
        "no BENCH_*.json baselines in {baseline_dir}"
    );

    let mut failures = 0usize;
    let mut checked = 0usize;
    for base_path in baselines {
        let file = base_path.file_name().unwrap().to_str().unwrap();
        let base = BenchSummary::load(&base_path).expect("baseline parses");
        let fresh_path = Path::new(fresh_dir).join(file);
        let fresh = match BenchSummary::load(&fresh_path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("FAIL {file}: fresh summary missing or unreadable ({e})");
                failures += 1;
                continue;
            }
        };
        println!(
            "{file} (bench {:?}, {} gated columns):",
            base.bench,
            base.ratios.len()
        );
        for (col, committed) in &base.ratios {
            checked += 1;
            let Some((_, measured)) = fresh.ratios.iter().find(|(k, _)| k == col) else {
                eprintln!("  FAIL {col}: gated column missing from fresh summary");
                failures += 1;
                continue;
            };
            // The gate is on the ratio-of-ratios — fresh speedup over
            // committed speedup — against the tolerance threshold, so a
            // failure line carries every number needed to judge it
            // without re-running anything.
            let threshold = 1.0 - tolerance;
            let ratio_of_ratios = measured / committed;
            let verdict = if ratio_of_ratios >= threshold {
                "ok  "
            } else {
                "FAIL"
            };
            println!(
                "  {verdict} {col}: baseline {committed:.3}, fresh {measured:.3}, \
                 ratio-of-ratios {ratio_of_ratios:.3} vs threshold {threshold:.3}"
            );
            if ratio_of_ratios < threshold {
                failures += 1;
            }
        }
    }
    println!(
        "checked {checked} ratio columns at {:.0}% tolerance: {failures} regression(s)",
        tolerance * 100.0
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
