//! Shared harness code for the figure-regeneration binaries and Criterion
//! benches. See DESIGN.md §4 for the experiment index (which binary
//! regenerates which paper artifact) and EXPERIMENTS.md for recorded runs.

use cedr_lang::{bind, lower, optimize, Catalog, FieldType, LoweredPlan};
use cedr_runtime::ConsistencySpec;
use cedr_streams::{DisorderConfig, Message};
use cedr_temporal::Duration;
use cedr_workload::machines::{self, MachineWorkloadConfig};
use cedr_workload::metrics::{run_experiment, Experiment, ExperimentResult};

/// The machine-monitoring catalog used across experiments.
pub fn machine_catalog() -> Catalog {
    let mut c = Catalog::new();
    for ty in ["INSTALL", "SHUTDOWN", "RESTART"] {
        c.register_type(ty, vec![("Machine_Id", FieldType::Str)]);
    }
    c
}

/// Compile the paper's CIDR07_Example query at a given consistency spec.
pub fn cidr07_plan(spec: ConsistencySpec) -> LoweredPlan {
    let cat = machine_catalog();
    let q = cedr_lang::parse_query(cedr_lang::parser::CIDR07_EXAMPLE).expect("parses");
    let b = bind(&q, &cat).expect("binds");
    lower(&optimize(b.root), &cat, spec).expect("lowers")
}

/// The standard machine workload for consistency experiments.
pub fn machine_streams(
    cfg: &MachineWorkloadConfig,
    cti_every: Duration,
) -> (Vec<(String, Vec<Message>)>, usize) {
    let trace = machines::generate(cfg);
    let expected = trace.expected_alerts;
    (trace.to_streams(Some(cti_every)), expected)
}

/// Orderliness regimes of Figure 8.
pub fn high_orderliness(seed: u64) -> DisorderConfig {
    DisorderConfig::ordered(seed)
}

/// Low orderliness: delivery delays up to two days of application time —
/// well beyond the query's inherent 12-hour cross-stream skew — and sparse
/// application-declared sync points.
pub fn low_orderliness(seed: u64) -> DisorderConfig {
    DisorderConfig::heavy(seed, 2 * 86_400, 50)
}

/// The weak level's memory bound used in the figures: four hours — enough
/// for prompt shutdowns, too little for the full 12-hour scope, so weak
/// trades measurable accuracy for state.
pub fn weak_memory() -> Duration {
    Duration::hours(4)
}

/// Run one (spec × orderliness) cell of the Figure-8 matrix on the
/// CIDR07_Example workload.
pub fn run_cell(
    spec: ConsistencySpec,
    disorder: DisorderConfig,
    streams: &[(String, Vec<Message>)],
) -> ExperimentResult {
    run_experiment(cidr07_plan(spec), streams, &Experiment { spec, disorder })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedr_workload::metrics::accuracy_f1;

    #[test]
    fn figure8_shape_holds_on_a_small_workload() {
        let cfg = MachineWorkloadConfig {
            machines: 4,
            episodes: 6,
            ..Default::default()
        };
        let (streams, expected) = machine_streams(&cfg, Duration::minutes(10));

        let strong_lo = run_cell(ConsistencySpec::strong(), low_orderliness(5), &streams);
        let middle_lo = run_cell(ConsistencySpec::middle(), low_orderliness(5), &streams);

        // Both converge to the ground truth…
        assert_eq!(strong_lo.sink_net.len(), expected);
        assert_eq!(middle_lo.sink_net.len(), expected);
        assert!((accuracy_f1(&strong_lo.sink_net, &middle_lo.sink_net) - 1.0).abs() < 1e-9);
        // …but by opposite means: strong blocks, middle repairs.
        assert!(strong_lo.total.blocked_ticks > 0);
        assert_eq!(middle_lo.total.blocked_ticks, 0);
        assert!(middle_lo.output.retractions > 0 || middle_lo.total.out_retractions > 0);
        assert_eq!(strong_lo.output.retractions, 0, "strong output is final");
    }
}
pub mod figures;
pub mod summary;
