//! Uniform machine-readable bench summaries.
//!
//! Every Criterion harness in `benches/` emits a `BENCH_<name>.json` at
//! the repository root through [`BenchSummary`], so all four files share
//! one schema and the CI regression gate (`src/bin/bench_regression.rs`)
//! parses them with one loader:
//!
//! ```json
//! {
//!   "bench": "stateful",
//!   "cores": 1,
//!   "seed": 24269,
//!   "ratios": { "agg_batch_vs_per_message_1w": 5.1, ... },
//!   "info":   { "events": 3000.0, "per_message_1w_seconds": 0.41, ... }
//! }
//! ```
//!
//! **`ratios` is the contract**: every column in it is a *speedup ratio*
//! (batched vs per-message, handle vs shim, …) that CI gates against the
//! committed baseline. Ratios compare two modes measured back to back on
//! the same machine, so they survive the noisy absolute timings of a
//! 1-core CI runner; wall-clock numbers and machine-dependent scaling
//! columns belong in `info`, which is recorded but never gated.

use std::fmt::Write as _;
use std::path::Path;

/// Is the quick profile requested (CI sets `CEDR_BENCH_QUICK=1`)?
pub fn quick_profile() -> bool {
    std::env::var("CEDR_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Repetitions for best-of timing loops: `default` normally, 2 under the
/// quick profile (one warm-up rep is always extra).
pub fn summary_reps(default: u32) -> u32 {
    if quick_profile() {
        default.min(2)
    } else {
        default
    }
}

/// One bench's machine-readable summary; see the module docs for the
/// schema and the `ratios` vs `info` contract.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchSummary {
    /// Bench name (matches the `BENCH_<name>.json` file).
    pub bench: String,
    /// `available_parallelism` of the measuring machine — scaling columns
    /// are only meaningful when this is comfortably above 1.
    pub cores: usize,
    /// Workload seed (0 for formula-deterministic workloads).
    pub seed: u64,
    /// Gated speedup columns, in emission order.
    pub ratios: Vec<(String, f64)>,
    /// Ungated context: timings, workload sizes, machine-dependent scaling.
    pub info: Vec<(String, f64)>,
}

impl BenchSummary {
    /// A summary for `bench`, stamped with this machine's core count.
    pub fn new(bench: &str, seed: u64) -> Self {
        BenchSummary {
            bench: bench.to_string(),
            cores: std::thread::available_parallelism().map_or(1, usize::from),
            seed,
            ratios: Vec::new(),
            info: Vec::new(),
        }
    }

    /// Record a gated speedup column.
    pub fn ratio(&mut self, name: &str, value: f64) -> &mut Self {
        self.ratios.push((name.to_string(), value));
        self
    }

    /// Record an ungated context column.
    pub fn info(&mut self, name: &str, value: f64) -> &mut Self {
        self.info.push((name.to_string(), value));
        self
    }

    /// Serialise in the uniform schema (stable field order).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n  \"bench\": \"{}\",\n  \"cores\": {},\n  \"seed\": {},\n",
            self.bench, self.cores, self.seed
        );
        s.push_str("  \"ratios\": {");
        Self::write_map(&mut s, &self.ratios, 3);
        s.push_str("},\n  \"info\": {");
        Self::write_map(&mut s, &self.info, 6);
        s.push_str("}\n}\n");
        s
    }

    fn write_map(s: &mut String, entries: &[(String, f64)], precision: usize) {
        for (i, (k, v)) in entries.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(s, "{sep}\n    \"{k}\": {v:.precision$}");
        }
        if !entries.is_empty() {
            s.push_str("\n  ");
        }
    }

    /// Write `to_json` to `path`.
    pub fn write(&self, path: impl AsRef<Path>) {
        let path = path.as_ref();
        let json = self.to_json();
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("wrote {}:\n{json}", path.display());
    }

    /// Load a summary previously emitted by [`BenchSummary::write`] (or
    /// any JSON object with the same four fields).
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("parse {}: {e}", path.display()))
    }

    /// Parse the uniform schema. A deliberately small JSON-object reader:
    /// strings, numbers and one level of nested objects — exactly what
    /// the schema uses; anything else is an error.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        let mut out = BenchSummary {
            bench: String::new(),
            cores: 0,
            seed: 0,
            ratios: Vec::new(),
            info: Vec::new(),
        };
        p.expect(b'{')?;
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            match key.as_str() {
                "bench" => out.bench = p.string()?,
                "cores" => out.cores = p.number()? as usize,
                "seed" => out.seed = p.number()? as u64,
                "ratios" => out.ratios = p.object()?,
                "info" => out.info = p.object()?,
                other => return Err(format!("unknown field {other:?}")),
            }
            if !p.comma_or_close(b'}')? {
                break;
            }
        }
        if out.bench.is_empty() {
            return Err("missing \"bench\" field".into());
        }
        Ok(out)
    }
}

/// Byte-walking parser for the summary subset of JSON.
struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(c), self.i))
        }
    }

    /// `true` if a comma follows (more entries), `false` on `close`.
    fn comma_or_close(&mut self, close: u8) -> Result<bool, String> {
        self.skip_ws();
        match self.b.get(self.i) {
            Some(b',') => {
                self.i += 1;
                Ok(true)
            }
            Some(c) if *c == close => {
                self.i += 1;
                Ok(false)
            }
            _ => Err(format!("expected ',' or closer at byte {}", self.i)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.i;
        while let Some(&c) = self.b.get(self.i) {
            if c == b'"' {
                let s = std::str::from_utf8(&self.b[start..self.i])
                    .map_err(|e| e.to_string())?
                    .to_string();
                self.i += 1;
                return Ok(s);
            }
            if c == b'\\' {
                return Err("escapes are not part of the summary schema".into());
            }
            self.i += 1;
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.i;
        while let Some(&c) = self.b.get(self.i) {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.b[start..self.i])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn object(&mut self) -> Result<Vec<(String, f64)>, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(out);
        }
        loop {
            let k = self.string()?;
            self.expect(b':')?;
            out.push((k, self.number()?));
            if !self.comma_or_close(b'}')? {
                return Ok(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_json() {
        let mut s = BenchSummary::new("demo", 42);
        s.ratio("a_vs_b", 1.5).ratio("c_vs_d", 0.987);
        s.info("events", 4000.0);
        let parsed = BenchSummary::parse(&s.to_json()).expect("parses");
        assert_eq!(parsed.bench, "demo");
        assert_eq!(parsed.seed, 42);
        assert_eq!(parsed.cores, s.cores);
        assert_eq!(parsed.ratios.len(), 2);
        assert_eq!(parsed.ratios[0].0, "a_vs_b");
        assert!((parsed.ratios[0].1 - 1.5).abs() < 1e-9);
        assert_eq!(parsed.info, vec![("events".to_string(), 4000.0)]);
    }

    #[test]
    fn empty_maps_round_trip() {
        let s = BenchSummary::new("empty", 0);
        let parsed = BenchSummary::parse(&s.to_json()).expect("parses");
        assert!(parsed.ratios.is_empty() && parsed.info.is_empty());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(BenchSummary::parse("").is_err());
        assert!(BenchSummary::parse("{\"bench\": 3}").is_err());
        assert!(BenchSummary::parse("{\"ratios\": {\"x\": \"y\"}}").is_err());
    }
}
