//! Fused stateless pipelines: one pass per run instead of one queue hop
//! per operator.
//!
//! The plan-time fusion pass collapses every maximal chain of adjacent
//! single-input stateless operators (select, project, alter-lifetime,
//! slice) into one [`FusedStatelessOp`]. The fused node evaluates the
//! composed [`FusedStage`] IR in a single tight loop per delivery run:
//! no intermediate `MessageBatch` is built, no queue hop, stamp sort or
//! shell admission happens between fused stages, and intermediate events
//! are never materialised — an internal working record (`WorkEv`)
//! carries the evolving (id, interval, payload) triple next to the
//! original `Arc<Event>`, and
//! a gather step rebuilds an `Arc`-shared message only at the fused
//! node's output edge.
//!
//! # The collector-level bit-identity contract
//!
//! Fusion changes graph shape, so per-edge tapes for the collapsed
//! interior no longer exist; what must be preserved exactly is the
//! *collector output* — stamped tape, subscription deltas, output CTIs —
//! at every ⟨M, B⟩ consistency point (see the third contract strength in
//! [`crate::operator`]'s module docs). The interior shells the fused node
//! replaces were not pass-through plumbing: each ran a consistency
//! monitor. An internal `Boundary` therefore emulates, per fused seam,
//! everything
//! an interior [`crate::OperatorShell`] does that is observable
//! downstream:
//!
//! * **chain generations** — the upstream shell's `finish` remap of
//!   re-inserted IDs to fresh per-generation identities;
//! * **forgetting** — weak-consistency drops below the memory horizon,
//!   checked before the `max_seen` bump exactly like the shell;
//! * **alignment** — blocking specs buffer uncovered messages in
//!   `(sync, seq)` order and release them on coverage or timeout;
//! * **the reorder guard** — retractions whose inserts were never
//!   delivered (or were evicted by a flush cleanup) are swallowed. At an
//!   interior seam the shell's orphan parking can never replay (interior
//!   IDs are unique per chain generation and an insert always precedes
//!   its retractions), so parking degenerates to swallowing. For
//!   non-forgetful specs the guard needs no ID registry at all: an
//!   insert is evicted iff its lifetime ended at or below the watermark
//!   of the last flush cleanup, so one comparison against
//!   `evict_watermark` plus a (normally empty) `recent` set of
//!   late-delivered short-lived inserts decides retraction liveness.
//!   Forgetful specs keep the exact `seen` map instead;
//! * **CTI cadence** — watermarks advance only through the per-stage
//!   `map_cti` composition, with the shell's strict-increase emission
//!   dedup, and releases triggered by a guarantee flow through the
//!   remaining stages *at their position in the stream*;
//! * **flush-time cleanup** — guard eviction runs where the interior
//!   shell would have flushed: before observing a CTI (old watermark),
//!   after a releasing CTI (new watermark), and at end of round
//!   ([`crate::OperatorModule::on_round_end`]).
//!
//! The first stage reads the run through the struct-of-arrays
//! [`ColumnarView`], so inserts and retractions a leading slice or
//! alter-lifetime stage would drop are rejected from contiguous interval
//! columns without ever touching the per-message `Arc<Event>`.

use crate::consistency::ConsistencySpec;
use crate::operator::{generation_id, OpContext, OperatorModule, OutputBuffer};
use cedr_algebra::{DeltaFn, Pred, Scalar, VsFn};
use cedr_streams::batch::{ColumnarView, MessageKind};
use cedr_streams::{Message, Retraction};
use cedr_temporal::{Event, EventId, Interval, Payload, TimePoint};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// One stage of a fused pipeline: the IR the planner lowers the four
/// stateless operator families into.
#[derive(Clone, Debug)]
pub enum FusedStage {
    /// `σ_p` — payload predicate filter.
    Select(Pred),
    /// `π` — payload transformation.
    Project(Vec<Scalar>),
    /// `Π_{fVs, f∆}` — lifetime mapping (Definition 12).
    AlterLifetime { fvs: VsFn, fdelta: DeltaFn },
    /// `#`/`@` — valid-time clip and occurrence-time filter.
    Slice {
        valid: Option<Interval>,
        occurrence: Option<Interval>,
    },
}

impl FusedStage {
    /// Stage name as it appears in plan explains.
    pub fn name(&self) -> &'static str {
        match self {
            FusedStage::Select(_) => "select",
            FusedStage::Project(_) => "project",
            FusedStage::AlterLifetime { .. } => "alter_lifetime",
            FusedStage::Slice { .. } => "slice",
        }
    }

    /// Mirror of the stage operator's shell-level `map_cti`.
    fn map_cti(&self, watermark: TimePoint) -> TimePoint {
        match self {
            FusedStage::AlterLifetime { fvs, .. } => {
                if watermark.is_infinite() {
                    return watermark;
                }
                match fvs {
                    VsFn::Vs | VsFn::Ve => watermark,
                    VsFn::HopVs { period } => {
                        let p = (*period).max(1);
                        TimePoint::new(watermark.0 / p * p)
                    }
                    VsFn::Const(t) => TimePoint::min_of(watermark, *t),
                }
            }
            _ => watermark,
        }
    }

    /// Apply the stage kernel to one work message, appending outputs (at
    /// most two: a retraction split) to `out`. Mirrors the corresponding
    /// `OperatorModule` in `stateless` exactly, including the output
    /// buffer's empty-lifetime drop for inserts.
    fn apply(&self, msg: WorkMsg, out: &mut Vec<WorkMsg>) {
        match self {
            FusedStage::Select(pred) => match msg {
                WorkMsg::Ins(ev) => {
                    if pred.eval_payload(ev.payload()) {
                        push_insert(out, ev);
                    }
                }
                WorkMsg::Ret { ev, new_end } => {
                    // An empty-lifetime event's insert was dropped by the
                    // output buffer on the unfused edge, so its retraction
                    // parks there as an orphan that can never replay —
                    // swallowing it here is collector-identical.
                    if !ev.interval.is_empty() && pred.eval_payload(ev.payload()) {
                        out.push(WorkMsg::Ret { ev, new_end });
                    }
                }
            },
            FusedStage::Project(exprs) => {
                let (mut ev, ret) = match msg {
                    WorkMsg::Ins(ev) => (ev, None),
                    WorkMsg::Ret { ev, new_end } => {
                        if ev.interval.is_empty() {
                            // Same dead-orphan reasoning as the select arm.
                            return;
                        }
                        (ev, Some(new_end))
                    }
                };
                let payload = Payload::from_values(
                    exprs.iter().map(|x| x.eval_payload(ev.payload())).collect(),
                );
                ev.payload = Some(payload);
                match ret {
                    None => push_insert(out, ev),
                    Some(new_end) => out.push(WorkMsg::Ret { ev, new_end }),
                }
            }
            FusedStage::AlterLifetime { fvs, fdelta } => {
                let map = |iv: Interval| {
                    let vs = fvs.eval_interval(iv);
                    Interval::new(vs, vs + fdelta.eval_interval(iv))
                };
                match msg {
                    WorkMsg::Ins(mut ev) => {
                        ev.interval = map(ev.interval);
                        push_insert(out, ev);
                    }
                    WorkMsg::Ret { ev, new_end } => {
                        let old_iv = map(ev.interval);
                        let shortened = Interval::new(ev.interval.start, new_end);
                        let new_iv = if shortened.is_empty() {
                            None
                        } else {
                            Some(map(shortened)).filter(|i| !i.is_empty())
                        };
                        match (old_iv.is_empty(), new_iv) {
                            (true, None) => {}
                            (true, Some(n)) => {
                                let mut ev = ev;
                                ev.interval = n;
                                push_insert(out, ev);
                            }
                            (false, None) => {
                                let mut ev = ev;
                                ev.interval = old_iv;
                                out.push(WorkMsg::Ret {
                                    ev,
                                    new_end: old_iv.start,
                                });
                            }
                            (false, Some(n)) => {
                                if n == old_iv {
                                    // e.g. a window whose clipped lifetime
                                    // is unaffected.
                                } else if n.start == old_iv.start && n.end < old_iv.end {
                                    let mut ev = ev;
                                    ev.interval = old_iv;
                                    out.push(WorkMsg::Ret { ev, new_end: n.end });
                                } else {
                                    // Start moved (Ve-anchored mappings):
                                    // remove and re-insert under the same
                                    // internal ID — the boundary's chain
                                    // generations split them, exactly like
                                    // the shell's finish remap.
                                    let mut rev = ev.clone();
                                    rev.interval = old_iv;
                                    out.push(WorkMsg::Ret {
                                        ev: rev,
                                        new_end: old_iv.start,
                                    });
                                    let mut iev = ev;
                                    iev.interval = n;
                                    push_insert(out, iev);
                                }
                            }
                        }
                    }
                }
            }
            FusedStage::Slice { valid, occurrence } => match msg {
                WorkMsg::Ins(mut ev) => {
                    if let Some(iv) = slice_interval(valid, occurrence, ev.interval) {
                        ev.interval = iv;
                        out.push(WorkMsg::Ins(ev));
                    }
                }
                WorkMsg::Ret { ev, new_end } => {
                    let Some(old_iv) = slice_interval(valid, occurrence, ev.interval) else {
                        return;
                    };
                    let shortened = Interval::new(ev.interval.start, new_end);
                    match slice_interval(valid, occurrence, shortened) {
                        Some(n) if n == old_iv => {}
                        Some(n) => {
                            let mut ev = ev;
                            ev.interval = old_iv;
                            out.push(WorkMsg::Ret { ev, new_end: n.end });
                        }
                        None => {
                            let mut ev = ev;
                            ev.interval = old_iv;
                            out.push(WorkMsg::Ret {
                                ev,
                                new_end: old_iv.start,
                            });
                        }
                    }
                }
            },
        }
    }
}

/// `SliceOp::slice` on bare intervals (occurrence is checked against the
/// interval start — the event's `Vs`).
fn slice_interval(
    valid: &Option<Interval>,
    occurrence: &Option<Interval>,
    iv: Interval,
) -> Option<Interval> {
    if let Some(occ) = occurrence {
        if !occ.contains(iv.start) {
            return None;
        }
    }
    let out = match valid {
        Some(v) => iv.intersect(v),
        None => iv,
    };
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

/// Append an insert, dropping empty lifetimes exactly like
/// [`OutputBuffer::insert`] does on every unfused edge.
fn push_insert(out: &mut Vec<WorkMsg>, ev: WorkEv) {
    if !ev.interval.is_empty() {
        out.push(WorkMsg::Ins(ev));
    }
}

/// An event travelling through the fused pipeline: the evolving
/// (id, interval, payload) triple next to the original shared event.
/// `payload: None` means "unchanged from `src`" — the common case for
/// select/slice/alter-lifetime chains, where the gather step can forward
/// the original `Arc` (interval and id permitting) without rebuilding.
#[derive(Clone, Debug)]
struct WorkEv {
    src: Arc<Event>,
    id: EventId,
    interval: Interval,
    payload: Option<Payload>,
}

impl WorkEv {
    fn of(src: Arc<Event>) -> WorkEv {
        WorkEv {
            id: src.id,
            interval: src.interval,
            src,
            payload: None,
        }
    }

    fn payload(&self) -> &Payload {
        self.payload.as_ref().unwrap_or(&self.src.payload)
    }

    /// The output-edge gather: rebuild an `Arc`-shared event, or forward
    /// the original untouched (refcount bump, no allocation).
    fn gather(self) -> Arc<Event> {
        if self.id == self.src.id && self.interval == self.src.interval && self.payload.is_none() {
            self.src
        } else {
            Arc::new(Event {
                id: self.id,
                interval: self.interval,
                root_time: self.src.root_time,
                lineage: self.src.lineage.clone(),
                payload: match self.payload {
                    Some(p) => p,
                    None => self.src.payload.clone(),
                },
            })
        }
    }
}

/// A data message between fused stages (CTIs travel separately, through
/// the boundary watermark cascade).
#[derive(Clone, Debug)]
enum WorkMsg {
    Ins(WorkEv),
    Ret { ev: WorkEv, new_end: TimePoint },
}

impl WorkMsg {
    /// Figure-6 `Sync`: `Vs` for inserts, `new_end` for retractions.
    fn sync(&self) -> TimePoint {
        match self {
            WorkMsg::Ins(ev) => ev.interval.start,
            WorkMsg::Ret { new_end, .. } => *new_end,
        }
    }
}

/// The consistency-monitor emulation at one fused seam: everything the
/// interior shell between two fused stages does that is observable at the
/// collector. See the module docs for the correspondence argument.
struct Boundary {
    /// Declared watermark: max over CTIs received from the upstream stage.
    watermark: TimePoint,
    /// High-water mark of observed syncs (drives timeouts and forgetting).
    max_seen: TimePoint,
    /// Alignment buffer, ordered by (sync, arrival seq).
    align: BTreeMap<(TimePoint, u64), WorkMsg>,
    seq: u64,
    /// Upstream stage's CTI emission dedup (the shell's `last_cti`).
    last_cti: Option<TimePoint>,
    /// Watermark of the most recent guard cleanup. For non-forgetful
    /// specs, a delivered insert is evicted iff its lifetime end is ≤
    /// this, so retraction liveness is one comparison.
    evict_watermark: TimePoint,
    /// Late inserts delivered since the last cleanup whose lifetimes
    /// already ended at or below `evict_watermark` — still alive in the
    /// shell's guard until the next flush. Normally empty.
    recent: HashSet<EventId>,
    /// Exact reorder-guard registry, kept only for forgetful specs where
    /// liveness is not derivable from the eviction watermark (an insert
    /// dropped at the horizon must swallow its later retraction even when
    /// that retraction's lifetime end clears `evict_watermark`).
    seen: Option<HashMap<EventId, TimePoint>>,
    /// Chain generations of the upstream stage's shell (`finish` remap).
    gens: HashMap<EventId, u64>,
    /// Deliveries since the last flush cleanup — the shell's "pending
    /// non-empty" condition deciding whether a flush runs cleanup.
    dirty: bool,
}

impl Boundary {
    fn new(forgetful: bool) -> Boundary {
        Boundary {
            watermark: TimePoint::ZERO,
            max_seen: TimePoint::ZERO,
            align: BTreeMap::new(),
            seq: 0,
            last_cti: None,
            evict_watermark: TimePoint::ZERO,
            recent: HashSet::new(),
            seen: forgetful.then(HashMap::new),
            gens: HashMap::new(),
            dirty: false,
        }
    }

    /// The upstream shell's `finish` remap: rewrite re-inserted IDs to
    /// fresh per-generation identities, bumping the generation on full
    /// removals.
    fn remap(&mut self, msg: &mut WorkMsg) {
        match msg {
            WorkMsg::Ins(ev) => {
                let gen = self.gens.get(&ev.id).copied().unwrap_or(0);
                if gen != 0 {
                    ev.id = generation_id(ev.id, gen);
                }
            }
            WorkMsg::Ret { ev, new_end } => {
                let orig = ev.id;
                let gen = self.gens.get(&orig).copied().unwrap_or(0);
                if gen != 0 {
                    ev.id = generation_id(orig, gen);
                }
                if *new_end <= ev.interval.start {
                    *self.gens.entry(orig).or_insert(0) += 1;
                }
            }
        }
    }

    /// Admit one upstream-stage output: remap, forget, align or deliver,
    /// then release anything due (a data arrival can advance `max_seen`
    /// past a finite blocking deadline). Messages that reach the
    /// downstream stage are appended to `delivered` in delivery order.
    fn admit(&mut self, spec: &ConsistencySpec, mut msg: WorkMsg, delivered: &mut Vec<WorkMsg>) {
        self.remap(&mut msg);
        let sync = msg.sync();
        if spec.is_forgetful() && sync < spec.horizon(self.max_seen) {
            return; // forgotten before the max_seen bump, like the shell
        }
        self.max_seen = TimePoint::max_of(self.max_seen, sync);
        if spec.is_blocking() && sync >= self.watermark {
            self.align.insert((sync, self.seq), msg);
            self.seq += 1;
        } else {
            self.deliver(msg, delivered);
        }
        self.release(spec, delivered);
    }

    /// Hand a message past the reorder guard to the downstream stage.
    fn deliver(&mut self, msg: WorkMsg, delivered: &mut Vec<WorkMsg>) {
        self.dirty = true;
        match &msg {
            WorkMsg::Ins(ev) => {
                if let Some(seen) = &mut self.seen {
                    seen.insert(ev.id, ev.interval.end);
                } else if ev.interval.end <= self.evict_watermark {
                    self.recent.insert(ev.id);
                }
                delivered.push(msg);
            }
            WorkMsg::Ret { ev, .. } => {
                let alive = match &self.seen {
                    Some(seen) => seen.contains_key(&ev.id),
                    None => ev.interval.end > self.evict_watermark || self.recent.contains(&ev.id),
                };
                // A dead retraction is what the shell would park as an
                // orphan that can never replay — swallow it.
                if alive {
                    delivered.push(msg);
                }
            }
        }
    }

    /// Release aligned messages that are covered by the watermark or have
    /// exceeded a finite blocking budget, in (sync, seq) order.
    fn release(&mut self, spec: &ConsistencySpec, delivered: &mut Vec<WorkMsg>) {
        while let Some((&(sync, seq), _)) = self.align.iter().next() {
            let covered = sync < self.watermark;
            let timed_out = !spec.max_blocking.is_infinite()
                && self
                    .max_seen
                    .since(sync)
                    .is_some_and(|held| held >= spec.max_blocking);
            if !covered && !timed_out {
                break;
            }
            let msg = self.align.remove(&(sync, seq)).expect("front entry");
            self.deliver(msg, delivered);
        }
    }

    /// The shell's flush-time guard cleanup: bookkeeping dies with the
    /// watermark. Runs only where the interior shell would have flushed a
    /// non-empty pending run.
    fn cleanup(&mut self) {
        self.dirty = false;
        if self.watermark > TimePoint::ZERO {
            let w = self.watermark;
            self.evict_watermark = w;
            self.recent.clear();
            if let Some(seen) = &mut self.seen {
                seen.retain(|_, ve| *ve > w);
            }
        }
    }

    fn state_size(&self) -> usize {
        self.align.len()
            + self.recent.len()
            + self.seen.as_ref().map_or(0, HashMap::len)
            + self.gens.len()
    }
}

/// A maximal chain of adjacent stateless operators collapsed into one
/// operator node. See the module docs for the execution model and the
/// bit-identity contract.
pub struct FusedStatelessOp {
    stages: Vec<FusedStage>,
    /// One consistency-monitor emulation per interior seam
    /// (`boundaries[i]` sits between `stages[i]` and `stages[i + 1]`).
    boundaries: Vec<Boundary>,
    /// Reusable scratch for the per-message cascade.
    stack: Vec<(usize, WorkMsg)>,
    tmp: Vec<WorkMsg>,
    delivered: Vec<WorkMsg>,
}

impl FusedStatelessOp {
    /// Build a fused node from the stage chain, innermost (closest to the
    /// source) first. `spec` is the plan-wide consistency point the
    /// replaced interior shells would have run at.
    pub fn new(stages: Vec<FusedStage>, spec: ConsistencySpec) -> FusedStatelessOp {
        assert!(
            stages.len() >= 2,
            "fusion collapses chains of at least two stages"
        );
        let boundaries = (0..stages.len() - 1)
            .map(|_| Boundary::new(spec.is_forgetful()))
            .collect();
        FusedStatelessOp {
            stages,
            boundaries,
            stack: Vec::new(),
            tmp: Vec::new(),
            delivered: Vec::new(),
        }
    }

    /// Chain description for plan explains: `select→project→slice`.
    pub fn describe(&self) -> String {
        self.stages
            .iter()
            .map(FusedStage::name)
            .collect::<Vec<_>>()
            .join("→")
    }

    /// Run one admitted input message through the whole chain,
    /// depth-first: each message delivered at a seam is fully propagated
    /// through the remaining stages before its successor, which
    /// reproduces the unfused concatenation order of every interior run.
    fn process(&mut self, msg: WorkMsg, spec: &ConsistencySpec, out: &mut OutputBuffer) {
        let mut stack = std::mem::take(&mut self.stack);
        let mut tmp = std::mem::take(&mut self.tmp);
        let mut delivered = std::mem::take(&mut self.delivered);
        stack.push((0, msg));
        while let Some((si, m)) = stack.pop() {
            if si == self.stages.len() {
                emit(m, out);
                continue;
            }
            tmp.clear();
            self.stages[si].apply(m, &mut tmp);
            if si + 1 == self.stages.len() {
                // Last stage: straight to the output edge; the fused
                // shell's own monitor and finish remap take over.
                while let Some(m) = tmp.pop() {
                    stack.push((si + 1, m));
                }
            } else {
                delivered.clear();
                for m in tmp.drain(..) {
                    self.boundaries[si].admit(spec, m, &mut delivered);
                }
                while let Some(m) = delivered.pop() {
                    stack.push((si + 1, m));
                }
            }
        }
        self.stack = stack;
        self.tmp = tmp;
        self.delivered = delivered;
    }

    /// Propagate released work from boundary `level - 1` onwards (used by
    /// the CTI cascade, which releases into the middle of the chain).
    fn process_from(
        &mut self,
        level: usize,
        inputs: &mut Vec<WorkMsg>,
        spec: &ConsistencySpec,
        out: &mut OutputBuffer,
    ) {
        let mut stack = std::mem::take(&mut self.stack);
        let mut tmp = std::mem::take(&mut self.tmp);
        let mut delivered = std::mem::take(&mut self.delivered);
        while let Some(m) = inputs.pop() {
            stack.push((level, m));
        }
        while let Some((si, m)) = stack.pop() {
            if si == self.stages.len() {
                emit(m, out);
                continue;
            }
            tmp.clear();
            self.stages[si].apply(m, &mut tmp);
            if si + 1 == self.stages.len() {
                while let Some(m) = tmp.pop() {
                    stack.push((si + 1, m));
                }
            } else {
                delivered.clear();
                for m in tmp.drain(..) {
                    self.boundaries[si].admit(spec, m, &mut delivered);
                }
                while let Some(m) = delivered.pop() {
                    stack.push((si + 1, m));
                }
            }
        }
        self.stack = stack;
        self.tmp = tmp;
        self.delivered = delivered;
    }
}

/// The output-edge gather: one `Arc<Event>` construction (or forward) per
/// surviving message, into the fused shell's output buffer.
fn emit(m: WorkMsg, out: &mut OutputBuffer) {
    match m {
        WorkMsg::Ins(ev) => out.insert(ev.gather()),
        WorkMsg::Ret { ev, new_end } => out.retract_to(ev.gather(), new_end),
    }
}

impl OperatorModule for FusedStatelessOp {
    fn name(&self) -> &'static str {
        "fused"
    }

    fn on_insert(&mut self, _input: usize, event: &Event, ctx: &mut OpContext) {
        let spec = ctx.spec;
        self.process(
            WorkMsg::Ins(WorkEv::of(Arc::new(event.clone()))),
            &spec,
            ctx.out,
        );
    }

    fn on_retract(&mut self, _input: usize, r: &Retraction, ctx: &mut OpContext) {
        let spec = ctx.spec;
        self.process(
            WorkMsg::Ret {
                ev: WorkEv::of(r.event.clone()),
                new_end: r.new_end,
            },
            &spec,
            ctx.out,
        );
    }

    /// The fused hot loop: one pass over the run. The leading stage's
    /// interval tests run against the columnar view, so messages a slice
    /// or alter-lifetime head would drop never touch their `Arc<Event>`.
    fn on_batch(&mut self, _input: usize, msgs: &[Message], ctx: &mut OpContext) {
        let spec = ctx.spec;
        let view = ColumnarView::over(msgs);
        ctx.out.reserve(msgs.len());
        for (i, m) in msgs.iter().enumerate() {
            // Columnar pre-filter: decide stage-0 drops from contiguous
            // interval columns. Only drops that the stage kernel decides
            // from intervals alone are safe to take here — payload
            // predicates still need the event.
            let dropped = match &self.stages[0] {
                FusedStage::Slice { valid, occurrence } => match view.kinds[i] {
                    // An insert (or a retraction's pre-image) outside the
                    // slice produces nothing downstream.
                    MessageKind::Insert | MessageKind::Retract => {
                        slice_interval(valid, occurrence, Interval::new(view.vs[i], view.ve[i]))
                            .is_none()
                    }
                    MessageKind::Cti => false,
                },
                FusedStage::AlterLifetime { fvs, fdelta } => match view.kinds[i] {
                    MessageKind::Insert => {
                        let iv = Interval::new(view.vs[i], view.ve[i]);
                        let vs = fvs.eval_interval(iv);
                        Interval::new(vs, vs + fdelta.eval_interval(iv)).is_empty()
                    }
                    _ => false,
                },
                _ => false,
            };
            if dropped {
                continue;
            }
            match m {
                Message::Insert(e) => {
                    self.process(WorkMsg::Ins(WorkEv::of(e.clone())), &spec, ctx.out)
                }
                Message::Retract(r) => self.process(
                    WorkMsg::Ret {
                        ev: WorkEv::of(r.event.clone()),
                        new_end: r.new_end,
                    },
                    &spec,
                    ctx.out,
                ),
                Message::Cti(_) => {
                    debug_assert!(false, "CTIs are consumed by the consistency monitor")
                }
            }
        }
    }

    /// The CTI cascade: the fused shell's watermark advanced (or the
    /// round is closing). Each stage's `map_cti` output is offered to the
    /// next boundary under the shell's strict-increase emission dedup;
    /// an accepted guarantee flushes, observes, releases covered/timed-out
    /// aligned work through the remaining stages, and cleans the guard —
    /// in exactly the order the interior shell would.
    fn on_advance(&mut self, ctx: &mut OpContext) {
        let spec = ctx.spec;
        let mut w = ctx.watermark;
        for i in 0..self.boundaries.len() {
            if w == TimePoint::ZERO {
                // A shell with a zero watermark emits no guarantee, so
                // nothing downstream can change either.
                return;
            }
            let out_cti = self.stages[i].map_cti(w);
            let emitted = out_cti > TimePoint::ZERO
                && self.boundaries[i].last_cti.is_none_or(|c| out_cti > c);
            if emitted {
                let b = &mut self.boundaries[i];
                b.last_cti = Some(out_cti);
                // Pre-observe flush: deliveries since the last flush get
                // their guard cleanup under the old watermark first.
                if b.dirty {
                    b.cleanup();
                }
                if out_cti > b.watermark {
                    b.watermark = out_cti;
                }
                b.max_seen = TimePoint::max_of(b.max_seen, b.watermark);
                let mut delivered = std::mem::take(&mut self.delivered);
                self.boundaries[i].release(&spec, &mut delivered);
                self.delivered = Vec::new();
                let mut released = delivered;
                self.process_from(i + 1, &mut released, &spec, ctx.out);
                released.clear();
                self.delivered = released;
                // Post-release flush: released deliveries clean under the
                // new watermark.
                if self.boundaries[i].dirty {
                    self.boundaries[i].cleanup();
                }
            }
            w = self.boundaries[i].watermark;
        }
    }

    /// End of the shell round: each interior shell would run its
    /// end-of-batch flush now; dirty boundaries get their guard cleanup.
    fn on_round_end(&mut self) {
        for b in &mut self.boundaries {
            if b.dirty {
                b.cleanup();
            }
        }
    }

    fn state_size(&self) -> usize {
        self.boundaries.iter().map(Boundary::state_size).sum()
    }

    /// Composition of the per-stage guarantees: what the last shell of
    /// the unfused chain would declare for an input guarantee `watermark`.
    fn map_cti(&self, watermark: TimePoint) -> TimePoint {
        self.stages.iter().fold(watermark, |w, s| s.map_cti(w))
    }

    fn fused_stages(&self) -> usize {
        self.stages.len()
    }
}
