//! Fused stateless pipelines: one pass per run instead of one queue hop
//! per operator.
//!
//! The plan-time fusion pass collapses every maximal chain of adjacent
//! single-input stateless operators (select, project, alter-lifetime,
//! slice) into one [`FusedStatelessOp`]. The fused node evaluates the
//! composed [`FusedStage`] IR in a single tight loop per delivery run:
//! no intermediate `MessageBatch` is built, no queue hop, stamp sort or
//! shell admission happens between fused stages, and intermediate events
//! are never materialised — an internal working record (`WorkEv`)
//! carries the evolving (id, interval, payload) triple next to the
//! original `Arc<Event>`, and
//! a gather step rebuilds an `Arc`-shared message only at the fused
//! node's output edge.
//!
//! # The collector-level bit-identity contract
//!
//! Fusion changes graph shape, so per-edge tapes for the collapsed
//! interior no longer exist; what must be preserved exactly is the
//! *collector output* — stamped tape, subscription deltas, output CTIs —
//! at every ⟨M, B⟩ consistency point (see the third contract strength in
//! [`crate::operator`]'s module docs). The interior shells the fused node
//! replaces were not pass-through plumbing: each ran a consistency
//! monitor. An internal `Boundary` therefore emulates, per fused seam,
//! everything
//! an interior [`crate::OperatorShell`] does that is observable
//! downstream:
//!
//! * **chain generations** — the upstream shell's `finish` remap of
//!   re-inserted IDs to fresh per-generation identities;
//! * **forgetting** — weak-consistency drops below the memory horizon,
//!   checked before the `max_seen` bump exactly like the shell;
//! * **alignment** — blocking specs buffer uncovered messages in
//!   `(sync, seq)` order and release them on coverage or timeout;
//! * **the reorder guard** — retractions whose inserts were never
//!   delivered (or were evicted by a flush cleanup) are swallowed. At an
//!   interior seam the shell's orphan parking can never replay (interior
//!   IDs are unique per chain generation and an insert always precedes
//!   its retractions), so parking degenerates to swallowing. For
//!   non-forgetful specs the guard needs no ID registry at all: an
//!   insert is evicted iff its lifetime ended at or below the watermark
//!   of the last flush cleanup, so one comparison against
//!   `evict_watermark` plus a (normally empty) `recent` set of
//!   late-delivered short-lived inserts decides retraction liveness.
//!   Forgetful specs keep the exact `seen` map instead;
//! * **CTI cadence** — watermarks advance only through the per-stage
//!   `map_cti` composition, with the shell's strict-increase emission
//!   dedup, and releases triggered by a guarantee flow through the
//!   remaining stages *at their position in the stream*;
//! * **flush-time cleanup** — guard eviction runs where the interior
//!   shell would have flushed: before observing a CTI (old watermark),
//!   after a releasing CTI (new watermark), and at end of round
//!   ([`crate::OperatorModule::on_round_end`]).
//!
//! The first stage reads the run through the struct-of-arrays
//! [`ColumnarView`], so inserts and retractions a leading slice or
//! alter-lifetime stage would drop are rejected from contiguous interval
//! columns without ever touching the per-message `Arc<Event>`.
//!
//! # Compiled payload kernels
//!
//! By default the payload side of the chain is **compiled at register
//! time** instead of interpreted per message (`CEDR_COMPILE=0` /
//! [`EngineConfig { compile_kernels }`] falls back to the interpreted
//! stage IR above). Every select predicate is composed through the
//! projections upstream of it ([`Pred::compose_after_project`]), so all
//! compiled kernels read the *chain-original* payload: each delivery run
//! builds typed [`PayloadColumns`] once — restricted to the attributes
//! the select sweeps actually read — every select becomes one
//! [`PredKernel`] selection-bitmap sweep over those columns (counted in
//! [`OpStats::compiled_kernel_runs`]), with each later select swept only
//! over the rows the previous one kept, project stages become no-ops in
//! flight, and the full composed projection is evaluated by
//! [`ScalarKernel`]s only at the output edge — once per message that
//! survives the whole chain, against the payload it still holds. A chain
//! with no project stage never materialises a payload at all, so the
//! gather still forwards the original `Arc<Event>` whenever id and
//! interval survive. Work messages carry
//! their run-row index; a message that leaves its run (parked in a
//! boundary's alignment buffer for a later release) is detached from the
//! columns and falls back to the composed kernels' interpreted form,
//! which is bit-identical by construction (see `cedr_algebra::kernel`).
//! Compilation changes evaluation strategy only — admissions, boundary
//! bookkeeping and emission order are untouched — so the contract stays
//! the same collector-level bit-identity, now at every
//! ⟨consistency, workers, compiled?⟩ point.
//!
//! [`EngineConfig { compile_kernels }`]: FusedStatelessOp::new
//! [`OpStats::compiled_kernel_runs`]: crate::OpStats::compiled_kernel_runs
//! [`Pred::compose_after_project`]: cedr_algebra::Pred::compose_after_project

use crate::consistency::ConsistencySpec;
use crate::operator::{generation_id, OpContext, OperatorModule, OutputBuffer};
use cedr_algebra::{DeltaFn, Pred, PredKernel, Scalar, ScalarKernel, VsFn};
use cedr_streams::batch::{payload_columns_over_where, ColumnarView, MessageKind};
use cedr_streams::{Message, Retraction};
use cedr_temporal::{Event, EventId, Interval, Payload, PayloadColumns, TimePoint};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// One stage of a fused pipeline: the IR the planner lowers the four
/// stateless operator families into.
#[derive(Clone, Debug)]
pub enum FusedStage {
    /// `σ_p` — payload predicate filter.
    Select(Pred),
    /// `π` — payload transformation.
    Project(Vec<Scalar>),
    /// `Π_{fVs, f∆}` — lifetime mapping (Definition 12).
    AlterLifetime { fvs: VsFn, fdelta: DeltaFn },
    /// `#`/`@` — valid-time clip and occurrence-time filter.
    Slice {
        valid: Option<Interval>,
        occurrence: Option<Interval>,
    },
}

impl FusedStage {
    /// Stage name as it appears in plan explains.
    pub fn name(&self) -> &'static str {
        match self {
            FusedStage::Select(_) => "select",
            FusedStage::Project(_) => "project",
            FusedStage::AlterLifetime { .. } => "alter_lifetime",
            FusedStage::Slice { .. } => "slice",
        }
    }

    /// Mirror of the stage operator's shell-level `map_cti`.
    fn map_cti(&self, watermark: TimePoint) -> TimePoint {
        match self {
            FusedStage::AlterLifetime { fvs, .. } => {
                if watermark.is_infinite() {
                    return watermark;
                }
                match fvs {
                    VsFn::Vs | VsFn::Ve => watermark,
                    VsFn::HopVs { period } => {
                        let p = (*period).max(1);
                        TimePoint::new(watermark.0 / p * p)
                    }
                    VsFn::Const(t) => TimePoint::min_of(watermark, *t),
                }
            }
            _ => watermark,
        }
    }

    /// Apply the stage kernel to one work message, appending outputs (at
    /// most two: a retraction split) to `out`. Mirrors the corresponding
    /// `OperatorModule` in `stateless` exactly, including the output
    /// buffer's empty-lifetime drop for inserts. `kctx` is `Some` on the
    /// compiled path: selects read their stage's precomputed selection
    /// bitmap (or the composed kernel's interpreted form for rows without
    /// column backing) and projects defer payload materialisation to the
    /// output gather — both verdict- and value-identical to the
    /// interpreted arms.
    fn apply(&self, si: usize, kctx: Option<&KernelCtx<'_>>, msg: WorkMsg, out: &mut Vec<WorkMsg>) {
        match self {
            FusedStage::Select(pred) => {
                let keep = |ev: &WorkEv| match kctx {
                    // Compiled: the composed predicate over the original
                    // payload. `ev.payload()` *is* the original payload
                    // here — compiled projects never materialise.
                    Some(k) => {
                        let kernel = k.chain.selects[si]
                            .as_ref()
                            .expect("select stage compiles a kernel");
                        match (ev.row, k.cols) {
                            (Some(i), Some(cols)) if i < cols.rows() => k.bitmaps[si][i],
                            _ => kernel.eval_row(ev.payload()),
                        }
                    }
                    None => pred.eval_payload(ev.payload()),
                };
                match msg {
                    WorkMsg::Ins(ev) => {
                        if keep(&ev) {
                            push_insert(out, ev);
                        }
                    }
                    WorkMsg::Ret { ev, new_end } => {
                        // An empty-lifetime event's insert was dropped by the
                        // output buffer on the unfused edge, so its retraction
                        // parks there as an orphan that can never replay —
                        // swallowing it here is collector-identical.
                        if !ev.interval.is_empty() && keep(&ev) {
                            out.push(WorkMsg::Ret { ev, new_end });
                        }
                    }
                }
            }
            FusedStage::Project(exprs) => {
                let (mut ev, ret) = match msg {
                    WorkMsg::Ins(ev) => (ev, None),
                    WorkMsg::Ret { ev, new_end } => {
                        if ev.interval.is_empty() {
                            // Same dead-orphan reasoning as the select arm.
                            return;
                        }
                        (ev, Some(new_end))
                    }
                };
                if kctx.is_none() {
                    // Interpreted: materialise the stage's payload now.
                    // Compiled chains evaluate the *composed* projection at
                    // the output edge instead, only for survivors.
                    let payload = Payload::from_values(
                        exprs.iter().map(|x| x.eval_payload(ev.payload())).collect(),
                    );
                    ev.payload = Some(payload);
                }
                match ret {
                    None => push_insert(out, ev),
                    Some(new_end) => out.push(WorkMsg::Ret { ev, new_end }),
                }
            }
            FusedStage::AlterLifetime { fvs, fdelta } => {
                let map = |iv: Interval| {
                    let vs = fvs.eval_interval(iv);
                    Interval::new(vs, vs + fdelta.eval_interval(iv))
                };
                match msg {
                    WorkMsg::Ins(mut ev) => {
                        ev.interval = map(ev.interval);
                        push_insert(out, ev);
                    }
                    WorkMsg::Ret { ev, new_end } => {
                        let old_iv = map(ev.interval);
                        let shortened = Interval::new(ev.interval.start, new_end);
                        let new_iv = if shortened.is_empty() {
                            None
                        } else {
                            Some(map(shortened)).filter(|i| !i.is_empty())
                        };
                        match (old_iv.is_empty(), new_iv) {
                            (true, None) => {}
                            (true, Some(n)) => {
                                let mut ev = ev;
                                ev.interval = n;
                                push_insert(out, ev);
                            }
                            (false, None) => {
                                let mut ev = ev;
                                ev.interval = old_iv;
                                out.push(WorkMsg::Ret {
                                    ev,
                                    new_end: old_iv.start,
                                });
                            }
                            (false, Some(n)) => {
                                if n == old_iv {
                                    // e.g. a window whose clipped lifetime
                                    // is unaffected.
                                } else if n.start == old_iv.start && n.end < old_iv.end {
                                    let mut ev = ev;
                                    ev.interval = old_iv;
                                    out.push(WorkMsg::Ret { ev, new_end: n.end });
                                } else {
                                    // Start moved (Ve-anchored mappings):
                                    // remove and re-insert under the same
                                    // internal ID — the boundary's chain
                                    // generations split them, exactly like
                                    // the shell's finish remap.
                                    let mut rev = ev.clone();
                                    rev.interval = old_iv;
                                    out.push(WorkMsg::Ret {
                                        ev: rev,
                                        new_end: old_iv.start,
                                    });
                                    let mut iev = ev;
                                    iev.interval = n;
                                    push_insert(out, iev);
                                }
                            }
                        }
                    }
                }
            }
            FusedStage::Slice { valid, occurrence } => match msg {
                WorkMsg::Ins(mut ev) => {
                    if let Some(iv) = slice_interval(valid, occurrence, ev.interval) {
                        ev.interval = iv;
                        out.push(WorkMsg::Ins(ev));
                    }
                }
                WorkMsg::Ret { ev, new_end } => {
                    let Some(old_iv) = slice_interval(valid, occurrence, ev.interval) else {
                        return;
                    };
                    let shortened = Interval::new(ev.interval.start, new_end);
                    match slice_interval(valid, occurrence, shortened) {
                        Some(n) if n == old_iv => {}
                        Some(n) => {
                            let mut ev = ev;
                            ev.interval = old_iv;
                            out.push(WorkMsg::Ret { ev, new_end: n.end });
                        }
                        None => {
                            let mut ev = ev;
                            ev.interval = old_iv;
                            out.push(WorkMsg::Ret {
                                ev,
                                new_end: old_iv.start,
                            });
                        }
                    }
                }
            },
        }
    }
}

/// `SliceOp::slice` on bare intervals (occurrence is checked against the
/// interval start — the event's `Vs`).
fn slice_interval(
    valid: &Option<Interval>,
    occurrence: &Option<Interval>,
    iv: Interval,
) -> Option<Interval> {
    if let Some(occ) = occurrence {
        if !occ.contains(iv.start) {
            return None;
        }
    }
    let out = match valid {
        Some(v) => iv.intersect(v),
        None => iv,
    };
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

/// Append an insert, dropping empty lifetimes exactly like
/// [`OutputBuffer::insert`] does on every unfused edge.
fn push_insert(out: &mut Vec<WorkMsg>, ev: WorkEv) {
    if !ev.interval.is_empty() {
        out.push(WorkMsg::Ins(ev));
    }
}

/// The register-time kernel compile of one fused chain: every select
/// predicate composed through the projections upstream of it (so all
/// kernels read the chain-original payload), plus the full composed
/// projection for the output gather.
struct CompiledChain {
    /// `selects[si]` is the compiled, composed predicate of stage `si`
    /// iff that stage is a select.
    selects: Vec<Option<PredKernel>>,
    /// The whole chain's composed projection; `None` iff the chain has no
    /// project stage — the payload passes through untouched and the
    /// gather can still forward the original `Arc<Event>`.
    project: Option<Vec<ScalarKernel>>,
    /// `used[j]` iff some select sweep reads original-payload column `j`:
    /// the per-run column build materialises exactly these columns and
    /// leaves the rest as all-null placeholders nothing will read
    /// (projection fields are evaluated row-wise at the gather and need
    /// no column backing).
    used: Vec<bool>,
}

impl CompiledChain {
    /// Does some select sweep read original-payload column `j`?
    fn uses(&self, j: usize) -> bool {
        self.used.get(j).copied().unwrap_or(false)
    }
}

fn compile_chain(stages: &[FusedStage]) -> CompiledChain {
    // The projection composed so far, as expressions over the original
    // payload (`None` = identity).
    let mut cur: Option<Vec<Scalar>> = None;
    let mut selects = Vec::with_capacity(stages.len());
    for stage in stages {
        match stage {
            FusedStage::Select(p) => {
                let composed = match &cur {
                    Some(proj) => p.compose_after_project(proj),
                    None => p.clone(),
                };
                selects.push(Some(PredKernel::compile(&composed)));
            }
            FusedStage::Project(exprs) => {
                let composed: Vec<Scalar> = match &cur {
                    Some(prev) => exprs
                        .iter()
                        .map(|x| x.compose_after_project(prev))
                        .collect(),
                    None => exprs.clone(),
                };
                cur = Some(composed);
                selects.push(None);
            }
            FusedStage::AlterLifetime { .. } | FusedStage::Slice { .. } => selects.push(None),
        }
    }
    let project: Option<Vec<ScalarKernel>> =
        cur.map(|exprs| exprs.iter().map(ScalarKernel::compile).collect());
    // Every column a *sweep* reads — all selects are composed over the
    // chain-original payload, so their field sets share one index space.
    // Projection fields stay out: the output gather evaluates the
    // composed projection row-wise against the original payload, so
    // project-only attributes never need column backing.
    let mut fields = Vec::new();
    for kernel in selects.iter().flatten() {
        kernel.pred().payload_fields(&mut fields);
    }
    let mut used = vec![false; fields.iter().map(|j| j + 1).max().unwrap_or(0)];
    for j in fields {
        used[j] = true;
    }
    CompiledChain {
        selects,
        project,
        used,
    }
}

/// The per-run compiled-execution context threaded through stage
/// application: the register-time kernels, the current run's payload
/// columns (absent on the per-message path) and the per-select-stage
/// selection bitmaps swept over them.
struct KernelCtx<'a> {
    chain: &'a CompiledChain,
    cols: Option<&'a PayloadColumns>,
    bitmaps: &'a [Vec<bool>],
}

/// An event travelling through the fused pipeline: the evolving
/// (id, interval, payload) triple next to the original shared event.
/// `payload: None` means "unchanged from `src`" — the common case for
/// select/slice/alter-lifetime chains, where the gather step can forward
/// the original `Arc` (interval and id permitting) without rebuilding.
#[derive(Clone, Debug)]
struct WorkEv {
    src: Arc<Event>,
    id: EventId,
    interval: Interval,
    payload: Option<Payload>,
    /// Index of this event's row in the current delivery run's payload
    /// columns (compiled path only). Valid only while that run is being
    /// processed: a message that leaves its run — parked in a boundary's
    /// alignment buffer — is detached and falls back to the composed
    /// kernels' interpreted form on `src.payload`.
    row: Option<usize>,
}

impl WorkEv {
    fn of(src: Arc<Event>) -> WorkEv {
        WorkEv {
            id: src.id,
            interval: src.interval,
            src,
            payload: None,
            row: None,
        }
    }

    fn with_row(mut self, row: Option<usize>) -> WorkEv {
        self.row = row;
        self
    }

    fn payload(&self) -> &Payload {
        self.payload.as_ref().unwrap_or(&self.src.payload)
    }

    /// The output-edge gather: rebuild an `Arc`-shared event, or forward
    /// the original untouched (refcount bump, no allocation).
    fn gather(self) -> Arc<Event> {
        if self.id == self.src.id && self.interval == self.src.interval && self.payload.is_none() {
            self.src
        } else {
            Arc::new(Event {
                id: self.id,
                interval: self.interval,
                root_time: self.src.root_time,
                lineage: self.src.lineage.clone(),
                payload: match self.payload {
                    Some(p) => p,
                    None => self.src.payload.clone(),
                },
            })
        }
    }
}

/// A data message between fused stages (CTIs travel separately, through
/// the boundary watermark cascade).
#[derive(Clone, Debug)]
enum WorkMsg {
    Ins(WorkEv),
    Ret { ev: WorkEv, new_end: TimePoint },
}

impl WorkMsg {
    /// Figure-6 `Sync`: `Vs` for inserts, `new_end` for retractions.
    fn sync(&self) -> TimePoint {
        match self {
            WorkMsg::Ins(ev) => ev.interval.start,
            WorkMsg::Ret { new_end, .. } => *new_end,
        }
    }

    /// Detach from the current run's payload columns: the message is
    /// about to outlive them (alignment parking), so compiled stages must
    /// fall back to the composed kernels' interpreted form.
    fn detach(&mut self) {
        match self {
            WorkMsg::Ins(ev) | WorkMsg::Ret { ev, .. } => ev.row = None,
        }
    }
}

/// The consistency-monitor emulation at one fused seam: everything the
/// interior shell between two fused stages does that is observable at the
/// collector. See the module docs for the correspondence argument.
struct Boundary {
    /// Declared watermark: max over CTIs received from the upstream stage.
    watermark: TimePoint,
    /// High-water mark of observed syncs (drives timeouts and forgetting).
    max_seen: TimePoint,
    /// Alignment buffer, ordered by (sync, arrival seq).
    align: BTreeMap<(TimePoint, u64), WorkMsg>,
    seq: u64,
    /// Upstream stage's CTI emission dedup (the shell's `last_cti`).
    last_cti: Option<TimePoint>,
    /// Watermark of the most recent guard cleanup. For non-forgetful
    /// specs, a delivered insert is evicted iff its lifetime end is ≤
    /// this, so retraction liveness is one comparison.
    evict_watermark: TimePoint,
    /// Late inserts delivered since the last cleanup whose lifetimes
    /// already ended at or below `evict_watermark` — still alive in the
    /// shell's guard until the next flush. Normally empty.
    recent: HashSet<EventId>,
    /// Exact reorder-guard registry, kept only for forgetful specs where
    /// liveness is not derivable from the eviction watermark (an insert
    /// dropped at the horizon must swallow its later retraction even when
    /// that retraction's lifetime end clears `evict_watermark`).
    seen: Option<HashMap<EventId, TimePoint>>,
    /// Chain generations of the upstream stage's shell (`finish` remap).
    gens: HashMap<EventId, u64>,
    /// Deliveries since the last flush cleanup — the shell's "pending
    /// non-empty" condition deciding whether a flush runs cleanup.
    dirty: bool,
}

impl Boundary {
    fn new(forgetful: bool) -> Boundary {
        Boundary {
            watermark: TimePoint::ZERO,
            max_seen: TimePoint::ZERO,
            align: BTreeMap::new(),
            seq: 0,
            last_cti: None,
            evict_watermark: TimePoint::ZERO,
            recent: HashSet::new(),
            seen: forgetful.then(HashMap::new),
            gens: HashMap::new(),
            dirty: false,
        }
    }

    /// The upstream shell's `finish` remap: rewrite re-inserted IDs to
    /// fresh per-generation identities, bumping the generation on full
    /// removals.
    fn remap(&mut self, msg: &mut WorkMsg) {
        match msg {
            WorkMsg::Ins(ev) => {
                let gen = self.gens.get(&ev.id).copied().unwrap_or(0);
                if gen != 0 {
                    ev.id = generation_id(ev.id, gen);
                }
            }
            WorkMsg::Ret { ev, new_end } => {
                let orig = ev.id;
                let gen = self.gens.get(&orig).copied().unwrap_or(0);
                if gen != 0 {
                    ev.id = generation_id(orig, gen);
                }
                if *new_end <= ev.interval.start {
                    *self.gens.entry(orig).or_insert(0) += 1;
                }
            }
        }
    }

    /// Admit one upstream-stage output: remap, forget, align or deliver,
    /// then release anything due (a data arrival can advance `max_seen`
    /// past a finite blocking deadline). Messages that reach the
    /// downstream stage are appended to `delivered` in delivery order.
    fn admit(&mut self, spec: &ConsistencySpec, mut msg: WorkMsg, delivered: &mut Vec<WorkMsg>) {
        self.remap(&mut msg);
        let sync = msg.sync();
        if spec.is_forgetful() && sync < spec.horizon(self.max_seen) {
            return; // forgotten before the max_seen bump, like the shell
        }
        self.max_seen = TimePoint::max_of(self.max_seen, sync);
        if spec.is_blocking() && sync >= self.watermark {
            // The message may be released rounds later, when its run's
            // payload columns are gone — detach its row reference.
            msg.detach();
            self.align.insert((sync, self.seq), msg);
            self.seq += 1;
        } else {
            self.deliver(msg, delivered);
        }
        self.release(spec, delivered);
    }

    /// Hand a message past the reorder guard to the downstream stage.
    fn deliver(&mut self, msg: WorkMsg, delivered: &mut Vec<WorkMsg>) {
        self.dirty = true;
        match &msg {
            WorkMsg::Ins(ev) => {
                if let Some(seen) = &mut self.seen {
                    seen.insert(ev.id, ev.interval.end);
                } else if ev.interval.end <= self.evict_watermark {
                    self.recent.insert(ev.id);
                }
                delivered.push(msg);
            }
            WorkMsg::Ret { ev, .. } => {
                let alive = match &self.seen {
                    Some(seen) => seen.contains_key(&ev.id),
                    None => ev.interval.end > self.evict_watermark || self.recent.contains(&ev.id),
                };
                // A dead retraction is what the shell would park as an
                // orphan that can never replay — swallow it.
                if alive {
                    delivered.push(msg);
                }
            }
        }
    }

    /// Release aligned messages that are covered by the watermark or have
    /// exceeded a finite blocking budget, in (sync, seq) order.
    fn release(&mut self, spec: &ConsistencySpec, delivered: &mut Vec<WorkMsg>) {
        while let Some((&(sync, seq), _)) = self.align.iter().next() {
            let covered = sync < self.watermark;
            let timed_out = !spec.max_blocking.is_infinite()
                && self
                    .max_seen
                    .since(sync)
                    .is_some_and(|held| held >= spec.max_blocking);
            if !covered && !timed_out {
                break;
            }
            let msg = self.align.remove(&(sync, seq)).expect("front entry");
            self.deliver(msg, delivered);
        }
    }

    /// The shell's flush-time guard cleanup: bookkeeping dies with the
    /// watermark. Runs only where the interior shell would have flushed a
    /// non-empty pending run.
    fn cleanup(&mut self) {
        self.dirty = false;
        if self.watermark > TimePoint::ZERO {
            let w = self.watermark;
            self.evict_watermark = w;
            self.recent.clear();
            if let Some(seen) = &mut self.seen {
                seen.retain(|_, ve| *ve > w);
            }
        }
    }

    fn state_size(&self) -> usize {
        self.align.len()
            + self.recent.len()
            + self.seen.as_ref().map_or(0, HashMap::len)
            + self.gens.len()
    }
}

/// A maximal chain of adjacent stateless operators collapsed into one
/// operator node. See the module docs for the execution model and the
/// bit-identity contract.
pub struct FusedStatelessOp {
    stages: Vec<FusedStage>,
    /// The register-time kernel compile of the chain; `None` on the
    /// interpreted escape hatch (`CEDR_COMPILE=0`).
    compiled: Option<CompiledChain>,
    /// The current delivery run's payload columns (compiled path only;
    /// dropped at the end of every run).
    cols: Option<PayloadColumns>,
    /// `bitmaps[si]`: stage `si`'s selection bitmap over `cols` (empty
    /// for non-select stages).
    bitmaps: Vec<Vec<bool>>,
    /// One consistency-monitor emulation per interior seam
    /// (`boundaries[i]` sits between `stages[i]` and `stages[i + 1]`).
    boundaries: Vec<Boundary>,
    /// Reusable scratch for the per-message cascade.
    stack: Vec<(usize, WorkMsg)>,
    tmp: Vec<WorkMsg>,
    delivered: Vec<WorkMsg>,
}

impl FusedStatelessOp {
    /// Build a fused node from the stage chain, innermost (closest to the
    /// source) first. `spec` is the plan-wide consistency point the
    /// replaced interior shells would have run at; `compile` lifts the
    /// payload side of the chain into column kernels at register time
    /// (the `EngineConfig { compile_kernels }` / `CEDR_COMPILE` switch).
    pub fn new(stages: Vec<FusedStage>, spec: ConsistencySpec, compile: bool) -> FusedStatelessOp {
        assert!(
            stages.len() >= 2,
            "fusion collapses chains of at least two stages"
        );
        let boundaries = (0..stages.len() - 1)
            .map(|_| Boundary::new(spec.is_forgetful()))
            .collect();
        let compiled = compile.then(|| compile_chain(&stages));
        let bitmaps = vec![Vec::new(); stages.len()];
        FusedStatelessOp {
            stages,
            compiled,
            cols: None,
            bitmaps,
            boundaries,
            stack: Vec::new(),
            tmp: Vec::new(),
            delivered: Vec::new(),
        }
    }

    /// Is the compiled fast path live on this node?
    pub fn compiled_kernels(&self) -> bool {
        self.compiled.is_some()
    }

    /// Chain description for plan explains: `select→project→slice`.
    pub fn describe(&self) -> String {
        self.stages
            .iter()
            .map(FusedStage::name)
            .collect::<Vec<_>>()
            .join("→")
    }

    /// The compiled-execution context over this node's current state.
    fn kctx(&self) -> Option<KernelCtx<'_>> {
        self.compiled.as_ref().map(|chain| KernelCtx {
            chain,
            cols: self.cols.as_ref(),
            bitmaps: &self.bitmaps,
        })
    }

    /// Run one admitted input message through the whole chain,
    /// depth-first: each message delivered at a seam is fully propagated
    /// through the remaining stages before its successor, which
    /// reproduces the unfused concatenation order of every interior run.
    fn process(&mut self, msg: WorkMsg, spec: &ConsistencySpec, out: &mut OutputBuffer) {
        let mut stack = std::mem::take(&mut self.stack);
        stack.push((0, msg));
        self.drain(&mut stack, spec, out);
        self.stack = stack;
    }

    /// Propagate released work from boundary `level - 1` onwards (used by
    /// the CTI cascade, which releases into the middle of the chain).
    fn process_from(
        &mut self,
        level: usize,
        inputs: &mut Vec<WorkMsg>,
        spec: &ConsistencySpec,
        out: &mut OutputBuffer,
    ) {
        let mut stack = std::mem::take(&mut self.stack);
        while let Some(m) = inputs.pop() {
            stack.push((level, m));
        }
        self.drain(&mut stack, spec, out);
        self.stack = stack;
    }

    /// The depth-first cascade shared by [`FusedStatelessOp::process`]
    /// and [`FusedStatelessOp::process_from`].
    fn drain(
        &mut self,
        stack: &mut Vec<(usize, WorkMsg)>,
        spec: &ConsistencySpec,
        out: &mut OutputBuffer,
    ) {
        let mut tmp = std::mem::take(&mut self.tmp);
        let mut delivered = std::mem::take(&mut self.delivered);
        while let Some((si, m)) = stack.pop() {
            if si == self.stages.len() {
                emit(m, self.kctx().as_ref(), out);
                continue;
            }
            tmp.clear();
            let kctx = self.kctx();
            self.stages[si].apply(si, kctx.as_ref(), m, &mut tmp);
            if si + 1 == self.stages.len() {
                // Last stage: straight to the output edge; the fused
                // shell's own monitor and finish remap take over.
                while let Some(m) = tmp.pop() {
                    stack.push((si + 1, m));
                }
            } else {
                delivered.clear();
                for m in tmp.drain(..) {
                    self.boundaries[si].admit(spec, m, &mut delivered);
                }
                while let Some(m) = delivered.pop() {
                    stack.push((si + 1, m));
                }
            }
        }
        self.tmp = tmp;
        self.delivered = delivered;
    }
}

/// The output-edge gather: one `Arc<Event>` construction (or forward) per
/// surviving message, into the fused shell's output buffer. On the
/// compiled path this is also where the chain's composed projection is
/// finally evaluated — once, for survivors only, against the original
/// payload the message still holds (`ev.payload()` is chain-original
/// here: compiled projects never materialise in flight). Evaluating the
/// composed kernels row-wise keeps project-only attributes out of the
/// per-run column build — survivors are the minority, and every
/// non-survivor would otherwise pay for columns only this gather reads.
fn emit(m: WorkMsg, kctx: Option<&KernelCtx<'_>>, out: &mut OutputBuffer) {
    let (mut ev, ret) = match m {
        WorkMsg::Ins(ev) => (ev, None),
        WorkMsg::Ret { ev, new_end } => (ev, Some(new_end)),
    };
    if let Some(k) = kctx {
        if let Some(project) = &k.chain.project {
            debug_assert!(ev.payload.is_none(), "compiled stages defer the payload");
            let payload = ev.payload();
            let values = project.iter().map(|x| x.eval_row(payload)).collect();
            ev.payload = Some(Payload::from_values(values));
        }
    }
    match ret {
        None => out.insert(ev.gather()),
        Some(new_end) => out.retract_to(ev.gather(), new_end),
    }
}

impl OperatorModule for FusedStatelessOp {
    fn name(&self) -> &'static str {
        "fused"
    }

    fn on_insert(&mut self, _input: usize, event: &Event, ctx: &mut OpContext) {
        let spec = ctx.spec;
        self.process(
            WorkMsg::Ins(WorkEv::of(Arc::new(event.clone()))),
            &spec,
            ctx.out,
        );
    }

    fn on_retract(&mut self, _input: usize, r: &Retraction, ctx: &mut OpContext) {
        let spec = ctx.spec;
        self.process(
            WorkMsg::Ret {
                ev: WorkEv::of(r.event.clone()),
                new_end: r.new_end,
            },
            &spec,
            ctx.out,
        );
    }

    /// The fused hot loop: one pass over the run. The leading stage's
    /// interval tests run against the columnar view, so messages a slice
    /// or alter-lifetime head would drop never touch their `Arc<Event>`;
    /// on the compiled path the run's payload columns are built once and
    /// every select stage's selection bitmap is swept up front, so a
    /// leading select prefilters from its bitmap the same way.
    fn on_batch(&mut self, _input: usize, msgs: &[Message], ctx: &mut OpContext) {
        let spec = ctx.spec;
        let view = ColumnarView::over(msgs);
        if let Some(chain) = &self.compiled {
            let cols = payload_columns_over_where(msgs, |j| chain.uses(j));
            // Later selects sweep under the previous select's bitmap as a
            // row mask: a row only reaches stage `si` having passed every
            // earlier select, so masked-out rows are never read there and
            // the expensive sweep shapes skip them outright.
            let mut prev: Option<usize> = None;
            for (si, select) in chain.selects.iter().enumerate() {
                if let Some(kernel) = select {
                    let (done, rest) = self.bitmaps.split_at_mut(si);
                    let mask = prev.map(|p| done[p].as_slice());
                    kernel.sweep_where(&cols, mask, &mut rest[0]);
                    ctx.effort.compiled_kernel_runs += 1;
                    prev = Some(si);
                }
            }
            self.cols = Some(cols);
        }
        ctx.out.reserve(msgs.len());
        for (i, m) in msgs.iter().enumerate() {
            // Columnar pre-filter: decide stage-0 drops from contiguous
            // columns. Interval drops (slice / alter-lifetime heads) come
            // from the temporal view; a compiled leading select drops
            // straight from its selection bitmap. Only stage-0 drops are
            // safe here — a message dropped at a deeper stage still bumps
            // the interior boundaries' bookkeeping on the way.
            let dropped = match &self.stages[0] {
                FusedStage::Select(_) if self.compiled.is_some() => match view.kinds[i] {
                    // A pred-false insert produces nothing; a pred-false
                    // retraction is swallowed (its pre-image evaluates the
                    // same payload row).
                    MessageKind::Insert | MessageKind::Retract => !self.bitmaps[0][i],
                    MessageKind::Cti => false,
                },
                FusedStage::Slice { valid, occurrence } => match view.kinds[i] {
                    // An insert (or a retraction's pre-image) outside the
                    // slice produces nothing downstream.
                    MessageKind::Insert | MessageKind::Retract => {
                        slice_interval(valid, occurrence, Interval::new(view.vs[i], view.ve[i]))
                            .is_none()
                    }
                    MessageKind::Cti => false,
                },
                FusedStage::AlterLifetime { fvs, fdelta } => match view.kinds[i] {
                    MessageKind::Insert => {
                        let iv = Interval::new(view.vs[i], view.ve[i]);
                        let vs = fvs.eval_interval(iv);
                        Interval::new(vs, vs + fdelta.eval_interval(iv)).is_empty()
                    }
                    _ => false,
                },
                _ => false,
            };
            if dropped {
                continue;
            }
            let row = self.compiled.is_some().then_some(i);
            match m {
                Message::Insert(e) => self.process(
                    WorkMsg::Ins(WorkEv::of(e.clone()).with_row(row)),
                    &spec,
                    ctx.out,
                ),
                Message::Retract(r) => self.process(
                    WorkMsg::Ret {
                        ev: WorkEv::of(r.event.clone()).with_row(row),
                        new_end: r.new_end,
                    },
                    &spec,
                    ctx.out,
                ),
                Message::Cti(_) => {
                    debug_assert!(false, "CTIs are consumed by the consistency monitor")
                }
            }
        }
        // The run is drained (anything still in-flight sits detached in
        // an alignment buffer); its columns die with it.
        self.cols = None;
    }

    /// The CTI cascade: the fused shell's watermark advanced (or the
    /// round is closing). Each stage's `map_cti` output is offered to the
    /// next boundary under the shell's strict-increase emission dedup;
    /// an accepted guarantee flushes, observes, releases covered/timed-out
    /// aligned work through the remaining stages, and cleans the guard —
    /// in exactly the order the interior shell would.
    fn on_advance(&mut self, ctx: &mut OpContext) {
        let spec = ctx.spec;
        let mut w = ctx.watermark;
        for i in 0..self.boundaries.len() {
            if w == TimePoint::ZERO {
                // A shell with a zero watermark emits no guarantee, so
                // nothing downstream can change either.
                return;
            }
            let out_cti = self.stages[i].map_cti(w);
            let emitted = out_cti > TimePoint::ZERO
                && self.boundaries[i].last_cti.is_none_or(|c| out_cti > c);
            if emitted {
                let b = &mut self.boundaries[i];
                b.last_cti = Some(out_cti);
                // Pre-observe flush: deliveries since the last flush get
                // their guard cleanup under the old watermark first.
                if b.dirty {
                    b.cleanup();
                }
                if out_cti > b.watermark {
                    b.watermark = out_cti;
                }
                b.max_seen = TimePoint::max_of(b.max_seen, b.watermark);
                let mut delivered = std::mem::take(&mut self.delivered);
                self.boundaries[i].release(&spec, &mut delivered);
                self.delivered = Vec::new();
                let mut released = delivered;
                self.process_from(i + 1, &mut released, &spec, ctx.out);
                released.clear();
                self.delivered = released;
                // Post-release flush: released deliveries clean under the
                // new watermark.
                if self.boundaries[i].dirty {
                    self.boundaries[i].cleanup();
                }
            }
            w = self.boundaries[i].watermark;
        }
    }

    /// End of the shell round: each interior shell would run its
    /// end-of-batch flush now; dirty boundaries get their guard cleanup.
    fn on_round_end(&mut self) {
        for b in &mut self.boundaries {
            if b.dirty {
                b.cleanup();
            }
        }
    }

    fn state_size(&self) -> usize {
        self.boundaries.iter().map(Boundary::state_size).sum()
    }

    /// Composition of the per-stage guarantees: what the last shell of
    /// the unfused chain would declare for an input guarantee `watermark`.
    fn map_cti(&self, watermark: TimePoint) -> TimePoint {
        self.stages.iter().fold(watermark, |w, s| s.map_cti(w))
    }

    fn fused_stages(&self) -> usize {
        self.stages.len()
    }

    fn state_snapshot(&self, out: &mut Vec<u8>) {
        use cedr_durable::Persist;
        // Only the interior boundaries carry cross-round state: `cols`,
        // `bitmaps` and the scratch vectors are per-delivery-run and dead
        // at any quiescent boundary.
        (self.boundaries.len() as u64).encode(out);
        for b in &self.boundaries {
            b.watermark.encode(out);
            b.max_seen.encode(out);
            (b.align.len() as u64).encode(out);
            for (&(sync, seq), msg) in &b.align {
                sync.encode(out);
                seq.encode(out);
                encode_work_msg(msg, out);
            }
            b.seq.encode(out);
            b.last_cti.encode(out);
            b.evict_watermark.encode(out);
            let mut recent: Vec<EventId> = b.recent.iter().copied().collect();
            recent.sort_unstable();
            recent.encode(out);
            match &b.seen {
                None => 0u8.encode(out),
                Some(seen) => {
                    1u8.encode(out);
                    let mut rows: Vec<(EventId, TimePoint)> =
                        seen.iter().map(|(&id, &ve)| (id, ve)).collect();
                    rows.sort_unstable_by_key(|&(id, _)| id);
                    rows.encode(out);
                }
            }
            let mut gens: Vec<(EventId, u64)> = b.gens.iter().map(|(&id, &g)| (id, g)).collect();
            gens.sort_unstable_by_key(|&(id, _)| id);
            gens.encode(out);
            b.dirty.encode(out);
        }
    }

    fn state_restore(
        &mut self,
        r: &mut cedr_durable::Reader<'_>,
    ) -> Result<(), cedr_durable::CodecError> {
        use cedr_durable::Persist;
        let n = u64::decode(r)? as usize;
        if n != self.boundaries.len() {
            return Err(cedr_durable::CodecError::new(format!(
                "fused chain has {} boundaries, image has {}",
                self.boundaries.len(),
                n
            )));
        }
        for b in &mut self.boundaries {
            b.watermark = TimePoint::decode(r)?;
            b.max_seen = TimePoint::decode(r)?;
            b.align.clear();
            for _ in 0..u64::decode(r)? {
                let sync = TimePoint::decode(r)?;
                let seq = u64::decode(r)?;
                b.align.insert((sync, seq), decode_work_msg(r)?);
            }
            b.seq = u64::decode(r)?;
            b.last_cti = Option::<TimePoint>::decode(r)?;
            b.evict_watermark = TimePoint::decode(r)?;
            b.recent = Vec::<EventId>::decode(r)?.into_iter().collect();
            b.seen = match u8::decode(r)? {
                0 => None,
                1 => Some(
                    Vec::<(EventId, TimePoint)>::decode(r)?
                        .into_iter()
                        .collect(),
                ),
                t => {
                    return Err(cedr_durable::CodecError::new(format!(
                        "bad seen-map tag {t}"
                    )))
                }
            };
            b.gens = Vec::<(EventId, u64)>::decode(r)?.into_iter().collect();
            b.dirty = bool::decode(r)?;
        }
        Ok(())
    }
}

/// Serialize one parked work message. Parked messages are always
/// detached from their run's payload columns (`row: None`), so only the
/// evolving (id, interval, payload) triple and the source event persist.
fn encode_work_msg(msg: &WorkMsg, out: &mut Vec<u8>) {
    use cedr_durable::Persist;
    let (tag, ev, new_end) = match msg {
        WorkMsg::Ins(ev) => (0u8, ev, None),
        WorkMsg::Ret { ev, new_end } => (1u8, ev, Some(*new_end)),
    };
    tag.encode(out);
    ev.src.encode(out);
    ev.id.encode(out);
    ev.interval.encode(out);
    ev.payload.encode(out);
    if let Some(new_end) = new_end {
        new_end.encode(out);
    }
}

fn decode_work_msg(r: &mut cedr_durable::Reader<'_>) -> Result<WorkMsg, cedr_durable::CodecError> {
    use cedr_durable::Persist;
    let tag = u8::decode(r)?;
    let ev = WorkEv {
        src: Arc::<Event>::decode(r)?,
        id: EventId::decode(r)?,
        interval: Interval::decode(r)?,
        payload: Option::<Payload>::decode(r)?,
        row: None,
    };
    match tag {
        0 => Ok(WorkMsg::Ins(ev)),
        1 => Ok(WorkMsg::Ret {
            ev,
            new_end: TimePoint::decode(r)?,
        }),
        t => Err(cedr_durable::CodecError::new(format!(
            "bad work-message tag {t}"
        ))),
    }
}
