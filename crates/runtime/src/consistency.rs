//! The consistency spectrum (Sections 4 and 5).
//!
//! The paper defines three named levels — strong (Definition 3), middle
//! (Definition 4) and weak (Definition 5) — and then generalises them into
//! an "infinite spectrum" (Figure 9) indexed by two application-time
//! durations: the **maximum memory time M** and the **maximum blocking time
//! B**. Only the `B ≤ M` triangle is meaningful: "increasing the maximum
//! blocking time beyond the maximum memory time has no effect on operator
//! behavior".
//!
//! * `⟨B=∞, M=∞⟩` — **Strong**: align out-of-order input by blocking until
//!   the occurrence-time guarantee (CTI) covers it; never emit output that
//!   might later be repaired (beyond repairs present in the source itself).
//! * `⟨B=0, M=∞⟩` — **Middle**: never block; emit optimistically and repair
//!   with retractions + insertions; remember everything since the last sync
//!   point so every repair is possible.
//! * `⟨B=0, M finite⟩` — **Weak**: never block and forget state older than
//!   `M`; events arriving later than the memory horizon are dropped and
//!   their repairs skipped (correct *at* sync points, not *to* them).

use cedr_temporal::{Duration, TimePoint};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in the Figure-9 consistency plane.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConsistencySpec {
    /// Maximum blocking time `B` (application time).
    pub max_blocking: Duration,
    /// Maximum memory time `M` (application time).
    pub max_memory: Duration,
}

/// The named levels of Definitions 3–5, plus the interior of the spectrum.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConsistencyLevel {
    Strong,
    Middle,
    Weak,
    Custom,
}

impl ConsistencySpec {
    /// Strong consistency: `⟨B=∞, M=∞⟩`.
    pub fn strong() -> Self {
        ConsistencySpec {
            max_blocking: Duration::INFINITE,
            max_memory: Duration::INFINITE,
        }
    }

    /// Middle consistency: `⟨B=0, M=∞⟩`.
    pub fn middle() -> Self {
        ConsistencySpec {
            max_blocking: Duration::ZERO,
            max_memory: Duration::INFINITE,
        }
    }

    /// Weak consistency with memory bound `m`: `⟨B=0, M=m⟩`.
    pub fn weak(m: Duration) -> Self {
        ConsistencySpec {
            max_blocking: Duration::ZERO,
            max_memory: m,
        }
    }

    /// The weakest possible level: non-blocking and memoryless (the lower
    /// left corner of Figure 9).
    pub fn weakest() -> Self {
        Self::weak(Duration::ZERO)
    }

    /// An arbitrary spectrum point; clamps `B` to `M` (the upper-left
    /// triangle "has no effect on operator behavior").
    pub fn custom(max_blocking: Duration, max_memory: Duration) -> Self {
        let b = if max_blocking > max_memory {
            max_memory
        } else {
            max_blocking
        };
        ConsistencySpec {
            max_blocking: b,
            max_memory,
        }
    }

    /// Classify into the named levels.
    pub fn level(&self) -> ConsistencyLevel {
        match (self.max_blocking, self.max_memory) {
            (Duration::INFINITE, Duration::INFINITE) => ConsistencyLevel::Strong,
            (Duration::ZERO, Duration::INFINITE) => ConsistencyLevel::Middle,
            (Duration::ZERO, _) => ConsistencyLevel::Weak,
            _ => ConsistencyLevel::Custom,
        }
    }

    /// Does this spec ever hold messages in the alignment buffer?
    pub fn is_blocking(&self) -> bool {
        self.max_blocking > Duration::ZERO
    }

    /// Does this spec ever forget state before it is provably dead?
    pub fn is_forgetful(&self) -> bool {
        !self.max_memory.is_infinite()
    }

    /// The memory horizon induced by the high-water mark of observed syncs:
    /// state and late messages below this point are forgotten. `ZERO` when
    /// memory is unbounded.
    pub fn horizon(&self, max_seen: TimePoint) -> TimePoint {
        if self.max_memory.is_infinite() {
            TimePoint::ZERO
        } else {
            max_seen - self.max_memory
        }
    }
}

impl fmt::Debug for ConsistencySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "⟨B={}, M={}⟩ ({:?})",
            self.max_blocking,
            self.max_memory,
            self.level()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedr_temporal::time::{dur, t};

    #[test]
    fn named_levels_classify() {
        assert_eq!(ConsistencySpec::strong().level(), ConsistencyLevel::Strong);
        assert_eq!(ConsistencySpec::middle().level(), ConsistencyLevel::Middle);
        assert_eq!(
            ConsistencySpec::weak(dur(100)).level(),
            ConsistencyLevel::Weak
        );
        assert_eq!(ConsistencySpec::weakest().level(), ConsistencyLevel::Weak);
        assert_eq!(
            ConsistencySpec::custom(dur(5), dur(100)).level(),
            ConsistencyLevel::Custom
        );
    }

    #[test]
    fn custom_clamps_b_to_m() {
        let s = ConsistencySpec::custom(dur(100), dur(10));
        assert_eq!(s.max_blocking, dur(10));
        // Corner degeneracies of Figure 9:
        let corner = ConsistencySpec::custom(Duration::INFINITE, Duration::INFINITE);
        assert_eq!(corner.level(), ConsistencyLevel::Strong);
    }

    #[test]
    fn horizon_trails_the_high_water_mark() {
        let weak = ConsistencySpec::weak(dur(10));
        assert_eq!(weak.horizon(t(25)), t(15));
        assert_eq!(weak.horizon(t(5)), t(0), "floors at zero");
        let middle = ConsistencySpec::middle();
        assert_eq!(
            middle.horizon(t(1_000_000)),
            t(0),
            "unbounded memory never forgets"
        );
    }

    #[test]
    fn predicates() {
        assert!(ConsistencySpec::strong().is_blocking());
        assert!(!ConsistencySpec::middle().is_blocking());
        assert!(!ConsistencySpec::middle().is_forgetful());
        assert!(ConsistencySpec::weak(dur(1)).is_forgetful());
    }
}
