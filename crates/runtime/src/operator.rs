//! The anatomy of a CEDR operator (Figure 7).
//!
//! [`OperatorShell`] is the generic harness every physical operator runs
//! in. It contains the two components the paper names:
//!
//! * the **consistency monitor** — "decides whether to block the input
//!   stream in an alignment buffer until output may be produced which
//!   upholds the desired level of consistency", parameterised by the
//!   ⟨M, B⟩ spectrum point; it also accepts occurrence-time guarantees
//!   (CTIs) on inputs and annotates the output with its own guarantees;
//! * the **operational module** — the actual incremental computation,
//!   implemented by the [`OperatorModule`] trait in the sibling modules
//!   (`stateless`, `join`, `aggregate`, `sequence`, `negation`).
//!
//! # Batch-native delivery and the one-refresh-per-run contract
//!
//! The shell delivers admitted messages to modules in **per-input runs**
//! ([`OperatorModule::on_batch`]). All five operator families override the
//! hook; what each is allowed to amortise follows from one rule — *the
//! output of a run is a pure function of the delivered run and the state
//! before it*:
//!
//! * **Stateless** operators and **join** are *bit-identical* to
//!   per-message dispatch: they emit exactly one output per qualifying
//!   input, in input order. Join's batch-native probe exploits the fact
//!   that a run arrives on one port, so the opposite side's index is
//!   frozen for the whole run: one candidate lookup per distinct key
//!   (`OpStats::probe_batches`), identical emissions.
//! * **Group-aggregate** (and the recompute-and-diff sequencing modes)
//!   follow the *one-refresh-per-run* contract instead: the whole run is
//!   folded into operator state first, then **one refresh — a
//!   retract+insert diff — is emitted per touched group per run**
//!   (`OpStats::group_refreshes`), rather than one per state-changing
//!   message. Intermediate states a finer batching would have published
//!   (and immediately repaired) are never emitted, so the *tape* emitted
//!   for a stream depends on how the stream was cut into delivery runs —
//!   but the **net content and the output guarantee never do**, and for a
//!   *fixed* run structure the tape is deterministic (which is what the
//!   sharded scheduler's serial-equivalence proof needs). Per-message
//!   ingestion degenerates to runs of one message, where the contract
//!   coincides with classic per-message view maintenance.
//! * **Plan-rewritten** operators (the fusion pass's `FusedStatelessOp`,
//!   see [`crate::fused`]) are held to a third, collector-level contract:
//!   the *graph shape differs* — a fused node replaces a whole chain of
//!   stateless shells, so per-edge tapes and per-node stats for the
//!   collapsed interior no longer exist — but the **collector output is
//!   bit-identical** to the unfused plan's: same stamped tape, same
//!   subscription deltas, same output CTIs, at every ⟨M, B⟩ spectrum
//!   point. The fused node earns this by emulating each interior shell's
//!   consistency monitor (alignment, forgetting, reorder guard, chain
//!   generations, CTI mapping) at its stage boundaries without ever
//!   materialising the interior streams. The contract is independent of
//!   the node's *evaluation strategy*: by default the payload side of
//!   the chain runs as register-time-compiled column kernels
//!   (`OpStats::compiled_kernel_runs`; `CEDR_COMPILE=0` falls back to
//!   the interpreted stage IR), and compiled, interpreted and unfused
//!   executions are all held to the same collector-level bit-identity,
//!   at every ⟨consistency, workers, compiled?⟩ point.
//!
//! The per-message fallback (the default `on_batch` body) still applies to
//! any module that does not override the hook — third-party modules work
//! unmodified — and remains the semantic reference: a batch-native
//! override must be indistinguishable from the fallback at the level of
//! net content, output guarantees, and (for the non-collapsing families)
//! the exact message tape.
//!
//! Batching never outruns the consistency monitor: a run's
//! [`OpContext::watermark`] is capped by the sync of every message still
//! awaiting delivery (see [`OperatorShell::push_batch`]), so a collapsed
//! group refresh — emitted at the end of its run — can never leak a
//! guarantee past an undelivered negator or contributor.

use crate::consistency::ConsistencySpec;
use crate::stats::OpStats;
use cedr_streams::{Message, Retraction};
use cedr_temporal::{Duration, Event, TimePoint};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Where operational modules put their output state updates.
#[derive(Debug, Default)]
pub struct OutputBuffer {
    msgs: Vec<Message>,
}

impl OutputBuffer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Emit an insert. Accepts owned events or already-shared `Arc`s
    /// (pass-through operators forward their input at refcount cost).
    /// Events with empty lifetimes describe no state and are silently
    /// dropped (boundary pattern matches, fully-clipped slices).
    pub fn insert(&mut self, event: impl Into<Arc<Event>>) {
        let event = event.into();
        if event.interval.is_empty() {
            return;
        }
        self.msgs.push(Message::Insert(event));
    }

    /// Emit a retraction shortening `event` to `[Vs, new_end)`.
    pub fn retract_to(&mut self, event: impl Into<Arc<Event>>, new_end: TimePoint) {
        self.msgs
            .push(Message::Retract(Retraction::new(event, new_end)));
    }

    /// Emit a full removal (`Oe := Os` in the paper's terms).
    pub fn retract_full(&mut self, event: impl Into<Arc<Event>>) {
        let event = event.into();
        let vs = event.interval.start;
        self.msgs.push(Message::Retract(Retraction::new(event, vs)));
    }

    /// Emit a CTI (used by the shell; modules emit data only).
    pub(crate) fn cti(&mut self, t: TimePoint) {
        self.msgs.push(Message::Cti(t));
    }

    /// Pre-size the buffer for a batch-native module about to emit up to
    /// `n` more messages.
    pub fn reserve(&mut self, n: usize) {
        self.msgs.reserve(n);
    }

    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    fn drain(&mut self) -> Vec<Message> {
        std::mem::take(&mut self.msgs)
    }
}

/// Dispatch a run to a module one message at a time — the reference
/// delivery the default [`OperatorModule::on_batch`] uses, shared with
/// the batch-native overrides' per-message branches so the three cannot
/// drift apart.
pub(crate) fn dispatch_per_message<M: OperatorModule + ?Sized>(
    module: &mut M,
    input: usize,
    msgs: &[Message],
    ctx: &mut OpContext,
) {
    for m in msgs {
        match m {
            Message::Insert(e) => module.on_insert(input, e, ctx),
            Message::Retract(r) => module.on_retract(input, r, ctx),
            Message::Cti(_) => {
                debug_assert!(false, "CTIs are consumed by the consistency monitor")
            }
        }
    }
}

/// Remap a module-internal output ID to its current chain generation.
///
/// The paper's retraction model (Figure 2) requires a completely removed
/// event to be gone for good, so shells rewrite re-inserted IDs to fresh
/// per-generation identities. Shared with the fused pipeline, whose
/// interior stage boundaries must apply the *same* remapping the shells
/// they replace would have.
pub(crate) fn generation_id(id: cedr_temporal::EventId, gen: u64) -> cedr_temporal::EventId {
    if gen == 0 {
        return id;
    }
    // SplitMix64 over (id, generation): deterministic fresh chain keys.
    let mut z = id.0.wrapping_add(gen.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    cedr_temporal::EventId(z ^ (z >> 31))
}

/// Amortisation work a module reports back to its shell; folded into
/// [`OpStats`] after every module call.
#[derive(Clone, Copy, Debug, Default)]
pub struct OpEffort {
    /// Group refresh computations performed (group-aggregate).
    pub group_refreshes: usize,
    /// Delivery runs probed batch-natively (join).
    pub probe_batches: usize,
    /// Compiled-kernel sweeps run over payload columns (fused node).
    pub compiled_kernel_runs: usize,
}

/// Execution context handed to operational modules.
pub struct OpContext<'a> {
    /// The consistency spec the shell enforces.
    pub spec: ConsistencySpec,
    /// The combined input occurrence-time guarantee: no future input
    /// message has `Sync` below this.
    pub watermark: TimePoint,
    /// High-water mark of observed input syncs (the optimist's clock).
    pub max_seen: TimePoint,
    /// Batch-native effort counters ([`OpStats::group_refreshes`],
    /// [`OpStats::probe_batches`]); modules bump these, the shell folds
    /// them into its stats.
    pub effort: OpEffort,
    /// Output buffer.
    pub out: &'a mut OutputBuffer,
}

impl OpContext<'_> {
    /// The memory horizon: state anchored below this may be forgotten.
    pub fn horizon(&self) -> TimePoint {
        self.spec.horizon(self.max_seen)
    }

    /// Consistency-monitor policy for *module-level* blocking (negation):
    /// may an output anchored at `anchor` be emitted before its
    /// confirmation time is covered by the watermark?
    ///
    /// * `B = 0` — yes, immediately (optimistic; middle/weak);
    /// * `B = ∞` — never (strong: wait for the guarantee);
    /// * finite `B` — once the stream has advanced `B` past the anchor.
    pub fn may_emit_optimistically(&self, anchor: TimePoint) -> bool {
        let b = self.spec.max_blocking;
        if b == Duration::ZERO {
            true
        } else if b.is_infinite() {
            false
        } else {
            self.max_seen >= anchor + b
        }
    }
}

/// An operational module: the pure-computation half of Figure 7.
///
/// Modules receive state updates *after* the consistency monitor has
/// applied alignment and forgetting, maintain operator state, and emit
/// output state updates — optimistically if the spec allows, repairing
/// themselves with retractions when late input contradicts earlier output.
pub trait OperatorModule: Send {
    /// Operator name (plans and stats).
    fn name(&self) -> &'static str;

    /// Number of input ports.
    fn arity(&self) -> usize {
        1
    }

    /// A new event arrived on `input`.
    fn on_insert(&mut self, input: usize, event: &Event, ctx: &mut OpContext);

    /// A retraction arrived on `input`.
    fn on_retract(&mut self, input: usize, r: &Retraction, ctx: &mut OpContext);

    /// A run of data messages arrived on `input`, already admitted by the
    /// consistency monitor and in delivery order.
    ///
    /// The shell routes **all** module deliveries through this hook; the
    /// default implementation dispatches per message to
    /// [`OperatorModule::on_insert`]/[`OperatorModule::on_retract`], so
    /// existing operators work unmodified. Operators with per-call overhead
    /// worth amortising (index lookups, group resolution) may override it —
    /// all five built-in families do; see the module docs for what an
    /// override may collapse (the one-refresh-per-run contract) and what it
    /// must reproduce exactly.
    ///
    /// Contract: `ctx.watermark` is honest for the run as a whole — every
    /// input message with `Sync` below it has either been delivered in an
    /// earlier call or is contained in `msgs` itself. CTIs never appear in
    /// `msgs` (the monitor consumes them).
    fn on_batch(&mut self, input: usize, msgs: &[Message], ctx: &mut OpContext) {
        dispatch_per_message(self, input, msgs, ctx);
    }

    /// Called after every batch of deliveries and after watermark changes:
    /// confirm pending output, purge state.
    fn on_advance(&mut self, _ctx: &mut OpContext) {}

    /// Current state footprint, in retained entries (events, pending
    /// matches, group members…).
    fn state_size(&self) -> usize {
        0
    }

    /// How far the output guarantee trails the input guarantee. Most
    /// operators propagate the watermark unchanged; UNLESS lags by its
    /// negation scope `w`.
    fn cti_lag(&self) -> Duration {
        Duration::ZERO
    }

    /// Map an input watermark to the output guarantee the operator can
    /// legitimately declare. Override for non-monotone lifetime mappings
    /// (hopping windows, constant relocations).
    fn map_cti(&self, watermark: TimePoint) -> TimePoint {
        watermark - self.cti_lag()
    }

    /// End of a delivery round: called once per shell `push_batch`, after
    /// the final flush/advance/CTI. Modules that emulate interior shells
    /// (the fused pipeline) run their round-scoped guard cleanup here —
    /// the point where each replaced downstream shell would have executed
    /// its own end-of-batch flush. Ordinary modules ignore it.
    fn on_round_end(&mut self) {}

    /// How many plan-time-fused stateless stages this module stands in for
    /// (0 for ordinary operators). Reported once into
    /// [`OpStats::fused_stages`] at shell construction so observers can
    /// tell a fused plan from an unfused one.
    fn fused_stages(&self) -> usize {
        0
    }

    /// Serialize the module's *runtime* state (checkpointing). Plan-time
    /// parameters (predicates, windows, key exprs) are not written — a
    /// restore target is built by re-registering the same plan, so only
    /// accumulated state travels through the image. The encoding must be
    /// deterministic: hash-map content goes out in sorted key order.
    /// Stateless modules keep this default no-op.
    fn state_snapshot(&self, _out: &mut Vec<u8>) {}

    /// Restore runtime state written by
    /// [`OperatorModule::state_snapshot`] into a freshly built module.
    /// Derived indexes are rebuilt here rather than persisted.
    fn state_restore(
        &mut self,
        _r: &mut cedr_durable::Reader<'_>,
    ) -> Result<(), cedr_durable::CodecError> {
        Ok(())
    }
}

/// Figure 7: consistency monitor + alignment buffer wrapped around an
/// operational module.
pub struct OperatorShell {
    module: Box<dyn OperatorModule>,
    spec: ConsistencySpec,
    input_watermarks: Vec<TimePoint>,
    watermark: TimePoint,
    max_seen: TimePoint,
    /// Alignment buffer, ordered by (sync, arrival seq).
    align: BTreeMap<(TimePoint, u64), (usize, Message, u64)>,
    seq: u64,
    /// Reorder guard: disorder can deliver a retraction *before* its own
    /// insert (their syncs are independent). Retractions of unseen events
    /// are parked here per input and replayed right after the insert
    /// arrives; the watermark proves abandoned orphans dead (the insert's
    /// sync is ≤ the retraction's, so once the watermark passes it the
    /// insert can no longer arrive).
    seen_inserts: Vec<std::collections::HashMap<cedr_temporal::EventId, TimePoint>>,
    orphans: Vec<std::collections::HashMap<cedr_temporal::EventId, Vec<Retraction>>>,
    /// Messages admitted by the monitor but not yet delivered to the
    /// module; drained into per-input runs by `flush_pending`.
    pending: Vec<PendingDelivery>,
    out: OutputBuffer,
    stats: OpStats,
    last_cti: Option<TimePoint>,
    /// Output chain generations. The paper's retraction model (Figure 2)
    /// requires that a completely removed event is gone for good — a
    /// revival "must be … inserted" as "a new event" with a new chain key.
    /// Modules think in terms of their stable internal IDs; the shell
    /// rewrites re-inserted IDs to fresh per-generation identities so every
    /// downstream chain shrinks monotonically.
    out_generations: std::collections::HashMap<cedr_temporal::EventId, u64>,
}

/// An admitted message awaiting delivery to the operational module.
struct PendingDelivery {
    input: usize,
    msg: Message,
    arrived: u64,
}

impl OperatorShell {
    pub fn new(module: Box<dyn OperatorModule>, spec: ConsistencySpec) -> Self {
        let arity = module.arity();
        let stats = OpStats {
            fused_stages: module.fused_stages(),
            ..OpStats::default()
        };
        OperatorShell {
            module,
            spec,
            input_watermarks: vec![TimePoint::ZERO; arity],
            watermark: TimePoint::ZERO,
            max_seen: TimePoint::ZERO,
            align: BTreeMap::new(),
            seq: 0,
            seen_inserts: vec![Default::default(); arity],
            orphans: vec![Default::default(); arity],
            pending: Vec::new(),
            out: OutputBuffer::new(),
            stats,
            last_cti: None,
            out_generations: Default::default(),
        }
    }

    pub fn name(&self) -> &'static str {
        self.module.name()
    }

    pub fn arity(&self) -> usize {
        self.input_watermarks.len()
    }

    pub fn spec(&self) -> ConsistencySpec {
        self.spec
    }

    pub fn stats(&self) -> &OpStats {
        &self.stats
    }

    /// The combined input guarantee currently in force.
    pub fn watermark(&self) -> TimePoint {
        self.watermark
    }

    /// Feed one message into input port `input` at CEDR tick `now`;
    /// returns the output state updates (with trailing output CTI if the
    /// guarantee advanced). Equivalent to a `push_batch` of one message.
    pub fn push(&mut self, input: usize, msg: Message, now: u64) -> Vec<Message> {
        self.push_batch(input, std::slice::from_ref(&msg), now)
    }

    /// Feed a run of messages into input port `input` at CEDR tick `now`;
    /// returns the output state updates (with trailing output CTI if the
    /// guarantee advanced).
    ///
    /// The consistency monitor admits messages one at a time (so
    /// forgetting, alignment and watermark bookkeeping are exactly as in
    /// the per-message path), but module delivery is batched: admitted
    /// messages accumulate into per-input runs handed to
    /// [`OperatorModule::on_batch`], and `on_advance`/output-CTI handling
    /// run once per call instead of once per message. Each run's
    /// `ctx.watermark` is capped by the sync of every message delivered
    /// after it, so no module ever sees a guarantee that overtakes an
    /// undelivered input.
    pub fn push_batch(&mut self, input: usize, batch: &[Message], now: u64) -> Vec<Message> {
        assert!(input < self.arity(), "input port out of range");
        for msg in batch {
            match msg {
                Message::Cti(t) => {
                    // Deliver everything admitted under the current
                    // guarantee before the guarantee moves.
                    self.flush_pending(now);
                    let before = self.watermark;
                    self.observe_cti(input, *t);
                    self.release(now);
                    self.flush_pending(now);
                    // Give the module its watermark-change hook mid-batch
                    // and forward the guarantee downstream *at its position
                    // in the stream*: confirmation, state flushing and the
                    // output CTI cadence must track the guarantee, not the
                    // batch boundary — otherwise every consumer's state
                    // grows with the batch instead of the live window.
                    if self.watermark > before {
                        self.advance_module();
                        self.emit_cti();
                    }
                }
                data => {
                    self.stats.arrivals += 1;
                    let sync = data.sync();
                    // Weak-consistency forgetting: below the memory horizon
                    // the monitor drops the message outright.
                    if self.spec.is_forgetful() && sync < self.spec.horizon(self.max_seen) {
                        self.stats.forgotten += 1;
                        continue;
                    }
                    self.max_seen = TimePoint::max_of(self.max_seen, sync);
                    if self.spec.is_blocking() && sync >= self.watermark {
                        self.align
                            .insert((sync, self.seq), (input, data.clone(), now));
                        self.seq += 1;
                        self.stats.held_peak = self.stats.held_peak.max(self.align.len());
                    } else {
                        self.pending.push(PendingDelivery {
                            input,
                            msg: data.clone(),
                            arrived: now,
                        });
                    }
                    // A data arrival can advance `max_seen` past a finite
                    // blocking deadline (first loop iteration breaks when
                    // nothing is due).
                    self.release(now);
                }
            }
        }
        self.flush_pending(now);
        self.advance_module();
        self.emit_cti();
        self.module.on_round_end();
        self.finish(now)
    }

    /// Fold a CTI into the per-input watermarks and the combined guarantee.
    fn observe_cti(&mut self, input: usize, t: TimePoint) {
        let w = &mut self.input_watermarks[input];
        *w = TimePoint::max_of(*w, t);
        let combined = self
            .input_watermarks
            .iter()
            .copied()
            .fold(TimePoint::INFINITY, TimePoint::min_of);
        if combined > self.watermark {
            self.watermark = combined;
        }
        // CTIs also advance the optimist's clock.
        self.max_seen = TimePoint::max_of(self.max_seen, self.watermark);
    }

    /// Move alignment-buffer entries that are either covered by the
    /// watermark or have been blocked for the maximum blocking time into
    /// the pending delivery buffer (in sync order).
    #[allow(clippy::while_let_loop)] // while-let would hold the align borrow over the body
    fn release(&mut self, _now: u64) {
        loop {
            let Some((&(sync, seq), _)) = self.align.iter().next() else {
                break;
            };
            let covered = sync < self.watermark;
            let timed_out = !self.spec.max_blocking.is_infinite()
                && self
                    .max_seen
                    .since(sync)
                    .is_some_and(|held| held >= self.spec.max_blocking);
            if !covered && !timed_out {
                break;
            }
            let (input, msg, arrived) = self.align.remove(&(sync, seq)).expect("present");
            self.pending.push(PendingDelivery {
                input,
                msg,
                arrived,
            });
        }
    }

    /// The watermark as the *module* may use it: every input message with
    /// `Sync` below this has been delivered to the module. While the
    /// alignment buffer still holds messages, the declared guarantee has
    /// not yet been realised at the module boundary.
    fn effective_watermark(&self) -> TimePoint {
        match self.align.keys().next() {
            Some(&(sync, _)) => TimePoint::min_of(self.watermark, sync),
            None => self.watermark,
        }
    }

    /// Deliver the pending buffer to the module as per-input runs.
    ///
    /// Messages are grouped into maximal runs of consecutive same-input
    /// entries (preserving admission order) and each run goes to the module
    /// in one `on_batch` call. The run's watermark is
    /// `min(effective watermark, sync of every pending message after the
    /// run's first)` — capping by the run's *own* later messages as well as
    /// later runs, because the default `on_batch` dispatches sequentially
    /// and an early message must never see a guarantee that overtakes an
    /// undelivered sibling (e.g. its own still-queued removal, which under
    /// Strong would turn a silent suppression into an emit-then-retract).
    /// This matches the per-message path exactly for the run's first
    /// message and is conservative for the rest; emissions a larger
    /// watermark would have confirmed mid-run surface at the next
    /// `on_advance`, which follows every flush.
    fn flush_pending(&mut self, now: u64) {
        if self.pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        let base = self.effective_watermark();
        let n = pending.len();
        let mut suffix_min = vec![TimePoint::INFINITY; n + 1];
        for i in (0..n).rev() {
            suffix_min[i] = TimePoint::min_of(suffix_min[i + 1], pending[i].msg.sync());
        }
        let mut run: Vec<Message> = Vec::new();
        let mut i = 0;
        while i < n {
            let input = pending[i].input;
            let mut j = i;
            while j < n && pending[j].input == input {
                let p = &pending[j];
                self.stats.released += 1;
                let held = now.saturating_sub(p.arrived);
                self.stats.blocked_ticks += held;
                if held > 0 {
                    self.stats.blocked_messages += 1;
                }
                match &p.msg {
                    Message::Insert(e) => {
                        self.seen_inserts[input].insert(e.id, e.interval.end);
                        run.push(p.msg.clone());
                        // Replay retractions that raced ahead of this
                        // insert, directly after it in the same run.
                        if let Some(mut parked) = self.orphans[input].remove(&e.id) {
                            parked.sort_by_key(|r| std::cmp::Reverse(r.new_end));
                            run.extend(parked.into_iter().map(Message::Retract));
                        }
                    }
                    Message::Retract(r) => {
                        if self.seen_inserts[input].contains_key(&r.event.id) {
                            run.push(p.msg.clone());
                        } else {
                            self.orphans[input]
                                .entry(r.event.id)
                                .or_default()
                                .push(r.clone());
                        }
                    }
                    Message::Cti(_) => unreachable!("CTIs are handled by the monitor"),
                }
                j += 1;
            }
            if !run.is_empty() {
                let watermark = TimePoint::min_of(base, suffix_min[i + 1]);
                self.stats.batches += 1;
                self.stats.delivered += run.len();
                self.stats.batch_peak = self.stats.batch_peak.max(run.len());
                let mut ctx = OpContext {
                    spec: self.spec,
                    watermark,
                    max_seen: self.max_seen,
                    effort: OpEffort::default(),
                    out: &mut self.out,
                };
                self.module.on_batch(input, &run, &mut ctx);
                let effort = ctx.effort;
                self.absorb_effort(effort);
                run.clear();
            }
            i = j;
        }
        // Guard bookkeeping dies with the watermark: an insert whose
        // lifetime has ended cannot be retracted any more, and an orphan
        // whose retraction sync is covered will never see its insert.
        let watermark = self.effective_watermark();
        if watermark > TimePoint::ZERO {
            for input in 0..self.seen_inserts.len() {
                self.seen_inserts[input].retain(|_, ve| *ve > watermark);
                self.orphans[input].retain(|_, rs| rs.iter().any(|r| r.sync() >= watermark));
            }
        }
    }

    fn advance_module(&mut self) {
        let mut ctx = OpContext {
            spec: self.spec,
            watermark: self.effective_watermark(),
            max_seen: self.max_seen,
            effort: OpEffort::default(),
            out: &mut self.out,
        };
        self.module.on_advance(&mut ctx);
        let effort = ctx.effort;
        self.absorb_effort(effort);
    }

    fn absorb_effort(&mut self, effort: OpEffort) {
        self.stats.group_refreshes += effort.group_refreshes;
        self.stats.probe_batches += effort.probe_batches;
        self.stats.compiled_kernel_runs += effort.compiled_kernel_runs;
    }

    fn emit_cti(&mut self) {
        if self.watermark == TimePoint::ZERO {
            return;
        }
        let out_cti = self.module.map_cti(self.watermark);
        if out_cti > TimePoint::ZERO && self.last_cti.is_none_or(|c| out_cti > c) {
            self.out.cti(out_cti);
            self.last_cti = Some(out_cti);
        }
    }

    fn finish(&mut self, _now: u64) -> Vec<Message> {
        let orphan_count: usize = self.orphans.iter().map(|m| m.len()).sum();
        self.stats.state_peak = self
            .stats
            .state_peak
            .max(self.module.state_size() + self.align.len() + orphan_count);
        let mut msgs = self.out.drain();
        for m in &mut msgs {
            match m {
                Message::Insert(e) => {
                    self.stats.out_inserts += 1;
                    let gen = self.out_generations.get(&e.id).copied().unwrap_or(0);
                    if gen != 0 {
                        // Freshly-emitted events are unshared, so this
                        // `make_mut` never copies on the hot path.
                        let id = generation_id(e.id, gen);
                        Arc::make_mut(e).id = id;
                    }
                }
                Message::Retract(r) => {
                    self.stats.out_retractions += 1;
                    let orig = r.event.id;
                    let gen = self.out_generations.get(&orig).copied().unwrap_or(0);
                    if gen != 0 {
                        let id = generation_id(orig, gen);
                        Arc::make_mut(&mut r.event).id = id;
                    }
                    if r.is_full_removal() {
                        // This chain is dead; a future re-insert of the same
                        // module-internal ID starts a fresh chain.
                        *self.out_generations.entry(orig).or_insert(0) += 1;
                    }
                }
                Message::Cti(_) => self.stats.out_ctis += 1,
            }
        }
        msgs
    }

    /// Direct access to the wrapped module (tests, introspection).
    pub fn module(&self) -> &dyn OperatorModule {
        &*self.module
    }

    /// Serialize the shell's consistency-monitor state plus the wrapped
    /// module's state (length-prefixed so restore can bound the module's
    /// reads). Requires quiescence: admitted-but-undelivered messages and
    /// undrained output would not survive the plan rebuild a restore does,
    /// so their presence is an error rather than silent loss.
    pub fn state_snapshot(&self, out: &mut Vec<u8>) -> Result<(), cedr_durable::CodecError> {
        use cedr_durable::Persist;
        if !self.pending.is_empty() {
            return Err(cedr_durable::CodecError::new(format!(
                "operator `{}` has undelivered pending messages (not at a quiescent boundary)",
                self.name()
            )));
        }
        if !self.out.is_empty() {
            return Err(cedr_durable::CodecError::new(format!(
                "operator `{}` has undrained output (not at a quiescent boundary)",
                self.name()
            )));
        }
        self.input_watermarks.encode(out);
        self.watermark.encode(out);
        self.max_seen.encode(out);
        // Alignment buffer: BTreeMap iteration is already sorted.
        (self.align.len() as u64).encode(out);
        for (&(sync, seq), &(input, ref msg, arrived)) in &self.align {
            sync.encode(out);
            seq.encode(out);
            input.encode(out);
            msg.encode(out);
            arrived.encode(out);
        }
        self.seq.encode(out);
        for per_input in &self.seen_inserts {
            let mut entries: Vec<(cedr_temporal::EventId, TimePoint)> =
                per_input.iter().map(|(&id, &ve)| (id, ve)).collect();
            entries.sort_unstable_by_key(|&(id, _)| id);
            entries.encode(out);
        }
        for per_input in &self.orphans {
            let mut keys: Vec<cedr_temporal::EventId> = per_input.keys().copied().collect();
            keys.sort_unstable();
            (keys.len() as u64).encode(out);
            for id in keys {
                id.encode(out);
                // Park order within a key is replay order: preserved as-is.
                per_input[&id].encode(out);
            }
        }
        self.stats.encode(out);
        self.last_cti.encode(out);
        let mut gens: Vec<(cedr_temporal::EventId, u64)> = self
            .out_generations
            .iter()
            .map(|(&id, &g)| (id, g))
            .collect();
        gens.sort_unstable_by_key(|&(id, _)| id);
        gens.encode(out);
        let mut module_blob = Vec::new();
        self.module.state_snapshot(&mut module_blob);
        (module_blob.len() as u64).encode(out);
        out.extend_from_slice(&module_blob);
        Ok(())
    }

    /// Restore state written by [`OperatorShell::state_snapshot`] into a
    /// freshly constructed shell wrapping the same plan.
    pub fn state_restore(
        &mut self,
        r: &mut cedr_durable::Reader<'_>,
    ) -> Result<(), cedr_durable::CodecError> {
        use cedr_durable::Persist;
        let input_watermarks = Vec::<TimePoint>::decode(r)?;
        if input_watermarks.len() != self.arity() {
            return Err(cedr_durable::CodecError::new(format!(
                "operator `{}` arity mismatch: image has {} inputs, plan has {}",
                self.name(),
                input_watermarks.len(),
                self.arity()
            )));
        }
        self.input_watermarks = input_watermarks;
        self.watermark = TimePoint::decode(r)?;
        self.max_seen = TimePoint::decode(r)?;
        self.align.clear();
        for _ in 0..u64::decode(r)? {
            let sync = TimePoint::decode(r)?;
            let seq = u64::decode(r)?;
            let input = usize::decode(r)?;
            let msg = Message::decode(r)?;
            let arrived = u64::decode(r)?;
            self.align.insert((sync, seq), (input, msg, arrived));
        }
        self.seq = u64::decode(r)?;
        for per_input in &mut self.seen_inserts {
            *per_input = Vec::<(cedr_temporal::EventId, TimePoint)>::decode(r)?
                .into_iter()
                .collect();
        }
        for per_input in &mut self.orphans {
            per_input.clear();
            for _ in 0..u64::decode(r)? {
                let id = cedr_temporal::EventId::decode(r)?;
                per_input.insert(id, Vec::<Retraction>::decode(r)?);
            }
        }
        self.stats = OpStats::decode(r)?;
        self.last_cti = Option::<TimePoint>::decode(r)?;
        self.out_generations = Vec::<(cedr_temporal::EventId, u64)>::decode(r)?
            .into_iter()
            .collect();
        let mut module_reader = r.sub_reader()?;
        self.module.state_restore(&mut module_reader)?;
        module_reader.expect_exhausted().map_err(|e| {
            cedr_durable::CodecError::new(format!(
                "operator `{}` module state: {}",
                self.name(),
                e.detail
            ))
        })?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedr_temporal::interval::iv;
    use cedr_temporal::time::{dur, t};
    use cedr_temporal::{EventId, Payload};

    /// Echoes inserts/retracts; records delivery order of Vs values.
    struct Echo {
        delivered: Vec<TimePoint>,
    }

    impl OperatorModule for Echo {
        fn name(&self) -> &'static str {
            "echo"
        }
        fn on_insert(&mut self, _input: usize, e: &Event, ctx: &mut OpContext) {
            self.delivered.push(e.vs());
            ctx.out.insert(e.clone());
        }
        fn on_retract(&mut self, _input: usize, r: &Retraction, ctx: &mut OpContext) {
            ctx.out.retract_to(r.event.clone(), r.new_end);
        }
        fn state_size(&self) -> usize {
            0
        }
    }

    fn echo_shell(spec: ConsistencySpec) -> OperatorShell {
        OperatorShell::new(
            Box::new(Echo {
                delivered: Vec::new(),
            }),
            spec,
        )
    }

    fn ins(id: u64, vs: u64) -> Message {
        Message::insert_event(Event::primitive(
            EventId(id),
            iv(vs, vs + 10),
            Payload::empty(),
        ))
    }

    #[test]
    fn strong_blocks_until_guarantee_and_restores_sync_order() {
        let mut s = echo_shell(ConsistencySpec::strong());
        // Out-of-order arrivals: 5 then 2.
        let out1 = s.push(0, ins(1, 5), 0);
        assert!(out1.is_empty(), "held in alignment buffer");
        let out2 = s.push(0, ins(2, 2), 1);
        assert!(out2.is_empty());
        // CTI(6) covers both: released in sync order, CTI forwarded.
        let out3 = s.push(0, Message::Cti(t(6)), 2);
        let syncs: Vec<TimePoint> = out3
            .iter()
            .filter_map(|m| m.as_insert().map(|e| e.vs()))
            .collect();
        assert_eq!(syncs, vec![t(2), t(5)]);
        assert_eq!(out3.last().unwrap().as_cti(), Some(t(6)));
        assert!(s.stats().blocked_ticks > 0);
        assert_eq!(s.stats().held_peak, 2);
    }

    #[test]
    fn middle_never_blocks() {
        let mut s = echo_shell(ConsistencySpec::middle());
        let out1 = s.push(0, ins(1, 5), 0);
        assert_eq!(out1.len(), 1, "delivered immediately");
        let out2 = s.push(0, ins(2, 2), 1);
        assert_eq!(out2.len(), 1, "late event also delivered immediately");
        assert_eq!(s.stats().blocked_ticks, 0);
        assert_eq!(s.stats().held_peak, 0);
    }

    #[test]
    fn weak_forgets_below_the_horizon() {
        let mut s = echo_shell(ConsistencySpec::weak(dur(10)));
        s.push(0, ins(1, 100), 0); // max_seen = 100, horizon = 90
        let out = s.push(0, ins(2, 50), 1);
        assert!(out.is_empty(), "below horizon: dropped");
        assert_eq!(s.stats().forgotten, 1);
        let out2 = s.push(0, ins(3, 95), 2);
        assert_eq!(out2.len(), 1, "inside horizon: processed");
    }

    #[test]
    fn finite_blocking_releases_on_deadline() {
        // B = 5: the event at 10 must be released once the stream reaches 15,
        // even without a CTI.
        let spec = ConsistencySpec::custom(dur(5), Duration::INFINITE);
        let mut s = echo_shell(spec);
        assert!(s.push(0, ins(1, 10), 0).is_empty(), "buffered");
        assert!(s.push(0, ins(2, 12), 1).is_empty(), "still within B");
        let out = s.push(0, ins(3, 15), 2);
        // 15 - 10 >= 5 releases the first event; 15-12=3 < 5 keeps the second.
        let released: Vec<TimePoint> = out
            .iter()
            .filter_map(|m| m.as_insert().map(|e| e.vs()))
            .collect();
        assert_eq!(released, vec![t(10)]);
    }

    #[test]
    fn binary_watermark_is_min_of_inputs() {
        struct Two;
        impl OperatorModule for Two {
            fn name(&self) -> &'static str {
                "two"
            }
            fn arity(&self) -> usize {
                2
            }
            fn on_insert(&mut self, _i: usize, e: &Event, ctx: &mut OpContext) {
                ctx.out.insert(e.clone());
            }
            fn on_retract(&mut self, _i: usize, _r: &Retraction, _ctx: &mut OpContext) {}
        }
        let mut s = OperatorShell::new(Box::new(Two), ConsistencySpec::strong());
        s.push(0, Message::Cti(t(10)), 0);
        assert_eq!(s.watermark(), TimePoint::ZERO, "other input still at 0");
        let out = s.push(1, Message::Cti(t(4)), 1);
        assert_eq!(s.watermark(), t(4));
        assert_eq!(out.last().and_then(|m| m.as_cti()), Some(t(4)));
    }

    #[test]
    fn output_cti_is_monotone_and_deduplicated() {
        let mut s = echo_shell(ConsistencySpec::middle());
        let o1 = s.push(0, Message::Cti(t(5)), 0);
        assert_eq!(o1.len(), 1);
        let o2 = s.push(0, Message::Cti(t(5)), 1);
        assert!(o2.is_empty(), "same CTI not re-emitted");
        let o3 = s.push(0, Message::Cti(t(3)), 2);
        assert!(o3.is_empty(), "regressing CTI ignored");
        let o4 = s.push(0, Message::Cti(t(9)), 3);
        assert_eq!(o4.last().and_then(|m| m.as_cti()), Some(t(9)));
    }

    #[test]
    fn push_batch_groups_runs_and_counts_them() {
        let mut s = echo_shell(ConsistencySpec::middle());
        let batch = vec![ins(1, 1), ins(2, 2), Message::Cti(t(5)), ins(3, 6)];
        let out = s.push_batch(0, &batch, 0);
        assert_eq!(out.iter().filter(|m| m.is_data()).count(), 3);
        assert_eq!(s.stats().released, 3);
        assert_eq!(s.stats().batches, 2, "delivery run split at the CTI");
        assert_eq!(s.stats().batch_peak, 2);
        // The CTI is forwarded at its position in the stream: after the
        // data admitted under the old guarantee, before the sync-6 insert.
        assert_eq!(out[2].as_cti(), Some(t(5)));
        assert!(out[3].as_insert().is_some());
    }

    #[test]
    fn push_batch_restores_sync_order_under_strong() {
        let mut s = echo_shell(ConsistencySpec::strong());
        let out = s.push_batch(0, &[ins(1, 5), ins(2, 2), Message::Cti(t(6))], 0);
        let syncs: Vec<TimePoint> = out
            .iter()
            .filter_map(|m| m.as_insert().map(|e| e.vs()))
            .collect();
        assert_eq!(syncs, vec![t(2), t(5)], "alignment still applies in-batch");
        assert_eq!(out.last().unwrap().as_cti(), Some(t(6)));
    }

    #[test]
    fn run_watermark_never_overtakes_undelivered_messages() {
        use std::sync::{Arc as StdArc, Mutex};

        /// Records the watermark each delivery run was handed.
        struct Probe {
            seen: StdArc<Mutex<Vec<(usize, TimePoint)>>>,
        }
        impl OperatorModule for Probe {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn arity(&self) -> usize {
                2
            }
            fn on_insert(&mut self, input: usize, _e: &Event, ctx: &mut OpContext) {
                self.seen.lock().unwrap().push((input, ctx.watermark));
            }
            fn on_retract(&mut self, _i: usize, _r: &Retraction, _ctx: &mut OpContext) {}
        }

        let seen = StdArc::new(Mutex::new(Vec::new()));
        let mut s = OperatorShell::new(
            Box::new(Probe { seen: seen.clone() }),
            ConsistencySpec::strong(),
        );
        // Two aligned inserts on different ports; the guarantee then jumps
        // past both at once.
        s.push(0, ins(1, 5), 0);
        s.push(1, ins(2, 6), 1);
        s.push(0, Message::Cti(t(10)), 2);
        s.push(1, Message::Cti(t(10)), 3);
        let seen = seen.lock().unwrap();
        assert_eq!(
            *seen,
            vec![(0, t(6)), (1, t(10))],
            "the first run's watermark must be capped by the undelivered \
             sync-6 message behind it"
        );
    }

    #[test]
    fn stats_track_released_and_outputs() {
        let mut s = echo_shell(ConsistencySpec::middle());
        s.push(0, ins(1, 1), 0);
        s.push(0, ins(2, 2), 1);
        s.push(0, Message::Cti(t(10)), 2);
        assert_eq!(s.stats().arrivals, 2);
        assert_eq!(s.stats().released, 2);
        assert_eq!(s.stats().out_inserts, 2);
        assert_eq!(s.stats().out_ctis, 1);
    }
}
