//! # cedr-runtime
//!
//! The physical CEDR runtime: incremental streaming operators structured
//! exactly as Figure 7 of the paper prescribes —
//!
//! ```text
//!   guarantees on input time ─▶ ┌─────────────────────────────┐
//!   stream of input state       │  Consistency   Alignment    │
//!   updates ──────────────────▶ │  Monitor   ◀─▶ Buffer       │
//!                               │        │                    │
//!                               │        ▼                    │
//!                               │  Operational Module ── state│
//!                               └─────────────────────────────┘
//!                  stream of output state updates + consistency guarantees
//! ```
//!
//! Every operator is an [`operator::OperatorShell`] wrapping an
//! [`operator::OperatorModule`]. The shell implements the consistency
//! monitor and alignment buffer for any point of the ⟨max-memory M,
//! max-blocking B⟩ spectrum of Section 5 (Figure 9); the module implements
//! the operator's view-update/pattern semantics incrementally, emitting
//! optimistic output and compensating **retractions**.
//!
//! Correctness contract (checked by property tests against
//! `cedr-algebra`): for logically equivalent inputs, outputs at common sync
//! points are logically equivalent — well-behavedness, Definition 6 — and
//! Strong/Middle runs produce identical canonical output state at shared
//! sync points (the Section 5 switching claim).
//!
//! # Threading model
//!
//! The consistency spectrum is defined **per operator**, never per thread,
//! so execution may be parallelised freely as long as each operator shell
//! sees its input in the same order. The [`executor::Dataflow`] scheduler
//! exploits exactly that freedom: with [`executor::Dataflow::set_threads`]
//! the graph is partitioned into connected-component/chain shards
//! ([`scheduler::ShardPlan`]), each shard runs on its own worker thread,
//! bounded channels carry `Arc`-shared output runs across shard edges, and
//! every consumer merges its input deterministically by origin stamp —
//! reproducing the serial delivery order bit for bit. Parallel and serial
//! runs are therefore indistinguishable at Strong, Middle *and* Weak
//! consistency (Weak's forgetting horizon races per-shell arrival order,
//! which sharding preserves; only caller-side batch splitting can move
//! it — see [`scheduler`] and `executor`'s module docs).

pub mod aggregate;
pub mod consistency;
pub mod executor;
pub mod fused;
pub mod join;
pub mod negation;
pub mod operator;
pub mod scheduler;
pub mod sequence;
pub mod stateless;
pub mod stats;

pub use consistency::{ConsistencyLevel, ConsistencySpec};
pub use executor::{Dataflow, DataflowBuilder, NodeId, Port};
pub use fused::{FusedStage, FusedStatelessOp};
pub use operator::{OpContext, OperatorModule, OperatorShell, OutputBuffer};
pub use scheduler::{SchedStats, ShardPlan};
pub use stats::OpStats;

/// Convenience prelude.
pub mod prelude {
    pub use crate::aggregate::GroupAggregateOp;
    pub use crate::consistency::{ConsistencyLevel, ConsistencySpec};
    pub use crate::executor::{Dataflow, DataflowBuilder, NodeId, Port};
    pub use crate::fused::{FusedStage, FusedStatelessOp};
    pub use crate::join::JoinOp;
    pub use crate::negation::{NegationOp, NegationScope};
    pub use crate::operator::{OpContext, OperatorModule, OperatorShell, OutputBuffer};
    pub use crate::scheduler::{SchedStats, ShardPlan};
    pub use crate::sequence::{AtLeastOp, SequenceOp};
    pub use crate::stateless::{AlterLifetimeOp, ProjectOp, SelectOp, SliceOp, UnionOp};
    pub use crate::stats::OpStats;
}
