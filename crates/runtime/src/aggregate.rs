//! The physical group-by/aggregate with view-update semantics.
//!
//! Per group the operator maintains the live member events and the
//! currently-emitted step function of the aggregate (one output event per
//! maximal constant segment, exactly as the denotational
//! `cedr_algebra::group_aggregate`). Any state change triggers a
//! recompute-and-diff of the affected group: removed segments are fully
//! retracted, added segments inserted — so out-of-order arrivals and input
//! retractions repair optimistic output with retractions, the middle-level
//! behaviour of Section 5.
//!
//! **Flushing.** Output below the watermark is final. Each group tracks a
//! `floor`: the point up to which its step function has been flushed.
//! Events wholly below the floor are dropped and recomputation clips member
//! lifetimes to the floor, so state stays proportional to the *live* window
//! rather than the whole history. The floor only advances to a segment
//! boundary (never splits an emitted segment), which keeps emitted and
//! recomputed segments aligned.
//!
//! **Batch-native delivery.** [`OperatorModule::on_batch`] folds a whole
//! delivery run into group state first and then emits **one refresh per
//! touched group per run** (in first-touch order), instead of one refresh
//! per state-changing message: the intermediate step functions a finer
//! batching would have published-and-repaired are never emitted. Net
//! content, output guarantee and the per-run determinism the sharded
//! scheduler relies on are unchanged; see the one-refresh-per-run contract
//! in the [`operator`](crate::operator) module docs. Members are still
//! sorted before folding, so order-sensitive float aggregates (Sum/Avg)
//! stay pinned.

use crate::operator::{OpContext, OperatorModule};
use cedr_algebra::expr::Scalar;
use cedr_algebra::relational::AggFunc;
use cedr_streams::{Message, Retraction};
use cedr_temporal::{Event, EventId, Interval, TimePoint, Value};
use std::collections::{BTreeMap, HashMap, HashSet};

#[derive(Default)]
struct GroupState {
    members: HashMap<EventId, Event>,
    /// Currently-emitted segments, keyed by start (maximal constant
    /// segments never share a start).
    emitted: BTreeMap<TimePoint, Event>,
    /// Everything below this is flushed and immutable.
    floor: TimePoint,
}

/// Incremental group-by + aggregate.
pub struct GroupAggregateOp {
    key: Vec<Scalar>,
    agg: AggFunc,
    groups: HashMap<Vec<Value>, GroupState>,
}

impl GroupAggregateOp {
    pub fn new(key: Vec<Scalar>, agg: AggFunc) -> Self {
        GroupAggregateOp {
            key,
            agg,
            groups: HashMap::new(),
        }
    }

    /// A global (ungrouped) aggregate.
    pub fn global(agg: AggFunc) -> Self {
        Self::new(Vec::new(), agg)
    }

    fn group_key(&self, e: &Event) -> Vec<Value> {
        self.key.iter().map(|s| s.eval_event(e)).collect()
    }

    /// Recompute the group's segments above its floor and emit the diff
    /// (one *refresh*: the retract+insert pair-set of the step-function
    /// change, counted in [`OpStats::group_refreshes`](crate::OpStats)).
    fn refresh(key: &[Scalar], agg: &AggFunc, g: &mut GroupState, ctx: &mut OpContext) {
        ctx.effort.group_refreshes += 1;
        // Clip members to the floor; drop empties.
        let mut clipped: Vec<Event> = g
            .members
            .values()
            .filter_map(|e| {
                let iv =
                    Interval::new(TimePoint::max_of(e.interval.start, g.floor), e.interval.end);
                if iv.is_empty() {
                    None
                } else {
                    let mut c = e.clone();
                    c.interval = iv;
                    Some(c)
                }
            })
            .collect();
        // Deterministic member order before aggregation: float Sum/Avg are
        // order-sensitive, so hash-iteration order must not reach the
        // evaluator (the sharded scheduler's serial-equivalence guarantee
        // needs output to be a pure function of delivered input).
        clipped.sort_unstable_by_key(|e| (e.interval.start, e.id));
        let fresh = cedr_algebra::relational::group_aggregate(&clipped, key, agg);
        let fresh_by_start: BTreeMap<TimePoint, Event> =
            fresh.into_iter().map(|e| (e.interval.start, e)).collect();

        // Diff: identical (interval, payload) pairs are kept; everything
        // else is retracted/inserted. IDs are deterministic in (payload,
        // interval), so identical segments have identical IDs.
        for (start, old) in g.emitted.iter() {
            match fresh_by_start.get(start) {
                Some(new) if new.interval == old.interval && new.payload == old.payload => {}
                _ => ctx.out.retract_full(old.clone()),
            }
        }
        for (start, new) in fresh_by_start.iter() {
            match g.emitted.get(start) {
                Some(old) if new.interval == old.interval && new.payload == old.payload => {}
                _ => ctx.out.insert(new.clone()),
            }
        }
        g.emitted = fresh_by_start;
    }

    /// Fold one insert into group state; `Some(key)` iff state changed.
    fn fold_insert(&mut self, event: &Event) -> Option<Vec<Value>> {
        if event.interval.is_empty() {
            return None;
        }
        let k = self.group_key(event);
        let g = self.groups.entry(k.clone()).or_default();
        if g.members.contains_key(&event.id) {
            return None; // duplicate delivery
        }
        g.members.insert(event.id, event.clone());
        Some(k)
    }

    /// Fold one retraction into group state; `Some(key)` iff state changed.
    fn fold_retract(&mut self, r: &Retraction) -> Option<Vec<Value>> {
        let k = self.group_key(&r.event);
        let g = self.groups.get_mut(&k)?; // group forgotten
        let current = g.members.get(&r.event.id)?; // member forgotten
        let new_end = TimePoint::min_of(current.interval.end, r.new_end);
        if new_end >= current.interval.end {
            return None;
        }
        let shortened = current.shortened(new_end);
        if shortened.interval.is_empty() {
            g.members.remove(&r.event.id);
        } else {
            g.members.insert(r.event.id, shortened);
        }
        Some(k)
    }

    fn refresh_group(&mut self, k: &[Value], ctx: &mut OpContext) {
        let g = self.groups.get_mut(k).expect("touched groups exist");
        Self::refresh(&self.key, &self.agg, g, ctx);
    }
}

impl OperatorModule for GroupAggregateOp {
    fn name(&self) -> &'static str {
        "group_aggregate"
    }

    fn on_insert(&mut self, _input: usize, event: &Event, ctx: &mut OpContext) {
        if let Some(k) = self.fold_insert(event) {
            self.refresh_group(&k, ctx);
        }
    }

    fn on_retract(&mut self, _input: usize, r: &Retraction, ctx: &mut OpContext) {
        if let Some(k) = self.fold_retract(r) {
            self.refresh_group(&k, ctx);
        }
    }

    /// Batch-native delivery: fold the **whole run** into group state
    /// first, then emit one refresh per touched group, in first-touch
    /// order (deterministic in the run, never hash order). A run that
    /// hammers one group `n` times costs one recompute-and-diff instead
    /// of `n`, and the intermediate step functions are never published.
    fn on_batch(&mut self, _input: usize, msgs: &[Message], ctx: &mut OpContext) {
        let mut touched: Vec<Vec<Value>> = Vec::new();
        let mut seen: HashSet<Vec<Value>> = HashSet::new();
        for m in msgs {
            let changed = match m {
                Message::Insert(e) => self.fold_insert(e),
                Message::Retract(r) => self.fold_retract(r),
                Message::Cti(_) => {
                    debug_assert!(false, "CTIs are consumed by the consistency monitor");
                    None
                }
            };
            // One clone per *distinct* group (for the dedup set), not per
            // state-changing message — this loop is the hot path the
            // collapse exists to amortise.
            if let Some(k) = changed {
                if !seen.contains(&k) {
                    seen.insert(k.clone());
                    touched.push(k);
                }
            }
        }
        for k in &touched {
            self.refresh_group(k, ctx);
        }
    }

    fn on_advance(&mut self, ctx: &mut OpContext) {
        let bound = TimePoint::max_of(ctx.watermark, ctx.horizon());
        if bound == TimePoint::ZERO {
            return;
        }
        let mut dead_groups = Vec::new();
        for (k, g) in self.groups.iter_mut() {
            // Advance the floor to `bound`, but never into an emitted
            // segment (we cannot split a segment we already emitted).
            let mut new_floor = bound;
            for (start, seg) in g.emitted.iter() {
                if *start < new_floor && seg.interval.end > new_floor {
                    new_floor = *start;
                    break;
                }
            }
            if new_floor > g.floor {
                g.floor = new_floor;
                g.emitted.retain(|_, seg| seg.interval.end > new_floor);
                g.members.retain(|_, e| e.interval.end > new_floor);
            }
            if g.members.is_empty() && g.emitted.is_empty() {
                dead_groups.push(k.clone());
            }
        }
        for k in dead_groups {
            self.groups.remove(&k);
        }
    }

    fn state_size(&self) -> usize {
        self.groups
            .values()
            .map(|g| g.members.len() + g.emitted.len())
            .sum()
    }

    fn state_snapshot(&self, out: &mut Vec<u8>) {
        use cedr_durable::Persist;
        // Group keys sorted by their encoded bytes: Vec<Value> has no Ord,
        // but its deterministic encoding does.
        let mut keyed: Vec<(Vec<u8>, &Vec<Value>)> = self
            .groups
            .keys()
            .map(|k| (cedr_durable::to_bytes(k), k))
            .collect();
        keyed.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        (keyed.len() as u64).encode(out);
        for (_, key) in keyed {
            let g = &self.groups[key];
            key.encode(out);
            let mut members: Vec<(EventId, Event)> =
                g.members.iter().map(|(&id, e)| (id, e.clone())).collect();
            members.sort_unstable_by_key(|&(id, _)| id);
            members.encode(out);
            // BTreeMap order is already deterministic.
            (g.emitted.len() as u64).encode(out);
            for (start, e) in &g.emitted {
                start.encode(out);
                e.encode(out);
            }
            g.floor.encode(out);
        }
    }

    fn state_restore(
        &mut self,
        r: &mut cedr_durable::Reader<'_>,
    ) -> Result<(), cedr_durable::CodecError> {
        use cedr_durable::Persist;
        self.groups.clear();
        for _ in 0..u64::decode(r)? {
            let key = Vec::<Value>::decode(r)?;
            let members = Vec::<(EventId, Event)>::decode(r)?.into_iter().collect();
            let mut emitted = BTreeMap::new();
            for _ in 0..u64::decode(r)? {
                let start = TimePoint::decode(r)?;
                emitted.insert(start, Event::decode(r)?);
            }
            let floor = TimePoint::decode(r)?;
            self.groups.insert(
                key,
                GroupState {
                    members,
                    emitted,
                    floor,
                },
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::ConsistencySpec;
    use crate::operator::OperatorShell;
    use cedr_streams::{Collector, Message};
    use cedr_temporal::interval::iv;
    use cedr_temporal::time::t;
    use cedr_temporal::Payload;

    fn ev(id: u64, a: u64, b: u64, group: &str, v: i64) -> Event {
        Event::primitive(
            EventId(id),
            iv(a, b),
            Payload::from_values(vec![Value::str(group), Value::Int(v)]),
        )
    }

    fn count_by_group() -> GroupAggregateOp {
        GroupAggregateOp::new(vec![Scalar::Field(0)], AggFunc::Count)
    }

    fn net(msgs: &[Message]) -> Vec<(Interval, Vec<Value>)> {
        let mut c = Collector::new();
        c.push_all(msgs.iter().cloned());
        let mut rows: Vec<(Interval, Vec<Value>)> = c
            .net_table()
            .rows
            .iter()
            .map(|r| (r.interval, r.payload.iter().cloned().collect()))
            .collect();
        rows.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        rows
    }

    #[test]
    fn count_steps_up_and_down() {
        let mut s = OperatorShell::new(Box::new(count_by_group()), ConsistencySpec::middle());
        let mut all = Vec::new();
        all.extend(s.push(0, Message::insert_event(ev(1, 0, 10, "g", 0)), 0));
        all.extend(s.push(0, Message::insert_event(ev(2, 4, 6, "g", 0)), 1));
        let rows = net(&all);
        assert_eq!(
            rows,
            vec![
                (iv(0, 4), vec![Value::str("g"), Value::Int(1)]),
                (iv(4, 6), vec![Value::str("g"), Value::Int(2)]),
                (iv(6, 10), vec![Value::str("g"), Value::Int(1)]),
            ]
        );
    }

    #[test]
    fn late_event_repairs_with_retractions() {
        let mut s = OperatorShell::new(Box::new(count_by_group()), ConsistencySpec::middle());
        let mut all = Vec::new();
        all.extend(s.push(0, Message::insert_event(ev(1, 0, 10, "g", 0)), 0));
        // Late overlapping event: previously-emitted [0,10)@1 is repaired.
        all.extend(s.push(0, Message::insert_event(ev(2, 2, 5, "g", 0)), 1));
        assert!(s.stats().out_retractions > 0, "optimistic output repaired");
        let rows = net(&all);
        assert_eq!(
            rows,
            vec![
                (iv(0, 2), vec![Value::str("g"), Value::Int(1)]),
                (iv(2, 5), vec![Value::str("g"), Value::Int(2)]),
                (iv(5, 10), vec![Value::str("g"), Value::Int(1)]),
            ]
        );
    }

    #[test]
    fn input_retraction_repairs_the_aggregate() {
        let mut s = OperatorShell::new(Box::new(count_by_group()), ConsistencySpec::middle());
        let e1 = ev(1, 0, 10, "g", 0);
        let mut all = Vec::new();
        all.extend(s.push(0, Message::insert_event(e1.clone()), 0));
        all.extend(s.push(0, Message::insert_event(ev(2, 0, 10, "g", 0)), 1));
        all.extend(s.push(0, Message::Retract(Retraction::new(e1, t(4))), 2));
        let rows = net(&all);
        assert_eq!(
            rows,
            vec![
                (iv(0, 4), vec![Value::str("g"), Value::Int(2)]),
                (iv(4, 10), vec![Value::str("g"), Value::Int(1)]),
            ]
        );
    }

    #[test]
    fn groups_are_independent() {
        let mut s = OperatorShell::new(Box::new(count_by_group()), ConsistencySpec::middle());
        let o1 = s.push(0, Message::insert_event(ev(1, 0, 10, "a", 0)), 0);
        let o2 = s.push(0, Message::insert_event(ev(2, 0, 10, "b", 0)), 1);
        // The second insert does not disturb group "a": no retraction.
        assert_eq!(o1.iter().filter(|m| m.is_data()).count(), 1);
        assert_eq!(o2.iter().filter(|m| m.is_data()).count(), 1);
    }

    #[test]
    fn watermark_flushes_and_frees_state() {
        let mut s = OperatorShell::new(Box::new(count_by_group()), ConsistencySpec::middle());
        s.push(0, Message::insert_event(ev(1, 0, 10, "g", 0)), 0);
        s.push(0, Message::insert_event(ev(2, 20, 30, "g", 0)), 1);
        let before = s.module().state_size();
        s.push(0, Message::Cti(t(15)), 2);
        let after = s.module().state_size();
        assert!(after < before, "flushed state below the watermark");
    }

    #[test]
    fn flush_then_continue_remains_consistent() {
        // Flushing must not perturb the still-live region.
        let mut s = OperatorShell::new(Box::new(count_by_group()), ConsistencySpec::middle());
        let mut all = Vec::new();
        all.extend(s.push(0, Message::insert_event(ev(1, 0, 8, "g", 0)), 0));
        all.extend(s.push(0, Message::insert_event(ev(2, 4, 20, "g", 0)), 1));
        all.extend(s.push(0, Message::Cti(t(6)), 2));
        all.extend(s.push(0, Message::insert_event(ev(3, 10, 12, "g", 0)), 3));
        all.extend(s.push(0, Message::Cti(TimePoint::INFINITY), 4));
        let rows = net(&all);
        // Denotational: count is 1 on [0,4), 2 on [4,8), 1 on [8,10),
        // 2 on [10,12), 1 on [12,20).
        let expected: Vec<(Interval, i64)> = vec![
            (iv(0, 4), 1),
            (iv(4, 8), 2),
            (iv(8, 10), 1),
            (iv(10, 12), 2),
            (iv(12, 20), 1),
        ];
        let got: Vec<(Interval, i64)> = rows
            .iter()
            .map(|(iv, p)| (*iv, p[1].as_i64().unwrap()))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn sum_and_avg_aggregate_values() {
        let mut s = OperatorShell::new(
            Box::new(GroupAggregateOp::new(
                vec![Scalar::Field(0)],
                AggFunc::Avg(Scalar::Field(1)),
            )),
            ConsistencySpec::middle(),
        );
        let mut all = Vec::new();
        all.extend(s.push(0, Message::insert_event(ev(1, 0, 10, "g", 10)), 0));
        all.extend(s.push(0, Message::insert_event(ev(2, 0, 10, "g", 20)), 1));
        let rows = net(&all);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1[1], Value::Float(15.0));
    }
}
