//! Physical negation: UNLESS, NOT(·, SEQUENCE) and CANCEL-WHEN.
//!
//! Negation is where the consistency spectrum bites (Section 5): an output
//! asserting *non-occurrence* within a scope can only be **confirmed** once
//! the input guarantee (CTI) covers the whole scope.
//!
//! * Strong (`B=∞`): hold the candidate until the watermark passes the
//!   scope end, then emit — blocking, but never repaired.
//! * Middle (`B=0`): emit the moment the candidate appears; if a negating
//!   event shows up later (late arrival or plain in-order occurrence), emit
//!   a **retraction** of the optimistic output. If the negating event is
//!   itself removed, the output is *revived*.
//! * Weak (`B=0`, finite `M`): as middle, but candidates and negators
//!   below the memory horizon are forgotten, so some repairs never happen.
//!
//! Two scopes cover the paper's three operators:
//! [`NegationScope::After`] — UNLESS's `(e1.Vs, e1.Vs + w)`; and
//! [`NegationScope::History`] — the lineage scope `(e1.Rt, e1.Vs)` shared by
//! CANCEL-WHEN and NOT(E, SEQUENCE(…)) (for sequences over primitive
//! contributors `cbt[1].Vs = Rt` exactly; see DESIGN.md).

use crate::operator::{OpContext, OperatorModule};
use cedr_algebra::expr::Pred;
use cedr_streams::{Message, Retraction};
use cedr_temporal::{Duration, Event, EventId, Interval, Lineage, TimePoint};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// The negation scope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NegationScope {
    /// UNLESS(E1, E2, w): negated events in `(e1.Vs, e1.Vs + w)`.
    After { w: Duration },
    /// CANCEL-WHEN / NOT(·, SEQUENCE): negated events in `(e1.Rt, e1.Vs)`.
    History,
}

struct Entry {
    e1: Event,
    killers: HashSet<EventId>,
    emitted: bool,
}

/// Physical negation operator. Input 0: candidates (E1); input 1: negators
/// (E2 / the NOT-scope events).
pub struct NegationOp {
    scope: NegationScope,
    /// Predicate over `[e1, e2]` (predicate injection for negation).
    neg_pred: Pred,
    entries: HashMap<EventId, Entry>,
    entries_by_vs: BTreeMap<(TimePoint, EventId), ()>,
    e2s: HashMap<EventId, Event>,
    e2s_by_vs: BTreeMap<(TimePoint, EventId), ()>,
    kill_index: HashMap<EventId, Vec<EventId>>,
    /// Purge hint for the History scope: an upper bound on `Vs − Rt` of
    /// future candidates, allowing negator state to be bounded. `None`
    /// keeps negators until the memory horizon claims them (the paper notes
    /// CANCEL-WHEN's scope "cannot in general be expressed by … window").
    max_history: Option<Duration>,
}

impl NegationOp {
    pub fn new(scope: NegationScope, neg_pred: Pred) -> Self {
        NegationOp {
            scope,
            neg_pred,
            entries: HashMap::new(),
            entries_by_vs: BTreeMap::new(),
            e2s: HashMap::new(),
            e2s_by_vs: BTreeMap::new(),
            kill_index: HashMap::new(),
            max_history: None,
        }
    }

    /// UNLESS(E1, E2, w).
    pub fn unless(w: Duration, neg_pred: Pred) -> Self {
        Self::new(NegationScope::After { w }, neg_pred)
    }

    /// CANCEL-WHEN(E1, E2) / NOT(E, SEQUENCE(…)).
    pub fn history(neg_pred: Pred) -> Self {
        Self::new(NegationScope::History, neg_pred)
    }

    /// Bound the History scope for negator purging.
    pub fn with_max_history(mut self, d: Duration) -> Self {
        self.max_history = Some(d);
        self
    }

    fn scope_of(&self, e1: &Event) -> (TimePoint, TimePoint) {
        match self.scope {
            NegationScope::After { w } => (e1.vs(), e1.vs() + w),
            NegationScope::History => (e1.root_time, e1.vs()),
        }
    }

    /// The time at which non-occurrence is confirmed by the watermark.
    fn confirm_time(&self, e1: &Event) -> TimePoint {
        self.scope_of(e1).1
    }

    fn output_of(&self, e1: &Event) -> Event {
        match self.scope {
            NegationScope::After { w } => Event::composite(
                e1.id,
                Interval::new(e1.vs(), e1.vs() + w),
                e1.root_time,
                Lineage::of(vec![e1.id]),
                e1.payload.clone(),
            ),
            NegationScope::History => e1.clone(),
        }
    }

    fn negates(&self, e1: &Event, e2: &Event) -> bool {
        let (a, b) = self.scope_of(e1);
        a < e2.vs() && e2.vs() < b && self.neg_pred.eval_tuple(&[e1, e2])
    }

    fn try_emit(
        scope_end: TimePoint,
        anchor: TimePoint,
        entry: &mut Entry,
        output: Event,
        ctx: &mut OpContext,
    ) {
        if entry.emitted || !entry.killers.is_empty() {
            return;
        }
        let confirmed = ctx.watermark >= scope_end;
        if confirmed || ctx.may_emit_optimistically(anchor) {
            ctx.out.insert(output);
            entry.emitted = true;
        }
    }

    /// Admit a negator into the `(vs, id)` index; `true` iff it is fresh
    /// (not a duplicate delivery).
    fn admit_negator(&mut self, event: &Event) -> bool {
        if self.e2s.contains_key(&event.id) {
            return false;
        }
        self.e2s.insert(event.id, event.clone());
        self.e2s_by_vs.insert((event.vs(), event.id), ());
        true
    }

    /// Kill every candidate an (already admitted) negator negates,
    /// repairing optimistic output. Reads only candidate state.
    fn negator_kill_sweep(&mut self, event: &Event, ctx: &mut OpContext) {
        // Which candidates does this negator kill?
        let affected: Vec<EventId> = match self.scope {
            NegationScope::After { w } => {
                // e1.Vs ∈ (e2.Vs − w, e2.Vs).
                let lo = event.vs() - w;
                self.entries_by_vs
                    .range((lo, EventId(0))..(event.vs() + Duration(1), EventId(0)))
                    .map(|((_, id), _)| *id)
                    .collect()
            }
            // (vs, id) index order, not hash order: the kill sweep's
            // emission order must be deterministic.
            NegationScope::History => self.entries_by_vs.keys().map(|&(_, id)| id).collect(),
        };
        for e1_id in affected {
            let Some(e1) = self.entries.get(&e1_id).map(|en| en.e1.clone()) else {
                continue;
            };
            if !self.negates(&e1, event) {
                continue;
            }
            let out = self.output_of(&e1);
            let entry = self.entries.get_mut(&e1_id).expect("present");
            let was_clear = entry.killers.is_empty();
            entry.killers.insert(event.id);
            self.kill_index.entry(event.id).or_default().push(e1_id);
            let entry = self.entries.get_mut(&e1_id).expect("present");
            if entry.emitted && was_clear {
                // Repair the optimistic output.
                ctx.out.retract_full(out);
                entry.emitted = false;
            }
        }
    }
}

impl OperatorModule for NegationOp {
    fn name(&self) -> &'static str {
        match self.scope {
            NegationScope::After { .. } => "unless",
            NegationScope::History => "cancel_when",
        }
    }

    fn arity(&self) -> usize {
        2
    }

    fn on_insert(&mut self, input: usize, event: &Event, ctx: &mut OpContext) {
        if event.interval.is_empty() {
            return;
        }
        if input == 0 {
            if self.entries.contains_key(&event.id) {
                return; // duplicate
            }
            let mut entry = Entry {
                e1: event.clone(),
                killers: HashSet::new(),
                emitted: false,
            };
            // Known negators already in scope?
            let (a, b) = self.scope_of(event);
            for ((vs, e2id), _) in self
                .e2s_by_vs
                .range((a, EventId(0))..(b + Duration(1), EventId(0)))
            {
                if *vs <= a || *vs >= b {
                    continue;
                }
                let e2 = &self.e2s[e2id];
                if self.neg_pred.eval_tuple(&[event, e2]) {
                    entry.killers.insert(*e2id);
                    self.kill_index.entry(*e2id).or_default().push(event.id);
                }
            }
            let scope_end = self.confirm_time(event);
            let output = self.output_of(event);
            Self::try_emit(scope_end, event.vs(), &mut entry, output, ctx);
            self.entries_by_vs.insert((event.vs(), event.id), ());
            self.entries.insert(event.id, entry);
        } else if self.admit_negator(event) {
            self.negator_kill_sweep(event, ctx);
        }
    }

    /// Batch-grained admission for negator runs: a run of pure inserts on
    /// input 1 enters the `(vs, id)` index in one pass, then each negator
    /// runs its kill sweep in arrival order. The sweep reads only
    /// *candidate* state — which a negator run cannot change — so
    /// emissions are bit-identical to per-message dispatch. Mixed or
    /// candidate runs dispatch per message (each candidate's processing
    /// is already independent of its run siblings).
    fn on_batch(&mut self, input: usize, msgs: &[Message], ctx: &mut OpContext) {
        if input == 1 && msgs.len() > 1 && msgs.iter().all(|m| matches!(m, Message::Insert(_))) {
            let mut fresh: Vec<Arc<Event>> = Vec::with_capacity(msgs.len());
            for m in msgs {
                if let Message::Insert(e) = m {
                    if !e.interval.is_empty() && self.admit_negator(e) {
                        fresh.push(e.clone());
                    }
                }
            }
            for e in fresh {
                self.negator_kill_sweep(&e, ctx);
            }
            return;
        }
        crate::operator::dispatch_per_message(self, input, msgs, ctx);
    }

    fn on_retract(&mut self, input: usize, r: &Retraction, ctx: &mut OpContext) {
        if !r.is_full_removal() {
            // Lifetimes don't matter to negation; keep stored copies fresh.
            if input == 0 {
                if let Some(entry) = self.entries.get_mut(&r.event.id) {
                    let new_end = TimePoint::min_of(entry.e1.interval.end, r.new_end);
                    entry.e1.interval = Interval::new(entry.e1.interval.start, new_end);
                }
            } else if let Some(e2) = self.e2s.get_mut(&r.event.id) {
                let new_end = TimePoint::min_of(e2.interval.end, r.new_end);
                e2.interval = Interval::new(e2.interval.start, new_end);
            }
            return;
        }
        if input == 0 {
            let Some(entry) = self.entries.remove(&r.event.id) else {
                return;
            };
            self.entries_by_vs.remove(&(entry.e1.vs(), entry.e1.id));
            if entry.emitted {
                ctx.out.retract_full(self.output_of(&entry.e1));
            }
        } else {
            if self.e2s.remove(&r.event.id).is_none() {
                return;
            }
            self.e2s_by_vs.remove(&(r.event.interval.start, r.event.id));
            // Revive candidates this negator was (solely) killing.
            for e1_id in self.kill_index.remove(&r.event.id).unwrap_or_default() {
                let Some(e1) = self.entries.get(&e1_id).map(|en| en.e1.clone()) else {
                    continue;
                };
                let scope_end = self.confirm_time(&e1);
                let output = self.output_of(&e1);
                let entry = self.entries.get_mut(&e1_id).expect("present");
                entry.killers.remove(&r.event.id);
                Self::try_emit(scope_end, e1.vs(), entry, output, ctx);
            }
        }
    }

    fn on_advance(&mut self, ctx: &mut OpContext) {
        // 1. Confirm / optimistically release pending candidates; drop
        //    entries whose scope the watermark has sealed (they are final).
        let mut sealed: Vec<EventId> = Vec::new();
        let ids: Vec<EventId> = self.entries_by_vs.keys().map(|&(_, id)| id).collect();
        for id in ids {
            let Some(e1) = self.entries.get(&id).map(|en| en.e1.clone()) else {
                continue;
            };
            let scope_end = self.confirm_time(&e1);
            let output = self.output_of(&e1);
            let entry = self.entries.get_mut(&id).expect("present");
            Self::try_emit(scope_end, e1.vs(), entry, output, ctx);
            if ctx.watermark >= scope_end && ctx.watermark > e1.vs() {
                // No future negator (sync ≥ watermark ≥ scope end) nor a
                // removal of e1 (sync = e1.Vs < watermark) can arrive.
                sealed.push(id);
            }
        }
        for id in sealed {
            if let Some(e) = self.entries.remove(&id) {
                self.entries_by_vs.remove(&(e.e1.vs(), e.e1.id));
            }
        }
        // 2. Forget candidates below the memory horizon (weak consistency):
        //    emitted outputs stand unrepaired.
        let horizon = ctx.horizon();
        if horizon > TimePoint::ZERO {
            let doomed: Vec<EventId> = self
                .entries_by_vs
                .range(..(horizon, EventId(0)))
                .map(|((_, id), _)| *id)
                .collect();
            for id in doomed {
                if let Some(e) = self.entries.remove(&id) {
                    self.entries_by_vs.remove(&(e.e1.vs(), e.e1.id));
                }
            }
        }
        // 3. Purge negators that can no longer affect anything.
        let negator_bound = match self.scope {
            // Future candidates have Vs ≥ watermark; a negator with
            // Vs ≤ watermark can only kill candidates already present
            // (recorded in their killer sets), and its own removal (sync =
            // its Vs < watermark) can no longer arrive.
            NegationScope::After { .. } => ctx.watermark,
            // Future candidates can reach arbitrarily far back (Rt is
            // unbounded) unless the planner bounds the history.
            NegationScope::History => match self.max_history {
                Some(d) => TimePoint::max_of(ctx.watermark - d, horizon),
                None => horizon,
            },
        };
        let bound = TimePoint::max_of(negator_bound, horizon);
        if bound > TimePoint::ZERO {
            let dead: Vec<(TimePoint, EventId)> = self
                .e2s_by_vs
                .range(..(bound, EventId(0)))
                .map(|(&k, _)| k)
                .collect();
            for (vs, id) in dead {
                self.e2s_by_vs.remove(&(vs, id));
                self.e2s.remove(&id);
            }
        }
    }

    fn state_size(&self) -> usize {
        self.entries.len() + self.e2s.len()
    }

    fn cti_lag(&self) -> Duration {
        match self.scope {
            NegationScope::After { w } => w,
            NegationScope::History => Duration::ZERO,
        }
    }

    fn state_snapshot(&self, out: &mut Vec<u8>) {
        use cedr_durable::Persist;
        // Entries sorted by candidate ID; the `*_by_vs` indexes are
        // derived and rebuilt on restore.
        let mut ids: Vec<EventId> = self.entries.keys().copied().collect();
        ids.sort_unstable();
        (ids.len() as u64).encode(out);
        for id in ids {
            let entry = &self.entries[&id];
            id.encode(out);
            entry.e1.encode(out);
            let mut killers: Vec<EventId> = entry.killers.iter().copied().collect();
            killers.sort_unstable();
            killers.encode(out);
            entry.emitted.encode(out);
        }
        let mut e2s: Vec<(EventId, Event)> =
            self.e2s.iter().map(|(&id, e)| (id, e.clone())).collect();
        e2s.sort_unstable_by_key(|&(id, _)| id);
        e2s.encode(out);
        let mut kills: Vec<EventId> = self.kill_index.keys().copied().collect();
        kills.sort_unstable();
        (kills.len() as u64).encode(out);
        for id in kills {
            id.encode(out);
            // Kill order is sweep order: preserved as-is.
            self.kill_index[&id].encode(out);
        }
    }

    fn state_restore(
        &mut self,
        r: &mut cedr_durable::Reader<'_>,
    ) -> Result<(), cedr_durable::CodecError> {
        use cedr_durable::Persist;
        self.entries.clear();
        self.entries_by_vs.clear();
        for _ in 0..u64::decode(r)? {
            let id = EventId::decode(r)?;
            let e1 = Event::decode(r)?;
            let killers = Vec::<EventId>::decode(r)?.into_iter().collect();
            let emitted = bool::decode(r)?;
            self.entries_by_vs.insert((e1.vs(), id), ());
            self.entries.insert(
                id,
                Entry {
                    e1,
                    killers,
                    emitted,
                },
            );
        }
        self.e2s.clear();
        self.e2s_by_vs.clear();
        for (id, e) in Vec::<(EventId, Event)>::decode(r)? {
            self.e2s_by_vs.insert((e.vs(), id), ());
            self.e2s.insert(id, e);
        }
        self.kill_index.clear();
        for _ in 0..u64::decode(r)? {
            let id = EventId::decode(r)?;
            self.kill_index.insert(id, Vec::<EventId>::decode(r)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::ConsistencySpec;
    use crate::operator::OperatorShell;
    use cedr_algebra::expr::{CmpOp, Scalar};
    use cedr_streams::Message;
    use cedr_temporal::time::{dur, t};
    use cedr_temporal::{Payload, Value};

    fn pt(id: u64, vs: u64) -> Event {
        Event::primitive(EventId(id), Interval::point(t(vs)), Payload::empty())
    }

    fn ptp(id: u64, vs: u64, m: &str) -> Event {
        Event::primitive(
            EventId(id),
            Interval::point(t(vs)),
            Payload::from_values(vec![Value::str(m)]),
        )
    }

    fn unless_shell(spec: ConsistencySpec) -> OperatorShell {
        OperatorShell::new(Box::new(NegationOp::unless(dur(10), Pred::True)), spec)
    }

    #[test]
    fn middle_emits_optimistically_then_retracts() {
        let mut s = unless_shell(ConsistencySpec::middle());
        let out = s.push(0, Message::insert_event(pt(1, 5)), 0);
        assert_eq!(
            out.iter().filter(|m| m.is_data()).count(),
            1,
            "optimistic UNLESS output at once"
        );
        // The negating event arrives: the output is repaired.
        let out2 = s.push(1, Message::insert_event(pt(2, 8)), 1);
        let r = out2[0].as_retract().unwrap();
        assert!(r.is_full_removal());
        assert_eq!(r.event.id, EventId(1));
    }

    #[test]
    fn strong_blocks_until_scope_confirmed() {
        let mut s = unless_shell(ConsistencySpec::strong());
        // Deliver candidate under a watermark that covers it but not its scope.
        s.push(0, Message::Cti(t(6)), 0);
        s.push(1, Message::Cti(t(6)), 1);
        let out = s.push(0, Message::insert_event(pt(1, 5)), 2);
        assert_eq!(
            out.iter().filter(|m| m.is_data()).count(),
            0,
            "no output before the scope (5,15) is confirmed"
        );
        // Advance the guarantee past the scope end.
        s.push(0, Message::Cti(t(20)), 3);
        let out2 = s.push(1, Message::Cti(t(20)), 4);
        assert_eq!(out2.iter().filter(|m| m.is_data()).count(), 1);
        assert_eq!(s.stats().out_retractions, 0, "strong never repairs");
    }

    #[test]
    fn strong_suppresses_negated_candidates_silently() {
        let mut s = unless_shell(ConsistencySpec::strong());
        s.push(0, Message::insert_event(pt(1, 5)), 0);
        s.push(1, Message::insert_event(pt(2, 8)), 1);
        let out1 = s.push(0, Message::Cti(t(30)), 2);
        let out2 = s.push(1, Message::Cti(t(30)), 3);
        let data: usize = [&out1, &out2]
            .iter()
            .map(|o| o.iter().filter(|m| m.is_data()).count())
            .sum();
        assert_eq!(data, 0, "negated: no output, no retraction");
    }

    #[test]
    fn negator_removal_revives_candidate() {
        let mut s = unless_shell(ConsistencySpec::middle());
        let e2 = pt(2, 8);
        s.push(1, Message::insert_event(e2.clone()), 0);
        let out = s.push(0, Message::insert_event(pt(1, 5)), 1);
        assert_eq!(
            out.iter().filter(|m| m.is_data()).count(),
            0,
            "killed on arrival by known negator"
        );
        // The negator is itself removed: the UNLESS output is revived.
        let out2 = s.push(1, Message::Retract(Retraction::new(e2, t(8))), 2);
        assert_eq!(out2.iter().filter(|m| m.is_data()).count(), 1);
        assert!(out2[0].as_insert().is_some());
    }

    #[test]
    fn unless_scope_bounds_are_strict() {
        let mut s = unless_shell(ConsistencySpec::middle());
        s.push(0, Message::insert_event(pt(1, 5)), 0);
        // Negators exactly at Vs and Vs+w do not kill.
        let o1 = s.push(1, Message::insert_event(pt(2, 5)), 1);
        let o2 = s.push(1, Message::insert_event(pt(3, 15)), 2);
        assert!(o1.iter().all(|m| !m.is_data()));
        assert!(o2.iter().all(|m| !m.is_data()));
    }

    #[test]
    fn predicate_injected_negation() {
        let pred = Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0));
        let mut s = OperatorShell::new(
            Box::new(NegationOp::unless(dur(10), pred)),
            ConsistencySpec::middle(),
        );
        s.push(0, Message::insert_event(ptp(1, 5, "m1")), 0);
        // Other machine's restart: no kill.
        let o = s.push(1, Message::insert_event(ptp(2, 8, "m2")), 1);
        assert!(o.iter().all(|m| !m.is_data()));
        // Same machine: kill.
        let o2 = s.push(1, Message::insert_event(ptp(3, 9, "m1")), 2);
        assert_eq!(o2.iter().filter(|m| m.is_data()).count(), 1);
        assert!(o2[0].as_retract().is_some());
    }

    #[test]
    fn unless_output_cti_lags_by_scope() {
        let mut s = unless_shell(ConsistencySpec::middle());
        let out = s.push(0, Message::Cti(t(25)), 0);
        // Need both inputs' guarantees.
        assert!(out.iter().all(|m| m.as_cti().is_none()));
        let out2 = s.push(1, Message::Cti(t(25)), 1);
        assert_eq!(out2.last().and_then(|m| m.as_cti()), Some(t(15)));
    }

    #[test]
    fn cancel_when_kills_on_pending_window() {
        // Candidate composite: rt=1, vs=10.
        let e1 = Event::composite(
            EventId(50),
            Interval::new(t(10), t(20)),
            t(1),
            Lineage::of(vec![EventId(1), EventId(2)]),
            Payload::empty(),
        );
        let mut s = OperatorShell::new(
            Box::new(NegationOp::history(Pred::True)),
            ConsistencySpec::middle(),
        );
        // Canceller at 5 ∈ (1,10), arrives first.
        s.push(1, Message::insert_event(pt(9, 5)), 0);
        let out = s.push(0, Message::insert_event(e1.clone()), 1);
        assert!(out.iter().all(|m| !m.is_data()), "cancelled");
        // A candidate with rt after the canceller survives.
        let e1b = Event::composite(
            EventId(51),
            Interval::new(t(10), t(20)),
            t(7),
            Lineage::of(vec![EventId(3), EventId(4)]),
            Payload::empty(),
        );
        let out2 = s.push(0, Message::insert_event(e1b), 2);
        assert_eq!(out2.iter().filter(|m| m.is_data()).count(), 1);
    }

    #[test]
    fn cancel_when_late_canceller_retracts() {
        let e1 = Event::composite(
            EventId(50),
            Interval::new(t(10), t(20)),
            t(1),
            Lineage::of(vec![EventId(1), EventId(2)]),
            Payload::empty(),
        );
        let mut s = OperatorShell::new(
            Box::new(NegationOp::history(Pred::True)),
            ConsistencySpec::middle(),
        );
        let out = s.push(0, Message::insert_event(e1), 0);
        assert_eq!(out.iter().filter(|m| m.is_data()).count(), 1, "optimistic");
        // Canceller arrives late (out of order): repair.
        let out2 = s.push(1, Message::insert_event(pt(9, 5)), 1);
        assert_eq!(out2.iter().filter(|m| m.is_data()).count(), 1);
        assert!(out2[0].as_retract().is_some());
    }

    #[test]
    fn strong_release_run_cannot_outrun_candidates_own_removal() {
        // Regression: a candidate and its own full removal (same sync)
        // align together and release in one same-port run. The run's
        // watermark must not overtake the still-undelivered removal, or
        // Strong would confirm the UNLESS output and then retract it —
        // the per-message path emits nothing here.
        let mut s = OperatorShell::new(
            Box::new(NegationOp::unless(dur(2), Pred::True)),
            ConsistencySpec::strong(),
        );
        let e1 = Event::primitive(EventId(1), Interval::new(t(5), t(30)), Payload::empty());
        s.push(0, Message::insert_event(e1.clone()), 0);
        s.push(0, Message::Retract(Retraction::new(e1, t(5))), 1);
        let mut out = s.push(0, Message::Cti(t(10)), 2);
        out.extend(s.push(1, Message::Cti(t(10)), 3));
        assert!(
            out.iter().all(|m| !m.is_data()),
            "removed candidate must be suppressed silently, got {out:?}"
        );
        assert_eq!(s.stats().out_retractions, 0, "strong never repairs");
    }

    #[test]
    fn weak_forgets_and_leaves_output_unrepaired() {
        let spec = ConsistencySpec::weak(dur(5));
        let mut s = OperatorShell::new(Box::new(NegationOp::unless(dur(10), Pred::True)), spec);
        let out = s.push(0, Message::insert_event(pt(1, 5)), 0);
        assert_eq!(out.iter().filter(|m| m.is_data()).count(), 1);
        // Advance far ahead; the entry is forgotten.
        s.push(0, Message::insert_event(pt(2, 100)), 1);
        // The late negator (sync 8 < horizon 95) is dropped by the monitor:
        // the incorrect optimistic output stands (weak's documented bet).
        let out2 = s.push(1, Message::insert_event(pt(3, 8)), 2);
        assert!(out2.iter().all(|m| !m.is_data()));
        assert_eq!(s.stats().forgotten, 1);
    }

    #[test]
    fn state_purges_after_confirmation() {
        let mut s = unless_shell(ConsistencySpec::middle());
        s.push(0, Message::insert_event(pt(1, 5)), 0);
        s.push(1, Message::insert_event(pt(2, 8)), 1);
        assert!(s.module().state_size() > 0);
        s.push(0, Message::Cti(t(100)), 2);
        s.push(1, Message::Cti(t(100)), 3);
        assert_eq!(s.module().state_size(), 0);
    }
}
