//! The physical symmetric join (Definition 9, incremental).
//!
//! State: the current version of every live event on each side, optionally
//! hash-partitioned by an equi-key extracted from the θ predicate. Inserts
//! probe the opposite side; retractions recompute the intersection of the
//! shortened event with every current partner and emit the difference —
//! the retraction-repair machinery of the middle consistency level.
//!
//! **Batch-native probing.** A delivery run arrives on one port, so the
//! *opposite* side's index is frozen for the whole run:
//! [`OperatorModule::on_batch`] memoises the sorted candidate list per
//! distinct key (one index lookup + sort per key per run instead of one
//! per message, counted in [`OpStats::probe_batches`](crate::OpStats)).
//! Candidates stay sorted by ID and every message still probes in arrival
//! order, so emissions are **bit-identical** to per-message dispatch.

use crate::operator::{OpContext, OperatorModule};
use cedr_algebra::expr::{Pred, Scalar};
use cedr_algebra::idgen::idgen;
use cedr_streams::{Message, Retraction};
use cedr_temporal::{Event, EventId, Lineage, TimePoint, Value};
use std::collections::{HashMap, HashSet};

#[derive(Default)]
struct SideState {
    events: HashMap<EventId, Event>,
    by_key: HashMap<Value, HashSet<EventId>>,
}

impl SideState {
    fn key_of(key_expr: Option<&Scalar>, e: &Event) -> Value {
        key_expr.map_or(Value::Null, |k| k.eval_event(e))
    }

    fn remove(&mut self, key_expr: Option<&Scalar>, id: EventId) -> Option<Event> {
        let e = self.events.remove(&id)?;
        let key = Self::key_of(key_expr, &e);
        if let Some(set) = self.by_key.get_mut(&key) {
            set.remove(&id);
            if set.is_empty() {
                self.by_key.remove(&key);
            }
        }
        Some(e)
    }
}

/// Incremental θ-join over two retraction-bearing streams.
pub struct JoinOp {
    theta: Pred,
    /// Optional equi-key per side for hash partitioning (extracted from θ's
    /// top-level `left.col = right.col` conjuncts by the planner).
    keys: Option<(Scalar, Scalar)>,
    sides: [SideState; 2],
}

impl JoinOp {
    pub fn new(theta: Pred) -> Self {
        JoinOp {
            theta,
            keys: None,
            sides: [SideState::default(), SideState::default()],
        }
    }

    /// Enable hash partitioning: `left_key(e0) = right_key(e1)` must be
    /// implied by θ (the planner guarantees this; the θ predicate is still
    /// applied in full).
    pub fn with_keys(mut self, left: Scalar, right: Scalar) -> Self {
        self.keys = Some((left, right));
        self
    }

    fn key_expr(&self, side: usize) -> Option<&Scalar> {
        self.keys
            .as_ref()
            .map(|(l, r)| if side == 0 { l } else { r })
    }

    fn make_output(&self, left: &Event, right: &Event) -> Event {
        Event {
            id: idgen(&[left.id, right.id]),
            interval: left.interval.intersect(&right.interval),
            root_time: TimePoint::min_of(left.root_time, right.root_time),
            lineage: Lineage::of(vec![left.id, right.id]),
            payload: left.payload.concat(&right.payload),
        }
    }

    /// Candidate partner IDs on `side` for an event with the given key, in
    /// ascending ID order. The probe's *emission order* follows this list,
    /// and downstream consumers (the sharded scheduler's deterministic
    /// merge in particular) rely on operator output being a pure function
    /// of delivered input — hash-iteration order must never leak out.
    fn candidates(&self, side: usize, key: &Value) -> Vec<EventId> {
        let mut ids: Vec<EventId> = if self.keys.is_some() {
            self.sides[side]
                .by_key
                .get(key)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default()
        } else {
            self.sides[side].events.keys().copied().collect()
        };
        ids.sort_unstable();
        ids
    }

    fn oriented<'a>(&self, input: usize, e: &'a Event, p: &'a Event) -> (&'a Event, &'a Event) {
        if input == 0 {
            (e, p)
        } else {
            (p, e)
        }
    }

    /// Insert with a per-run probe memo. A run arrives on one port, so the
    /// opposite side is frozen for its duration and `memo` caches the
    /// sorted candidate list per distinct key — emissions are identical to
    /// an unmemoised probe.
    fn insert_with_memo(
        &mut self,
        input: usize,
        event: &Event,
        ctx: &mut OpContext,
        memo: &mut ProbeMemo,
    ) {
        if event.interval.is_empty() {
            return;
        }
        let other = 1 - input;
        let key = SideState::key_of(self.key_expr(input), event);

        // Store (idempotent: duplicate deliveries are ignored).
        let side = &mut self.sides[input];
        if side.events.contains_key(&event.id) {
            return;
        }
        side.events.insert(event.id, event.clone());
        side.by_key.entry(key.clone()).or_default().insert(event.id);

        let cands = memo
            .entry(key.clone())
            .or_insert_with(|| self.candidates(other, &key));
        for pid in cands.iter() {
            let Some(p) = self.sides[other].events.get(pid) else {
                continue;
            };
            let (l, r) = self.oriented(input, event, p);
            if !l.interval.overlaps(&r.interval) {
                continue;
            }
            if !self.theta.eval_tuple(&[l, r]) {
                continue;
            }
            ctx.out.insert(self.make_output(l, r));
        }
    }

    /// Retraction with the same per-run probe memo as
    /// [`JoinOp::insert_with_memo`] (own-side mutations never invalidate
    /// the memo: candidates live on the opposite, frozen side).
    fn retract_with_memo(
        &mut self,
        input: usize,
        r: &Retraction,
        ctx: &mut OpContext,
        memo: &mut ProbeMemo,
    ) {
        let other = 1 - input;
        let Some(old) = self.sides[input].events.get(&r.event.id).cloned() else {
            // Insert was forgotten (weak) or already purged: nothing to repair.
            return;
        };
        // Retractions may arrive out of order; only ever shrink.
        let new_end = TimePoint::min_of(old.interval.end, r.new_end);
        if new_end >= old.interval.end {
            return;
        }
        let shortened = old.shortened(new_end);
        let key = SideState::key_of(self.key_expr(input), &old);

        // Repair every derived output.
        let cands = memo
            .entry(key.clone())
            .or_insert_with(|| self.candidates(other, &key));
        for pid in cands.iter() {
            let Some(p) = self.sides[other].events.get(pid) else {
                continue;
            };
            let (l_old, r_old) = self.oriented(input, &old, p);
            let old_iv = l_old.interval.intersect(&r_old.interval);
            if old_iv.is_empty() {
                continue;
            }
            if !self.theta.eval_tuple(&[l_old, r_old]) {
                continue;
            }
            let (l_new, r_new) = self.oriented(input, &shortened, p);
            let new_iv = l_new.interval.intersect(&r_new.interval);
            let out_old = self.make_output(l_old, r_old);
            if new_iv.is_empty() {
                ctx.out.retract_full(out_old);
            } else if new_iv.end < old_iv.end {
                ctx.out.retract_to(out_old, new_iv.end);
            }
        }

        // Update state.
        if shortened.interval.is_empty() {
            let key_expr = self.key_expr(input).cloned();
            self.sides[input].remove(key_expr.as_ref(), old.id);
        } else {
            self.sides[input].events.insert(old.id, shortened);
        }
    }
}

/// Per-run candidate cache: key → sorted opposite-side candidate IDs.
type ProbeMemo = HashMap<Value, Vec<EventId>>;

impl OperatorModule for JoinOp {
    fn name(&self) -> &'static str {
        "join"
    }

    fn arity(&self) -> usize {
        2
    }

    fn on_insert(&mut self, input: usize, event: &Event, ctx: &mut OpContext) {
        let mut memo = ProbeMemo::new();
        self.insert_with_memo(input, event, ctx, &mut memo);
    }

    fn on_retract(&mut self, input: usize, r: &Retraction, ctx: &mut OpContext) {
        let mut memo = ProbeMemo::new();
        self.retract_with_memo(input, r, ctx, &mut memo);
    }

    /// Batch-native probe: one candidate lookup per distinct key for the
    /// whole run (the opposite side is frozen while a run is delivered),
    /// messages probed in arrival order — emissions are bit-identical to
    /// per-message dispatch.
    fn on_batch(&mut self, input: usize, msgs: &[Message], ctx: &mut OpContext) {
        let mut memo = ProbeMemo::new();
        if msgs.len() > 1 {
            ctx.effort.probe_batches += 1;
        }
        for m in msgs {
            match m {
                Message::Insert(e) => self.insert_with_memo(input, e, ctx, &mut memo),
                Message::Retract(r) => self.retract_with_memo(input, r, ctx, &mut memo),
                Message::Cti(_) => {
                    debug_assert!(false, "CTIs are consumed by the consistency monitor")
                }
            }
        }
    }

    fn on_advance(&mut self, ctx: &mut OpContext) {
        // Events whose lifetime ends at or before the purge bound can no
        // longer join future inputs (their Vs ≥ watermark) nor be retracted
        // (a retraction's sync = new_end < Ve ≤ watermark cannot arrive).
        let bound = TimePoint::max_of(ctx.watermark, ctx.horizon());
        if bound == TimePoint::ZERO {
            return;
        }
        for side in 0..2 {
            let dead: Vec<EventId> = self.sides[side]
                .events
                .values()
                .filter(|e| e.interval.end <= bound)
                .map(|e| e.id)
                .collect();
            let key_expr = self.key_expr(side).cloned();
            for id in dead {
                self.sides[side].remove(key_expr.as_ref(), id);
            }
        }
    }

    fn state_size(&self) -> usize {
        self.sides[0].events.len() + self.sides[1].events.len()
    }

    fn state_snapshot(&self, out: &mut Vec<u8>) {
        use cedr_durable::Persist;
        // Only live events per side; `by_key` is derived and rebuilt.
        for side in &self.sides {
            let mut events: Vec<(EventId, Event)> =
                side.events.iter().map(|(&id, e)| (id, e.clone())).collect();
            events.sort_unstable_by_key(|&(id, _)| id);
            events.encode(out);
        }
    }

    fn state_restore(
        &mut self,
        r: &mut cedr_durable::Reader<'_>,
    ) -> Result<(), cedr_durable::CodecError> {
        use cedr_durable::Persist;
        for input in 0..2 {
            let events = Vec::<(EventId, Event)>::decode(r)?;
            let key_expr = self.key_expr(input).cloned();
            let side = &mut self.sides[input];
            side.events.clear();
            side.by_key.clear();
            for (id, e) in events {
                let key = SideState::key_of(key_expr.as_ref(), &e);
                side.by_key.entry(key).or_default().insert(id);
                side.events.insert(id, e);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::ConsistencySpec;
    use crate::operator::OperatorShell;
    use cedr_algebra::expr::CmpOp;
    use cedr_streams::Message;
    use cedr_temporal::interval::iv;
    use cedr_temporal::time::t;
    use cedr_temporal::{Payload, Value};

    fn ev(id: u64, a: u64, b: u64, k: i64) -> Event {
        Event::primitive(
            EventId(id),
            iv(a, b),
            Payload::from_values(vec![Value::Int(k)]),
        )
    }

    fn equi_join() -> JoinOp {
        JoinOp::new(Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0)))
            .with_keys(Scalar::Field(0), Scalar::Field(0))
    }

    #[test]
    fn insert_probe_emits_intersection() {
        let mut s = OperatorShell::new(Box::new(equi_join()), ConsistencySpec::middle());
        assert!(s
            .push(0, Message::insert_event(ev(1, 0, 10, 7)), 0)
            .is_empty());
        let out = s.push(1, Message::insert_event(ev(2, 5, 20, 7)), 1);
        assert_eq!(out.len(), 1);
        let j = out[0].as_insert().unwrap();
        assert_eq!(j.interval, iv(5, 10));
        assert_eq!(j.payload.len(), 2);
    }

    #[test]
    fn key_mismatch_produces_nothing() {
        let mut s = OperatorShell::new(Box::new(equi_join()), ConsistencySpec::middle());
        s.push(0, Message::insert_event(ev(1, 0, 10, 7)), 0);
        let out = s.push(1, Message::insert_event(ev(2, 5, 20, 8)), 1);
        assert!(out.is_empty());
    }

    #[test]
    fn retraction_shrinks_derived_output() {
        let mut s = OperatorShell::new(Box::new(equi_join()), ConsistencySpec::middle());
        let l = ev(1, 0, 10, 7);
        s.push(0, Message::insert_event(l.clone()), 0);
        let out = s.push(1, Message::insert_event(ev(2, 2, 20, 7)), 1);
        let joined = out[0].as_insert().unwrap().clone();
        assert_eq!(joined.interval, iv(2, 10));
        // Retract left to [0,5): output shrinks to [2,5).
        let out2 = s.push(0, Message::Retract(Retraction::new(l, t(5))), 2);
        let r = out2[0].as_retract().unwrap();
        assert_eq!(r.event.id, joined.id);
        assert_eq!(r.new_end, t(5));
    }

    #[test]
    fn retraction_below_partner_start_removes_output() {
        let mut s = OperatorShell::new(Box::new(equi_join()), ConsistencySpec::middle());
        let l = ev(1, 0, 10, 7);
        s.push(0, Message::insert_event(l.clone()), 0);
        s.push(1, Message::insert_event(ev(2, 6, 20, 7)), 1);
        // [0,10) → [0,3): intersection with [6,20) becomes empty.
        let out = s.push(0, Message::Retract(Retraction::new(l, t(3))), 2);
        let r = out[0].as_retract().unwrap();
        assert!(r.is_full_removal());
    }

    #[test]
    fn chained_retractions_from_both_sides() {
        let mut s = OperatorShell::new(Box::new(equi_join()), ConsistencySpec::middle());
        let l = ev(1, 0, 100, 7);
        let rr = ev(2, 0, 100, 7);
        s.push(0, Message::insert_event(l.clone()), 0);
        s.push(1, Message::insert_event(rr.clone()), 1);
        // Shrink right to [0,50): output [0,100) → [0,50).
        let o1 = s.push(1, Message::Retract(Retraction::new(rr, t(50))), 2);
        assert_eq!(o1[0].as_retract().unwrap().new_end, t(50));
        // Then shrink left to [0,20): the *current* output [0,50) → [0,20).
        let o2 = s.push(0, Message::Retract(Retraction::new(l, t(20))), 3);
        let r = o2[0].as_retract().unwrap();
        assert_eq!(r.event.interval, iv(0, 50), "repairs the current version");
        assert_eq!(r.new_end, t(20));
    }

    #[test]
    fn duplicate_inserts_are_idempotent() {
        let mut s = OperatorShell::new(Box::new(equi_join()), ConsistencySpec::middle());
        s.push(0, Message::insert_event(ev(1, 0, 10, 7)), 0);
        s.push(1, Message::insert_event(ev(2, 0, 10, 7)), 1);
        let out = s.push(1, Message::insert_event(ev(2, 0, 10, 7)), 2);
        assert!(out.is_empty(), "duplicate delivery produces no new output");
    }

    #[test]
    fn watermark_purges_dead_state() {
        let mut s = OperatorShell::new(Box::new(equi_join()), ConsistencySpec::middle());
        s.push(0, Message::insert_event(ev(1, 0, 10, 7)), 0);
        s.push(1, Message::insert_event(ev(2, 0, 10, 7)), 1);
        assert_eq!(s.module().state_size(), 2);
        s.push(0, Message::Cti(t(50)), 2);
        s.push(1, Message::Cti(t(50)), 3);
        assert_eq!(s.module().state_size(), 0, "both events ended before 50");
    }

    #[test]
    fn theta_join_without_keys_scans() {
        // Non-equi θ: left.value < right.value.
        let theta = Pred::cmp(Scalar::Of(0, 0), CmpOp::Lt, Scalar::Of(1, 0));
        let mut s = OperatorShell::new(Box::new(JoinOp::new(theta)), ConsistencySpec::middle());
        s.push(0, Message::insert_event(ev(1, 0, 10, 5)), 0);
        s.push(0, Message::insert_event(ev(2, 0, 10, 9)), 1);
        let out = s.push(1, Message::insert_event(ev(3, 0, 10, 7)), 2);
        assert_eq!(out.len(), 1, "only 5 < 7 qualifies");
    }

    #[test]
    fn retraction_of_forgotten_event_is_ignored() {
        let mut s = OperatorShell::new(Box::new(equi_join()), ConsistencySpec::middle());
        let ghost = ev(99, 0, 10, 7);
        let out = s.push(0, Message::Retract(Retraction::new(ghost, t(5))), 0);
        assert!(out.is_empty());
    }
}
