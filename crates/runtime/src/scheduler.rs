//! Sharded, multi-worker scheduling of a dataflow graph.
//!
//! The serial executor drains nodes in topological order, so a quiescence
//! pass is a single sweep in node-id order (edges only point from lower to
//! higher ids). This module parallelises that sweep without changing a
//! single delivered byte:
//!
//! * **Partitioning** ([`ShardPlan::partition`]): the graph is cut into
//!   shards along connected components. Components never exchange
//!   messages, so distributing whole components across worker threads
//!   needs no synchronisation at all. When there are fewer components
//!   than workers, large components are additionally split into
//!   *chain shards* — contiguous ranges of the component's node-id order —
//!   which turns the component into a pipeline of shards connected by
//!   channels. Because edges go from lower to higher node ids, chain
//!   shards form an acyclic shard DAG (lower shard index feeds higher).
//!
//! * **Workers**: one thread per shard processes its nodes in ascending
//!   node-id order. Cross-shard edges carry whole output runs as
//!   [`Message`] vectors over bounded channels — events are `Arc`-shared,
//!   so a cross-shard send is a refcount bump per message, never a payload
//!   copy.
//!
//! * **Deterministic merge**: every message bound for a node is stamped
//!   with its *origin* — `(producer key, emission seq)`, where the key is
//!   `0` for external sources and `node id + 1` for operator outputs, and
//!   the seq counts the producer's pushes in its own emission order. A
//!   consumer waits until every upstream shard has progressed past its
//!   producers, then stably sorts its pending input by origin stamp. That
//!   order — sources first in arrival order, then producers in ascending
//!   topological id, each in emission order — is exactly the order in
//!   which the serial sweep fills the node's input queue. Delivered input
//!   sequences are therefore *bit-identical* to serial execution, which
//!   makes every downstream observable identical too: operator state,
//!   emitted messages, collector contents and statistics, at **every**
//!   consistency level. Even Weak-consistency forgetting — which is
//!   sensitive to per-shell arrival order — cannot diverge, because
//!   arrival order per shell is preserved (batch *splitting* by callers
//!   remains the only source of Weak divergence; see the module docs of
//!   [`crate::executor`]).
//!
//! Progress is tracked per upstream shard: a worker announces each
//! finished cross-shard producer, and a final `Done`, so consumers block
//! only on the producers they actually depend on. Channels are bounded;
//! the acyclic shard DAG plus the drain-while-waiting receive loop keeps
//! the system deadlock-free.

use crate::executor::NodeId;
use crate::operator::OperatorShell;
use cedr_obs::{ObsHub, TraceEvent};
use cedr_streams::{Collector, Message};
use std::collections::HashMap;
use std::sync::mpsc;

/// Bound on each cross-shard channel (in in-flight `Cross` items).
const CROSS_CHANNEL_BOUND: usize = 256;

/// A partition of the dataflow nodes into worker shards.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Node id → shard index.
    pub shard_of: Vec<usize>,
    /// Shard index → its nodes, in ascending node-id order.
    pub shards: Vec<Vec<NodeId>>,
}

impl ShardPlan {
    /// Partition `n_nodes` nodes (with `node_subs[p]` listing the
    /// `(consumer, port)` subscribers of node `p`) into at most `threads`
    /// shards.
    ///
    /// Components are distributed whole when possible (no cross-shard
    /// edges); only when the component count is below the thread budget are
    /// the largest components split into contiguous chain shards.
    pub fn partition(n_nodes: usize, node_subs: &[Vec<(NodeId, usize)>], threads: usize) -> Self {
        let target = threads.max(1).min(n_nodes.max(1));
        // Union-find with the smaller id as root, so each component's root
        // is its minimum node and component order follows node order.
        let mut parent: Vec<usize> = (0..n_nodes).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (p, subs) in node_subs.iter().enumerate() {
            for &(c, _) in subs {
                let (a, b) = (find(&mut parent, p), find(&mut parent, c));
                if a != b {
                    parent[a.max(b)] = a.min(b);
                }
            }
        }
        let mut comp_index: HashMap<usize, usize> = HashMap::new();
        let mut comps: Vec<Vec<usize>> = Vec::new();
        for n in 0..n_nodes {
            let root = find(&mut parent, n);
            let i = *comp_index.entry(root).or_insert_with(|| {
                comps.push(Vec::new());
                comps.len() - 1
            });
            comps[i].push(n);
        }

        let shards: Vec<Vec<NodeId>> = if comps.len() >= target {
            // Whole components, greedily balanced over `target` bins
            // (largest first; ties resolved by component order, and
            // `min_by_key` picks the first least-loaded bin — fully
            // deterministic).
            let mut order: Vec<usize> = (0..comps.len()).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(comps[i].len()));
            let mut bins: Vec<Vec<usize>> = vec![Vec::new(); target];
            let mut loads = vec![0usize; target];
            for i in order {
                let b = (0..target).min_by_key(|&b| loads[b]).expect("target >= 1");
                loads[b] += comps[i].len();
                bins[b].push(i);
            }
            bins.into_iter()
                .filter(|b| !b.is_empty())
                .map(|b| {
                    let mut nodes: Vec<usize> =
                        b.into_iter().flat_map(|i| comps[i].clone()).collect();
                    nodes.sort_unstable();
                    nodes
                })
                .collect()
        } else {
            // Fewer components than workers: split the biggest components
            // into contiguous chain shards. Pieces of one component get
            // consecutive shard indices in node order, so every cross-shard
            // edge goes from a lower to a higher shard index.
            let mut pieces = vec![1usize; comps.len()];
            let mut extra = target - comps.len();
            while extra > 0 {
                let mut best: Option<usize> = None;
                for i in 0..comps.len() {
                    if pieces[i] >= comps[i].len() {
                        continue; // cannot split below one node per piece
                    }
                    let chunk = comps[i].len().div_ceil(pieces[i]);
                    let better = match best {
                        None => true,
                        Some(j) => chunk > comps[j].len().div_ceil(pieces[j]),
                    };
                    if better {
                        best = Some(i);
                    }
                }
                match best {
                    Some(i) => pieces[i] += 1,
                    None => break,
                }
                extra -= 1;
            }
            let mut shards = Vec::new();
            for (i, comp) in comps.iter().enumerate() {
                let k = pieces[i];
                let base = comp.len() / k;
                let rem = comp.len() % k;
                let mut at = 0;
                for piece in 0..k {
                    let len = base + usize::from(piece < rem);
                    shards.push(comp[at..at + len].to_vec());
                    at += len;
                }
            }
            shards
        };

        let mut shard_of = vec![0usize; n_nodes];
        for (s, nodes) in shards.iter().enumerate() {
            for &n in nodes {
                shard_of[n] = s;
            }
        }
        if cfg!(debug_assertions) {
            for (p, subs) in node_subs.iter().enumerate() {
                for &(c, _) in subs {
                    debug_assert!(
                        shard_of[p] <= shard_of[c],
                        "cross-shard edge {p}->{c} must point to a later shard"
                    );
                }
            }
        }
        ShardPlan { shard_of, shards }
    }
}

/// Counters for the sharded scheduler (plan-wide, accumulated over runs).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Shards of the current plan (0 until the first parallel run).
    pub shards: usize,
    /// Parallel quiescence passes executed.
    pub parallel_runs: usize,
    /// Output runs sent across shard boundaries.
    pub cross_batches: usize,
    /// Messages carried inside those runs (each an `Arc` bump).
    pub cross_messages: usize,
}

/// Derived routing facts shared read-only by all workers.
struct Topology {
    shard_of: Vec<usize>,
    /// Per node: `(upstream shard, highest producer id there)` it waits on.
    cross_deps: Vec<Vec<(usize, NodeId)>>,
    /// Per node: downstream shards to notify once the node is finished.
    cross_out: Vec<Vec<usize>>,
    /// Per shard: every downstream shard it ever sends to.
    out_shards: Vec<Vec<usize>>,
}

impl Topology {
    fn build(plan: &ShardPlan, node_subs: &[Vec<(NodeId, usize)>]) -> Self {
        let n = node_subs.len();
        let mut cross_deps: Vec<Vec<(usize, NodeId)>> = vec![Vec::new(); n];
        let mut cross_out: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut out_shards: Vec<Vec<usize>> = vec![Vec::new(); plan.shards.len()];
        for (p, subs) in node_subs.iter().enumerate() {
            for &(c, _) in subs {
                let (sp, sc) = (plan.shard_of[p], plan.shard_of[c]);
                if sp == sc {
                    continue;
                }
                if !cross_out[p].contains(&sc) {
                    cross_out[p].push(sc);
                }
                if !out_shards[sp].contains(&sc) {
                    out_shards[sp].push(sc);
                }
                match cross_deps[c].iter_mut().find(|(s, _)| *s == sp) {
                    Some((_, maxp)) => *maxp = (*maxp).max(p),
                    None => cross_deps[c].push((sp, p)),
                }
            }
        }
        Topology {
            shard_of: plan.shard_of.clone(),
            cross_deps,
            cross_out,
            out_shards,
        }
    }
}

/// A cross-shard wire item.
enum Cross {
    /// One output run of `producer` bound for `(consumer, port)`, stamped
    /// from `base_seq` in emission order.
    Batch {
        producer: NodeId,
        consumer: NodeId,
        port: usize,
        base_seq: u64,
        msgs: Vec<Message>,
    },
    /// Cross-shard producer `upto` has finished this pass.
    Progress { upto: NodeId },
    /// The sending shard has finished every node.
    Done { from: usize },
}

/// Origin stamp: `(producer key, emission seq)`. Key `0` is reserved for
/// external sources; node `p` stamps as `p + 1`. Sorting pending input by
/// this stamp reproduces the serial queue-fill order exactly.
type Stamp = (u64, u64);

const PROGRESS_DONE: u64 = u64::MAX;

/// Run one quiescence pass over `nodes` with one worker thread per shard.
///
/// `staged[n]` holds node `n`'s externally staged `(port, message)` input
/// (drained source queues). Delivered input sequences — and therefore all
/// outputs, collector contents (history tables, stamped tape, and the
/// subscription-facing delta log, which advance together inside
/// `Collector::push`) and statistics — are bit-identical to the serial
/// sweep.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_sharded(
    nodes: &mut [OperatorShell],
    node_subs: &[Vec<(NodeId, usize)>],
    collectors: &mut HashMap<NodeId, Collector>,
    staged: Vec<Vec<(usize, Message)>>,
    plan: &ShardPlan,
    now: u64,
    stats: &mut SchedStats,
    obs: Option<(&ObsHub, u16)>,
) {
    let n_shards = plan.shards.len();
    let topo = Topology::build(plan, node_subs);

    // One inbox per shard; senders handed only to its upstream shards.
    let mut rxs: Vec<Option<mpsc::Receiver<Cross>>> = Vec::with_capacity(n_shards);
    let mut txs0: Vec<mpsc::SyncSender<Cross>> = Vec::with_capacity(n_shards);
    for _ in 0..n_shards {
        let (tx, rx) = mpsc::sync_channel(CROSS_CHANNEL_BOUND);
        txs0.push(tx);
        rxs.push(Some(rx));
    }
    let mut shard_txs: Vec<HashMap<usize, mpsc::SyncSender<Cross>>> = (0..n_shards)
        .map(|s| {
            topo.out_shards[s]
                .iter()
                .map(|&t| (t, txs0[t].clone()))
                .collect()
        })
        .collect();
    drop(txs0); // workers hold the only senders: disconnect == all upstream done

    // Split the mutable state by shard.
    let mut shard_nodes: Vec<Vec<(NodeId, &mut OperatorShell)>> =
        (0..n_shards).map(|_| Vec::new()).collect();
    for (n, shell) in nodes.iter_mut().enumerate() {
        shard_nodes[topo.shard_of[n]].push((n, shell));
    }
    let mut shard_cols: Vec<HashMap<NodeId, &mut Collector>> =
        (0..n_shards).map(|_| HashMap::new()).collect();
    for (&n, c) in collectors.iter_mut() {
        shard_cols[topo.shard_of[n]].insert(n, c);
    }
    let mut shard_staged: Vec<HashMap<NodeId, Vec<(usize, Message)>>> =
        (0..n_shards).map(|_| HashMap::new()).collect();
    for (n, q) in staged.into_iter().enumerate() {
        if !q.is_empty() {
            shard_staged[topo.shard_of[n]].insert(n, q);
        }
    }

    let topo_ref = &topo;
    let results: Vec<(usize, usize)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_shards);
        for sid in (0..n_shards).rev() {
            let bucket = shard_nodes.pop().expect("one bucket per shard");
            let cols = shard_cols.pop().expect("one collector map per shard");
            let stage = shard_staged.pop().expect("one stage map per shard");
            let rx = rxs[sid].take().expect("one inbox per shard");
            let txs = std::mem::take(&mut shard_txs[sid]);
            handles.push(scope.spawn(move || {
                worker(
                    sid, bucket, cols, stage, rx, txs, topo_ref, node_subs, now, obs,
                )
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });

    stats.shards = n_shards;
    stats.parallel_runs += 1;
    for (b, m) in results {
        stats.cross_batches += b;
        stats.cross_messages += m;
    }
}

/// The per-shard worker: process own nodes in ascending id order, waiting
/// on upstream shard progress only where a cross-shard edge demands it.
#[allow(clippy::too_many_arguments)]
fn worker(
    sid: usize,
    nodes: Vec<(NodeId, &mut OperatorShell)>,
    mut collectors: HashMap<NodeId, &mut Collector>,
    staged: HashMap<NodeId, Vec<(usize, Message)>>,
    rx: mpsc::Receiver<Cross>,
    txs: HashMap<usize, mpsc::SyncSender<Cross>>,
    topo: &Topology,
    node_subs: &[Vec<(NodeId, usize)>],
    now: u64,
    obs: Option<(&ObsHub, u16)>,
) -> (usize, usize) {
    // Worker-drain timing covers the whole lifetime, including waits on
    // upstream shards — that is the quantity a scaling investigation
    // wants (a pipeline-limited shard shows up as a long drain).
    let started = obs.map(|(hub, _)| hub.now());
    let mut pending: HashMap<NodeId, Vec<(Stamp, usize, Message)>> = HashMap::new();
    for (n, q) in staged {
        pending.insert(
            n,
            q.into_iter()
                .enumerate()
                .map(|(i, (port, m))| ((0, i as u64), port, m))
                .collect(),
        );
    }
    let mut progress = vec![0u64; topo.out_shards.len()];
    let mut cross_batches = 0usize;
    let mut cross_messages = 0usize;

    let handle = |c: Cross,
                  pending: &mut HashMap<NodeId, Vec<(Stamp, usize, Message)>>,
                  progress: &mut [u64]| match c {
        Cross::Batch {
            producer,
            consumer,
            port,
            base_seq,
            msgs,
        } => {
            let v = pending.entry(consumer).or_default();
            v.reserve(msgs.len());
            for (i, m) in msgs.into_iter().enumerate() {
                v.push(((producer as u64 + 1, base_seq + i as u64), port, m));
            }
        }
        Cross::Progress { upto } => {
            let s = topo.shard_of[upto];
            progress[s] = progress[s].max(upto as u64 + 1);
        }
        Cross::Done { from } => progress[from] = PROGRESS_DONE,
    };

    for (nid, shell) in nodes {
        // Block until every upstream shard has finished the producers this
        // node consumes from (draining the inbox while we wait).
        for &(s, maxp) in &topo.cross_deps[nid] {
            while progress[s] < maxp as u64 + 1 {
                match rx.recv() {
                    Ok(c) => handle(c, &mut pending, &mut progress),
                    // All senders finished and the buffer is drained.
                    Err(_) => progress.iter_mut().for_each(|p| *p = PROGRESS_DONE),
                }
            }
        }
        if let Some(mut input) = pending.remove(&nid) {
            // The deterministic merge: origin-stamp order == serial order.
            input.sort_by_key(|(stamp, _, _)| *stamp);
            let mut seq: u64 = 0;
            crate::executor::deliver_runs(
                shell,
                collectors.get_mut(&nid).map(|c| &mut **c),
                input.into_iter().map(|(_, port, m)| (port, m)),
                now,
                obs.map(|(hub, query)| (hub, query, nid as u16)),
                |outs| {
                    for &(next, nport) in &node_subs[nid] {
                        let t = topo.shard_of[next];
                        if t == sid {
                            let v = pending.entry(next).or_default();
                            v.reserve(outs.len());
                            for m in outs {
                                v.push(((nid as u64 + 1, seq), nport, m.clone()));
                                seq += 1;
                            }
                        } else {
                            txs[&t]
                                .send(Cross::Batch {
                                    producer: nid,
                                    consumer: next,
                                    port: nport,
                                    base_seq: seq,
                                    msgs: outs.as_slice().to_vec(),
                                })
                                .expect("downstream shard hung up");
                            seq += outs.len() as u64;
                            cross_batches += 1;
                            cross_messages += outs.len();
                        }
                    }
                },
            );
        }
        for &t in &topo.cross_out[nid] {
            txs[&t]
                .send(Cross::Progress { upto: nid })
                .expect("downstream shard hung up");
        }
    }
    for tx in txs.into_values() {
        let _ = tx.send(Cross::Done { from: sid });
    }
    // Keep draining until every upstream sender disconnects, so bounded
    // upstream sends can never block against an exited consumer.
    while rx.recv().is_ok() {}
    if let (Some((hub, _)), Some(t0)) = (obs, started) {
        let nanos = hub.now().saturating_sub(t0);
        hub.with_timings(|t| t.worker_drain.record(nanos));
        hub.trace(|| TraceEvent::WorkerDrain {
            shard: sid.min(u16::MAX as usize) as u16,
            nanos,
        });
    }
    (cross_batches, cross_messages)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subs(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<(NodeId, usize)>> {
        let mut s = vec![Vec::new(); n];
        for &(p, c) in edges {
            s[p].push((c, 0));
        }
        s
    }

    #[test]
    fn components_are_distributed_whole() {
        // Two 2-node chains + two singletons over 3 threads: no splitting,
        // components stay intact.
        let s = subs(6, &[(0, 1), (2, 3)]);
        let plan = ShardPlan::partition(6, &s, 3);
        assert!(plan.shards.len() <= 3);
        for &(p, c) in &[(0, 1), (2, 3)] {
            assert_eq!(
                plan.shard_of[p], plan.shard_of[c],
                "component split needlessly"
            );
        }
        let total: usize = plan.shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn single_component_splits_into_ordered_chain_shards() {
        // One 6-node chain over 3 threads: contiguous pieces, edges always
        // to an equal-or-later shard.
        let s = subs(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let plan = ShardPlan::partition(6, &s, 3);
        assert_eq!(plan.shards.len(), 3);
        for (p, subs) in s.iter().enumerate() {
            for &(c, _) in subs {
                assert!(plan.shard_of[p] <= plan.shard_of[c]);
            }
        }
        assert_eq!(plan.shards[0], vec![0, 1]);
        assert_eq!(plan.shards[2], vec![4, 5]);
    }

    #[test]
    fn more_threads_than_nodes_is_capped() {
        let s = subs(2, &[]);
        let plan = ShardPlan::partition(2, &s, 16);
        assert_eq!(plan.shards.len(), 2);
    }

    #[test]
    fn partition_is_deterministic() {
        let s = subs(9, &[(0, 3), (1, 4), (2, 5), (3, 6), (4, 7), (5, 8)]);
        let a = ShardPlan::partition(9, &s, 4);
        let b = ShardPlan::partition(9, &s, 4);
        assert_eq!(a.shard_of, b.shard_of);
        assert_eq!(a.shards, b.shards);
    }
}
