//! Physical sequencing operators: SEQUENCE and ATLEAST (with ALL/ANY as
//! planner-level sugar, per the paper's table).
//!
//! `SequenceOp` keeps per-slot event state sorted by occurrence (`Vs`) and,
//! under the default Each/Reuse SC mode, enumerates exactly the *new*
//! matches each arrival completes — the incremental fast path. Restrictive
//! SC modes (First/MostRecent selection, Consume) switch the operator to a
//! recompute-and-diff strategy against the denotational match set, because
//! selection and consumption are globally order-dependent; the cost of this
//! is measured by the `sc_modes` ablation bench.
//!
//! Out-of-order arrivals are handled structurally: a late contributor
//! simply completes matches when it arrives; a contributor's full removal
//! retracts every output it fed (`by_contrib` index).
//!
//! **Batch-native delivery.** Under restrictive SC modes (and always for
//! [`AtLeastOp`]) a delivery run is admitted into the slot index whole and
//! recomputed **once per run** instead of once per message — the
//! one-refresh-per-run contract of the [`operator`](crate::operator)
//! module docs (intermediate selections a finer batching would have
//! published-and-repaired are never emitted; net content is unchanged).
//! The Each/Reuse fast path keeps exact per-message enumeration: each
//! arrival completes its own matches in arrival order, so its batch
//! delivery is bit-identical to per-message dispatch.

use crate::operator::{OpContext, OperatorModule};
use cedr_algebra::expr::Pred;
use cedr_algebra::idgen::idgen;
use cedr_algebra::pattern::{apply_sc_modes, atleast_matches, sequence_matches, ScMode};
use cedr_algebra::EventSet;
use cedr_streams::{Message, Retraction};
use cedr_temporal::{Duration, Event, EventId, Interval, Lineage, Payload, TimePoint};
use std::collections::{BTreeMap, HashMap, HashSet};

type SlotMap = BTreeMap<(TimePoint, EventId), Event>;

/// Admit one insert into a slot map; `true` iff it is fresh (not a
/// duplicate delivery, not an empty lifetime).
fn admit_insert(slot: &mut SlotMap, event: &Event) -> bool {
    if event.interval.is_empty() {
        return false;
    }
    let key = (event.vs(), event.id);
    if slot.contains_key(&key) {
        return false;
    }
    slot.insert(key, event.clone());
    true
}

/// Admit one retraction into a slot map. Partial retractions only shorten
/// the stored copy (occurrence is what sequencing consumes); `true` iff a
/// contributor was fully removed.
fn admit_retract(slot: &mut SlotMap, r: &Retraction) -> bool {
    let key = (r.event.interval.start, r.event.id);
    if !r.is_full_removal() {
        if let Some(stored) = slot.get_mut(&key) {
            let new_end = TimePoint::min_of(stored.interval.end, r.new_end);
            stored.interval = Interval::new(stored.interval.start, new_end);
        }
        return false;
    }
    slot.remove(&key).is_some()
}

/// Compose the output event for a Vs-ordered contributor tuple (the
/// paper's SEQUENCE/ATLEAST output schema).
fn compose(tuple: &[&Event], w: Duration) -> Event {
    let ids: Vec<EventId> = tuple.iter().map(|e| e.id).collect();
    let first = tuple.first().expect("non-empty tuple");
    let last = tuple.last().expect("non-empty tuple");
    let rt = tuple.iter().map(|e| e.root_time).min().expect("non-empty");
    Event::composite(
        idgen(&ids),
        Interval::new(last.vs(), first.vs() + w),
        rt,
        Lineage::of(ids),
        Payload::concat_all(tuple.iter().map(|e| &e.payload)),
    )
}

fn slots_as_sets(slots: &[SlotMap]) -> Vec<EventSet> {
    slots
        .iter()
        .map(|m| m.values().cloned().collect())
        .collect()
}

/// Emit the difference between the currently-emitted outputs and a desired
/// output set (keyed by deterministic output ID).
///
/// Emission order is deterministic — retractions in ascending output-ID
/// order, then inserts in enumeration order — never hash-iteration order:
/// operator output must be a pure function of delivered input for the
/// sharded scheduler's serial-equivalence guarantee to hold.
fn diff_emitted(emitted: &mut HashMap<EventId, Event>, desired: Vec<Event>, ctx: &mut OpContext) {
    let desired_ids: HashSet<EventId> = desired.iter().map(|e| e.id).collect();
    let mut stale: Vec<Event> = emitted
        .iter()
        .filter(|(id, _)| !desired_ids.contains(id))
        .map(|(_, e)| e.clone())
        .collect();
    stale.sort_by_key(|e| e.id);
    for e in stale {
        ctx.out.retract_full(e);
    }
    // Clone only the freshly-inserted events; the rest move into the new
    // emitted map untouched.
    let mut next: HashMap<EventId, Event> = HashMap::with_capacity(desired.len());
    for e in desired {
        if !emitted.contains_key(&e.id) && !next.contains_key(&e.id) {
            ctx.out.insert(e.clone());
        }
        next.insert(e.id, e);
    }
    *emitted = next;
}

/// Physical SEQUENCE(E1, …, Ek, w).
pub struct SequenceOp {
    w: Duration,
    pred: Pred,
    modes: Vec<ScMode>,
    restrictive: bool,
    slots: Vec<SlotMap>,
    emitted: HashMap<EventId, Event>,
    by_contrib: HashMap<EventId, Vec<EventId>>,
}

impl SequenceOp {
    pub fn new(k: usize, w: Duration, pred: Pred) -> Self {
        assert!(k >= 1, "SEQUENCE needs at least one contributor");
        Self::with_modes(k, w, pred, vec![ScMode::EACH_REUSE; k])
    }

    pub fn with_modes(k: usize, w: Duration, pred: Pred, modes: Vec<ScMode>) -> Self {
        assert_eq!(modes.len(), k, "one SC mode per input");
        let restrictive = modes.iter().any(|m| *m != ScMode::EACH_REUSE);
        SequenceOp {
            w,
            pred,
            modes,
            restrictive,
            slots: vec![SlotMap::new(); k],
            emitted: HashMap::new(),
            by_contrib: HashMap::new(),
        }
    }

    fn k(&self) -> usize {
        self.slots.len()
    }

    /// Fast path: enumerate all slot-ordered tuples that include `fixed` at
    /// slot `fixed_slot` and satisfy the strict-Vs-order + scope
    /// constraints.
    fn matches_with(&self, fixed_slot: usize, fixed: &Event) -> Vec<Vec<Event>> {
        let mut out = Vec::new();
        let mut stack: Vec<Event> = Vec::with_capacity(self.k());
        self.recurse(0, fixed_slot, fixed, &mut stack, &mut out);
        out
    }

    fn recurse(
        &self,
        depth: usize,
        fixed_slot: usize,
        fixed: &Event,
        stack: &mut Vec<Event>,
        out: &mut Vec<Vec<Event>>,
    ) {
        if depth == self.k() {
            out.push(stack.clone());
            return;
        }
        let prev_vs = stack.last().map(|e| e.vs());
        let first_vs = stack.first().map(|e| e.vs());
        let deadline = first_vs.map(|v| v + self.w).unwrap_or(TimePoint::INFINITY);
        if depth == fixed_slot {
            let v = fixed.vs();
            if let Some(p) = prev_vs {
                if v <= p {
                    return;
                }
            }
            if v > deadline {
                return;
            }
            stack.push(fixed.clone());
            self.recurse(depth + 1, fixed_slot, fixed, stack, out);
            stack.pop();
            return;
        }
        // Candidates strictly after prev_vs and within the scope; also, if
        // the fixed slot is still ahead, candidates must end up before it.
        let lower = prev_vs;
        let upper_fixed = if depth < fixed_slot {
            Some(fixed.vs())
        } else {
            None
        };
        for ((vs, _), e) in self.slots[depth].iter() {
            if let Some(p) = lower {
                if *vs <= p {
                    continue;
                }
            }
            if *vs > deadline {
                break;
            }
            if let Some(u) = upper_fixed {
                if *vs >= u {
                    break;
                }
            }
            stack.push(e.clone());
            self.recurse(depth + 1, fixed_slot, fixed, stack, out);
            stack.pop();
        }
    }

    fn recompute(&mut self, ctx: &mut OpContext) {
        let sets = slots_as_sets(&self.slots);
        let matches = sequence_matches(&sets, self.w, &self.pred);
        let selected = apply_sc_modes(matches, &self.modes);
        let desired: Vec<Event> = selected.into_iter().map(|m| m.output).collect();
        diff_emitted(&mut self.emitted, desired, ctx);
    }
}

impl OperatorModule for SequenceOp {
    fn name(&self) -> &'static str {
        "sequence"
    }

    fn arity(&self) -> usize {
        self.k()
    }

    fn on_insert(&mut self, input: usize, event: &Event, ctx: &mut OpContext) {
        if !admit_insert(&mut self.slots[input], event) {
            return; // duplicate delivery or empty lifetime
        }
        if self.restrictive {
            self.recompute(ctx);
            return;
        }
        for tuple in self.matches_with(input, event) {
            let refs: Vec<&Event> = tuple.iter().collect();
            if !self.pred.eval_tuple(&refs) {
                continue;
            }
            let out = compose(&refs, self.w);
            if self.emitted.contains_key(&out.id) {
                continue;
            }
            for e in &tuple {
                self.by_contrib.entry(e.id).or_default().push(out.id);
            }
            self.emitted.insert(out.id, out.clone());
            ctx.out.insert(out);
        }
    }

    fn on_retract(&mut self, input: usize, r: &Retraction, ctx: &mut OpContext) {
        if !admit_retract(&mut self.slots[input], r) {
            return; // partial shortening, never seen, or already forgotten
        }
        if self.restrictive {
            self.recompute(ctx);
            return;
        }
        for out_id in self.by_contrib.remove(&r.event.id).unwrap_or_default() {
            if let Some(out) = self.emitted.remove(&out_id) {
                ctx.out.retract_full(out);
            }
        }
    }

    /// Batch-native delivery. Restrictive SC modes admit the whole run
    /// into the slot index and recompute-and-diff **once per run**; the
    /// Each/Reuse fast path dispatches per message (its incremental
    /// enumeration is already exact and order-pinned).
    fn on_batch(&mut self, input: usize, msgs: &[Message], ctx: &mut OpContext) {
        if !self.restrictive {
            crate::operator::dispatch_per_message(self, input, msgs, ctx);
            return;
        }
        let mut changed = false;
        for m in msgs {
            match m {
                Message::Insert(e) => changed |= admit_insert(&mut self.slots[input], e),
                Message::Retract(r) => changed |= admit_retract(&mut self.slots[input], r),
                Message::Cti(_) => {
                    debug_assert!(false, "CTIs are consumed by the consistency monitor")
                }
            }
        }
        if changed {
            self.recompute(ctx);
        }
    }

    fn on_advance(&mut self, ctx: &mut OpContext) {
        // An event can only participate in a *new* match together with some
        // future arrival (Vs ≥ watermark), which the scope bounds to
        // Vs ≥ watermark − w. The memory horizon forces earlier forgetting
        // under weak consistency.
        let bound = TimePoint::max_of(ctx.watermark - self.w, ctx.horizon());
        if bound == TimePoint::ZERO {
            return;
        }
        let mut purged: Vec<EventId> = Vec::new();
        for slot in &mut self.slots {
            while let Some((&(vs, id), _)) = slot.iter().next() {
                if vs < bound {
                    slot.remove(&(vs, id));
                    purged.push(id);
                } else {
                    break;
                }
            }
        }
        if purged.is_empty() {
            return;
        }
        if self.restrictive {
            // Flush silently: matches involving purged contributors are
            // final (no retraction for them can arrive any more).
            let purged_set: HashSet<EventId> = purged.iter().copied().collect();
            self.emitted
                .retain(|_, out| !out.lineage.0.iter().any(|c| purged_set.contains(c)));
            return;
        }
        for id in purged {
            for out_id in self.by_contrib.remove(&id).unwrap_or_default() {
                // Only the trigger (last contributor, max Vs) finalises the
                // record: when it purges, every contributor is immune.
                if let Some(out) = self.emitted.get(&out_id) {
                    if out.lineage.0.last() == Some(&id) {
                        self.emitted.remove(&out_id);
                    }
                }
            }
        }
    }

    fn state_size(&self) -> usize {
        self.slots.iter().map(|s| s.len()).sum::<usize>() + self.emitted.len()
    }

    fn state_snapshot(&self, out: &mut Vec<u8>) {
        use cedr_durable::Persist;
        encode_slots(&self.slots, out);
        encode_emitted(&self.emitted, out);
        let mut contribs: Vec<EventId> = self.by_contrib.keys().copied().collect();
        contribs.sort_unstable();
        (contribs.len() as u64).encode(out);
        for id in contribs {
            id.encode(out);
            // Output-ID order within a contributor is enumeration order:
            // preserved as-is.
            self.by_contrib[&id].encode(out);
        }
    }

    fn state_restore(
        &mut self,
        r: &mut cedr_durable::Reader<'_>,
    ) -> Result<(), cedr_durable::CodecError> {
        use cedr_durable::Persist;
        decode_slots(&mut self.slots, r)?;
        self.emitted = decode_emitted(r)?;
        self.by_contrib.clear();
        for _ in 0..u64::decode(r)? {
            let id = EventId::decode(r)?;
            self.by_contrib.insert(id, Vec::<EventId>::decode(r)?);
        }
        Ok(())
    }
}

/// Serialize slot maps (BTreeMap order is already deterministic).
fn encode_slots(slots: &[SlotMap], out: &mut Vec<u8>) {
    use cedr_durable::Persist;
    for slot in slots {
        (slot.len() as u64).encode(out);
        for (&(vs, id), e) in slot {
            vs.encode(out);
            id.encode(out);
            e.encode(out);
        }
    }
}

/// Restore slot maps written by [`encode_slots`] (slot count is fixed by
/// the plan, so only entries travel).
fn decode_slots(
    slots: &mut [SlotMap],
    r: &mut cedr_durable::Reader<'_>,
) -> Result<(), cedr_durable::CodecError> {
    use cedr_durable::Persist;
    for slot in slots.iter_mut() {
        slot.clear();
        for _ in 0..u64::decode(r)? {
            let vs = TimePoint::decode(r)?;
            let id = EventId::decode(r)?;
            slot.insert((vs, id), Event::decode(r)?);
        }
    }
    Ok(())
}

fn encode_emitted(emitted: &HashMap<EventId, Event>, out: &mut Vec<u8>) {
    use cedr_durable::Persist;
    let mut entries: Vec<(EventId, Event)> =
        emitted.iter().map(|(&id, e)| (id, e.clone())).collect();
    entries.sort_unstable_by_key(|&(id, _)| id);
    entries.encode(out);
}

fn decode_emitted(
    r: &mut cedr_durable::Reader<'_>,
) -> Result<HashMap<EventId, Event>, cedr_durable::CodecError> {
    use cedr_durable::Persist;
    Ok(Vec::<(EventId, Event)>::decode(r)?.into_iter().collect())
}

/// Physical ATLEAST(n, E1, …, Ek, w); ALL and ANY desugar onto this.
///
/// Always recompute-and-diff: subset choice makes per-arrival delta
/// enumeration subtle, and ATLEAST workloads are small in practice (the
/// fan-in `k` is a query constant).
pub struct AtLeastOp {
    n: usize,
    w: Duration,
    pred: Pred,
    modes: Vec<ScMode>,
    slots: Vec<SlotMap>,
    emitted: HashMap<EventId, Event>,
}

impl AtLeastOp {
    pub fn new(n: usize, k: usize, w: Duration, pred: Pred) -> Self {
        Self::with_modes(n, k, w, pred, vec![ScMode::EACH_REUSE; k])
    }

    pub fn with_modes(n: usize, k: usize, w: Duration, pred: Pred, modes: Vec<ScMode>) -> Self {
        assert!(n >= 1 && n <= k, "need 1 ≤ n ≤ k");
        assert_eq!(modes.len(), k);
        AtLeastOp {
            n,
            w,
            pred,
            modes,
            slots: vec![SlotMap::new(); k],
            emitted: HashMap::new(),
        }
    }

    fn recompute(&mut self, ctx: &mut OpContext) {
        let sets = slots_as_sets(&self.slots);
        let matches = atleast_matches(self.n, &sets, self.w, &self.pred);
        let selected = apply_sc_modes(matches, &self.modes);
        let desired: Vec<Event> = selected.into_iter().map(|m| m.output).collect();
        diff_emitted(&mut self.emitted, desired, ctx);
    }
}

impl OperatorModule for AtLeastOp {
    fn name(&self) -> &'static str {
        "atleast"
    }

    fn arity(&self) -> usize {
        self.slots.len()
    }

    fn on_insert(&mut self, input: usize, event: &Event, ctx: &mut OpContext) {
        if admit_insert(&mut self.slots[input], event) {
            self.recompute(ctx);
        }
    }

    fn on_retract(&mut self, input: usize, r: &Retraction, ctx: &mut OpContext) {
        if admit_retract(&mut self.slots[input], r) {
            self.recompute(ctx);
        }
    }

    /// Batch-native delivery: ATLEAST is always recompute-and-diff, so a
    /// run is admitted whole and recomputed once (one-refresh-per-run).
    fn on_batch(&mut self, input: usize, msgs: &[Message], ctx: &mut OpContext) {
        let mut changed = false;
        for m in msgs {
            match m {
                Message::Insert(e) => changed |= admit_insert(&mut self.slots[input], e),
                Message::Retract(r) => changed |= admit_retract(&mut self.slots[input], r),
                Message::Cti(_) => {
                    debug_assert!(false, "CTIs are consumed by the consistency monitor")
                }
            }
        }
        if changed {
            self.recompute(ctx);
        }
    }

    fn on_advance(&mut self, ctx: &mut OpContext) {
        let bound = TimePoint::max_of(ctx.watermark - self.w, ctx.horizon());
        if bound == TimePoint::ZERO {
            return;
        }
        let mut purged: HashSet<EventId> = HashSet::new();
        for slot in &mut self.slots {
            while let Some((&(vs, id), _)) = slot.iter().next() {
                if vs < bound {
                    slot.remove(&(vs, id));
                    purged.insert(id);
                } else {
                    break;
                }
            }
        }
        if !purged.is_empty() {
            self.emitted
                .retain(|_, out| !out.lineage.0.iter().any(|c| purged.contains(c)));
        }
    }

    fn state_size(&self) -> usize {
        self.slots.iter().map(|s| s.len()).sum::<usize>() + self.emitted.len()
    }

    fn state_snapshot(&self, out: &mut Vec<u8>) {
        encode_slots(&self.slots, out);
        encode_emitted(&self.emitted, out);
    }

    fn state_restore(
        &mut self,
        r: &mut cedr_durable::Reader<'_>,
    ) -> Result<(), cedr_durable::CodecError> {
        decode_slots(&mut self.slots, r)?;
        self.emitted = decode_emitted(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::ConsistencySpec;
    use crate::operator::OperatorShell;
    use cedr_algebra::expr::{CmpOp, Scalar};
    use cedr_algebra::pattern::{Consumption, Selection};
    use cedr_streams::Message;
    use cedr_temporal::time::{dur, t};
    use cedr_temporal::Value;

    fn pt(id: u64, vs: u64) -> Event {
        Event::primitive(EventId(id), Interval::point(t(vs)), Payload::empty())
    }

    fn ptp(id: u64, vs: u64, m: &str) -> Event {
        Event::primitive(
            EventId(id),
            Interval::point(t(vs)),
            Payload::from_values(vec![Value::str(m)]),
        )
    }

    #[test]
    fn in_order_pair_detection() {
        let mut s = OperatorShell::new(
            Box::new(SequenceOp::new(2, dur(10), Pred::True)),
            ConsistencySpec::middle(),
        );
        assert!(s.push(0, Message::insert_event(pt(1, 5)), 0).is_empty());
        let out = s.push(1, Message::insert_event(pt(2, 8)), 1);
        assert_eq!(out.len(), 1);
        let m = out[0].as_insert().unwrap();
        assert_eq!(m.interval, Interval::new(t(8), t(15)));
        assert_eq!(m.root_time, t(5));
    }

    #[test]
    fn late_first_contributor_completes_match() {
        // E2 arrives before E1 (out of order); the late E1 completes it.
        let mut s = OperatorShell::new(
            Box::new(SequenceOp::new(2, dur(10), Pred::True)),
            ConsistencySpec::middle(),
        );
        assert!(s.push(1, Message::insert_event(pt(2, 8)), 0).is_empty());
        let out = s.push(0, Message::insert_event(pt(1, 5)), 1);
        assert_eq!(out.len(), 1, "late arrival still yields the match");
    }

    #[test]
    fn scope_excludes_distant_pairs() {
        let mut s = OperatorShell::new(
            Box::new(SequenceOp::new(2, dur(10), Pred::True)),
            ConsistencySpec::middle(),
        );
        s.push(0, Message::insert_event(pt(1, 5)), 0);
        let out = s.push(1, Message::insert_event(pt(2, 16)), 1);
        assert!(out.is_empty(), "16 − 5 > 10");
    }

    #[test]
    fn contributor_removal_retracts_outputs() {
        let mut s = OperatorShell::new(
            Box::new(SequenceOp::new(2, dur(10), Pred::True)),
            ConsistencySpec::middle(),
        );
        let e1 = pt(1, 5);
        s.push(0, Message::insert_event(e1.clone()), 0);
        let out = s.push(1, Message::insert_event(pt(2, 8)), 1);
        let m = out[0].as_insert().unwrap().clone();
        let out2 = s.push(0, Message::Retract(Retraction::new(e1, t(5))), 2);
        let r = out2[0].as_retract().unwrap();
        assert_eq!(r.event.id, m.id);
        assert!(r.is_full_removal());
    }

    #[test]
    fn predicate_injection_correlates() {
        let pred = Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0));
        let mut s = OperatorShell::new(
            Box::new(SequenceOp::new(2, dur(100), pred)),
            ConsistencySpec::middle(),
        );
        s.push(0, Message::insert_event(ptp(1, 1, "m1")), 0);
        s.push(0, Message::insert_event(ptp(2, 2, "m2")), 1);
        let out = s.push(1, Message::insert_event(ptp(3, 5, "m1")), 2);
        assert_eq!(out.len(), 1, "only the m1 INSTALL correlates");
    }

    #[test]
    fn three_slot_sequences_with_middle_arrival_last() {
        let mut s = OperatorShell::new(
            Box::new(SequenceOp::new(3, dur(100), Pred::True)),
            ConsistencySpec::middle(),
        );
        s.push(0, Message::insert_event(pt(1, 1)), 0);
        s.push(2, Message::insert_event(pt(3, 9)), 1);
        // The middle contributor arrives last and completes the triple.
        let out = s.push(1, Message::insert_event(pt(2, 4)), 2);
        assert_eq!(out.len(), 1);
        let m = out[0].as_insert().unwrap();
        assert_eq!(
            m.lineage.0.to_vec(),
            vec![EventId(1), EventId(2), EventId(3)]
        );
    }

    #[test]
    fn matches_agree_with_denotational_semantics() {
        let mut s = OperatorShell::new(
            Box::new(SequenceOp::new(2, dur(7), Pred::True)),
            ConsistencySpec::middle(),
        );
        let e1s: Vec<Event> = vec![pt(1, 1), pt(2, 4), pt(3, 9)];
        let e2s: Vec<Event> = vec![pt(10, 2), pt(11, 6), pt(12, 14)];
        let mut emitted = Vec::new();
        for (i, e) in e1s.iter().enumerate() {
            emitted.extend(s.push(0, Message::insert_event(e.clone()), i as u64));
        }
        for (i, e) in e2s.iter().enumerate() {
            emitted.extend(s.push(1, Message::insert_event(e.clone()), (10 + i) as u64));
        }
        let expected = cedr_algebra::pattern::sequence(&[e1s, e2s], dur(7), &Pred::True);
        let got: HashSet<EventId> = emitted
            .iter()
            .filter_map(|m| m.as_insert().map(|e| e.id))
            .collect();
        let want: HashSet<EventId> = expected.iter().map(|e| e.id).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn watermark_purges_expired_slot_state() {
        let mut s = OperatorShell::new(
            Box::new(SequenceOp::new(2, dur(10), Pred::True)),
            ConsistencySpec::middle(),
        );
        s.push(0, Message::insert_event(pt(1, 5)), 0);
        s.push(1, Message::insert_event(pt(2, 8)), 1);
        assert!(s.module().state_size() > 0);
        s.push(0, Message::Cti(t(100)), 2);
        s.push(1, Message::Cti(t(100)), 3);
        assert_eq!(s.module().state_size(), 0);
    }

    #[test]
    fn consume_mode_limits_reuse() {
        let modes = vec![
            ScMode::new(Selection::Each, Consumption::Consume),
            ScMode::EACH_REUSE,
        ];
        let mut s = OperatorShell::new(
            Box::new(SequenceOp::with_modes(2, dur(10), Pred::True, modes)),
            ConsistencySpec::middle(),
        );
        s.push(0, Message::insert_event(pt(1, 1)), 0);
        let o1 = s.push(1, Message::insert_event(pt(2, 3)), 1);
        assert_eq!(o1.iter().filter(|m| m.is_data()).count(), 1);
        // The second E2 cannot reuse the consumed E1.
        let o2 = s.push(1, Message::insert_event(pt(3, 5)), 2);
        assert_eq!(o2.iter().filter(|m| m.is_data()).count(), 0);
    }

    #[test]
    fn atleast_runtime_matches_denotational() {
        let mut s = OperatorShell::new(
            Box::new(AtLeastOp::new(2, 3, dur(10), Pred::True)),
            ConsistencySpec::middle(),
        );
        let events = [pt(1, 1), pt(2, 2), pt(3, 3)];
        let mut emitted = Vec::new();
        for (i, e) in events.iter().enumerate() {
            emitted.extend(s.push(i, Message::insert_event(e.clone()), i as u64));
        }
        let inserts: Vec<EventId> = emitted
            .iter()
            .filter_map(|m| m.as_insert().map(|e| e.id))
            .collect();
        let retracts: Vec<EventId> = emitted
            .iter()
            .filter_map(|m| m.as_retract().map(|r| r.event.id))
            .collect();
        let net: HashSet<EventId> = inserts
            .into_iter()
            .filter(|id| !retracts.contains(id))
            .collect();
        let expected: HashSet<EventId> = cedr_algebra::pattern::atleast(
            2,
            &[vec![pt(1, 1)], vec![pt(2, 2)], vec![pt(3, 3)]],
            dur(10),
            &Pred::True,
        )
        .iter()
        .map(|e| e.id)
        .collect();
        assert_eq!(net, expected);
        assert_eq!(net.len(), 3, "pairs (1,2), (1,3), (2,3)");
    }

    #[test]
    fn any_via_atleast_one() {
        let mut s = OperatorShell::new(
            Box::new(AtLeastOp::new(1, 2, dur(1), Pred::True)),
            ConsistencySpec::middle(),
        );
        let o1 = s.push(0, Message::insert_event(pt(1, 1)), 0);
        let o2 = s.push(1, Message::insert_event(pt(2, 5)), 1);
        assert_eq!(o1.iter().filter(|m| m.is_data()).count(), 1);
        assert_eq!(o2.iter().filter(|m| m.is_data()).count(), 1);
    }
}
