//! The batch-at-a-time dataflow executor: "a set of composable operators
//! that can be combined to form a pipelined query execution plan"
//! (Section 5).
//!
//! Plans are DAGs of [`OperatorShell`]s fed by named external sources.
//! Execution is deterministic and scheduled a **batch at a time** rather
//! than a message at a time: every node owns an input queue of
//! `(port, message)` pairs; producers enqueue (an `Arc` refcount bump per
//! subscriber — events are never deep-copied on fan-out) and
//! [`Dataflow::run_to_quiescence`] drains nodes in topological order,
//! handing each node its queued messages as maximal same-port runs via
//! [`OperatorShell::push_batch`]. Draining upstream nodes before
//! downstream ones means a node sees everything its producers emitted this
//! round in one batch, amortising shell and module overhead across the run
//! (see `OpStats::mean_batch_len`). Per-node FIFO order is identical to
//! the historical message-at-a-time cascade, so operator semantics are
//! unchanged.
//!
//! # Scheduling and threading
//!
//! Because nodes may only reference earlier nodes, a quiescence pass is a
//! single sweep in ascending node-id order. The serial scheduler drives
//! that sweep from a **ready queue** — an ordered worklist of dirty nodes,
//! seeded with the staged sources and extended as producers emit — so a
//! pass costs O(dirty·log) instead of rescanning every node per step.
//!
//! With [`Dataflow::set_threads`] the same pass runs on the **sharded
//! multi-worker scheduler** of [`crate::scheduler`]: the graph is
//! partitioned into connected-component/chain shards, each shard runs on
//! its own worker thread, bounded channels carry output runs across shard
//! edges, and each consumer stably merges its input by origin stamp
//! `(producer, seq)` — reproducing the serial delivery order bit for bit.
//! Serial and parallel execution are therefore interchangeable at every
//! consistency level; see the scheduler module docs for the argument,
//! including why Weak-consistency forgetting cannot diverge across thread
//! counts (per-shell arrival order is preserved; only *caller-side batch
//! splitting* moves Weak's forgetting horizon race, as documented at
//! [`Dataflow::enqueue_source_batch`]).
//!
//! Sink outputs are folded into [`cedr_streams::Collector`]s so the
//! temporal equivalence machinery applies to query results directly. A
//! collector absorbs each output run into its history tables **and** its
//! append-only [`OutputDelta`](cedr_streams::OutputDelta) log — the
//! change stream that engine-level subscriptions drain incrementally.
//! Because both the serial sweep and the sharded workers feed collectors
//! through the same `deliver_runs` loop, the delta log inherits the
//! parallel≡serial bit-identity guarantee for free: a subscription
//! observes the same deltas in the same order at every thread count.

use crate::consistency::ConsistencySpec;
use crate::operator::{OperatorModule, OperatorShell};
use crate::scheduler::{self, SchedStats, ShardPlan};
use crate::stats::OpStats;
use cedr_obs::{ObsHub, TraceEvent};
use cedr_streams::{Collector, Message, MessageBatch};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

/// Identifies an operator node in a dataflow.
pub type NodeId = usize;

/// Observability context for one node's delivery: the hub plus the
/// `(query, node)` labels stamped onto [`TraceEvent::OperatorRun`].
/// Purely observational — never feeds back into scheduling or delivery.
pub(crate) type RunObs<'a> = (&'a ObsHub, u16, u16);

/// Deliver one node's drained input to its shell as **maximal same-port
/// runs** in arrival order (messages move into each run — no re-clone),
/// absorb any outputs into the node's collector (history tables, stamped
/// tape and subscription delta log advance together), and hand each
/// run's output batch to `route` for fan-out.
///
/// This is the single definition of per-node delivery: the serial sweep
/// and every sharded-scheduler worker call exactly this loop, differing
/// only in the `route` sink. The parallel≡serial bit-identity guarantee
/// rests on the two paths sharing it — do not fork this logic.
pub(crate) fn deliver_runs(
    shell: &mut OperatorShell,
    mut collector: Option<&mut Collector>,
    input: impl IntoIterator<Item = (usize, Message)>,
    now: u64,
    obs: Option<RunObs<'_>>,
    mut route: impl FnMut(&MessageBatch),
) {
    let mut iter = input.into_iter().peekable();
    while let Some((port, first)) = iter.next() {
        let mut run = vec![first];
        while iter.peek().is_some_and(|(p, _)| *p == port) {
            run.push(iter.next().expect("peeked").1);
        }
        if let Some((hub, query, node)) = obs {
            hub.trace(|| TraceEvent::OperatorRun {
                query,
                node,
                batch_len: run.len().min(u32::MAX as usize) as u32,
            });
        }
        let outs = shell.push_batch(port, &run, now);
        if outs.is_empty() {
            continue;
        }
        let outs = MessageBatch::from(outs);
        if let Some(c) = collector.as_deref_mut() {
            c.absorb_batch(&outs);
        }
        route(&outs);
    }
}

/// A connection endpoint feeding an operator input port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Port {
    /// External source `i`.
    Source(usize),
    /// Output of node `id`.
    Node(NodeId),
}

/// Builds a dataflow DAG.
pub struct DataflowBuilder {
    n_sources: usize,
    shells: Vec<OperatorShell>,
    inputs: Vec<Vec<Port>>,
}

impl DataflowBuilder {
    pub fn new(n_sources: usize) -> Self {
        DataflowBuilder {
            n_sources,
            shells: Vec::new(),
            inputs: Vec::new(),
        }
    }

    /// Add an operator node; `inputs[i]` feeds the module's port `i`.
    /// Nodes may only reference earlier nodes (enforcing acyclicity).
    pub fn add_node(
        &mut self,
        module: Box<dyn OperatorModule>,
        spec: ConsistencySpec,
        inputs: Vec<Port>,
    ) -> NodeId {
        assert_eq!(
            inputs.len(),
            module.arity(),
            "operator {} expects {} inputs",
            module.name(),
            module.arity()
        );
        for p in &inputs {
            match p {
                Port::Source(s) => assert!(*s < self.n_sources, "unknown source {s}"),
                Port::Node(n) => assert!(*n < self.shells.len(), "forward edge to node {n}"),
            }
        }
        let id = self.shells.len();
        self.shells.push(OperatorShell::new(module, spec));
        self.inputs.push(inputs);
        id
    }

    /// Finish the graph; `watched` nodes get output collectors.
    pub fn build(self, watched: &[NodeId]) -> Dataflow {
        let mut source_subs: Vec<Vec<(NodeId, usize)>> = vec![Vec::new(); self.n_sources];
        let mut node_subs: Vec<Vec<(NodeId, usize)>> = vec![Vec::new(); self.shells.len()];
        for (node, inputs) in self.inputs.iter().enumerate() {
            for (port, src) in inputs.iter().enumerate() {
                match src {
                    Port::Source(s) => source_subs[*s].push((node, port)),
                    Port::Node(n) => node_subs[*n].push((node, port)),
                }
            }
        }
        let collectors = watched
            .iter()
            .map(|&n| {
                assert!(n < self.shells.len(), "cannot watch unknown node {n}");
                (n, Collector::new())
            })
            .collect();
        let queues = vec![VecDeque::new(); self.shells.len()];
        Dataflow {
            nodes: self.shells,
            source_subs,
            node_subs,
            collectors,
            queues,
            tick: 0,
            threads: 1,
            shard_plan: None,
            sched: SchedStats::default(),
            obs: None,
        }
    }
}

/// An executable dataflow with per-node input queues and a batch-at-a-time
/// scheduler (see the module docs).
pub struct Dataflow {
    nodes: Vec<OperatorShell>,
    source_subs: Vec<Vec<(NodeId, usize)>>,
    node_subs: Vec<Vec<(NodeId, usize)>>,
    collectors: HashMap<NodeId, Collector>,
    /// Per-node FIFO of `(port, message)` awaiting delivery.
    queues: Vec<VecDeque<(usize, Message)>>,
    tick: u64,
    /// Worker threads for `run_to_quiescence` (1 = serial sweep).
    threads: usize,
    /// Lazily computed shard partition (topology is fixed after build).
    shard_plan: Option<ShardPlan>,
    sched: SchedStats,
    /// Observability hub + the query index this dataflow traces under.
    /// Never serialized (`state_snapshot` excludes it) and never read by
    /// scheduling decisions, so it cannot perturb bit-identity.
    obs: Option<(Arc<ObsHub>, u16)>,
}

impl Dataflow {
    /// Set the number of worker threads used by
    /// [`Dataflow::run_to_quiescence`]. `1` (the default) keeps the serial
    /// sweep; more threads run the sharded scheduler of
    /// [`crate::scheduler`], whose results are bit-identical to serial.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
        self.shard_plan = None;
    }

    /// Worker threads currently configured.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Attach an observability hub; `query` labels this dataflow's trace
    /// events and timings. Observation only — delivery order, operator
    /// state and statistics are unchanged with or without a hub.
    pub fn set_obs(&mut self, hub: Arc<ObsHub>, query: u16) {
        self.obs = Some((hub, query));
    }

    /// Sharded-scheduler counters (all zero while running serially).
    pub fn sched_stats(&self) -> &SchedStats {
        &self.sched
    }

    /// Enqueue one source message to its subscribers without running the
    /// scheduler. Each subscriber receives an `Arc`-shared clone.
    pub fn enqueue_source(&mut self, source: usize, msg: Message) {
        self.tick += 1;
        for &(node, port) in &self.source_subs[source] {
            self.queues[node].push_back((port, msg.clone()));
        }
    }

    /// Enqueue a whole batch to one source's subscribers without running
    /// the scheduler.
    ///
    /// # Tick semantics
    ///
    /// The CEDR tick is an *ingestion-round* counter, not a message
    /// counter: staging a batch advances it **once**, however many
    /// messages the batch carries, while the per-message
    /// [`Dataflow::enqueue_source`] advances it per call. Blocking
    /// durations ([`OpStats::blocked_ticks`]) therefore measure how many
    /// ingestion rounds a message waited in an alignment buffer —
    /// comparable across batch sizes — and never affect *what* is
    /// delivered: release decisions are driven by syncs and CTIs
    /// (occurrence time), not by the tick.
    pub fn enqueue_source_batch(&mut self, source: usize, batch: &MessageBatch) {
        if batch.is_empty() {
            return;
        }
        self.tick += 1;
        for m in batch {
            for &(node, port) in &self.source_subs[source] {
                self.queues[node].push_back((port, m.clone()));
            }
        }
    }

    /// One **pumped ingestion round**: stage every `(source, batch)` pair
    /// of the round in order — each batch advancing the tick once, as in
    /// [`Dataflow::enqueue_source_batch`] — then run a single quiescence
    /// pass over the union (serial or sharded, per
    /// [`Dataflow::set_threads`]).
    ///
    /// This is the scheduler entry point for round-at-a-time drivers (the
    /// engine's ingress drain and channel pump): because the pass
    /// structure is fixed — one pass per round, however the round was
    /// assembled — a round-admitting caller that feeds identical rounds
    /// in identical order gets bit-identical execution, regardless of the
    /// thread timing that produced those rounds. An empty round still
    /// runs the (no-op) pass.
    pub fn run_round<'a>(&mut self, round: impl IntoIterator<Item = (usize, &'a MessageBatch)>) {
        for (source, batch) in round {
            self.enqueue_source_batch(source, batch);
        }
        self.run_to_quiescence();
    }

    /// Drain all node queues until the graph is quiet — serially or on the
    /// sharded multi-worker scheduler, per [`Dataflow::set_threads`]. Both
    /// paths deliver bit-identical streams to every node (see the module
    /// docs).
    pub fn run_to_quiescence(&mut self) {
        if self.threads > 1 && self.nodes.len() > 1 {
            self.run_to_quiescence_parallel();
        } else {
            self.run_to_quiescence_serial();
        }
    }

    /// The serial sweep, driven by a ready queue: an ordered worklist of
    /// nodes with pending input. Edges only point forward, so popping the
    /// smallest dirty node processes every producer before its consumers —
    /// by the time a node runs it holds everything upstream emitted this
    /// round — without the historical O(nodes) rescan per step.
    fn run_to_quiescence_serial(&mut self) {
        let now = self.tick;
        let Dataflow {
            nodes,
            node_subs,
            collectors,
            queues,
            obs,
            ..
        } = self;
        let mut ready: BTreeSet<NodeId> = (0..nodes.len())
            .filter(|&n| !queues[n].is_empty())
            .collect();
        while let Some(node) = ready.pop_first() {
            let drained: Vec<(usize, Message)> = queues[node].drain(..).collect();
            deliver_runs(
                &mut nodes[node],
                collectors.get_mut(&node),
                drained,
                now,
                obs.as_ref().map(|(h, q)| (h.as_ref(), *q, node as u16)),
                |outs| {
                    for &(next, next_port) in &node_subs[node] {
                        for o in outs {
                            queues[next].push_back((next_port, o.clone()));
                        }
                        ready.insert(next);
                    }
                },
            );
        }
    }

    /// One pass of the sharded scheduler: stage the source queues, hand
    /// the graph to per-shard workers, and merge deterministically.
    fn run_to_quiescence_parallel(&mut self) {
        if self.queues.iter().all(|q| q.is_empty()) {
            return;
        }
        if self.shard_plan.is_none() {
            self.shard_plan = Some(ShardPlan::partition(
                self.nodes.len(),
                &self.node_subs,
                self.threads,
            ));
        }
        let plan = self.shard_plan.take().expect("just installed");
        if plan.shards.len() <= 1 {
            self.shard_plan = Some(plan);
            self.run_to_quiescence_serial();
            return;
        }
        let staged: Vec<Vec<(usize, Message)>> = self
            .queues
            .iter_mut()
            .map(|q| q.drain(..).collect())
            .collect();
        scheduler::run_sharded(
            &mut self.nodes,
            &self.node_subs,
            &mut self.collectors,
            staged,
            &plan,
            self.tick,
            &mut self.sched,
            self.obs.as_ref().map(|(h, q)| (h.as_ref(), *q)),
        );
        self.shard_plan = Some(plan);
    }

    /// Feed one message into external source `source`, cascading it through
    /// the graph to quiescence.
    pub fn push_source(&mut self, source: usize, msg: Message) {
        self.enqueue_source(source, msg);
        self.run_to_quiescence();
    }

    /// Feed a whole batch into external source `source`, then run the graph
    /// to quiescence. All of the batch is enqueued up front, so every node
    /// on the path processes it in amortised runs rather than one cascade
    /// per message.
    pub fn push_source_batch(&mut self, source: usize, batch: &MessageBatch) {
        self.enqueue_source_batch(source, batch);
        self.run_to_quiescence();
    }

    /// Feed a whole stream into one source, one cascade per message (the
    /// historical fine-grained mode; prefer [`Dataflow::push_source_batch`]
    /// when the caller already holds a run of messages).
    pub fn run_stream(&mut self, source: usize, msgs: impl IntoIterator<Item = Message>) {
        for m in msgs {
            self.push_source(source, m);
        }
    }

    /// Interleave several per-source streams round-robin (a simple model of
    /// concurrent providers).
    pub fn run_interleaved(&mut self, streams: Vec<Vec<Message>>) {
        let mut iters: Vec<std::vec::IntoIter<Message>> =
            streams.into_iter().map(|s| s.into_iter()).collect();
        loop {
            let mut progressed = false;
            for (src, it) in iters.iter_mut().enumerate() {
                if let Some(m) = it.next() {
                    self.push_source(src, m);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// The collector attached to a watched node.
    pub fn collector(&self, node: NodeId) -> &Collector {
        self.collectors
            .get(&node)
            .expect("node is not watched; pass it to build()")
    }

    /// Per-node runtime statistics.
    pub fn stats(&self, node: NodeId) -> &OpStats {
        self.nodes[node].stats()
    }

    /// Plan-wide totals.
    pub fn total_stats(&self) -> OpStats {
        let mut total = OpStats::default();
        for n in &self.nodes {
            total.absorb(n.stats());
        }
        total
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn node_name(&self, node: NodeId) -> &'static str {
        self.nodes[node].name()
    }

    /// Current CEDR tick (arrival counter).
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// Serialize the dataflow's full runtime state at a quiescent round
    /// boundary: the tick, every shell's state (module blob included),
    /// every collector, and the scheduler counters. Topology (`source_subs`
    /// / `node_subs` / `shard_plan`) is plan-derived and re-created by
    /// re-registering the query, so it is not part of the image. Fails if
    /// any node queue still holds undelivered messages — the caller must
    /// run to quiescence first.
    pub fn state_snapshot(&self, out: &mut Vec<u8>) -> Result<(), cedr_durable::CodecError> {
        use cedr_durable::Persist;
        if let Some(node) = self.queues.iter().position(|q| !q.is_empty()) {
            return Err(cedr_durable::CodecError::new(format!(
                "node {node} has undelivered queued messages; not at a quiescent boundary"
            )));
        }
        self.tick.encode(out);
        (self.nodes.len() as u64).encode(out);
        for (node, shell) in self.nodes.iter().enumerate() {
            let mut blob = Vec::new();
            shell
                .state_snapshot(&mut blob)
                .map_err(|e| e.in_section(&format!("node {node}")))?;
            blob.encode(out);
        }
        let mut watched: Vec<NodeId> = self.collectors.keys().copied().collect();
        watched.sort_unstable();
        (watched.len() as u64).encode(out);
        for node in watched {
            (node as u64).encode(out);
            self.collectors[&node].to_parts().encode(out);
        }
        self.sched.shards.encode(out);
        self.sched.parallel_runs.encode(out);
        self.sched.cross_batches.encode(out);
        self.sched.cross_messages.encode(out);
        Ok(())
    }

    /// Restore state captured by [`Dataflow::state_snapshot`] into a
    /// freshly built dataflow of the *same plan*. Node count and watched
    /// set must match the image exactly.
    pub fn state_restore(
        &mut self,
        r: &mut cedr_durable::Reader<'_>,
    ) -> Result<(), cedr_durable::CodecError> {
        use cedr_durable::Persist;
        self.tick = u64::decode(r)?;
        let n = u64::decode(r)? as usize;
        if n != self.nodes.len() {
            return Err(cedr_durable::CodecError::new(format!(
                "plan has {} nodes, image has {n}",
                self.nodes.len()
            )));
        }
        for (node, shell) in self.nodes.iter_mut().enumerate() {
            let blob = Vec::<u8>::decode(r)?;
            let mut br = cedr_durable::Reader::new(&blob);
            shell
                .state_restore(&mut br)
                .and_then(|()| br.expect_exhausted())
                .map_err(|e| e.in_section(&format!("node {node}")))?;
        }
        let watched = u64::decode(r)? as usize;
        if watched != self.collectors.len() {
            return Err(cedr_durable::CodecError::new(format!(
                "plan watches {} nodes, image has {watched}",
                self.collectors.len()
            )));
        }
        for _ in 0..watched {
            let node = u64::decode(r)? as NodeId;
            let parts = cedr_streams::CollectorParts::decode(r)?;
            match self.collectors.get_mut(&node) {
                Some(c) => *c = Collector::from_parts(parts),
                None => {
                    return Err(cedr_durable::CodecError::new(format!(
                        "image watches node {node}, which the plan does not"
                    )))
                }
            }
        }
        self.sched.shards = usize::decode(r)?;
        self.sched.parallel_runs = usize::decode(r)?;
        self.sched.cross_batches = usize::decode(r)?;
        self.sched.cross_messages = usize::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::GroupAggregateOp;
    use crate::sequence::SequenceOp;
    use crate::stateless::{AlterLifetimeOp, SelectOp};
    use cedr_algebra::expr::{CmpOp, Pred, Scalar};
    use cedr_algebra::relational::AggFunc;
    use cedr_streams::StreamBuilder;
    use cedr_temporal::time::{dur, t};
    use cedr_temporal::{Interval, Payload, TimePoint, Value};

    #[test]
    fn linear_pipeline_select_window_count() {
        // σ(value ≥ 0) → W_5 → count.
        let mut b = DataflowBuilder::new(1);
        let sel = b.add_node(
            Box::new(SelectOp::new(Pred::cmp(
                Scalar::Field(0),
                CmpOp::Ge,
                Scalar::lit(0i64),
            ))),
            ConsistencySpec::middle(),
            vec![Port::Source(0)],
        );
        let win = b.add_node(
            Box::new(AlterLifetimeOp::window(dur(5))),
            ConsistencySpec::middle(),
            vec![Port::Node(sel)],
        );
        let cnt = b.add_node(
            Box::new(GroupAggregateOp::global(AggFunc::Count)),
            ConsistencySpec::middle(),
            vec![Port::Node(win)],
        );
        let mut df = b.build(&[cnt]);

        let mut sb = StreamBuilder::new();
        for i in 0..10u64 {
            sb.insert(
                Interval::from(t(i)),
                Payload::from_values(vec![Value::Int(i as i64)]),
            );
        }
        df.run_stream(0, sb.build_ordered(Some(dur(1)), true));

        let net = df.collector(cnt).net_table();
        assert!(!net.is_empty());
        // With W_5 over points at 0..10, count at time 4 is 5 (events 0..4).
        let snap = net.snapshot_at(t(4));
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].payload.get(0), Some(&Value::Int(5)));
        // The final CTI must have propagated through all three operators.
        assert_eq!(df.collector(cnt).max_cti(), Some(TimePoint::INFINITY));
    }

    #[test]
    fn fan_out_to_two_consumers() {
        let mut b = DataflowBuilder::new(1);
        let sel = b.add_node(
            Box::new(SelectOp::new(Pred::True)),
            ConsistencySpec::middle(),
            vec![Port::Source(0)],
        );
        let w1 = b.add_node(
            Box::new(AlterLifetimeOp::window(dur(2))),
            ConsistencySpec::middle(),
            vec![Port::Node(sel)],
        );
        let w2 = b.add_node(
            Box::new(AlterLifetimeOp::window(dur(4))),
            ConsistencySpec::middle(),
            vec![Port::Node(sel)],
        );
        let mut df = b.build(&[w1, w2]);
        let mut sb = StreamBuilder::new();
        sb.insert(Interval::from(t(0)), Payload::empty());
        df.run_stream(0, sb.build_ordered(None, true));
        assert_eq!(
            df.collector(w1).net_table().rows[0].interval,
            Interval::new(t(0), t(2))
        );
        assert_eq!(
            df.collector(w2).net_table().rows[0].interval,
            Interval::new(t(0), t(4))
        );
    }

    #[test]
    fn two_sources_feed_a_sequence() {
        let mut b = DataflowBuilder::new(2);
        let seq = b.add_node(
            Box::new(SequenceOp::new(2, dur(10), Pred::True)),
            ConsistencySpec::middle(),
            vec![Port::Source(0), Port::Source(1)],
        );
        let mut df = b.build(&[seq]);

        let mut a = StreamBuilder::with_id_base(0);
        a.insert_at(t(1), Payload::empty());
        let mut c = StreamBuilder::with_id_base(1000);
        c.insert_at(t(4), Payload::empty());
        df.run_interleaved(vec![
            a.build_ordered(None, true),
            c.build_ordered(None, true),
        ]);
        assert_eq!(df.collector(seq).stats().inserts, 1);
        assert_eq!(df.collector(seq).max_cti(), Some(TimePoint::INFINITY));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_is_rejected() {
        let mut b = DataflowBuilder::new(1);
        b.add_node(
            Box::new(SequenceOp::new(2, dur(10), Pred::True)),
            ConsistencySpec::middle(),
            vec![Port::Source(0)], // needs 2
        );
    }

    /// A two-component graph (two sources, each σ → W → count) for the
    /// parallel≡serial checks.
    fn two_component_df() -> (Dataflow, Vec<NodeId>) {
        let mut b = DataflowBuilder::new(2);
        let mut sinks = Vec::new();
        for s in 0..2 {
            let sel = b.add_node(
                Box::new(SelectOp::new(Pred::cmp(
                    Scalar::Field(0),
                    CmpOp::Ge,
                    Scalar::lit(0i64),
                ))),
                ConsistencySpec::middle(),
                vec![Port::Source(s)],
            );
            let win = b.add_node(
                Box::new(AlterLifetimeOp::window(dur(5 + s as u64))),
                ConsistencySpec::middle(),
                vec![Port::Node(sel)],
            );
            sinks.push(b.add_node(
                Box::new(GroupAggregateOp::global(AggFunc::Count)),
                ConsistencySpec::middle(),
                vec![Port::Node(win)],
            ));
        }
        let df = b.build(&sinks);
        (df, sinks)
    }

    fn feed(df: &mut Dataflow) {
        for s in 0..2usize {
            let mut sb = StreamBuilder::with_id_base(1000 * s as u64);
            for i in 0..30u64 {
                sb.insert(
                    Interval::from(t((i * 7 + s as u64) % 50)),
                    Payload::from_values(vec![Value::Int(i as i64 - 3)]),
                );
            }
            let batch: cedr_streams::MessageBatch =
                sb.build_ordered(Some(dur(5)), true).into_iter().collect();
            df.enqueue_source_batch(s, &batch);
        }
        df.run_to_quiescence();
    }

    #[test]
    fn parallel_components_match_serial_bit_for_bit() {
        let (mut serial, sinks) = two_component_df();
        feed(&mut serial);
        for threads in [2, 4] {
            let (mut par, psinks) = two_component_df();
            par.set_threads(threads);
            feed(&mut par);
            assert!(par.sched_stats().parallel_runs > 0, "parallel path unused");
            for (a, b) in sinks.iter().zip(psinks.iter()) {
                assert_eq!(
                    serial.collector(*a).stamped(),
                    par.collector(*b).stamped(),
                    "threads={threads}: output stream diverged"
                );
                assert_eq!(serial.collector(*a).stats(), par.collector(*b).stats());
            }
            for n in 0..serial.node_count() {
                assert_eq!(serial.stats(n), par.stats(n), "node {n} stats diverged");
            }
            if threads == 2 {
                // One component per worker: no cross-shard traffic needed.
                assert_eq!(par.sched_stats().cross_messages, 0);
            }
        }
    }

    #[test]
    fn chain_split_pipeline_matches_serial_bit_for_bit() {
        // A single 4-node component forced onto 4 workers: the scheduler
        // must split it into chain shards and move every edge's traffic
        // through cross-shard channels — the deterministic (origin, seq)
        // merge is what keeps the output identical.
        fn pipeline() -> (Dataflow, NodeId) {
            let mut b = DataflowBuilder::new(1);
            let sel = b.add_node(
                Box::new(SelectOp::new(Pred::cmp(
                    Scalar::Field(0),
                    CmpOp::Ge,
                    Scalar::lit(2i64),
                ))),
                ConsistencySpec::strong(),
                vec![Port::Source(0)],
            );
            let win = b.add_node(
                Box::new(AlterLifetimeOp::window(dur(7))),
                ConsistencySpec::strong(),
                vec![Port::Node(sel)],
            );
            let sel2 = b.add_node(
                Box::new(SelectOp::new(Pred::True)),
                ConsistencySpec::strong(),
                vec![Port::Node(win)],
            );
            let cnt = b.add_node(
                Box::new(GroupAggregateOp::global(AggFunc::Count)),
                ConsistencySpec::strong(),
                vec![Port::Node(sel2)],
            );
            (b.build(&[cnt]), cnt)
        }
        let run = |threads: usize| {
            let (mut df, sink) = pipeline();
            df.set_threads(threads);
            let mut sb = StreamBuilder::new();
            for i in 0..40u64 {
                sb.insert(
                    Interval::from(t((i * 13) % 60)),
                    Payload::from_values(vec![Value::Int((i % 7) as i64)]),
                );
            }
            let batch: cedr_streams::MessageBatch =
                sb.build_ordered(Some(dur(10)), true).into_iter().collect();
            df.enqueue_source_batch(0, &batch);
            df.run_to_quiescence();
            (df, sink)
        };
        let (serial, s_sink) = run(1);
        let (par, p_sink) = run(4);
        assert_eq!(par.sched_stats().shards, 4, "expected a 4-way chain split");
        assert!(
            par.sched_stats().cross_messages > 0,
            "chain shards must talk over channels"
        );
        assert_eq!(
            serial.collector(s_sink).stamped(),
            par.collector(p_sink).stamped()
        );
        for n in 0..serial.node_count() {
            assert_eq!(serial.stats(n), par.stats(n), "node {n} stats diverged");
        }
    }

    #[test]
    fn total_stats_aggregate_across_nodes() {
        let mut b = DataflowBuilder::new(1);
        let s1 = b.add_node(
            Box::new(SelectOp::new(Pred::True)),
            ConsistencySpec::middle(),
            vec![Port::Source(0)],
        );
        let _s2 = b.add_node(
            Box::new(SelectOp::new(Pred::True)),
            ConsistencySpec::middle(),
            vec![Port::Node(s1)],
        );
        let mut df = b.build(&[]);
        let mut sb = StreamBuilder::new();
        sb.insert_at(t(0), Payload::empty());
        df.run_stream(0, sb.build_ordered(None, false));
        let total = df.total_stats();
        assert_eq!(total.arrivals, 2, "both nodes saw the event");
        assert_eq!(total.out_inserts, 2);
    }
}
