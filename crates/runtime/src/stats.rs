//! Per-operator runtime metrics.
//!
//! These are the observables of Figure 8: **blocking** (alignment-buffer
//! residency), **state size** (operational-module + buffer footprint) and
//! **output size** (inserts + retractions emitted). CEDR time is measured
//! in arrival ticks (one per delivered message; see DESIGN.md).

use serde::{Deserialize, Serialize};

/// Counters and high-water marks for one operator shell.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OpStats {
    /// Data messages that arrived at the shell.
    pub arrivals: usize,
    /// Data messages released to the operational module.
    pub released: usize,
    /// Messages dropped because they fell below the memory horizon
    /// (weak-consistency forgetting).
    pub forgotten: usize,
    /// Peak number of messages simultaneously held in the alignment buffer.
    pub held_peak: usize,
    /// Total blocking: Σ over released messages of (release − arrival)
    /// in CEDR ticks.
    pub blocked_ticks: u64,
    /// Number of messages that were held at all (blocked ≥ 1 tick).
    pub blocked_messages: usize,
    /// Peak operational-module state size (events/entries retained).
    pub state_peak: usize,
    /// Module delivery runs (`on_batch` invocations with ≥ 1 message).
    pub batches: usize,
    /// Messages handed to the module inside delivery runs (includes
    /// replayed orphan retractions; excludes parked ones — `released`
    /// counts monitor admissions instead, a different population).
    pub delivered: usize,
    /// Largest single delivery run handed to the module.
    pub batch_peak: usize,
    /// Group-aggregate refresh computations (recompute-and-diff of one
    /// group's step function). The batch-native group-aggregate performs
    /// one refresh per *touched group per run*, so this divided by
    /// `batches` is the stateful amortisation factor — per-message
    /// delivery pays one refresh per state-changing message instead.
    pub group_refreshes: usize,
    /// Join delivery runs probed batch-natively (≥ 2 messages sharing one
    /// frozen candidate-index snapshot: one lookup per distinct key per
    /// run instead of one per message).
    pub probe_batches: usize,
    /// Stateless stages collapsed into this operator by the plan-time
    /// fusion pass (0 for an ordinary, unfused operator; ≥ 2 for a
    /// `FusedStatelessOp`). Summed by [`OpStats::absorb`], so a positive
    /// plan total proves fusion actually engaged rather than silently
    /// falling back to the unfused graph.
    pub fused_stages: usize,
    /// Compiled-kernel sweeps run by a fused node: one per select stage
    /// per delivery run whose selection bitmap was computed over payload
    /// columns (plus the sweeps of the projection gather, counted at the
    /// run that swept them). Summed by [`OpStats::absorb`] like
    /// `fused_stages`, so a positive plan total proves the compiled fast
    /// path is live rather than silently interpreting.
    pub compiled_kernel_runs: usize,
    /// Output inserts emitted.
    pub out_inserts: usize,
    /// Output retractions emitted.
    pub out_retractions: usize,
    /// Output CTIs emitted.
    pub out_ctis: usize,
}

impl cedr_durable::Persist for OpStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.arrivals.encode(out);
        self.released.encode(out);
        self.forgotten.encode(out);
        self.held_peak.encode(out);
        self.blocked_ticks.encode(out);
        self.blocked_messages.encode(out);
        self.state_peak.encode(out);
        self.batches.encode(out);
        self.delivered.encode(out);
        self.batch_peak.encode(out);
        self.group_refreshes.encode(out);
        self.probe_batches.encode(out);
        self.fused_stages.encode(out);
        self.compiled_kernel_runs.encode(out);
        self.out_inserts.encode(out);
        self.out_retractions.encode(out);
        self.out_ctis.encode(out);
    }
    fn decode(r: &mut cedr_durable::Reader<'_>) -> Result<Self, cedr_durable::CodecError> {
        Ok(OpStats {
            arrivals: usize::decode(r)?,
            released: usize::decode(r)?,
            forgotten: usize::decode(r)?,
            held_peak: usize::decode(r)?,
            blocked_ticks: u64::decode(r)?,
            blocked_messages: usize::decode(r)?,
            state_peak: usize::decode(r)?,
            batches: usize::decode(r)?,
            delivered: usize::decode(r)?,
            batch_peak: usize::decode(r)?,
            group_refreshes: usize::decode(r)?,
            probe_batches: usize::decode(r)?,
            fused_stages: usize::decode(r)?,
            compiled_kernel_runs: usize::decode(r)?,
            out_inserts: usize::decode(r)?,
            out_retractions: usize::decode(r)?,
            out_ctis: usize::decode(r)?,
        })
    }
}

impl OpStats {
    /// Figure 8's "Output Size": inserts + retractions.
    pub fn output_size(&self) -> usize {
        self.out_inserts + self.out_retractions
    }

    /// Mean blocking per released message, in CEDR ticks.
    pub fn mean_blocking(&self) -> f64 {
        if self.released == 0 {
            0.0
        } else {
            self.blocked_ticks as f64 / self.released as f64
        }
    }

    /// Mean messages per module delivery run — the amortisation factor of
    /// the batch scheduler (1.0 ⇔ strictly per-message delivery).
    pub fn mean_batch_len(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.delivered as f64 / self.batches as f64
        }
    }

    /// Fold another operator's stats into this one (plan-level totals).
    pub fn absorb(&mut self, other: &OpStats) {
        self.arrivals += other.arrivals;
        self.released += other.released;
        self.forgotten += other.forgotten;
        self.held_peak = self.held_peak.max(other.held_peak);
        self.blocked_ticks += other.blocked_ticks;
        self.blocked_messages += other.blocked_messages;
        self.state_peak = self.state_peak.max(other.state_peak);
        self.batches += other.batches;
        self.delivered += other.delivered;
        self.batch_peak = self.batch_peak.max(other.batch_peak);
        self.group_refreshes += other.group_refreshes;
        self.probe_batches += other.probe_batches;
        self.fused_stages += other.fused_stages;
        self.compiled_kernel_runs += other.compiled_kernel_runs;
        self.out_inserts += other.out_inserts;
        self.out_retractions += other.out_retractions;
        self.out_ctis += other.out_ctis;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_size_sums_inserts_and_retractions() {
        let s = OpStats {
            out_inserts: 7,
            out_retractions: 3,
            ..OpStats::default()
        };
        assert_eq!(s.output_size(), 10);
    }

    #[test]
    fn mean_blocking_handles_zero() {
        assert_eq!(OpStats::default().mean_blocking(), 0.0);
        let s = OpStats {
            released: 4,
            blocked_ticks: 10,
            ..OpStats::default()
        };
        assert_eq!(s.mean_blocking(), 2.5);
    }

    #[test]
    fn absorb_takes_maxima_and_sums() {
        let mut a = OpStats {
            state_peak: 5,
            out_inserts: 1,
            ..OpStats::default()
        };
        let b = OpStats {
            state_peak: 9,
            out_inserts: 2,
            blocked_ticks: 4,
            ..OpStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.state_peak, 9);
        assert_eq!(a.out_inserts, 3);
        assert_eq!(a.blocked_ticks, 4);
    }
}
