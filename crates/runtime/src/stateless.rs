//! Stateless operational modules: selection, projection, AlterLifetime and
//! union.
//!
//! These operators are pure per-event functions, so retraction handling is
//! mechanical: transform the retracted event the same way as the original
//! insert and emit the difference. They hold no state at any consistency
//! level (the "Minimal"/"Low" state rows of Figure 8 for simple plans).
//!
//! Being stateless also makes them the natural first family to go
//! **batch-native**: the filter/map/pass-through operators (select,
//! project, union) override [`OperatorModule::on_batch`] to process a
//! whole delivery run as one tight loop over a pre-sized output `Vec`,
//! matching each message exactly once. The trait's default — which
//! already dispatches to `on_insert`/`on_retract` statically per
//! monomorphized module — remains right for operators whose per-message
//! transform is the whole cost (alter-lifetime, slice), so those keep
//! it. Batch and per-message delivery are behaviourally identical by
//! construction either way.

use crate::operator::{OpContext, OperatorModule};
use cedr_algebra::alter_lifetime::{DeltaFn, VsFn};
use cedr_algebra::expr::{Pred, Scalar};
use cedr_streams::{Message, Retraction};
use cedr_temporal::{Event, Interval, Payload, TimePoint};

/// Physical selection σ_f (Definition 8).
pub struct SelectOp {
    pred: Pred,
}

impl SelectOp {
    pub fn new(pred: Pred) -> Self {
        SelectOp { pred }
    }
}

impl OperatorModule for SelectOp {
    fn name(&self) -> &'static str {
        "select"
    }

    fn on_insert(&mut self, _input: usize, event: &Event, ctx: &mut OpContext) {
        if self.pred.eval_event(event) {
            ctx.out.insert(event.clone());
        }
    }

    fn on_retract(&mut self, _input: usize, r: &Retraction, ctx: &mut OpContext) {
        // The payload is unchanged by retraction, so the event passed the
        // filter iff its retraction does.
        if self.pred.eval_event(&r.event) {
            ctx.out.retract_to(r.event.clone(), r.new_end);
        }
    }

    /// Batch-native filtering: evaluate the predicate across the run and
    /// emit the survivors (`Arc` clones) into one output buffer.
    fn on_batch(&mut self, _input: usize, msgs: &[Message], ctx: &mut OpContext) {
        ctx.out.reserve(msgs.len());
        for m in msgs {
            match m {
                Message::Insert(e) => {
                    if self.pred.eval_event(e) {
                        ctx.out.insert(e.clone());
                    }
                }
                Message::Retract(r) => {
                    if self.pred.eval_event(&r.event) {
                        ctx.out.retract_to(r.event.clone(), r.new_end);
                    }
                }
                Message::Cti(_) => {
                    debug_assert!(false, "CTIs are consumed by the consistency monitor")
                }
            }
        }
    }
}

/// Physical SQL projection π_f (Definition 7).
pub struct ProjectOp {
    exprs: Vec<Scalar>,
}

impl ProjectOp {
    pub fn new(exprs: Vec<Scalar>) -> Self {
        ProjectOp { exprs }
    }

    fn transform(&self, e: &Event) -> Event {
        let payload = Payload::from_values(self.exprs.iter().map(|x| x.eval_event(e)).collect());
        Event {
            id: e.id,
            interval: e.interval,
            root_time: e.root_time,
            lineage: e.lineage.clone(),
            payload,
        }
    }
}

impl OperatorModule for ProjectOp {
    fn name(&self) -> &'static str {
        "project"
    }

    fn on_insert(&mut self, _input: usize, event: &Event, ctx: &mut OpContext) {
        ctx.out.insert(self.transform(event));
    }

    fn on_retract(&mut self, _input: usize, r: &Retraction, ctx: &mut OpContext) {
        ctx.out.retract_to(self.transform(&r.event), r.new_end);
    }

    /// Batch-native mapping: transform the run in one pass into one
    /// pre-sized output buffer (projection is total, so the output length
    /// is known up front).
    fn on_batch(&mut self, _input: usize, msgs: &[Message], ctx: &mut OpContext) {
        ctx.out.reserve(msgs.len());
        for m in msgs {
            match m {
                Message::Insert(e) => ctx.out.insert(self.transform(e)),
                Message::Retract(r) => ctx.out.retract_to(self.transform(&r.event), r.new_end),
                Message::Cti(_) => {
                    debug_assert!(false, "CTIs are consumed by the consistency monitor")
                }
            }
        }
    }
}

/// Physical AlterLifetime Π_{fVs, f∆} (Definition 12).
///
/// Stateless: the output for an event is a pure function of the event, so a
/// retraction of the input is handled by recomputing the mapping for the
/// shortened event and emitting the difference. Lifetime mappings whose
/// start depends on `Ve` (the `Deletes` separation) turn an input
/// retraction into a full removal plus a fresh insert.
pub struct AlterLifetimeOp {
    fvs: VsFn,
    fdelta: DeltaFn,
}

impl AlterLifetimeOp {
    pub fn new(fvs: VsFn, fdelta: DeltaFn) -> Self {
        AlterLifetimeOp { fvs, fdelta }
    }

    /// `W_wl`: the moving window.
    pub fn window(wl: cedr_temporal::Duration) -> Self {
        Self::new(VsFn::Vs, DeltaFn::WindowClip { wl })
    }

    /// `Inserts(S) = Π_{Vs, ∞}`.
    pub fn inserts() -> Self {
        Self::new(VsFn::Vs, DeltaFn::Infinite)
    }

    /// `Deletes(S) = Π_{Ve, ∞}`.
    pub fn deletes() -> Self {
        Self::new(VsFn::Ve, DeltaFn::Infinite)
    }

    /// A hopping window with the given period and size.
    pub fn hopping(period: u64, size: cedr_temporal::Duration) -> Self {
        Self::new(VsFn::HopVs { period }, DeltaFn::Const(size))
    }

    fn map(&self, e: &Event) -> Event {
        let vs = self.fvs.eval(e);
        let ve = vs + self.fdelta.eval(e);
        Event {
            id: e.id,
            interval: Interval::new(vs, ve),
            root_time: e.root_time,
            lineage: e.lineage.clone(),
            payload: e.payload.clone(),
        }
    }
}

impl OperatorModule for AlterLifetimeOp {
    fn name(&self) -> &'static str {
        "alter_lifetime"
    }

    fn on_insert(&mut self, _input: usize, event: &Event, ctx: &mut OpContext) {
        let out = self.map(event);
        if !out.interval.is_empty() {
            ctx.out.insert(out);
        }
    }

    fn on_retract(&mut self, _input: usize, r: &Retraction, ctx: &mut OpContext) {
        let old_out = self.map(&r.event);
        let shortened = r.retracted_event();
        let new_out = if shortened.interval.is_empty() {
            None
        } else {
            Some(self.map(&shortened)).filter(|e| !e.interval.is_empty())
        };
        match (old_out.interval.is_empty(), new_out) {
            (true, None) => {}
            (true, Some(n)) => ctx.out.insert(n),
            (false, None) => ctx.out.retract_full(old_out),
            (false, Some(n)) => {
                if n.interval == old_out.interval {
                    // e.g. a window whose clipped lifetime is unaffected.
                } else if n.interval.start == old_out.interval.start
                    && n.interval.end < old_out.interval.end
                {
                    ctx.out.retract_to(old_out, n.interval.end);
                } else {
                    // The start moved (Ve-anchored mappings) or the lifetime
                    // grew (impossible for pure shortenings, kept for
                    // robustness): remove and re-insert.
                    ctx.out.retract_full(old_out);
                    ctx.out.insert(n);
                }
            }
        }
    }

    fn map_cti(&self, watermark: TimePoint) -> TimePoint {
        if watermark.is_infinite() {
            return watermark;
        }
        match self.fvs {
            // Future inputs (sync ≥ watermark) map to outputs with
            // Vs ≥ watermark for both Vs- and Ve-anchored lifetimes
            // (retractions can only land at new_end ≥ watermark).
            VsFn::Vs | VsFn::Ve => watermark,
            // A future input can snap down to its hop boundary.
            VsFn::HopVs { period } => {
                let p = period.max(1);
                TimePoint::new(watermark.0 / p * p)
            }
            // Outputs keep appearing at the constant anchor until the input
            // is exhausted.
            VsFn::Const(t) => TimePoint::min_of(watermark, t),
        }
    }
}

/// Physical temporal slicing (the `@` / `#` operators of Section 3.2).
///
/// `#[tv1, tv2)` clips output validity intervals; `@[to1, to2)` filters on
/// occurrence time, which in the merged unitemporal regime of Section 6 is
/// the event's `Vs`. Stateless: retractions are re-sliced the same way.
pub struct SliceOp {
    /// `#` — clip valid time to this window.
    valid: Option<Interval>,
    /// `@` — keep only events whose occurrence (`Vs`) falls in this window.
    occurrence: Option<Interval>,
}

impl SliceOp {
    pub fn new(valid: Option<Interval>, occurrence: Option<Interval>) -> Self {
        SliceOp { valid, occurrence }
    }

    fn slice(&self, e: &Event) -> Option<Event> {
        if let Some(occ) = &self.occurrence {
            if !occ.contains(e.vs()) {
                return None;
            }
        }
        let iv = match &self.valid {
            Some(v) => e.interval.intersect(v),
            None => e.interval,
        };
        if iv.is_empty() {
            return None;
        }
        let mut out = e.clone();
        out.interval = iv;
        Some(out)
    }
}

impl OperatorModule for SliceOp {
    fn name(&self) -> &'static str {
        "slice"
    }

    fn on_insert(&mut self, _input: usize, event: &Event, ctx: &mut OpContext) {
        if let Some(out) = self.slice(event) {
            ctx.out.insert(out);
        }
    }

    fn on_retract(&mut self, _input: usize, r: &Retraction, ctx: &mut OpContext) {
        let Some(old_out) = self.slice(&r.event) else {
            return;
        };
        match self.slice(&r.retracted_event()) {
            Some(new_out) if new_out.interval == old_out.interval => {}
            Some(new_out) => ctx.out.retract_to(old_out, new_out.interval.end),
            None => ctx.out.retract_full(old_out),
        }
    }
}

/// Physical union: pass-through of both inputs (bag semantics; input IDs
/// are assumed disjoint, which the planner guarantees).
pub struct UnionOp;

impl OperatorModule for UnionOp {
    fn name(&self) -> &'static str {
        "union"
    }

    fn arity(&self) -> usize {
        2
    }

    fn on_insert(&mut self, _input: usize, event: &Event, ctx: &mut OpContext) {
        ctx.out.insert(event.clone());
    }

    fn on_retract(&mut self, _input: usize, r: &Retraction, ctx: &mut OpContext) {
        ctx.out.retract_to(r.event.clone(), r.new_end);
    }

    /// Batch-native pass-through: the whole run is forwarded as `Arc`
    /// clones in one pre-sized append.
    fn on_batch(&mut self, _input: usize, msgs: &[Message], ctx: &mut OpContext) {
        ctx.out.reserve(msgs.len());
        for m in msgs {
            match m {
                Message::Insert(e) => ctx.out.insert(e.clone()),
                Message::Retract(r) => ctx.out.retract_to(r.event.clone(), r.new_end),
                Message::Cti(_) => {
                    debug_assert!(false, "CTIs are consumed by the consistency monitor")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::ConsistencySpec;
    use crate::operator::OperatorShell;
    use cedr_algebra::expr::CmpOp;
    use cedr_streams::Message;
    use cedr_temporal::interval::{iv, iv_inf};
    use cedr_temporal::time::{dur, t};
    use cedr_temporal::{EventId, Value};

    fn ev(id: u64, a: u64, b: u64, v: i64) -> Event {
        Event::primitive(
            EventId(id),
            iv(a, b),
            Payload::from_values(vec![Value::Int(v)]),
        )
    }

    fn run(shell: &mut OperatorShell, msgs: Vec<Message>) -> Vec<Message> {
        let mut out = Vec::new();
        for (i, m) in msgs.into_iter().enumerate() {
            out.extend(shell.push(0, m, i as u64));
        }
        out
    }

    #[test]
    fn select_forwards_matching_inserts_and_retractions() {
        let pred = Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(5i64));
        let mut s = OperatorShell::new(Box::new(SelectOp::new(pred)), ConsistencySpec::middle());
        let keep = ev(1, 0, 10, 7);
        let drop = ev(2, 0, 10, 3);
        let out = run(
            &mut s,
            vec![
                Message::insert_event(keep.clone()),
                Message::insert_event(drop.clone()),
                Message::Retract(Retraction::new(keep, t(4))),
                Message::Retract(Retraction::new(drop, t(4))),
            ],
        );
        let data: Vec<&Message> = out.iter().filter(|m| m.is_data()).collect();
        assert_eq!(data.len(), 2, "one insert + one retraction pass");
        assert!(data[0].as_insert().is_some());
        assert_eq!(data[1].as_retract().unwrap().new_end, t(4));
    }

    #[test]
    fn project_transforms_insert_and_retraction_alike() {
        let mut s = OperatorShell::new(
            Box::new(ProjectOp::new(vec![Scalar::Mul(
                Box::new(Scalar::Field(0)),
                Box::new(Scalar::lit(2i64)),
            )])),
            ConsistencySpec::middle(),
        );
        let e = ev(1, 0, 10, 21);
        let out = run(
            &mut s,
            vec![
                Message::insert_event(e.clone()),
                Message::Retract(Retraction::new(e, t(5))),
            ],
        );
        let ins = out[0].as_insert().unwrap();
        assert_eq!(ins.payload.get(0), Some(&Value::Float(42.0)));
        let r = out[1].as_retract().unwrap();
        assert_eq!(r.event.payload.get(0), Some(&Value::Float(42.0)));
        assert_eq!(r.event.id, ins.id, "retraction identifies the same output");
    }

    #[test]
    fn window_clips_and_shortens_consistently() {
        let mut s = OperatorShell::new(
            Box::new(AlterLifetimeOp::window(dur(5))),
            ConsistencySpec::middle(),
        );
        let e = ev(1, 0, 100, 0);
        let out = run(
            &mut s,
            vec![
                Message::insert_event(e.clone()),
                // Retract to [0,3): the windowed output [0,5) shortens to [0,3).
                Message::Retract(Retraction::new(e, t(3))),
            ],
        );
        assert_eq!(out[0].as_insert().unwrap().interval, iv(0, 5));
        let r = out[1].as_retract().unwrap();
        assert_eq!(r.new_end, t(3));
    }

    #[test]
    fn window_absorbs_retractions_beyond_the_clip() {
        let mut s = OperatorShell::new(
            Box::new(AlterLifetimeOp::window(dur(5))),
            ConsistencySpec::middle(),
        );
        let e = ev(1, 0, 100, 0);
        let out = run(
            &mut s,
            vec![
                Message::insert_event(e.clone()),
                // [0,100) → [0,50): the window output [0,5) is unaffected.
                Message::Retract(Retraction::new(e, t(50))),
            ],
        );
        assert_eq!(out.iter().filter(|m| m.is_data()).count(), 1);
    }

    #[test]
    fn deletes_turns_retraction_into_move() {
        let mut s = OperatorShell::new(
            Box::new(AlterLifetimeOp::deletes()),
            ConsistencySpec::middle(),
        );
        let e = ev(1, 2, 9, 0);
        let out = run(
            &mut s,
            vec![
                Message::insert_event(e.clone()),
                Message::Retract(Retraction::new(e, t(6))),
            ],
        );
        // Insert produced [9,∞); retraction moves the delete point to 6.
        assert_eq!(out[0].as_insert().unwrap().interval, iv_inf(9));
        let r = out[1].as_retract().unwrap();
        assert!(r.is_full_removal());
        assert_eq!(out[2].as_insert().unwrap().interval, iv_inf(6));
    }

    #[test]
    fn full_removal_removes_output_entirely() {
        let mut s = OperatorShell::new(
            Box::new(AlterLifetimeOp::inserts()),
            ConsistencySpec::middle(),
        );
        let e = ev(1, 2, 9, 0);
        let out = run(
            &mut s,
            vec![
                Message::insert_event(e.clone()),
                Message::Retract(Retraction::new(e, t(2))),
            ],
        );
        assert_eq!(out[0].as_insert().unwrap().interval, iv_inf(2));
        assert!(out[1].as_retract().unwrap().is_full_removal());
    }

    #[test]
    fn hopping_cti_snaps_down() {
        let op = AlterLifetimeOp::hopping(10, dur(10));
        assert_eq!(op.map_cti(t(37)), t(30));
        assert_eq!(op.map_cti(TimePoint::INFINITY), TimePoint::INFINITY);
        let window = AlterLifetimeOp::window(dur(5));
        assert_eq!(window.map_cti(t(37)), t(37));
    }

    #[test]
    fn union_merges_two_ports() {
        let mut s = OperatorShell::new(Box::new(UnionOp), ConsistencySpec::middle());
        let o1 = s.push(0, Message::insert_event(ev(1, 0, 5, 1)), 0);
        let o2 = s.push(1, Message::insert_event(ev(2, 3, 8, 2)), 1);
        assert_eq!(o1.len(), 1);
        assert_eq!(o2.len(), 1);
    }
}
