//! Logical rewrite rules ("optimization and query rewrite rules" are named
//! as ongoing CEDR work in Section 7; we implement the foundational set).
//!
//! * predicate simplification (`TRUE AND p → p`, `NOT NOT p → p`);
//! * removal of trivial selections and slices;
//! * equi-key extraction for joins (`l.a = r.b` conjunct → hash keys);
//! * slice fusion (`@[a,b) @[c,d) → @[max, min)`).

use crate::logical::LogicalOp;
use cedr_algebra::expr::{CmpOp, Pred, Scalar};
use cedr_temporal::TimePoint;

/// Apply all rewrite passes bottom-up until a fixpoint (bounded).
pub fn optimize(root: LogicalOp) -> LogicalOp {
    let mut plan = root;
    for _ in 0..4 {
        let next = rewrite(plan.clone());
        if next == plan {
            return next;
        }
        plan = next;
    }
    plan
}

fn rewrite(op: LogicalOp) -> LogicalOp {
    // Recurse first (bottom-up).
    let op = map_children(op, rewrite);
    match op {
        LogicalOp::Select { input, pred } => {
            let pred = simplify_pred(pred);
            if pred == Pred::True {
                *input
            } else {
                LogicalOp::Select { input, pred }
            }
        }
        LogicalOp::Join {
            left,
            right,
            theta,
            equi_keys,
        } => {
            let theta = simplify_pred(theta);
            let equi_keys = equi_keys.or_else(|| extract_equi_key(&theta));
            LogicalOp::Join {
                left,
                right,
                theta,
                equi_keys,
            }
        }
        LogicalOp::Sequence {
            inputs,
            w,
            pred,
            modes,
        } => LogicalOp::Sequence {
            inputs,
            w,
            pred: simplify_pred(pred),
            modes,
        },
        LogicalOp::AtLeast {
            n,
            inputs,
            w,
            pred,
            modes,
        } => LogicalOp::AtLeast {
            n,
            inputs,
            w,
            pred: simplify_pred(pred),
            modes,
        },
        LogicalOp::Unless { main, neg, w, pred } => LogicalOp::Unless {
            main,
            neg,
            w,
            pred: simplify_pred(pred),
        },
        LogicalOp::NotSeq { main, neg, pred } => LogicalOp::NotSeq {
            main,
            neg,
            pred: simplify_pred(pred),
        },
        LogicalOp::CancelWhen { main, neg, pred } => LogicalOp::CancelWhen {
            main,
            neg,
            pred: simplify_pred(pred),
        },
        LogicalOp::SliceOcc { input, from, to } => match *input {
            LogicalOp::SliceOcc {
                input: inner,
                from: f2,
                to: t2,
            } => LogicalOp::SliceOcc {
                input: inner,
                from: TimePoint::max_of(from, f2),
                to: TimePoint::min_of(to, t2),
            },
            other => {
                if from == TimePoint::ZERO && to == TimePoint::INFINITY {
                    other
                } else {
                    LogicalOp::SliceOcc {
                        input: Box::new(other),
                        from,
                        to,
                    }
                }
            }
        },
        LogicalOp::SliceValid { input, from, to } => match *input {
            LogicalOp::SliceValid {
                input: inner,
                from: f2,
                to: t2,
            } => LogicalOp::SliceValid {
                input: inner,
                from: TimePoint::max_of(from, f2),
                to: TimePoint::min_of(to, t2),
            },
            other => {
                if from == TimePoint::ZERO && to == TimePoint::INFINITY {
                    other
                } else {
                    LogicalOp::SliceValid {
                        input: Box::new(other),
                        from,
                        to,
                    }
                }
            }
        },
        other => other,
    }
}

fn map_children(op: LogicalOp, f: impl Fn(LogicalOp) -> LogicalOp + Copy) -> LogicalOp {
    match op {
        LogicalOp::Source { .. } => op,
        LogicalOp::Select { input, pred } => LogicalOp::Select {
            input: Box::new(f(*input)),
            pred,
        },
        LogicalOp::Project {
            input,
            exprs,
            names,
        } => LogicalOp::Project {
            input: Box::new(f(*input)),
            exprs,
            names,
        },
        LogicalOp::AlterLifetime { input, fvs, fdelta } => LogicalOp::AlterLifetime {
            input: Box::new(f(*input)),
            fvs,
            fdelta,
        },
        LogicalOp::GroupAggregate { input, key, agg } => LogicalOp::GroupAggregate {
            input: Box::new(f(*input)),
            key,
            agg,
        },
        LogicalOp::Join {
            left,
            right,
            theta,
            equi_keys,
        } => LogicalOp::Join {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            theta,
            equi_keys,
        },
        LogicalOp::Union { left, right } => LogicalOp::Union {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
        },
        LogicalOp::Sequence {
            inputs,
            w,
            pred,
            modes,
        } => LogicalOp::Sequence {
            inputs: inputs.into_iter().map(f).collect(),
            w,
            pred,
            modes,
        },
        LogicalOp::AtLeast {
            n,
            inputs,
            w,
            pred,
            modes,
        } => LogicalOp::AtLeast {
            n,
            inputs: inputs.into_iter().map(f).collect(),
            w,
            pred,
            modes,
        },
        LogicalOp::AtMost { n, inputs, w } => LogicalOp::AtMost {
            n,
            inputs: inputs.into_iter().map(f).collect(),
            w,
        },
        LogicalOp::Unless { main, neg, w, pred } => LogicalOp::Unless {
            main: Box::new(f(*main)),
            neg: Box::new(f(*neg)),
            w,
            pred,
        },
        LogicalOp::NotSeq { main, neg, pred } => LogicalOp::NotSeq {
            main: Box::new(f(*main)),
            neg: Box::new(f(*neg)),
            pred,
        },
        LogicalOp::CancelWhen { main, neg, pred } => LogicalOp::CancelWhen {
            main: Box::new(f(*main)),
            neg: Box::new(f(*neg)),
            pred,
        },
        LogicalOp::SliceOcc { input, from, to } => LogicalOp::SliceOcc {
            input: Box::new(f(*input)),
            from,
            to,
        },
        LogicalOp::SliceValid { input, from, to } => LogicalOp::SliceValid {
            input: Box::new(f(*input)),
            from,
            to,
        },
    }
}

/// Boolean simplification.
pub fn simplify_pred(p: Pred) -> Pred {
    match p {
        Pred::And(a, b) => {
            let a = simplify_pred(*a);
            let b = simplify_pred(*b);
            match (a, b) {
                (Pred::True, x) | (x, Pred::True) => x,
                (a, b) => Pred::And(Box::new(a), Box::new(b)),
            }
        }
        Pred::Or(a, b) => {
            let a = simplify_pred(*a);
            let b = simplify_pred(*b);
            if a == Pred::True || b == Pred::True {
                Pred::True
            } else {
                Pred::Or(Box::new(a), Box::new(b))
            }
        }
        Pred::Not(a) => {
            let a = simplify_pred(*a);
            match a {
                Pred::Not(inner) => *inner,
                other => Pred::Not(Box::new(other)),
            }
        }
        other => other,
    }
}

/// Extract `Of(0, a) = Of(1, b)` from a conjunction (hash-join keys).
fn extract_equi_key(theta: &Pred) -> Option<(Scalar, Scalar)> {
    match theta {
        Pred::Cmp(Scalar::Of(0, a), CmpOp::Eq, Scalar::Of(1, b)) => {
            Some((Scalar::Field(*a), Scalar::Field(*b)))
        }
        Pred::Cmp(Scalar::Of(1, b), CmpOp::Eq, Scalar::Of(0, a)) => {
            Some((Scalar::Field(*a), Scalar::Field(*b)))
        }
        Pred::And(a, b) => extract_equi_key(a).or_else(|| extract_equi_key(b)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedr_temporal::time::t;

    fn src(name: &str) -> LogicalOp {
        LogicalOp::Source {
            event_type: name.into(),
        }
    }

    #[test]
    fn trivial_select_removed() {
        let plan = LogicalOp::Select {
            input: Box::new(src("A")),
            pred: Pred::And(Box::new(Pred::True), Box::new(Pred::True)),
        };
        assert_eq!(optimize(plan), src("A"));
    }

    #[test]
    fn double_negation_removed() {
        let p = simplify_pred(Pred::Not(Box::new(Pred::Not(Box::new(Pred::Cmp(
            Scalar::Field(0),
            CmpOp::Eq,
            Scalar::lit(1i64),
        ))))));
        assert!(matches!(p, Pred::Cmp(..)));
    }

    #[test]
    fn join_equi_keys_extracted() {
        let theta = Pred::And(
            Box::new(Pred::Cmp(Scalar::Of(0, 2), CmpOp::Eq, Scalar::Of(1, 0))),
            Box::new(Pred::Cmp(Scalar::Of(0, 1), CmpOp::Lt, Scalar::Of(1, 1))),
        );
        let plan = LogicalOp::Join {
            left: Box::new(src("L")),
            right: Box::new(src("R")),
            theta,
            equi_keys: None,
        };
        let LogicalOp::Join { equi_keys, .. } = optimize(plan) else {
            panic!()
        };
        assert_eq!(equi_keys, Some((Scalar::Field(2), Scalar::Field(0))));
    }

    #[test]
    fn slices_fuse() {
        let plan = LogicalOp::SliceOcc {
            input: Box::new(LogicalOp::SliceOcc {
                input: Box::new(src("A")),
                from: t(0),
                to: t(100),
            }),
            from: t(10),
            to: t(50),
        };
        let LogicalOp::SliceOcc { from, to, input } = optimize(plan) else {
            panic!()
        };
        assert_eq!((from, to), (t(10), t(50)));
        assert_eq!(*input, src("A"));
    }

    #[test]
    fn vacuous_slice_removed() {
        let plan = LogicalOp::SliceValid {
            input: Box::new(src("A")),
            from: TimePoint::ZERO,
            to: TimePoint::INFINITY,
        };
        assert_eq!(optimize(plan), src("A"));
    }
}
