//! The logical plan: "a set of logical operators that implement the query
//! language, and serve as the basis for logical plan exploration during
//! query optimization" (Section 1).
//!
//! Logical operators cover both the pattern algebra of Section 3 and the
//! relational view-update algebra of Section 6 (the latter is reachable via
//! the programmatic builder in `cedr-core`, which the paper's financial
//! scenarios use for windowed aggregation).

use crate::catalog::FieldType;
use cedr_algebra::expr::{Pred, Scalar};
use cedr_algebra::pattern::ScMode;
use cedr_algebra::relational::AggFunc;
use cedr_temporal::{Duration, TimePoint};
use std::fmt;

/// One column of an operator's output payload layout.
#[derive(Clone, Debug, PartialEq)]
pub struct LayoutCol {
    /// The contributor alias this column came from (None for synthesised
    /// columns such as aggregate values).
    pub alias: Option<String>,
    pub field: String,
    pub ty: FieldType,
}

/// An operator's output payload layout.
///
/// `stable` is false for subset operators (ATLEAST/ANY) whose payload
/// concatenation order depends on the match (occurrence order), making
/// positional references through them unsound.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Layout {
    pub cols: Vec<LayoutCol>,
    pub stable: bool,
}

impl Layout {
    pub fn stable(cols: Vec<LayoutCol>) -> Self {
        Layout { cols, stable: true }
    }

    pub fn unstable(cols: Vec<LayoutCol>) -> Self {
        Layout {
            cols,
            stable: false,
        }
    }

    /// Offset of `alias.field`.
    pub fn offset_of(&self, alias: &str, field: &str) -> Option<usize> {
        self.cols
            .iter()
            .position(|c| c.alias.as_deref() == Some(alias) && c.field == field)
    }

    /// All aliases present.
    pub fn aliases(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .cols
            .iter()
            .filter_map(|c| c.alias.as_deref())
            .collect();
        v.dedup();
        v
    }

    /// Concatenate layouts in contributor order.
    pub fn concat(parts: &[&Layout]) -> Layout {
        Layout {
            cols: parts.iter().flat_map(|l| l.cols.iter().cloned()).collect(),
            stable: parts.iter().all(|l| l.stable),
        }
    }

    pub fn len(&self) -> usize {
        self.cols.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }
}

/// A logical operator tree.
#[derive(Clone, Debug, PartialEq)]
pub enum LogicalOp {
    /// A primitive event stream.
    Source { event_type: String },
    /// σ — selection.
    Select { input: Box<LogicalOp>, pred: Pred },
    /// π — projection (also the OUTPUT clause).
    Project {
        input: Box<LogicalOp>,
        exprs: Vec<Scalar>,
        names: Vec<String>,
    },
    /// Π — AlterLifetime in full generality.
    AlterLifetime {
        input: Box<LogicalOp>,
        fvs: cedr_algebra::alter_lifetime::VsFn,
        fdelta: cedr_algebra::alter_lifetime::DeltaFn,
    },
    /// Group-by + aggregate (view update semantics).
    GroupAggregate {
        input: Box<LogicalOp>,
        key: Vec<Scalar>,
        agg: AggFunc,
    },
    /// ⋈ — θ-join.
    Join {
        left: Box<LogicalOp>,
        right: Box<LogicalOp>,
        theta: Pred,
        equi_keys: Option<(Scalar, Scalar)>,
    },
    /// ∪.
    Union {
        left: Box<LogicalOp>,
        right: Box<LogicalOp>,
    },
    /// SEQUENCE(E1, …, Ek, w).
    Sequence {
        inputs: Vec<LogicalOp>,
        w: Duration,
        pred: Pred,
        modes: Vec<ScMode>,
    },
    /// ATLEAST(n, E1, …, Ek, w); ALL/ANY desugar here.
    AtLeast {
        n: usize,
        inputs: Vec<LogicalOp>,
        w: Duration,
        pred: Pred,
        modes: Vec<ScMode>,
    },
    /// ATMOST(n, E1, …, Ek, w) — the windowed-count sugar.
    AtMost {
        n: usize,
        inputs: Vec<LogicalOp>,
        w: Duration,
    },
    /// UNLESS(main, neg, w); `pred` ranges over [main, neg].
    Unless {
        main: Box<LogicalOp>,
        neg: Box<LogicalOp>,
        w: Duration,
        pred: Pred,
    },
    /// NOT(neg, SEQUENCE…): `main` must lower to a sequence; `pred` ranges
    /// over [sequence output, neg].
    NotSeq {
        main: Box<LogicalOp>,
        neg: Box<LogicalOp>,
        pred: Pred,
    },
    /// CANCEL-WHEN(main, neg); `pred` ranges over [main, neg].
    CancelWhen {
        main: Box<LogicalOp>,
        neg: Box<LogicalOp>,
        pred: Pred,
    },
    /// `@[from, to)` — occurrence-time slice.
    SliceOcc {
        input: Box<LogicalOp>,
        from: TimePoint,
        to: TimePoint,
    },
    /// `#[from, to)` — valid-time slice.
    SliceValid {
        input: Box<LogicalOp>,
        from: TimePoint,
        to: TimePoint,
    },
}

impl LogicalOp {
    /// Source event types referenced by the plan, in first-use order.
    pub fn sources(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |op| {
            if let LogicalOp::Source { event_type } = op {
                if !out.contains(event_type) {
                    out.push(event_type.clone());
                }
            }
        });
        out
    }

    /// Pre-order traversal.
    pub fn visit(&self, f: &mut impl FnMut(&LogicalOp)) {
        f(self);
        match self {
            LogicalOp::Source { .. } => {}
            LogicalOp::Select { input, .. }
            | LogicalOp::Project { input, .. }
            | LogicalOp::AlterLifetime { input, .. }
            | LogicalOp::GroupAggregate { input, .. }
            | LogicalOp::SliceOcc { input, .. }
            | LogicalOp::SliceValid { input, .. } => input.visit(f),
            LogicalOp::Join { left, right, .. } | LogicalOp::Union { left, right } => {
                left.visit(f);
                right.visit(f);
            }
            LogicalOp::Sequence { inputs, .. }
            | LogicalOp::AtLeast { inputs, .. }
            | LogicalOp::AtMost { inputs, .. } => {
                for i in inputs {
                    i.visit(f);
                }
            }
            LogicalOp::Unless { main, neg, .. }
            | LogicalOp::NotSeq { main, neg, .. }
            | LogicalOp::CancelWhen { main, neg, .. } => {
                main.visit(f);
                neg.visit(f);
            }
        }
    }

    fn write_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        match self {
            LogicalOp::Source { event_type } => writeln!(f, "{pad}Source[{event_type}]"),
            LogicalOp::Select { input, pred } => {
                writeln!(f, "{pad}Select[{pred}]")?;
                input.write_indented(f, depth + 1)
            }
            LogicalOp::Project { input, names, .. } => {
                writeln!(f, "{pad}Project[{}]", names.join(", "))?;
                input.write_indented(f, depth + 1)
            }
            LogicalOp::AlterLifetime { input, fvs, fdelta } => {
                writeln!(f, "{pad}AlterLifetime[{fvs:?}, {fdelta:?}]")?;
                input.write_indented(f, depth + 1)
            }
            LogicalOp::GroupAggregate { input, key, agg } => {
                writeln!(f, "{pad}GroupAggregate[keys={}, {agg:?}]", key.len())?;
                input.write_indented(f, depth + 1)
            }
            LogicalOp::Join {
                left, right, theta, ..
            } => {
                writeln!(f, "{pad}Join[{theta}]")?;
                left.write_indented(f, depth + 1)?;
                right.write_indented(f, depth + 1)
            }
            LogicalOp::Union { left, right } => {
                writeln!(f, "{pad}Union")?;
                left.write_indented(f, depth + 1)?;
                right.write_indented(f, depth + 1)
            }
            LogicalOp::Sequence {
                inputs, w, pred, ..
            } => {
                writeln!(f, "{pad}Sequence[w={w}, {pred}]")?;
                for i in inputs {
                    i.write_indented(f, depth + 1)?;
                }
                Ok(())
            }
            LogicalOp::AtLeast {
                n, inputs, w, pred, ..
            } => {
                writeln!(f, "{pad}AtLeast[n={n}, w={w}, {pred}]")?;
                for i in inputs {
                    i.write_indented(f, depth + 1)?;
                }
                Ok(())
            }
            LogicalOp::AtMost { n, inputs, w } => {
                writeln!(f, "{pad}AtMost[n={n}, w={w}]")?;
                for i in inputs {
                    i.write_indented(f, depth + 1)?;
                }
                Ok(())
            }
            LogicalOp::Unless { main, neg, w, pred } => {
                writeln!(f, "{pad}Unless[w={w}, {pred}]")?;
                main.write_indented(f, depth + 1)?;
                neg.write_indented(f, depth + 1)
            }
            LogicalOp::NotSeq { main, neg, pred } => {
                writeln!(f, "{pad}NotSeq[{pred}]")?;
                main.write_indented(f, depth + 1)?;
                neg.write_indented(f, depth + 1)
            }
            LogicalOp::CancelWhen { main, neg, pred } => {
                writeln!(f, "{pad}CancelWhen[{pred}]")?;
                main.write_indented(f, depth + 1)?;
                neg.write_indented(f, depth + 1)
            }
            LogicalOp::SliceOcc { input, from, to } => {
                writeln!(f, "{pad}SliceOcc[@[{from}, {to})]")?;
                input.write_indented(f, depth + 1)
            }
            LogicalOp::SliceValid { input, from, to } => {
                writeln!(f, "{pad}SliceValid[#[{from}, {to})]")?;
                input.write_indented(f, depth + 1)
            }
        }
    }
}

impl fmt::Display for LogicalOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write_indented(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(alias: &str, field: &str) -> LayoutCol {
        LayoutCol {
            alias: Some(alias.into()),
            field: field.into(),
            ty: FieldType::Str,
        }
    }

    #[test]
    fn layout_offsets_and_concat() {
        let a = Layout::stable(vec![col("x", "id"), col("x", "v")]);
        let b = Layout::stable(vec![col("y", "id")]);
        let c = Layout::concat(&[&a, &b]);
        assert_eq!(c.offset_of("x", "v"), Some(1));
        assert_eq!(c.offset_of("y", "id"), Some(2));
        assert_eq!(c.offset_of("z", "id"), None);
        assert!(c.stable);
        let u = Layout::concat(&[&a, &Layout::unstable(vec![])]);
        assert!(!u.stable);
    }

    #[test]
    fn plan_sources_dedup() {
        let plan = LogicalOp::Sequence {
            inputs: vec![
                LogicalOp::Source {
                    event_type: "A".into(),
                },
                LogicalOp::Source {
                    event_type: "A".into(),
                },
                LogicalOp::Source {
                    event_type: "B".into(),
                },
            ],
            w: Duration(5),
            pred: Pred::True,
            modes: vec![ScMode::EACH_REUSE; 3],
        };
        assert_eq!(plan.sources(), vec!["A".to_string(), "B".to_string()]);
    }

    #[test]
    fn display_renders_tree() {
        let plan = LogicalOp::Select {
            input: Box::new(LogicalOp::Source {
                event_type: "T".into(),
            }),
            pred: Pred::True,
        };
        let s = plan.to_string();
        assert!(s.contains("Select"));
        assert!(s.contains("  Source[T]"));
    }
}
