//! Physical planning: lower a logical plan onto a `cedr-runtime` dataflow.
//!
//! Lowering includes the **fusion pass**: every maximal chain of adjacent
//! single-input stateless operators (select, project, alter-lifetime,
//! slice) collapses into one [`FusedStatelessOp`] node that evaluates the
//! composed stage IR in a single pass per delivery run — see
//! `cedr_runtime::fused`. Chains of length one lower to their plain
//! operator; chains broken by a stateful operator fuse on each side of the
//! break (partial fusion). The pass is on by default and can be disabled
//! per plan ([`lower_with`]) or globally (`CEDR_FUSE=0`, read by
//! [`fuse_from_env`]); fused and unfused plans are collector-level
//! bit-identical.
//!
//! Fused chains additionally get a **kernel compile at register time**:
//! select and project payload trees are lifted into closures that sweep
//! whole payload-column slices per delivery run (see
//! `cedr_runtime::fused`'s compiled-kernel docs). Compilation is also on
//! by default, with its own escape hatch (`CEDR_COMPILE=0`, read by
//! [`compile_from_env`]; per plan via [`lower_with`]), and compiled,
//! interpreted and unfused plans are all collector-level bit-identical.

use crate::catalog::Catalog;
use crate::error::LangError;
use crate::logical::LogicalOp;
use cedr_algebra::expr::{CmpOp, Pred, Scalar};
use cedr_algebra::relational::AggFunc;
use cedr_runtime::aggregate::GroupAggregateOp;
use cedr_runtime::fused::{FusedStage, FusedStatelessOp};
use cedr_runtime::join::JoinOp;
use cedr_runtime::negation::NegationOp;
use cedr_runtime::sequence::{AtLeastOp, SequenceOp};
use cedr_runtime::stateless::{AlterLifetimeOp, ProjectOp, SelectOp, SliceOp, UnionOp};
use cedr_runtime::{ConsistencySpec, Dataflow, DataflowBuilder, NodeId, Port};
use cedr_temporal::Interval;

/// Global fusion kill-switch: `CEDR_FUSE=0` disables the fusion pass for
/// plans lowered through the env-defaulted entry points ([`lower`],
/// `Engine` configs built by `EngineConfig::from_env`). Any other value —
/// or the variable being unset — leaves fusion on.
pub fn fuse_from_env() -> bool {
    std::env::var("CEDR_FUSE")
        .map(|v| v.trim() != "0")
        .unwrap_or(true)
}

/// Compiled-kernel kill-switch: `CEDR_COMPILE=0` makes fused chains run
/// the PR 6 interpreted stage IR instead of compiled column kernels. Any
/// other value — or the variable being unset — leaves compilation on.
/// Irrelevant when fusion itself is off (unfused plans always interpret).
pub fn compile_from_env() -> bool {
    std::env::var("CEDR_COMPILE")
        .map(|v| v.trim() != "0")
        .unwrap_or(true)
}

/// A lowered, executable query plan.
pub struct LoweredPlan {
    pub dataflow: Dataflow,
    /// The node whose output is the query result.
    pub sink: NodeId,
    /// Source index → event type name.
    pub source_types: Vec<String>,
    /// One description per chain the fusion pass collapsed, in lowering
    /// order, with its execution mode:
    /// `fused[3] compiled: select→project→slice` (column kernels) vs
    /// `fused[3] interpreted: …` (the `CEDR_COMPILE=0` escape hatch).
    /// Empty when the pass was off or found no chain of length ≥ 2.
    pub fused_chains: Vec<String>,
}

impl LoweredPlan {
    /// Source index of an event type, if the plan consumes it.
    pub fn source_index(&self, event_type: &str) -> Option<usize> {
        self.source_types.iter().position(|t| t == event_type)
    }

    /// Render the fusion pass's outcome for plan explains: one line per
    /// collapsed chain, or `physical: unfused` when nothing fused.
    pub fn describe_fusion(&self) -> String {
        if self.fused_chains.is_empty() {
            "physical: unfused".to_string()
        } else {
            self.fused_chains
                .iter()
                .map(|c| format!("physical: {c}"))
                .collect::<Vec<_>>()
                .join("\n")
        }
    }
}

/// Lower a logical plan. All operators run at the given consistency spec
/// (per-query consistency, as Section 1 proposes). The fusion pass runs
/// unless `CEDR_FUSE=0` and fused chains compile kernels unless
/// `CEDR_COMPILE=0`; use [`lower_with`] for explicit control.
pub fn lower(
    root: &LogicalOp,
    catalog: &Catalog,
    spec: ConsistencySpec,
) -> Result<LoweredPlan, LangError> {
    lower_with(root, catalog, spec, fuse_from_env(), compile_from_env())
}

/// [`lower`], with the fusion pass and the kernel compile explicitly on
/// or off.
pub fn lower_with(
    root: &LogicalOp,
    _catalog: &Catalog,
    spec: ConsistencySpec,
    fuse: bool,
    compile: bool,
) -> Result<LoweredPlan, LangError> {
    let source_types = root.sources();
    let mut b = DataflowBuilder::new(source_types.len());
    let mut fused_chains = Vec::new();
    let fusion = FusionPass { fuse, compile };
    let port = build(root, &source_types, &mut b, spec, fusion, &mut fused_chains)?;
    // The sink must be a node so it can be watched; wrap bare sources.
    let sink = match port {
        Port::Node(n) => n,
        src @ Port::Source(_) => b.add_node(Box::new(SelectOp::new(Pred::True)), spec, vec![src]),
    };
    let dataflow = b.build(&[sink]);
    Ok(LoweredPlan {
        dataflow,
        sink,
        source_types,
        fused_chains,
    })
}

/// If `op` is a fusable single-input stateless operator, return its
/// [`FusedStage`] IR and its input. The four families here must stay in
/// lock-step with the plain lowering arms below — the fusion bit-identity
/// suite (`tests/fusion.rs`) pins that correspondence.
fn stateless_stage(op: &LogicalOp) -> Option<(FusedStage, &LogicalOp)> {
    match op {
        LogicalOp::Select { input, pred } => Some((FusedStage::Select(pred.clone()), input)),
        LogicalOp::Project { input, exprs, .. } => {
            Some((FusedStage::Project(exprs.clone()), input))
        }
        LogicalOp::AlterLifetime { input, fvs, fdelta } => Some((
            FusedStage::AlterLifetime {
                fvs: *fvs,
                fdelta: *fdelta,
            },
            input,
        )),
        LogicalOp::SliceOcc { input, from, to } => Some((
            FusedStage::Slice {
                valid: None,
                occurrence: Some(Interval::new(*from, *to)),
            },
            input,
        )),
        LogicalOp::SliceValid { input, from, to } => Some((
            FusedStage::Slice {
                valid: Some(Interval::new(*from, *to)),
                occurrence: None,
            },
            input,
        )),
        _ => None,
    }
}

/// Knobs of the fusion pass, threaded through [`build`]: whether to fuse
/// stateless chains at all, and whether fused chains compile column
/// kernels or interpret the stage IR.
#[derive(Clone, Copy)]
struct FusionPass {
    fuse: bool,
    compile: bool,
}

fn build(
    op: &LogicalOp,
    sources: &[String],
    b: &mut DataflowBuilder,
    spec: ConsistencySpec,
    fusion: FusionPass,
    fused_chains: &mut Vec<String>,
) -> Result<Port, LangError> {
    // Fusion pass: collapse a maximal stateless chain rooted at `op` into
    // one node. Chains of length one fall through to plain lowering.
    if fusion.fuse {
        if let Some((stage, mut cur)) = stateless_stage(op) {
            let mut stages = vec![stage];
            while let Some((s, next)) = stateless_stage(cur) {
                stages.push(s);
                cur = next;
            }
            if stages.len() >= 2 {
                stages.reverse(); // innermost (source side) first
                let input = build(cur, sources, b, spec, fusion, fused_chains)?;
                let desc = stages
                    .iter()
                    .map(FusedStage::name)
                    .collect::<Vec<_>>()
                    .join("→");
                let mode = if fusion.compile {
                    "compiled"
                } else {
                    "interpreted"
                };
                fused_chains.push(format!("fused[{}] {}: {}", stages.len(), mode, desc));
                return Ok(Port::Node(b.add_node(
                    Box::new(FusedStatelessOp::new(stages, spec, fusion.compile)),
                    spec,
                    vec![input],
                )));
            }
        }
    }
    Ok(match op {
        LogicalOp::Source { event_type } => {
            let idx = sources
                .iter()
                .position(|t| t == event_type)
                .expect("source collected");
            Port::Source(idx)
        }
        LogicalOp::Select { input, pred } => {
            let p = build(input, sources, b, spec, fusion, fused_chains)?;
            Port::Node(b.add_node(Box::new(SelectOp::new(pred.clone())), spec, vec![p]))
        }
        LogicalOp::Project { input, exprs, .. } => {
            let p = build(input, sources, b, spec, fusion, fused_chains)?;
            Port::Node(b.add_node(Box::new(ProjectOp::new(exprs.clone())), spec, vec![p]))
        }
        LogicalOp::AlterLifetime { input, fvs, fdelta } => {
            let p = build(input, sources, b, spec, fusion, fused_chains)?;
            Port::Node(b.add_node(Box::new(AlterLifetimeOp::new(*fvs, *fdelta)), spec, vec![p]))
        }
        LogicalOp::GroupAggregate { input, key, agg } => {
            let p = build(input, sources, b, spec, fusion, fused_chains)?;
            Port::Node(b.add_node(
                Box::new(GroupAggregateOp::new(key.clone(), agg.clone())),
                spec,
                vec![p],
            ))
        }
        LogicalOp::Join {
            left,
            right,
            theta,
            equi_keys,
        } => {
            let l = build(left, sources, b, spec, fusion, fused_chains)?;
            let r = build(right, sources, b, spec, fusion, fused_chains)?;
            let mut join = JoinOp::new(theta.clone());
            if let Some((kl, kr)) = equi_keys {
                join = join.with_keys(kl.clone(), kr.clone());
            }
            Port::Node(b.add_node(Box::new(join), spec, vec![l, r]))
        }
        LogicalOp::Union { left, right } => {
            let l = build(left, sources, b, spec, fusion, fused_chains)?;
            let r = build(right, sources, b, spec, fusion, fused_chains)?;
            Port::Node(b.add_node(Box::new(UnionOp), spec, vec![l, r]))
        }
        LogicalOp::Sequence {
            inputs,
            w,
            pred,
            modes,
        } => {
            let ports = inputs
                .iter()
                .map(|i| build(i, sources, b, spec, fusion, &mut *fused_chains))
                .collect::<Result<Vec<_>, _>>()?;
            Port::Node(b.add_node(
                Box::new(SequenceOp::with_modes(
                    inputs.len(),
                    *w,
                    pred.clone(),
                    modes.clone(),
                )),
                spec,
                ports,
            ))
        }
        LogicalOp::AtLeast {
            n,
            inputs,
            w,
            pred,
            modes,
        } => {
            let ports = inputs
                .iter()
                .map(|i| build(i, sources, b, spec, fusion, &mut *fused_chains))
                .collect::<Result<Vec<_>, _>>()?;
            Port::Node(b.add_node(
                Box::new(AtLeastOp::with_modes(
                    *n,
                    inputs.len(),
                    *w,
                    pred.clone(),
                    modes.clone(),
                )),
                spec,
                ports,
            ))
        }
        LogicalOp::AtMost { n, inputs, w } => {
            // The paper's sugar: union the contributors, extend each
            // occurrence to a lifetime of w, count, keep count ≤ n.
            let mut ports = inputs
                .iter()
                .map(|i| build(i, sources, b, spec, fusion, &mut *fused_chains))
                .collect::<Result<Vec<_>, _>>()?;
            let mut acc = ports.remove(0);
            for p in ports {
                acc = Port::Node(b.add_node(Box::new(UnionOp), spec, vec![acc, p]));
            }
            let extended = b.add_node(
                Box::new(AlterLifetimeOp::new(
                    cedr_algebra::alter_lifetime::VsFn::Vs,
                    cedr_algebra::alter_lifetime::DeltaFn::Const(*w),
                )),
                spec,
                vec![acc],
            );
            let counted = b.add_node(
                Box::new(GroupAggregateOp::global(AggFunc::Count)),
                spec,
                vec![Port::Node(extended)],
            );
            let filtered = b.add_node(
                Box::new(SelectOp::new(Pred::Cmp(
                    Scalar::Field(0),
                    CmpOp::Le,
                    Scalar::lit(*n as i64),
                ))),
                spec,
                vec![Port::Node(counted)],
            );
            Port::Node(filtered)
        }
        LogicalOp::Unless { main, neg, w, pred } => {
            let m = build(main, sources, b, spec, fusion, fused_chains)?;
            let n = build(neg, sources, b, spec, fusion, fused_chains)?;
            Port::Node(b.add_node(
                Box::new(NegationOp::unless(*w, pred.clone())),
                spec,
                vec![m, n],
            ))
        }
        LogicalOp::NotSeq { main, neg, pred } => {
            // The sequence's scope bounds Vs − Rt of its outputs, so the
            // negation operator can purge its negator state.
            let seq_w = match main.as_ref() {
                LogicalOp::Sequence { w, .. } => Some(*w),
                _ => None,
            };
            let m = build(main, sources, b, spec, fusion, fused_chains)?;
            let n = build(neg, sources, b, spec, fusion, fused_chains)?;
            let mut op = NegationOp::history(pred.clone());
            if let Some(w) = seq_w {
                op = op.with_max_history(w);
            }
            Port::Node(b.add_node(Box::new(op), spec, vec![m, n]))
        }
        LogicalOp::CancelWhen { main, neg, pred } => {
            let m = build(main, sources, b, spec, fusion, fused_chains)?;
            let n = build(neg, sources, b, spec, fusion, fused_chains)?;
            Port::Node(b.add_node(
                Box::new(NegationOp::history(pred.clone())),
                spec,
                vec![m, n],
            ))
        }
        LogicalOp::SliceOcc { input, from, to } => {
            let p = build(input, sources, b, spec, fusion, fused_chains)?;
            Port::Node(b.add_node(
                Box::new(SliceOp::new(None, Some(Interval::new(*from, *to)))),
                spec,
                vec![p],
            ))
        }
        LogicalOp::SliceValid { input, from, to } => {
            let p = build(input, sources, b, spec, fusion, fused_chains)?;
            Port::Node(b.add_node(
                Box::new(SliceOp::new(Some(Interval::new(*from, *to)), None)),
                spec,
                vec![p],
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, FieldType};
    use crate::parser::{parse_query, CIDR07_EXAMPLE};
    use crate::{binder::bind, optimizer::optimize};
    use cedr_streams::{Message, StreamBuilder};
    use cedr_temporal::time::t;
    use cedr_temporal::{Payload, TimePoint, Value};

    fn machine_catalog() -> Catalog {
        let mut c = Catalog::new();
        for ty in ["INSTALL", "SHUTDOWN", "RESTART"] {
            c.register_type(ty, vec![("Machine_Id", FieldType::Str)]);
        }
        c
    }

    fn compile(text: &str, spec: ConsistencySpec) -> LoweredPlan {
        let cat = machine_catalog();
        let q = parse_query(text).unwrap();
        let b = bind(&q, &cat).unwrap();
        let o = optimize(b.root);
        lower(&o, &cat, spec).unwrap()
    }

    fn machine(m: &str) -> Payload {
        Payload::from_values(vec![Value::str(m)])
    }

    #[test]
    fn cidr07_example_end_to_end_no_restart_fires() {
        let mut plan = compile(CIDR07_EXAMPLE, ConsistencySpec::middle());
        let install = plan.source_index("INSTALL").unwrap();
        let shutdown = plan.source_index("SHUTDOWN").unwrap();
        let restart = plan.source_index("RESTART").unwrap();

        // INSTALL m1 at 100, SHUTDOWN m1 at 200 (within 12h), no RESTART.
        let mut sb = StreamBuilder::with_id_base(0);
        let e1 = sb.insert_at(t(100), machine("m1"));
        let mut sb2 = StreamBuilder::with_id_base(1000);
        let e2 = sb2.insert_at(t(200), machine("m1"));
        let _ = (e1, e2);
        plan.dataflow.push_source(
            install,
            Message::insert_event(sb.build_raw()[0].as_insert().unwrap().clone()),
        );
        plan.dataflow.push_source(
            shutdown,
            Message::insert_event(sb2.build_raw()[0].as_insert().unwrap().clone()),
        );
        // Seal all three inputs.
        for src in [install, shutdown, restart] {
            plan.dataflow
                .push_source(src, Message::Cti(TimePoint::INFINITY));
        }
        let out = plan.dataflow.collector(plan.sink);
        assert_eq!(out.stats().inserts, 1, "the UNLESS pattern fired once");
        assert_eq!(out.net_table().len(), 1);
    }

    #[test]
    fn cidr07_example_restart_within_5min_suppresses() {
        let mut plan = compile(CIDR07_EXAMPLE, ConsistencySpec::middle());
        let install = plan.source_index("INSTALL").unwrap();
        let shutdown = plan.source_index("SHUTDOWN").unwrap();
        let restart = plan.source_index("RESTART").unwrap();

        let mk = |id: u64, vs: u64, m: &str| {
            Message::insert_event(cedr_temporal::Event::primitive(
                cedr_temporal::EventId(id),
                cedr_temporal::Interval::point(t(vs)),
                machine(m),
            ))
        };
        plan.dataflow.push_source(install, mk(1, 100, "m1"));
        plan.dataflow.push_source(shutdown, mk(2, 200, "m1"));
        // RESTART on the same machine 100 s after the shutdown (< 5 min).
        plan.dataflow.push_source(restart, mk(3, 300, "m1"));
        for src in [install, shutdown, restart] {
            plan.dataflow
                .push_source(src, Message::Cti(TimePoint::INFINITY));
        }
        let out = plan.dataflow.collector(plan.sink);
        assert!(
            out.net_table().is_empty(),
            "restart within 5 minutes suppresses the alert"
        );
    }

    #[test]
    fn cidr07_example_restart_on_other_machine_does_not_suppress() {
        let mut plan = compile(CIDR07_EXAMPLE, ConsistencySpec::middle());
        let install = plan.source_index("INSTALL").unwrap();
        let shutdown = plan.source_index("SHUTDOWN").unwrap();
        let restart = plan.source_index("RESTART").unwrap();
        let mk = |id: u64, vs: u64, m: &str| {
            Message::insert_event(cedr_temporal::Event::primitive(
                cedr_temporal::EventId(id),
                cedr_temporal::Interval::point(t(vs)),
                machine(m),
            ))
        };
        plan.dataflow.push_source(install, mk(1, 100, "m1"));
        plan.dataflow.push_source(shutdown, mk(2, 200, "m1"));
        plan.dataflow.push_source(restart, mk(3, 300, "m2"));
        for src in [install, shutdown, restart] {
            plan.dataflow
                .push_source(src, Message::Cti(TimePoint::INFINITY));
        }
        let out = plan.dataflow.collector(plan.sink);
        assert_eq!(out.net_table().len(), 1, "other machine's restart ignored");
    }

    #[test]
    fn atmost_plan_counts() {
        let mut plan = compile(
            "EVENT q WHEN ATMOST(1, INSTALL a, SHUTDOWN b, 10 ticks)",
            ConsistencySpec::middle(),
        );
        let install = plan.source_index("INSTALL").unwrap();
        let shutdown = plan.source_index("SHUTDOWN").unwrap();
        let mk = |id: u64, vs: u64| {
            Message::insert_event(cedr_temporal::Event::primitive(
                cedr_temporal::EventId(id),
                cedr_temporal::Interval::point(t(vs)),
                machine("m"),
            ))
        };
        plan.dataflow.push_source(install, mk(1, 0));
        plan.dataflow.push_source(shutdown, mk(1000, 2));
        for src in [install, shutdown] {
            plan.dataflow
                .push_source(src, Message::Cti(TimePoint::INFINITY));
        }
        let net = plan.dataflow.collector(plan.sink).net_table();
        // Count ≤ 1 holds on [0,2) and [10,12).
        assert_eq!(net.len(), 2);
    }

    #[test]
    fn slice_plan_filters_occurrences() {
        let mut plan = compile(
            "EVENT q WHEN SEQUENCE(INSTALL a, SHUTDOWN b, 100 ticks) @ [0, 150)",
            ConsistencySpec::middle(),
        );
        let install = plan.source_index("INSTALL").unwrap();
        let shutdown = plan.source_index("SHUTDOWN").unwrap();
        let mk = |id: u64, vs: u64| {
            Message::insert_event(cedr_temporal::Event::primitive(
                cedr_temporal::EventId(id),
                cedr_temporal::Interval::point(t(vs)),
                machine("m"),
            ))
        };
        // Match completing at 120 (inside slice) and one at 220 (outside).
        plan.dataflow.push_source(install, mk(1, 100));
        plan.dataflow.push_source(shutdown, mk(1000, 120));
        plan.dataflow.push_source(install, mk(2, 200));
        plan.dataflow.push_source(shutdown, mk(1001, 220));
        for src in [install, shutdown] {
            plan.dataflow
                .push_source(src, Message::Cti(TimePoint::INFINITY));
        }
        let net = plan.dataflow.collector(plan.sink).net_table();
        assert_eq!(net.len(), 1, "only the match occurring before 150 passes");
    }
}
