//! Abstract syntax of the CEDR query language (Section 3.1).
//!
//! ```text
//! query   := EVENT name WHEN expr [WHERE pred] [OUTPUT items] slice*
//! expr    := SEQUENCE(arg, …, dur) | ATLEAST(n, arg, …, dur)
//!          | ATMOST(n, arg, …, dur) | ALL(arg, …, dur) | ANY(arg, …)
//!          | UNLESS(expr, expr, dur) | NOT(expr, SEQUENCE(…))
//!          | CANCEL-WHEN(expr, expr) | TypeName [AS alias] [WITH SC(s, c)]
//! pred    := or-tree of comparisons, CorrelationKey(attr, EQUAL|UNIQUE),
//!            and [attr EQUAL lit]
//! slice   := @ [t, t) | # [t, t)
//! ```

use cedr_algebra::pattern::{Consumption, Selection};
use cedr_temporal::{Duration, TimePoint};

/// A parsed CEDR query.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    pub name: String,
    pub when: Expr,
    pub where_clause: Option<PredAst>,
    pub output: Option<Vec<OutputItem>>,
    /// `@[to1, to2)` — occurrence-time slice.
    pub occ_slice: Option<(TimePoint, TimePoint)>,
    /// `#[tv1, tv2)` — valid-time slice.
    pub valid_slice: Option<(TimePoint, TimePoint)>,
}

/// A WHEN-clause expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Atom {
        event_type: String,
        alias: Option<String>,
        sc: Option<ScModeAst>,
    },
    Sequence {
        args: Vec<Expr>,
        scope: Duration,
    },
    AtLeast {
        n: usize,
        args: Vec<Expr>,
        scope: Duration,
    },
    AtMost {
        n: usize,
        args: Vec<Expr>,
        scope: Duration,
    },
    All {
        args: Vec<Expr>,
        scope: Duration,
    },
    Any {
        args: Vec<Expr>,
    },
    Unless {
        main: Box<Expr>,
        neg: Box<Expr>,
        scope: Duration,
    },
    Not {
        neg: Box<Expr>,
        seq: Box<Expr>,
    },
    CancelWhen {
        main: Box<Expr>,
        neg: Box<Expr>,
    },
}

impl Expr {
    /// All atoms in the expression, left-to-right.
    pub fn atoms(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a Expr>) {
        match self {
            Expr::Atom { .. } => out.push(self),
            Expr::Sequence { args, .. }
            | Expr::AtLeast { args, .. }
            | Expr::AtMost { args, .. }
            | Expr::All { args, .. }
            | Expr::Any { args } => {
                for a in args {
                    a.collect_atoms(out);
                }
            }
            Expr::Unless { main, neg, .. } | Expr::CancelWhen { main, neg } => {
                main.collect_atoms(out);
                neg.collect_atoms(out);
            }
            Expr::Not { neg, seq } => {
                seq.collect_atoms(out);
                neg.collect_atoms(out);
            }
        }
    }
}

/// SC mode as written (`WITH SC(FIRST, CONSUME)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScModeAst {
    pub selection: Selection,
    pub consumption: Consumption,
}

/// A WHERE-clause predicate tree.
#[derive(Clone, Debug, PartialEq)]
pub enum PredAst {
    Cmp {
        left: Operand,
        op: CmpOpAst,
        right: Operand,
    },
    /// `CorrelationKey(attr, EQUAL)`: equivalence test across all
    /// contributors carrying `attr`.
    CorrelationKey {
        attr: String,
        unique: bool,
    },
    /// `[attr EQUAL 'literal']`: every contributor carrying `attr` equals
    /// the literal.
    AttrEqual {
        attr: String,
        value: LitAst,
    },
    And(Box<PredAst>, Box<PredAst>),
    Or(Box<PredAst>, Box<PredAst>),
    Not(Box<PredAst>),
}

impl PredAst {
    /// Split the top-level conjunction into conjuncts (for predicate
    /// injection placement).
    pub fn conjuncts(&self) -> Vec<&PredAst> {
        match self {
            PredAst::And(a, b) => {
                let mut v = a.conjuncts();
                v.extend(b.conjuncts());
                v
            }
            other => vec![other],
        }
    }

    /// Aliases referenced by this predicate.
    pub fn aliases(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_aliases(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_aliases(&self, out: &mut Vec<String>) {
        match self {
            PredAst::Cmp { left, right, .. } => {
                if let Operand::Path { alias, .. } = left {
                    out.push(alias.clone());
                }
                if let Operand::Path { alias, .. } = right {
                    out.push(alias.clone());
                }
            }
            PredAst::CorrelationKey { .. } | PredAst::AttrEqual { .. } => {}
            PredAst::And(a, b) | PredAst::Or(a, b) => {
                a.collect_aliases(out);
                b.collect_aliases(out);
            }
            PredAst::Not(a) => a.collect_aliases(out),
        }
    }
}

/// A comparison operand: `alias.attr` or a literal.
#[derive(Clone, Debug, PartialEq)]
pub enum Operand {
    Path { alias: String, attr: String },
    Lit(LitAst),
}

/// Literal values in queries.
#[derive(Clone, Debug, PartialEq)]
pub enum LitAst {
    Int(i64),
    Float(f64),
    Str(String),
}

/// Comparison operators as written.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOpAst {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// An OUTPUT-clause item: `alias.attr [AS name]` or a literal column.
#[derive(Clone, Debug, PartialEq)]
pub enum OutputItem {
    Path {
        alias: String,
        attr: String,
        name: Option<String>,
    },
    Lit {
        value: LitAst,
        name: Option<String>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_splitting() {
        let a = PredAst::AttrEqual {
            attr: "x".into(),
            value: LitAst::Int(1),
        };
        let b = PredAst::CorrelationKey {
            attr: "k".into(),
            unique: false,
        };
        let c = PredAst::Or(Box::new(a.clone()), Box::new(b.clone()));
        let tree = PredAst::And(
            Box::new(PredAst::And(Box::new(a.clone()), Box::new(b.clone()))),
            Box::new(c.clone()),
        );
        let cj = tree.conjuncts();
        assert_eq!(cj.len(), 3);
        assert_eq!(cj[2], &c, "OR stays one conjunct");
    }

    #[test]
    fn alias_collection() {
        let p = PredAst::Cmp {
            left: Operand::Path {
                alias: "x".into(),
                attr: "a".into(),
            },
            op: CmpOpAst::Eq,
            right: Operand::Path {
                alias: "y".into(),
                attr: "a".into(),
            },
        };
        assert_eq!(p.aliases(), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn atom_collection_is_left_to_right() {
        let e = Expr::Unless {
            main: Box::new(Expr::Sequence {
                args: vec![
                    Expr::Atom {
                        event_type: "A".into(),
                        alias: Some("x".into()),
                        sc: None,
                    },
                    Expr::Atom {
                        event_type: "B".into(),
                        alias: Some("y".into()),
                        sc: None,
                    },
                ],
                scope: Duration(10),
            }),
            neg: Box::new(Expr::Atom {
                event_type: "C".into(),
                alias: Some("z".into()),
                sc: None,
            }),
            scope: Duration(5),
        };
        let names: Vec<&str> = e
            .atoms()
            .iter()
            .map(|a| match a {
                Expr::Atom { event_type, .. } => event_type.as_str(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(names, vec!["A", "B", "C"]);
    }
}
