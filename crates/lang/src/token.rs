//! Tokens of the CEDR query language.

use std::fmt;

/// Keywords are case-insensitive; identifiers preserve case.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    // Literals and identifiers
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    // Clause keywords
    Event,
    When,
    Where,
    Output,
    As,
    With,
    // Operators of the WHEN clause
    Sequence,
    AtLeast,
    AtMost,
    All,
    Any,
    Unless,
    Not,
    CancelWhen,
    // Predicate keywords
    And,
    Or,
    CorrelationKey,
    Equal,
    Unique,
    // SC modes
    Sc,
    Each,
    First,
    MostRecent,
    Reuse,
    Consume,
    // Time units
    Ticks,
    Seconds,
    Minutes,
    Hours,
    Days,
    Infinity,
    // Punctuation
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Dot,
    At,
    Hash,
    // Comparison
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// End of input sentinel.
    Eof,
}

impl Token {
    /// Keyword lookup (uppercased); `CANCEL-WHEN` is handled by the lexer.
    pub fn keyword(upper: &str) -> Option<Token> {
        Some(match upper {
            "EVENT" => Token::Event,
            "WHEN" => Token::When,
            "WHERE" => Token::Where,
            "OUTPUT" => Token::Output,
            "AS" => Token::As,
            "WITH" => Token::With,
            "SEQUENCE" => Token::Sequence,
            "ATLEAST" => Token::AtLeast,
            "ATMOST" => Token::AtMost,
            "ALL" => Token::All,
            "ANY" => Token::Any,
            "UNLESS" => Token::Unless,
            "NOT" => Token::Not,
            "CANCELWHEN" => Token::CancelWhen,
            "AND" => Token::And,
            "OR" => Token::Or,
            "CORRELATIONKEY" => Token::CorrelationKey,
            "EQUAL" => Token::Equal,
            "UNIQUE" => Token::Unique,
            "SC" => Token::Sc,
            "EACH" => Token::Each,
            "FIRST" => Token::First,
            "MOSTRECENT" | "RECENT" => Token::MostRecent,
            "REUSE" => Token::Reuse,
            "CONSUME" => Token::Consume,
            "TICK" | "TICKS" => Token::Ticks,
            "SECOND" | "SECONDS" => Token::Seconds,
            "MINUTE" | "MINUTES" => Token::Minutes,
            "HOUR" | "HOURS" => Token::Hours,
            "DAY" | "DAYS" => Token::Days,
            "INF" | "INFINITY" => Token::Infinity,
            _ => return None,
        })
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            other => write!(f, "{other:?}"),
        }
    }
}
