//! Language-pipeline errors.

use std::fmt;

/// Errors from the lexer, parser, binder or planner.
#[derive(Clone, Debug, PartialEq)]
pub enum LangError {
    /// Lexical error with byte offset.
    Lex { pos: usize, message: String },
    /// Parse error with token position.
    Parse { pos: usize, message: String },
    /// Semantic error (unknown type/alias/attribute, arity problems…).
    Bind(String),
    /// Planning error (unsupported shape).
    Plan(String),
}

impl LangError {
    pub fn lex(pos: usize, message: impl Into<String>) -> Self {
        LangError::Lex {
            pos,
            message: message.into(),
        }
    }

    pub fn parse(pos: usize, message: impl Into<String>) -> Self {
        LangError::Parse {
            pos,
            message: message.into(),
        }
    }

    pub fn bind(message: impl Into<String>) -> Self {
        LangError::Bind(message.into())
    }

    pub fn plan(message: impl Into<String>) -> Self {
        LangError::Plan(message.into())
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            LangError::Parse { pos, message } => write!(f, "parse error at token {pos}: {message}"),
            LangError::Bind(m) => write!(f, "bind error: {m}"),
            LangError::Plan(m) => write!(f, "plan error: {m}"),
        }
    }
}

impl std::error::Error for LangError {}
