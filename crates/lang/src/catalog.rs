//! The event-type catalog: names and payload schemas of primitive event
//! types, registered by the application before queries compile.

use crate::error::LangError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Payload attribute types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FieldType {
    Int,
    Float,
    Str,
    Bool,
}

/// A registered primitive event type.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EventTypeDef {
    pub name: String,
    /// Attribute name → payload offset, in declaration order.
    pub fields: Vec<(String, FieldType)>,
}

impl EventTypeDef {
    pub fn new(name: impl Into<String>, fields: Vec<(&str, FieldType)>) -> Self {
        EventTypeDef {
            name: name.into(),
            fields: fields
                .into_iter()
                .map(|(n, t)| (n.to_string(), t))
                .collect(),
        }
    }

    /// Offset of an attribute.
    pub fn offset_of(&self, attr: &str) -> Option<usize> {
        self.fields.iter().position(|(n, _)| n == attr)
    }
}

/// The schema catalog.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Catalog {
    types: BTreeMap<String, EventTypeDef>,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) an event type.
    pub fn register(&mut self, def: EventTypeDef) {
        self.types.insert(def.name.clone(), def);
    }

    /// Convenience: register a type from field pairs.
    pub fn register_type(&mut self, name: &str, fields: Vec<(&str, FieldType)>) {
        self.register(EventTypeDef::new(name, fields));
    }

    pub fn lookup(&self, name: &str) -> Result<&EventTypeDef, LangError> {
        self.types
            .get(name)
            .ok_or_else(|| LangError::bind(format!("unknown event type '{name}'")))
    }

    pub fn contains(&self, name: &str) -> bool {
        self.types.contains_key(name)
    }

    pub fn type_names(&self) -> Vec<&str> {
        self.types.keys().map(|s| s.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        c.register_type(
            "INSTALL",
            vec![("Machine_Id", FieldType::Str), ("Version", FieldType::Int)],
        );
        let t = c.lookup("INSTALL").unwrap();
        assert_eq!(t.offset_of("Machine_Id"), Some(0));
        assert_eq!(t.offset_of("Version"), Some(1));
        assert_eq!(t.offset_of("Nope"), None);
        assert!(c.lookup("RESTART").is_err());
        assert_eq!(c.type_names(), vec!["INSTALL"]);
    }
}
