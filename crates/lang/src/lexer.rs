//! Lexer for the CEDR query language.

use crate::error::LangError;
use crate::token::Token;

/// Tokenise `input`; appends an `Eof` sentinel.
pub fn lex(input: &str) -> Result<Vec<Token>, LangError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // -- line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '-' if i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit() => {
                // Negative numeric literal.
                let start = i;
                let mut j = i + 1;
                let mut is_float = false;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_digit()
                        || (bytes[j] == b'.'
                            && j + 1 < bytes.len()
                            && (bytes[j + 1] as char).is_ascii_digit()))
                {
                    if bytes[j] == b'.' {
                        is_float = true;
                    }
                    j += 1;
                }
                let text = &input[start..j];
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| LangError::lex(start, format!("bad float '{text}'")))?;
                    toks.push(Token::Float(v));
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| LangError::lex(start, format!("bad integer '{text}'")))?;
                    toks.push(Token::Int(v));
                }
                i = j;
            }
            '(' => {
                toks.push(Token::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Token::RParen);
                i += 1;
            }
            '[' => {
                toks.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                toks.push(Token::RBracket);
                i += 1;
            }
            '{' => {
                toks.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                toks.push(Token::RBrace);
                i += 1;
            }
            ',' => {
                toks.push(Token::Comma);
                i += 1;
            }
            '.' => {
                toks.push(Token::Dot);
                i += 1;
            }
            '@' => {
                toks.push(Token::At);
                i += 1;
            }
            '#' => {
                toks.push(Token::Hash);
                i += 1;
            }
            '=' => {
                toks.push(Token::Eq);
                i += 1;
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                toks.push(Token::Ne);
                i += 2;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push(Token::Le);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    toks.push(Token::Ne);
                    i += 2;
                } else {
                    toks.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push(Token::Ge);
                    i += 2;
                } else {
                    toks.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LangError::lex(i, "unterminated string literal"));
                }
                toks.push(Token::Str(input[start..j].to_string()));
                i = j + 1;
            }
            '∞' => {
                toks.push(Token::Infinity);
                i += '∞'.len_utf8();
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_digit()
                        || (bytes[j] == b'.'
                            && j + 1 < bytes.len()
                            && (bytes[j + 1] as char).is_ascii_digit()))
                {
                    if bytes[j] == b'.' {
                        is_float = true;
                    }
                    j += 1;
                }
                let text = &input[start..j];
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| LangError::lex(start, format!("bad float '{text}'")))?;
                    toks.push(Token::Float(v));
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| LangError::lex(start, format!("bad integer '{text}'")))?;
                    toks.push(Token::Int(v));
                }
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = &input[start..j];
                let upper = word.to_ascii_uppercase();
                // CANCEL-WHEN is one keyword with a hyphen.
                if upper == "CANCEL"
                    && j < bytes.len()
                    && bytes[j] == b'-'
                    && input[j + 1..].to_ascii_uppercase().starts_with("WHEN")
                {
                    toks.push(Token::CancelWhen);
                    i = j + 1 + 4;
                    continue;
                }
                match Token::keyword(&upper) {
                    Some(t) => toks.push(t),
                    None => toks.push(Token::Ident(word.to_string())),
                }
                i = j;
            }
            other => {
                return Err(LangError::lex(i, format!("unexpected character '{other}'")));
            }
        }
    }
    toks.push(Token::Eof);
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_keywords_case_insensitively() {
        let t = lex("event When SEQUENCE unless").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Event,
                Token::When,
                Token::Sequence,
                Token::Unless,
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_cancel_when_hyphenated() {
        let t = lex("CANCEL-WHEN(A, B)").unwrap();
        assert_eq!(t[0], Token::CancelWhen);
        assert_eq!(t[1], Token::LParen);
        // And plain CANCELWHEN too.
        let t2 = lex("CANCELWHEN").unwrap();
        assert_eq!(t2[0], Token::CancelWhen);
    }

    #[test]
    fn lexes_paths_numbers_strings() {
        let t = lex("x.Machine_Id = 'BARGA_XP03' AND y.v >= 2.5").unwrap();
        assert_eq!(t[0], Token::Ident("x".into()));
        assert_eq!(t[1], Token::Dot);
        assert_eq!(t[2], Token::Ident("Machine_Id".into()));
        assert_eq!(t[3], Token::Eq);
        assert_eq!(t[4], Token::Str("BARGA_XP03".into()));
        assert_eq!(t[5], Token::And);
        assert!(t.contains(&Token::Ge));
        assert!(t.contains(&Token::Float(2.5)));
    }

    #[test]
    fn lexes_durations_and_slices() {
        let t = lex("12 HOURS 5 minutes @ [1, 10) # [0, INF)").unwrap();
        assert!(t.contains(&Token::Hours));
        assert!(t.contains(&Token::Minutes));
        assert!(t.contains(&Token::At));
        assert!(t.contains(&Token::Hash));
        assert!(t.contains(&Token::Infinity));
    }

    #[test]
    fn comments_are_skipped() {
        let t = lex("EVENT x -- this is a comment\nWHEN").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Event,
                Token::Ident("x".into()),
                Token::When,
                Token::Eof
            ]
        );
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(matches!(lex("'oops"), Err(LangError::Lex { .. })));
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(matches!(lex("a $ b"), Err(LangError::Lex { .. })));
    }
}
