//! The binder: semantic analysis and **predicate injection** (Section 3.2).
//!
//! "In CEDR, we carefully define the semantics of such value correlation
//! based on what operators are present in the WHEN clause, by placing the
//! predicates from the WHERE clause into the denotation of the query, a
//! process we refer to as predicate injection."
//!
//! Each top-level WHERE conjunct is assigned to the *lowest* WHEN-clause
//! node whose tuple scope covers all the aliases it mentions: predicates on
//! a single contributor push down to its source; cross-contributor
//! predicates inject into the pattern operator that first sees the full
//! tuple; predicates mentioning a negated contributor inject into the
//! negation operator's `[candidate, negated]` tuple.

use crate::ast::{CmpOpAst, Expr, LitAst, Operand, OutputItem, PredAst, Query};
use crate::catalog::{Catalog, FieldType};
use crate::error::LangError;
use crate::logical::{Layout, LayoutCol, LogicalOp};
use cedr_algebra::expr::{CmpOp, Pred, Scalar};
use cedr_algebra::pattern::ScMode;
use cedr_temporal::{Duration, Value};
use std::collections::HashSet;

/// A bound query: logical plan + output layout.
#[derive(Clone, Debug)]
pub struct BoundQuery {
    pub name: String,
    pub root: LogicalOp,
    pub layout: Layout,
}

/// Bind a parsed query against a catalog.
pub fn bind(query: &Query, catalog: &Catalog) -> Result<BoundQuery, LangError> {
    let mut binder = Binder {
        catalog,
        used_aliases: HashSet::new(),
        synth_counter: 0,
    };
    let mut tree = binder.build(&query.when)?;

    // Desugar CorrelationKey / AttrEqual and assign conjuncts.
    if let Some(w) = &query.where_clause {
        for conj in w.conjuncts() {
            match conj {
                PredAst::CorrelationKey { attr, unique } => {
                    let carriers = carriers_of(&tree, attr);
                    if carriers.len() < 2 {
                        return Err(LangError::bind(format!(
                            "CorrelationKey({attr}): fewer than two contributors carry '{attr}'"
                        )));
                    }
                    for pair in carriers.windows(2) {
                        let p = PredAst::Cmp {
                            left: Operand::Path {
                                alias: pair[0].clone(),
                                attr: attr.clone(),
                            },
                            op: if *unique { CmpOpAst::Ne } else { CmpOpAst::Eq },
                            right: Operand::Path {
                                alias: pair[1].clone(),
                                attr: attr.clone(),
                            },
                        };
                        assign(&mut tree, &p)?;
                    }
                }
                PredAst::AttrEqual { attr, value } => {
                    let carriers = carriers_of(&tree, attr);
                    if carriers.is_empty() {
                        return Err(LangError::bind(format!(
                            "[{attr} EQUAL …]: no contributor carries '{attr}'"
                        )));
                    }
                    for alias in carriers {
                        let p = PredAst::Cmp {
                            left: Operand::Path {
                                alias,
                                attr: attr.clone(),
                            },
                            op: CmpOpAst::Eq,
                            right: Operand::Lit(value.clone()),
                        };
                        assign(&mut tree, &p)?;
                    }
                }
                other => {
                    assign(&mut tree, other)?;
                }
            }
        }
    }

    let mut root = to_logical(tree.clone());
    let mut layout = tree.layout.clone();

    // OUTPUT clause → projection.
    if let Some(items) = &query.output {
        if !layout.stable {
            return Err(LangError::bind(
                "OUTPUT cannot reference the payload of subset operators (ATLEAST/ANY): \
                 their concatenation order is match-dependent",
            ));
        }
        let mut exprs = Vec::new();
        let mut names = Vec::new();
        let mut cols = Vec::new();
        for item in items {
            match item {
                OutputItem::Path { alias, attr, name } => {
                    let off = layout.offset_of(alias, attr).ok_or_else(|| {
                        LangError::bind(format!("OUTPUT: unknown column {alias}.{attr}"))
                    })?;
                    exprs.push(Scalar::Field(off));
                    let n = name.clone().unwrap_or_else(|| attr.clone());
                    names.push(n.clone());
                    cols.push(LayoutCol {
                        alias: None,
                        field: n,
                        ty: layout.cols[off].ty,
                    });
                }
                OutputItem::Lit { value, name } => {
                    exprs.push(Scalar::Lit(lit_value(value)));
                    let n = name
                        .clone()
                        .unwrap_or_else(|| format!("col{}", names.len()));
                    names.push(n.clone());
                    cols.push(LayoutCol {
                        alias: None,
                        field: n,
                        ty: match value {
                            LitAst::Int(_) => FieldType::Int,
                            LitAst::Float(_) => FieldType::Float,
                            LitAst::Str(_) => FieldType::Str,
                        },
                    });
                }
            }
        }
        root = LogicalOp::Project {
            input: Box::new(root),
            exprs,
            names,
        };
        layout = Layout::stable(cols);
    }

    // Temporal slices.
    if let Some((from, to)) = query.occ_slice {
        root = LogicalOp::SliceOcc {
            input: Box::new(root),
            from,
            to,
        };
    }
    if let Some((from, to)) = query.valid_slice {
        root = LogicalOp::SliceValid {
            input: Box::new(root),
            from,
            to,
        };
    }

    Ok(BoundQuery {
        name: query.name.clone(),
        root,
        layout,
    })
}

/// A bound WHEN-clause node.
#[derive(Clone, Debug)]
struct BNode {
    kind: BKind,
    layout: Layout,
    aliases: HashSet<String>,
    /// Predicates injected at this node (tuple convention of the kind).
    preds: Vec<Pred>,
}

#[derive(Clone, Debug)]
enum BKind {
    Atom {
        event_type: String,
        alias: String,
        sc: ScMode,
    },
    Sequence {
        children: Vec<BNode>,
        w: Duration,
    },
    AtLeast {
        n: usize,
        children: Vec<BNode>,
        w: Duration,
    },
    AtMost {
        n: usize,
        children: Vec<BNode>,
        w: Duration,
    },
    Unless {
        main: Box<BNode>,
        neg: Box<BNode>,
        w: Duration,
    },
    NotSeq {
        main: Box<BNode>,
        neg: Box<BNode>,
    },
    CancelWhen {
        main: Box<BNode>,
        neg: Box<BNode>,
    },
}

struct Binder<'a> {
    catalog: &'a Catalog,
    used_aliases: HashSet<String>,
    synth_counter: usize,
}

impl Binder<'_> {
    fn build(&mut self, expr: &Expr) -> Result<BNode, LangError> {
        match expr {
            Expr::Atom {
                event_type,
                alias,
                sc,
            } => {
                let def = self.catalog.lookup(event_type)?;
                let alias = match alias {
                    Some(a) => {
                        if !self.used_aliases.insert(a.clone()) {
                            return Err(LangError::bind(format!("duplicate alias '{a}'")));
                        }
                        a.clone()
                    }
                    None => {
                        self.synth_counter += 1;
                        let a = format!("_{}", self.synth_counter);
                        self.used_aliases.insert(a.clone());
                        a
                    }
                };
                let cols = def
                    .fields
                    .iter()
                    .map(|(f, ty)| LayoutCol {
                        alias: Some(alias.clone()),
                        field: f.clone(),
                        ty: *ty,
                    })
                    .collect();
                Ok(BNode {
                    kind: BKind::Atom {
                        event_type: event_type.clone(),
                        alias: alias.clone(),
                        sc: sc
                            .map(|s| ScMode::new(s.selection, s.consumption))
                            .unwrap_or(ScMode::EACH_REUSE),
                    },
                    layout: Layout::stable(cols),
                    aliases: [alias].into_iter().collect(),
                    preds: Vec::new(),
                })
            }
            Expr::Sequence { args, scope } => self.build_nary(
                args,
                |children, w| BKind::Sequence { children, w },
                *scope,
                true,
            ),
            Expr::All { args, scope } => {
                let n = args.len();
                self.build_nary(
                    args,
                    move |children, w| BKind::AtLeast { n, children, w },
                    *scope,
                    false,
                )
            }
            Expr::Any { args } => self.build_nary(
                args,
                |children, w| BKind::AtLeast { n: 1, children, w },
                Duration(1),
                false,
            ),
            Expr::AtLeast { n, args, scope } => {
                let n = *n;
                if n == 0 || n > args.len() {
                    return Err(LangError::bind(format!(
                        "ATLEAST({n}, …): need 1 ≤ n ≤ {}",
                        args.len()
                    )));
                }
                self.build_nary(
                    args,
                    move |children, w| BKind::AtLeast { n, children, w },
                    *scope,
                    false,
                )
            }
            Expr::AtMost { n, args, scope } => {
                let n = *n;
                let children = args
                    .iter()
                    .map(|a| self.build(a))
                    .collect::<Result<Vec<_>, _>>()?;
                let aliases = children
                    .iter()
                    .flat_map(|c| c.aliases.iter().cloned())
                    .collect();
                Ok(BNode {
                    kind: BKind::AtMost {
                        n,
                        children,
                        w: *scope,
                    },
                    layout: Layout::stable(vec![LayoutCol {
                        alias: None,
                        field: "count".into(),
                        ty: FieldType::Int,
                    }]),
                    aliases,
                    preds: Vec::new(),
                })
            }
            Expr::Unless { main, neg, scope } => {
                let m = self.build(main)?;
                let n = self.build(neg)?;
                let layout = m.layout.clone();
                let aliases = m.aliases.iter().chain(n.aliases.iter()).cloned().collect();
                Ok(BNode {
                    kind: BKind::Unless {
                        main: Box::new(m),
                        neg: Box::new(n),
                        w: *scope,
                    },
                    layout,
                    aliases,
                    preds: Vec::new(),
                })
            }
            Expr::Not { neg, seq } => {
                let s = self.build(seq)?;
                if !matches!(s.kind, BKind::Sequence { .. }) {
                    return Err(LangError::bind("NOT scope must be a SEQUENCE"));
                }
                let n = self.build(neg)?;
                let layout = s.layout.clone();
                let aliases = s.aliases.iter().chain(n.aliases.iter()).cloned().collect();
                Ok(BNode {
                    kind: BKind::NotSeq {
                        main: Box::new(s),
                        neg: Box::new(n),
                    },
                    layout,
                    aliases,
                    preds: Vec::new(),
                })
            }
            Expr::CancelWhen { main, neg } => {
                let m = self.build(main)?;
                let n = self.build(neg)?;
                let layout = m.layout.clone();
                let aliases = m.aliases.iter().chain(n.aliases.iter()).cloned().collect();
                Ok(BNode {
                    kind: BKind::CancelWhen {
                        main: Box::new(m),
                        neg: Box::new(n),
                    },
                    layout,
                    aliases,
                    preds: Vec::new(),
                })
            }
        }
    }

    fn build_nary(
        &mut self,
        args: &[Expr],
        kind: impl FnOnce(Vec<BNode>, Duration) -> BKind,
        scope: Duration,
        stable: bool,
    ) -> Result<BNode, LangError> {
        let children = args
            .iter()
            .map(|a| self.build(a))
            .collect::<Result<Vec<_>, _>>()?;
        let layouts: Vec<&Layout> = children.iter().map(|c| &c.layout).collect();
        let mut layout = Layout::concat(&layouts);
        if !stable {
            layout.stable = false;
        }
        let aliases = children
            .iter()
            .flat_map(|c| c.aliases.iter().cloned())
            .collect();
        Ok(BNode {
            kind: kind(children, scope),
            layout,
            aliases,
            preds: Vec::new(),
        })
    }
}

/// Aliases of atoms whose schema carries `attr`, in left-to-right order.
fn carriers_of(node: &BNode, attr: &str) -> Vec<String> {
    let mut out = Vec::new();
    collect_carriers(node, attr, &mut out);
    out
}

fn collect_carriers(node: &BNode, attr: &str, out: &mut Vec<String>) {
    match &node.kind {
        BKind::Atom { alias, .. } => {
            if node.layout.offset_of(alias, attr).is_some() {
                out.push(alias.clone());
            }
        }
        BKind::Sequence { children, .. }
        | BKind::AtLeast { children, .. }
        | BKind::AtMost { children, .. } => {
            for c in children {
                collect_carriers(c, attr, out);
            }
        }
        BKind::Unless { main, neg, .. }
        | BKind::NotSeq { main, neg }
        | BKind::CancelWhen { main, neg } => {
            collect_carriers(main, attr, out);
            collect_carriers(neg, attr, out);
        }
    }
}

/// Assign one conjunct to the lowest covering node.
fn assign(node: &mut BNode, conj: &PredAst) -> Result<(), LangError> {
    let aliases = conj.aliases();
    if !aliases.iter().all(|a| node.aliases.contains(a)) {
        return Err(LangError::bind(format!(
            "predicate references unknown alias(es): {aliases:?}"
        )));
    }
    assign_covered(node, conj, &aliases)
}

fn assign_covered(node: &mut BNode, conj: &PredAst, aliases: &[String]) -> Result<(), LangError> {
    // Descend into the unique child that still covers all aliases.
    let children: Vec<&mut BNode> = match &mut node.kind {
        BKind::Atom { .. } => Vec::new(),
        BKind::Sequence { children, .. }
        | BKind::AtLeast { children, .. }
        | BKind::AtMost { children, .. } => children.iter_mut().collect(),
        BKind::Unless { main, neg, .. }
        | BKind::NotSeq { main, neg }
        | BKind::CancelWhen { main, neg } => vec![main.as_mut(), neg.as_mut()],
    };
    for child in children {
        if aliases.iter().all(|a| child.aliases.contains(a)) {
            return assign_covered(child, conj, aliases);
        }
    }
    // This node is the injection point.
    let pred = convert(node, conj)?;
    node.preds.push(pred);
    Ok(())
}

/// The tuple slots of a node: (child index in the tuple, subtree).
fn tuple_slots(node: &BNode) -> Result<Vec<&BNode>, LangError> {
    match &node.kind {
        BKind::Atom { .. } => Ok(vec![node]),
        BKind::Sequence { children, .. } | BKind::AtLeast { children, .. } => {
            Ok(children.iter().collect())
        }
        BKind::AtMost { .. } => Err(LangError::bind(
            "ATMOST does not support cross-contributor predicates",
        )),
        BKind::Unless { main, neg, .. }
        | BKind::NotSeq { main, neg }
        | BKind::CancelWhen { main, neg } => Ok(vec![main.as_ref(), neg.as_ref()]),
    }
}

/// Convert a predicate AST into an injected `Pred` at `node`.
fn convert(node: &BNode, conj: &PredAst) -> Result<Pred, LangError> {
    let slots = tuple_slots(node)?;
    convert_with_slots(&slots, conj)
}

fn convert_with_slots(slots: &[&BNode], conj: &PredAst) -> Result<Pred, LangError> {
    match conj {
        PredAst::Cmp { left, op, right } => {
            let l = operand_scalar(slots, left)?;
            let r = operand_scalar(slots, right)?;
            let op = match op {
                CmpOpAst::Eq => CmpOp::Eq,
                CmpOpAst::Ne => CmpOp::Ne,
                CmpOpAst::Lt => CmpOp::Lt,
                CmpOpAst::Le => CmpOp::Le,
                CmpOpAst::Gt => CmpOp::Gt,
                CmpOpAst::Ge => CmpOp::Ge,
            };
            Ok(Pred::Cmp(l, op, r))
        }
        PredAst::And(a, b) => Ok(Pred::And(
            Box::new(convert_with_slots(slots, a)?),
            Box::new(convert_with_slots(slots, b)?),
        )),
        PredAst::Or(a, b) => Ok(Pred::Or(
            Box::new(convert_with_slots(slots, a)?),
            Box::new(convert_with_slots(slots, b)?),
        )),
        PredAst::Not(a) => Ok(Pred::Not(Box::new(convert_with_slots(slots, a)?))),
        PredAst::CorrelationKey { .. } | PredAst::AttrEqual { .. } => Err(LangError::bind(
            "CorrelationKey/[attr EQUAL …] must appear as top-level conjuncts",
        )),
    }
}

fn operand_scalar(slots: &[&BNode], operand: &Operand) -> Result<Scalar, LangError> {
    match operand {
        Operand::Lit(l) => Ok(Scalar::Lit(lit_value(l))),
        Operand::Path { alias, attr } => {
            for (i, slot) in slots.iter().enumerate() {
                if slot.aliases.contains(alias) {
                    if !slot.layout.stable {
                        return Err(LangError::bind(format!(
                            "cannot reference {alias}.{attr} through a subset operator \
                             (ATLEAST/ANY): payload order is match-dependent"
                        )));
                    }
                    let off = slot.layout.offset_of(alias, attr).ok_or_else(|| {
                        LangError::bind(format!("unknown attribute {alias}.{attr}"))
                    })?;
                    return Ok(if slots.len() == 1 {
                        Scalar::Field(off)
                    } else {
                        Scalar::Of(i, off)
                    });
                }
            }
            Err(LangError::bind(format!(
                "alias '{alias}' not reachable from the predicate's injection point"
            )))
        }
    }
}

fn lit_value(l: &LitAst) -> Value {
    match l {
        LitAst::Int(v) => Value::Int(*v),
        LitAst::Float(v) => Value::Float(*v),
        LitAst::Str(s) => Value::str(s),
    }
}

/// Lower the bound tree into the logical algebra.
fn to_logical(node: BNode) -> LogicalOp {
    let preds = Pred::and_all(node.preds.clone());
    match node.kind {
        BKind::Atom { event_type, .. } => {
            let src = LogicalOp::Source { event_type };
            if preds == Pred::True {
                src
            } else {
                LogicalOp::Select {
                    input: Box::new(src),
                    pred: preds,
                }
            }
        }
        BKind::Sequence { children, w } => {
            let modes = children.iter().map(sc_of).collect();
            LogicalOp::Sequence {
                inputs: children.into_iter().map(to_logical).collect(),
                w,
                pred: preds,
                modes,
            }
        }
        BKind::AtLeast { n, children, w } => {
            let modes = children.iter().map(sc_of).collect();
            LogicalOp::AtLeast {
                n,
                inputs: children.into_iter().map(to_logical).collect(),
                w,
                pred: preds,
                modes,
            }
        }
        BKind::AtMost { n, children, w } => LogicalOp::AtMost {
            n,
            inputs: children.into_iter().map(to_logical).collect(),
            w,
        },
        BKind::Unless { main, neg, w } => LogicalOp::Unless {
            main: Box::new(to_logical(*main)),
            neg: Box::new(to_logical(*neg)),
            w,
            pred: preds,
        },
        BKind::NotSeq { main, neg } => LogicalOp::NotSeq {
            main: Box::new(to_logical(*main)),
            neg: Box::new(to_logical(*neg)),
            pred: preds,
        },
        BKind::CancelWhen { main, neg } => LogicalOp::CancelWhen {
            main: Box::new(to_logical(*main)),
            neg: Box::new(to_logical(*neg)),
            pred: preds,
        },
    }
}

fn sc_of(node: &BNode) -> ScMode {
    match &node.kind {
        BKind::Atom { sc, .. } => *sc,
        _ => ScMode::EACH_REUSE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query, CIDR07_EXAMPLE};

    fn machine_catalog() -> Catalog {
        let mut c = Catalog::new();
        for ty in ["INSTALL", "SHUTDOWN", "RESTART"] {
            c.register_type(ty, vec![("Machine_Id", FieldType::Str)]);
        }
        c
    }

    #[test]
    fn binds_the_cidr07_example() {
        let q = parse_query(CIDR07_EXAMPLE).unwrap();
        let b = bind(&q, &machine_catalog()).unwrap();
        // Root: UNLESS with the x=z predicate injected into its [main, neg]
        // tuple; the x=y predicate injected into the SEQUENCE.
        let LogicalOp::Unless { main, pred, .. } = &b.root else {
            panic!("expected Unless root, got:\n{}", b.root);
        };
        assert_ne!(*pred, Pred::True, "x=z injected at UNLESS");
        let LogicalOp::Sequence { pred: spred, .. } = main.as_ref() else {
            panic!("expected Sequence under Unless");
        };
        assert_ne!(*spred, Pred::True, "x=y injected at SEQUENCE");
        // Output layout = the sequence payload (x ++ y).
        assert_eq!(b.layout.len(), 2);
        assert_eq!(b.layout.offset_of("x", "Machine_Id"), Some(0));
        assert_eq!(b.layout.offset_of("y", "Machine_Id"), Some(1));
    }

    #[test]
    fn correlation_key_desugars_across_all_carriers() {
        let q = parse_query(
            "EVENT q \
             WHEN UNLESS(SEQUENCE(INSTALL x, SHUTDOWN y, 12 hours), RESTART z, 5 minutes) \
             WHERE CorrelationKey(Machine_Id, EQUAL)",
        )
        .unwrap();
        let b = bind(&q, &machine_catalog()).unwrap();
        // Same shape as writing the two pairwise predicates by hand.
        let LogicalOp::Unless { pred, main, .. } = &b.root else {
            panic!()
        };
        // y=z lands at UNLESS (y in main, z in neg).
        assert_ne!(*pred, Pred::True);
        let LogicalOp::Sequence { pred: sp, .. } = main.as_ref() else {
            panic!()
        };
        assert_ne!(*sp, Pred::True);
    }

    #[test]
    fn attr_equal_pushes_to_sources() {
        let q = parse_query(
            "EVENT q WHEN SEQUENCE(INSTALL x, SHUTDOWN y, 1 hours) \
             WHERE [Machine_Id EQUAL 'BARGA_XP03']",
        )
        .unwrap();
        let b = bind(&q, &machine_catalog()).unwrap();
        let LogicalOp::Sequence { inputs, .. } = &b.root else {
            panic!()
        };
        for input in inputs {
            assert!(
                matches!(input, LogicalOp::Select { .. }),
                "per-source pushdown expected, got {input}"
            );
        }
    }

    #[test]
    fn single_alias_predicates_push_down() {
        let mut c = machine_catalog();
        c.register_type(
            "QUOTE",
            vec![("sym", FieldType::Str), ("px", FieldType::Float)],
        );
        let q = parse_query("EVENT q WHEN SEQUENCE(QUOTE a, QUOTE b, 1 minutes) WHERE a.px > 100")
            .unwrap();
        let b = bind(&q, &c).unwrap();
        let LogicalOp::Sequence { inputs, pred, .. } = &b.root else {
            panic!()
        };
        assert_eq!(*pred, Pred::True, "nothing cross-contributor");
        assert!(matches!(&inputs[0], LogicalOp::Select { .. }));
        assert!(matches!(&inputs[1], LogicalOp::Source { .. }));
    }

    #[test]
    fn output_clause_projects() {
        let q = parse_query(
            "EVENT q WHEN SEQUENCE(INSTALL x, SHUTDOWN y, 1 hours) \
             OUTPUT x.Machine_Id AS machine",
        )
        .unwrap();
        let b = bind(&q, &machine_catalog()).unwrap();
        assert!(matches!(b.root, LogicalOp::Project { .. }));
        assert_eq!(b.layout.len(), 1);
        assert_eq!(b.layout.cols[0].field, "machine");
    }

    #[test]
    fn duplicate_aliases_rejected() {
        let q = parse_query("EVENT q WHEN SEQUENCE(INSTALL x, SHUTDOWN x, 1 hours)").unwrap();
        assert!(bind(&q, &machine_catalog()).is_err());
    }

    #[test]
    fn unknown_type_and_attribute_rejected() {
        let q = parse_query("EVENT q WHEN SEQUENCE(NOPE x, SHUTDOWN y, 1 hours)").unwrap();
        assert!(bind(&q, &machine_catalog()).is_err());
        let q2 =
            parse_query("EVENT q WHEN SEQUENCE(INSTALL x, SHUTDOWN y, 1 hours) WHERE x.Nope = 1")
                .unwrap();
        assert!(bind(&q2, &machine_catalog()).is_err());
    }

    #[test]
    fn output_through_subset_operators_rejected() {
        let q = parse_query(
            "EVENT q WHEN ATLEAST(1, INSTALL x, SHUTDOWN y, 1 hours) OUTPUT x.Machine_Id",
        )
        .unwrap();
        let err = bind(&q, &machine_catalog()).unwrap_err();
        assert!(matches!(err, LangError::Bind(_)));
    }

    #[test]
    fn predicates_on_atleast_tuples_use_declared_slots() {
        let q = parse_query(
            "EVENT q WHEN ATLEAST(2, INSTALL x, SHUTDOWN y, RESTART z, 1 hours) \
             WHERE x.Machine_Id = y.Machine_Id",
        )
        .unwrap();
        let b = bind(&q, &machine_catalog()).unwrap();
        let LogicalOp::AtLeast { pred, .. } = &b.root else {
            panic!()
        };
        assert_ne!(*pred, Pred::True);
    }

    #[test]
    fn slices_wrap_the_plan() {
        let q = parse_query(
            "EVENT q WHEN SEQUENCE(INSTALL x, SHUTDOWN y, 1 hours) @ [0, 100) # [5, 50)",
        )
        .unwrap();
        let b = bind(&q, &machine_catalog()).unwrap();
        assert!(matches!(b.root, LogicalOp::SliceValid { .. }));
    }
}
