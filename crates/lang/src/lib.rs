//! # cedr-lang
//!
//! The CEDR declarative query language (Section 3): a lexer and recursive-
//! descent parser for the `EVENT … WHEN … WHERE … OUTPUT …` syntax, an
//! event-type catalog, a binder that resolves aliases and performs
//! **predicate injection** (placing WHERE-clause predicates into the
//! denotation of the WHEN-clause operators, Section 3.2), a logical plan
//! with rewrite rules, and a physical planner that lowers plans onto
//! `cedr-runtime` dataflows.
//!
//! The full language pipeline is exercised end-to-end on the paper's own
//! CIDR07_Example query (machine monitoring with UNLESS/SEQUENCE and a
//! Machine_Id correlation key).

pub mod ast;
pub mod binder;
pub mod catalog;
pub mod error;
pub mod lexer;
pub mod logical;
pub mod optimizer;
pub mod parser;
pub mod physical;
pub mod token;

pub use ast::Query;
pub use binder::{bind, BoundQuery};
pub use catalog::{Catalog, EventTypeDef, FieldType};
pub use error::LangError;
pub use logical::{Layout, LogicalOp};
pub use optimizer::optimize;
pub use parser::parse_query;
pub use physical::{compile_from_env, fuse_from_env, lower, lower_with, LoweredPlan};

/// A fully compiled query: the declared name, the optimized logical plan
/// rendered for `EXPLAIN` (followed by the physical fusion summary), and
/// the lowered physical dataflow.
pub struct CompiledQuery {
    pub name: String,
    pub explain: String,
    pub plan: LoweredPlan,
}

/// Parse, bind, optimise and lower a query in one call. The fusion pass
/// follows the `CEDR_FUSE` default and the kernel compile follows
/// `CEDR_COMPILE`; use [`compile_with`] for explicit control.
pub fn compile(
    text: &str,
    catalog: &Catalog,
    spec: cedr_runtime::ConsistencySpec,
) -> Result<CompiledQuery, LangError> {
    compile_with(text, catalog, spec, fuse_from_env(), compile_from_env())
}

/// [`compile`], with the fusion pass and the kernel compile explicitly on
/// or off.
pub fn compile_with(
    text: &str,
    catalog: &Catalog,
    spec: cedr_runtime::ConsistencySpec,
    fuse: bool,
    compile_kernels: bool,
) -> Result<CompiledQuery, LangError> {
    let query = parse_query(text)?;
    let bound = bind(&query, catalog)?;
    let optimized = optimize(bound.root);
    let plan = lower_with(&optimized, catalog, spec, fuse, compile_kernels)?;
    let explain = format!("{optimized}\n{}", plan.describe_fusion());
    Ok(CompiledQuery {
        name: bound.name,
        explain,
        plan,
    })
}
