//! Recursive-descent parser for the CEDR query language.

use crate::ast::*;
use crate::error::LangError;
use crate::lexer::lex;
use crate::token::Token;
use cedr_algebra::pattern::{Consumption, Selection};
use cedr_temporal::{Duration, TimePoint};

/// Parse a full `EVENT … WHEN …` query.
pub fn parse_query(text: &str) -> Result<Query, LangError> {
    let toks = lex(text)?;
    let mut p = Parser { toks, pos: 0 };
    let q = p.query()?;
    p.expect(Token::Eof)?;
    Ok(q)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn next(&mut self) -> Token {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].clone();
        if self.pos < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Token) -> Result<(), LangError> {
        if self.peek() == &t {
            self.pos += 1;
            Ok(())
        } else {
            Err(LangError::parse(
                self.pos,
                format!("expected {t}, found {}", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            other => Err(LangError::parse(
                self.pos.saturating_sub(1),
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn integer(&mut self) -> Result<i64, LangError> {
        match self.next() {
            Token::Int(v) => Ok(v),
            other => Err(LangError::parse(
                self.pos.saturating_sub(1),
                format!("expected integer, found {other}"),
            )),
        }
    }

    fn query(&mut self) -> Result<Query, LangError> {
        self.expect(Token::Event)?;
        let name = self.ident()?;
        self.expect(Token::When)?;
        let when = self.expr()?;
        let where_clause = if self.eat(&Token::Where) {
            Some(self.pred()?)
        } else {
            None
        };
        let output = if self.eat(&Token::Output) {
            Some(self.output_items()?)
        } else {
            None
        };
        let mut occ_slice = None;
        let mut valid_slice = None;
        loop {
            if self.eat(&Token::At) {
                occ_slice = Some(self.slice_window()?);
            } else if self.eat(&Token::Hash) {
                valid_slice = Some(self.slice_window()?);
            } else {
                break;
            }
        }
        Ok(Query {
            name,
            when,
            where_clause,
            output,
            occ_slice,
            valid_slice,
        })
    }

    /// `[t1, t2)` — a half-open slice window.
    fn slice_window(&mut self) -> Result<(TimePoint, TimePoint), LangError> {
        self.expect(Token::LBracket)?;
        let from = self.time_point()?;
        self.expect(Token::Comma)?;
        let to = self.time_point()?;
        self.expect(Token::RParen)?;
        Ok((from, to))
    }

    fn time_point(&mut self) -> Result<TimePoint, LangError> {
        match self.next() {
            Token::Int(v) if v >= 0 => Ok(TimePoint::new(v as u64)),
            Token::Infinity => Ok(TimePoint::INFINITY),
            other => Err(LangError::parse(
                self.pos.saturating_sub(1),
                format!("expected time point, found {other}"),
            )),
        }
    }

    fn duration(&mut self) -> Result<Duration, LangError> {
        if self.eat(&Token::Infinity) {
            return Ok(Duration::INFINITE);
        }
        let n = self.integer()?;
        if n < 0 {
            return Err(LangError::parse(self.pos, "negative duration"));
        }
        let n = n as u64;
        Ok(match self.next() {
            Token::Ticks | Token::Seconds => Duration::seconds(n),
            Token::Minutes => Duration::minutes(n),
            Token::Hours => Duration::hours(n),
            Token::Days => Duration::days(n),
            other => {
                return Err(LangError::parse(
                    self.pos.saturating_sub(1),
                    format!("expected time unit, found {other}"),
                ))
            }
        })
    }

    fn expr(&mut self) -> Result<Expr, LangError> {
        match self.peek().clone() {
            Token::Sequence => {
                self.next();
                self.expect(Token::LParen)?;
                let (args, scope) = self.args_then_duration()?;
                Ok(Expr::Sequence { args, scope })
            }
            Token::AtLeast => {
                self.next();
                self.expect(Token::LParen)?;
                let n = self.integer()? as usize;
                self.expect(Token::Comma)?;
                let (args, scope) = self.args_then_duration()?;
                Ok(Expr::AtLeast { n, args, scope })
            }
            Token::AtMost => {
                self.next();
                self.expect(Token::LParen)?;
                let n = self.integer()? as usize;
                self.expect(Token::Comma)?;
                let (args, scope) = self.args_then_duration()?;
                Ok(Expr::AtMost { n, args, scope })
            }
            Token::All => {
                self.next();
                self.expect(Token::LParen)?;
                let (args, scope) = self.args_then_duration()?;
                Ok(Expr::All { args, scope })
            }
            Token::Any => {
                self.next();
                self.expect(Token::LParen)?;
                let mut args = vec![self.expr_arg()?];
                while self.eat(&Token::Comma) {
                    args.push(self.expr_arg()?);
                }
                self.expect(Token::RParen)?;
                Ok(Expr::Any { args })
            }
            Token::Unless => {
                self.next();
                self.expect(Token::LParen)?;
                let main = self.expr_arg()?;
                self.expect(Token::Comma)?;
                let neg = self.expr_arg()?;
                self.expect(Token::Comma)?;
                let scope = self.duration()?;
                self.expect(Token::RParen)?;
                Ok(Expr::Unless {
                    main: Box::new(main),
                    neg: Box::new(neg),
                    scope,
                })
            }
            Token::Not => {
                self.next();
                self.expect(Token::LParen)?;
                let neg = self.expr_arg()?;
                self.expect(Token::Comma)?;
                let seq = self.expr()?;
                self.expect(Token::RParen)?;
                if !matches!(seq, Expr::Sequence { .. }) {
                    return Err(LangError::parse(
                        self.pos,
                        "NOT's second argument must be a SEQUENCE",
                    ));
                }
                Ok(Expr::Not {
                    neg: Box::new(neg),
                    seq: Box::new(seq),
                })
            }
            Token::CancelWhen => {
                self.next();
                self.expect(Token::LParen)?;
                let main = self.expr_arg()?;
                self.expect(Token::Comma)?;
                let neg = self.expr_arg()?;
                self.expect(Token::RParen)?;
                Ok(Expr::CancelWhen {
                    main: Box::new(main),
                    neg: Box::new(neg),
                })
            }
            Token::Ident(_) => self.atom(),
            other => Err(LangError::parse(
                self.pos,
                format!("expected WHEN-clause expression, found {other}"),
            )),
        }
    }

    /// `expr [AS alias] [WITH SC(sel, cons)]` — alias/SC may follow any
    /// sub-expression, though they are most meaningful on atoms.
    fn expr_arg(&mut self) -> Result<Expr, LangError> {
        let e = self.expr()?;
        // Alias/SC on non-atoms is accepted for atoms only; atoms already
        // consumed their alias inside `atom()`.
        Ok(e)
    }

    fn atom(&mut self) -> Result<Expr, LangError> {
        let event_type = self.ident()?;
        let alias = if self.eat(&Token::As) {
            Some(self.ident()?)
        } else if let Token::Ident(_) = self.peek() {
            // Paper style: `INSTALL x` (no AS keyword).
            Some(self.ident()?)
        } else {
            None
        };
        let sc = if self.eat(&Token::With) {
            self.expect(Token::Sc)?;
            self.expect(Token::LParen)?;
            let selection = match self.next() {
                Token::Each => Selection::Each,
                Token::First => Selection::First,
                Token::MostRecent => Selection::MostRecent,
                other => {
                    return Err(LangError::parse(
                        self.pos.saturating_sub(1),
                        format!("expected selection mode, found {other}"),
                    ))
                }
            };
            self.expect(Token::Comma)?;
            let consumption = match self.next() {
                Token::Reuse => Consumption::Reuse,
                Token::Consume => Consumption::Consume,
                other => {
                    return Err(LangError::parse(
                        self.pos.saturating_sub(1),
                        format!("expected consumption mode, found {other}"),
                    ))
                }
            };
            self.expect(Token::RParen)?;
            Some(ScModeAst {
                selection,
                consumption,
            })
        } else {
            None
        };
        Ok(Expr::Atom {
            event_type,
            alias,
            sc,
        })
    }

    fn args_then_duration(&mut self) -> Result<(Vec<Expr>, Duration), LangError> {
        let mut args = vec![self.expr_arg()?];
        loop {
            self.expect(Token::Comma)?;
            // A duration (INT UNIT or INFINITY) terminates the list.
            if matches!(self.peek(), Token::Infinity) {
                let d = self.duration()?;
                self.expect(Token::RParen)?;
                return Ok((args, d));
            }
            if let Token::Int(_) = self.peek() {
                let d = self.duration()?;
                self.expect(Token::RParen)?;
                return Ok((args, d));
            }
            args.push(self.expr_arg()?);
        }
    }

    // ---- predicates -----------------------------------------------------

    fn pred(&mut self) -> Result<PredAst, LangError> {
        self.or_pred()
    }

    fn or_pred(&mut self) -> Result<PredAst, LangError> {
        let mut left = self.and_pred()?;
        while self.eat(&Token::Or) {
            let right = self.and_pred()?;
            left = PredAst::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_pred(&mut self) -> Result<PredAst, LangError> {
        let mut left = self.unary_pred()?;
        while self.eat(&Token::And) {
            let right = self.unary_pred()?;
            left = PredAst::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_pred(&mut self) -> Result<PredAst, LangError> {
        if self.eat(&Token::Not) {
            let inner = self.unary_pred()?;
            return Ok(PredAst::Not(Box::new(inner)));
        }
        // The paper braces predicates: { x.id = y.id }.
        if self.eat(&Token::LBrace) {
            let inner = self.pred()?;
            self.expect(Token::RBrace)?;
            return Ok(inner);
        }
        if self.eat(&Token::LParen) {
            let inner = self.pred()?;
            self.expect(Token::RParen)?;
            return Ok(inner);
        }
        // `[attr EQUAL 'lit']` shorthand.
        if self.eat(&Token::LBracket) {
            let attr = self.ident()?;
            self.expect(Token::Equal)?;
            let value = self.literal()?;
            self.expect(Token::RBracket)?;
            return Ok(PredAst::AttrEqual { attr, value });
        }
        // `CorrelationKey(attr, EQUAL|UNIQUE)`.
        if self.eat(&Token::CorrelationKey) {
            self.expect(Token::LParen)?;
            let attr = self.ident()?;
            self.expect(Token::Comma)?;
            let unique = match self.next() {
                Token::Equal => false,
                Token::Unique => true,
                other => {
                    return Err(LangError::parse(
                        self.pos.saturating_sub(1),
                        format!("expected EQUAL or UNIQUE, found {other}"),
                    ))
                }
            };
            self.expect(Token::RParen)?;
            return Ok(PredAst::CorrelationKey { attr, unique });
        }
        // Comparison.
        let left = self.operand()?;
        let op = match self.next() {
            Token::Eq => CmpOpAst::Eq,
            Token::Ne => CmpOpAst::Ne,
            Token::Lt => CmpOpAst::Lt,
            Token::Le => CmpOpAst::Le,
            Token::Gt => CmpOpAst::Gt,
            Token::Ge => CmpOpAst::Ge,
            other => {
                return Err(LangError::parse(
                    self.pos.saturating_sub(1),
                    format!("expected comparison operator, found {other}"),
                ))
            }
        };
        let right = self.operand()?;
        Ok(PredAst::Cmp { left, op, right })
    }

    fn operand(&mut self) -> Result<Operand, LangError> {
        match self.peek().clone() {
            Token::Ident(_) => {
                let alias = self.ident()?;
                self.expect(Token::Dot)?;
                let attr = self.ident()?;
                Ok(Operand::Path { alias, attr })
            }
            _ => Ok(Operand::Lit(self.literal()?)),
        }
    }

    fn literal(&mut self) -> Result<LitAst, LangError> {
        match self.next() {
            Token::Int(v) => Ok(LitAst::Int(v)),
            Token::Float(v) => Ok(LitAst::Float(v)),
            Token::Str(s) => Ok(LitAst::Str(s)),
            other => Err(LangError::parse(
                self.pos.saturating_sub(1),
                format!("expected literal, found {other}"),
            )),
        }
    }

    fn output_items(&mut self) -> Result<Vec<OutputItem>, LangError> {
        let mut items = Vec::new();
        loop {
            let item = match self.peek().clone() {
                Token::Ident(_) => {
                    let alias = self.ident()?;
                    self.expect(Token::Dot)?;
                    let attr = self.ident()?;
                    let name = if self.eat(&Token::As) {
                        Some(self.ident()?)
                    } else {
                        None
                    };
                    OutputItem::Path { alias, attr, name }
                }
                _ => {
                    let value = self.literal()?;
                    let name = if self.eat(&Token::As) {
                        Some(self.ident()?)
                    } else {
                        None
                    };
                    OutputItem::Lit { value, name }
                }
            };
            items.push(item);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(items)
    }
}

/// The paper's running example (Section 3.1), as written there modulo
/// whitespace.
pub const CIDR07_EXAMPLE: &str = "\
EVENT CIDR07_Example
WHEN UNLESS(SEQUENCE(INSTALL x, SHUTDOWN AS y, 12 hours),
            RESTART AS z, 5 minutes)
WHERE {x.Machine_Id = y.Machine_Id} AND
      {x.Machine_Id = z.Machine_Id}";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_cidr07_example_verbatim() {
        let q = parse_query(CIDR07_EXAMPLE).unwrap();
        assert_eq!(q.name, "CIDR07_Example");
        let Expr::Unless { main, neg, scope } = &q.when else {
            panic!("expected UNLESS at the root");
        };
        assert_eq!(*scope, Duration::minutes(5));
        let Expr::Sequence { args, scope } = main.as_ref() else {
            panic!("expected SEQUENCE inside UNLESS");
        };
        assert_eq!(*scope, Duration::hours(12));
        assert_eq!(args.len(), 2);
        assert!(matches!(
            &args[0],
            Expr::Atom { event_type, alias: Some(a), .. }
                if event_type == "INSTALL" && a == "x"
        ));
        assert!(matches!(
            neg.as_ref(),
            Expr::Atom { event_type, alias: Some(a), .. }
                if event_type == "RESTART" && a == "z"
        ));
        let w = q.where_clause.unwrap();
        assert_eq!(w.conjuncts().len(), 2);
    }

    #[test]
    fn parses_sequence_with_three_args() {
        let q = parse_query("EVENT q WHEN SEQUENCE(A a, B b, C c, 10 seconds)").unwrap();
        let Expr::Sequence { args, .. } = q.when else {
            panic!()
        };
        assert_eq!(args.len(), 3);
    }

    #[test]
    fn parses_atleast_atmost_all_any() {
        let q = parse_query("EVENT q WHEN ATLEAST(2, A, B, C, 1 minutes)").unwrap();
        assert!(matches!(q.when, Expr::AtLeast { n: 2, .. }));
        let q = parse_query("EVENT q WHEN ATMOST(3, A, B, 1 hours)").unwrap();
        assert!(matches!(q.when, Expr::AtMost { n: 3, .. }));
        let q = parse_query("EVENT q WHEN ALL(A, B, 2 ticks)").unwrap();
        assert!(matches!(q.when, Expr::All { .. }));
        let q = parse_query("EVENT q WHEN ANY(A, B, C)").unwrap();
        let Expr::Any { args } = q.when else { panic!() };
        assert_eq!(args.len(), 3);
    }

    #[test]
    fn parses_not_with_sequence_scope() {
        let q = parse_query("EVENT q WHEN NOT(E, SEQUENCE(A, B, 5 seconds))").unwrap();
        assert!(matches!(q.when, Expr::Not { .. }));
        // NOT over a non-sequence is rejected.
        assert!(parse_query("EVENT q WHEN NOT(E, F)").is_err());
    }

    #[test]
    fn parses_cancel_when_both_spellings() {
        for text in [
            "EVENT q WHEN CANCEL-WHEN(A, B)",
            "EVENT q WHEN CANCELWHEN(A, B)",
        ] {
            let q = parse_query(text).unwrap();
            assert!(matches!(q.when, Expr::CancelWhen { .. }), "{text}");
        }
    }

    #[test]
    fn parses_nested_composition() {
        // "All aspects of the language are fully composable."
        let q = parse_query("EVENT q WHEN ALL(A, NOT(E2, SEQUENCE(E3, E4, 5 ticks)), 20 ticks)")
            .unwrap();
        let Expr::All { args, .. } = q.when else {
            panic!()
        };
        assert!(matches!(args[1], Expr::Not { .. }));
    }

    #[test]
    fn parses_sc_modes() {
        let q = parse_query("EVENT q WHEN SEQUENCE(A x WITH SC(FIRST, CONSUME), B y, 1 minutes)")
            .unwrap();
        let Expr::Sequence { args, .. } = q.when else {
            panic!()
        };
        let Expr::Atom { sc: Some(sc), .. } = &args[0] else {
            panic!()
        };
        assert_eq!(sc.selection, Selection::First);
        assert_eq!(sc.consumption, Consumption::Consume);
    }

    #[test]
    fn parses_correlation_key_and_attr_equal() {
        let q = parse_query(
            "EVENT q WHEN SEQUENCE(A x, B y, 1 hours) \
             WHERE CorrelationKey(Machine_Id, EQUAL) AND [Machine_Id EQUAL 'BARGA_XP03']",
        )
        .unwrap();
        let w = q.where_clause.unwrap();
        let cj = w.conjuncts();
        assert!(matches!(cj[0], PredAst::CorrelationKey { .. }));
        assert!(matches!(cj[1], PredAst::AttrEqual { .. }));
    }

    #[test]
    fn parses_output_clause() {
        let q =
            parse_query("EVENT q WHEN SEQUENCE(A x, B y, 1 hours) OUTPUT x.id AS machine, y.ts")
                .unwrap();
        let out = q.output.unwrap();
        assert_eq!(out.len(), 2);
        assert!(matches!(&out[0], OutputItem::Path { name: Some(n), .. } if n == "machine"));
    }

    #[test]
    fn parses_temporal_slices() {
        let q = parse_query("EVENT q WHEN SEQUENCE(A, B, 1 hours) @ [10, 20) # [0, INF)").unwrap();
        assert_eq!(q.occ_slice, Some((TimePoint::new(10), TimePoint::new(20))));
        assert_eq!(
            q.valid_slice,
            Some((TimePoint::new(0), TimePoint::INFINITY))
        );
    }

    #[test]
    fn error_messages_carry_position() {
        let err = parse_query("EVENT q WHEN SEQUENCE(A, B 10 hours)").unwrap_err();
        assert!(matches!(err, LangError::Parse { .. }));
        let err2 = parse_query("WHEN SEQUENCE(A, B, 1 hours)").unwrap_err();
        assert!(matches!(err2, LangError::Parse { .. }));
    }
}
