//! The Section 1 financial-services scenarios:
//!
//! 1. a trader-desktop **portfolio moving average** (ticks + positions,
//!    windowed aggregation, tolerant of imperfection → middle/weak);
//! 2. a trading-floor **market sentiment** feed correlating news with
//!    market indicators, where "each event has a short shelf life" and
//!    "late events may result in a retraction" (joins + patterns, middle);
//! 3. a compliance-office **audit** that "must process all events in
//!    proper order" (strong).

use cedr_temporal::{Duration, Event, EventId, Interval, Payload, TimePoint, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Market tick generator configuration.
#[derive(Clone, Debug)]
pub struct MarketConfig {
    pub symbols: usize,
    pub ticks_per_symbol: usize,
    /// Mean inter-tick gap per symbol, in ticks.
    pub tick_gap: u64,
    pub start_price: f64,
    /// Per-step multiplicative volatility (e.g. 0.01 = 1 %).
    pub volatility: f64,
    pub seed: u64,
}

impl Default for MarketConfig {
    fn default() -> Self {
        MarketConfig {
            symbols: 8,
            ticks_per_symbol: 200,
            tick_gap: 5,
            start_price: 100.0,
            volatility: 0.01,
            seed: 7,
        }
    }
}

fn sym_name(i: usize) -> String {
    format!("SYM{i:03}")
}

/// Generate price ticks: point events with payload `[sym, px]`.
/// IDs start at `id_base` to keep streams disjoint.
pub fn generate_ticks(cfg: &MarketConfig, id_base: u64) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.symbols * cfg.ticks_per_symbol);
    let mut id = id_base;
    for s in 0..cfg.symbols {
        let mut t = rng.gen_range(0..cfg.tick_gap.max(1));
        let mut px = cfg.start_price * (1.0 + 0.1 * (s as f64 / cfg.symbols as f64));
        for _ in 0..cfg.ticks_per_symbol {
            let step: f64 = rng.gen_range(-1.0..1.0) * cfg.volatility;
            px *= 1.0 + step;
            out.push(Event::primitive(
                EventId(id),
                Interval::point(TimePoint::new(t)),
                Payload::from_values(vec![Value::str(sym_name(s)), Value::Float(px)]),
            ));
            id += 1;
            t += 1 + rng.gen_range(0..cfg.tick_gap.max(1) * 2);
        }
    }
    out.sort_by_key(|e| (e.vs(), e.id));
    out
}

/// News feed configuration.
#[derive(Clone, Debug)]
pub struct NewsConfig {
    pub symbols: usize,
    pub items: usize,
    /// Shelf life of a news item (its validity interval length).
    pub shelf_life: Duration,
    pub span: u64,
    pub seed: u64,
}

impl Default for NewsConfig {
    fn default() -> Self {
        NewsConfig {
            symbols: 8,
            items: 100,
            shelf_life: Duration::minutes(5),
            span: 20_000,
            seed: 21,
        }
    }
}

/// Generate news events with short shelf lives: payload
/// `[sym, sentiment ∈ {-1, 0, 1}]`.
pub fn generate_news(cfg: &NewsConfig, id_base: u64) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.items);
    for i in 0..cfg.items {
        let at = rng.gen_range(0..cfg.span);
        let sym = rng.gen_range(0..cfg.symbols);
        let sentiment: i64 = rng.gen_range(-1..=1);
        out.push(Event::primitive(
            EventId(id_base + i as u64),
            Interval::new(TimePoint::new(at), TimePoint::new(at) + cfg.shelf_life),
            Payload::from_values(vec![Value::str(sym_name(sym)), Value::Int(sentiment)]),
        ));
    }
    out.sort_by_key(|e| (e.vs(), e.id));
    out
}

/// A trader's portfolio: positions per symbol, as long-lived events with
/// payload `[sym, qty]` (position changes shorten + re-insert).
#[derive(Clone, Debug)]
pub struct PortfolioConfig {
    pub symbols: usize,
    pub seed: u64,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            symbols: 8,
            seed: 33,
        }
    }
}

/// Generate position events covering the whole session.
pub fn generate_positions(cfg: &PortfolioConfig, id_base: u64) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.symbols)
        .map(|s| {
            let qty: i64 = rng.gen_range(1..100);
            Event::primitive(
                EventId(id_base + s as u64),
                Interval::from(TimePoint::ZERO),
                Payload::from_values(vec![Value::str(sym_name(s)), Value::Int(qty)]),
            )
        })
        .collect()
}

/// Turn events into a sealed, sync-ordered stream with periodic CTIs.
pub fn to_stream(events: &[Event], cti_every: Option<Duration>) -> Vec<cedr_streams::Message> {
    let mut b = cedr_streams::StreamBuilder::new();
    for e in events {
        b.insert_event(e.clone());
    }
    b.build_ordered(cti_every, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_deterministic_and_ordered() {
        let cfg = MarketConfig::default();
        let a = generate_ticks(&cfg, 0);
        let b = generate_ticks(&cfg, 0);
        assert_eq!(a.len(), cfg.symbols * cfg.ticks_per_symbol);
        assert_eq!(a[10], b[10]);
        assert!(a.windows(2).all(|w| w[0].vs() <= w[1].vs()));
    }

    #[test]
    fn prices_stay_positive() {
        let ticks = generate_ticks(&MarketConfig::default(), 0);
        for e in &ticks {
            let px = e.payload.get(1).and_then(|v| v.as_f64()).unwrap();
            assert!(px > 0.0);
        }
    }

    #[test]
    fn news_has_shelf_life() {
        let cfg = NewsConfig::default();
        let news = generate_news(&cfg, 1_000_000);
        assert_eq!(news.len(), cfg.items);
        for e in &news {
            assert_eq!(e.interval.duration(), cfg.shelf_life);
            let s = e.payload.get(1).and_then(|v| v.as_i64()).unwrap();
            assert!((-1..=1).contains(&s));
        }
    }

    #[test]
    fn positions_cover_the_session() {
        let pos = generate_positions(&PortfolioConfig::default(), 2_000_000);
        assert_eq!(pos.len(), 8);
        assert!(pos.iter().all(|p| p.interval.end.is_infinite()));
    }

    #[test]
    fn stream_conversion_seals() {
        let ticks = generate_ticks(
            &MarketConfig {
                symbols: 2,
                ticks_per_symbol: 5,
                ..Default::default()
            },
            0,
        );
        let s = to_stream(&ticks, Some(Duration::seconds(50)));
        assert_eq!(s.last().and_then(|m| m.as_cti()), Some(TimePoint::INFINITY));
    }
}
