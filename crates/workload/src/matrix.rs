//! The consistency matrix harness: scenario × level × operator family.
//!
//! For every [`ScenarioConfig`] and
//! every consistency level (Strong, Middle, Weak-with-a-biting-horizon),
//! the harness drives **five operator families at once** — stateless
//! chain, windowed group-aggregate, join, sequence, negation — through
//! the modern engine surface: one
//! [`ChannelSource`] per producer, the engine
//! [pumping](cedr_core::engine::Engine::pump) between rounds, results
//! drained through collectors and
//! [`Subscription`]s.
//!
//! Before anything is *measured*, every cell is *pinned*: the same
//! scenario runs on four engine legs — 1 worker (canonical), 4 workers,
//! fusion off, compiled kernels off — and the stamped output tape,
//! subscription deltas and output CTI must be bit-identical across all
//! legs for every query. Only then are the paper's observables read
//! from the canonical leg's [`Engine::metrics`]
//! (cedr_core::engine::Engine::metrics): blocking (application-time
//! alignment ticks — deterministic), repair churn (output retractions,
//! full removals, delta-log volume), state/held peaks, forgotten events
//! under Weak, and accuracy-versus-Strong F1 of the net output table.
//!
//! Everything in [`MatrixReport`] except the explicitly wall-clock
//! fields is deterministic per seed, which is what lets CI regenerate
//! `docs/CONSISTENCY.md` and diff it byte-for-byte.

use crate::metrics::accuracy_f1;
use crate::scenario::{ScenarioConfig, ScenarioProfile, ScenarioTrace, SCENARIO_TYPES};
use cedr_core::prelude::*;
use cedr_temporal::UniTemporalTable;

/// The consistency levels of the matrix. Weak gets a horizon of
/// `span / 6` ticks — tight enough to bite (forget live state) on every
/// gallery scenario, which is the regime where Weak is interesting.
pub fn levels(span: u64) -> Vec<(&'static str, ConsistencySpec)> {
    vec![
        ("Strong", ConsistencySpec::strong()),
        ("Middle", ConsistencySpec::middle()),
        ("Weak", ConsistencySpec::weak(dur((span / 6).max(1)))),
    ]
}

/// The five operator families every cell runs.
pub const FAMILIES: [&str; 5] = ["stateless", "aggregate", "join", "sequence", "negation"];

/// The four engine legs of the bit-identity pin:
/// `(label, workers, fuse, compile_kernels)`. Leg 0 is canonical — the
/// one measurements are taken from.
pub const LEGS: [(&str, usize, bool, bool); 4] = [
    ("1 worker", 1, true, true),
    ("4 workers", 4, true, true),
    ("unfused", 1, false, true),
    ("interpreted", 1, true, false),
];

/// Register the five-family query catalog against a fresh engine.
pub fn register_families(
    engine: &mut Engine,
    spec: ConsistencySpec,
    span: u64,
) -> Vec<(&'static str, QueryId)> {
    for ty in SCENARIO_TYPES {
        engine.register_event_type(ty, vec![("key", FieldType::Int), ("seq", FieldType::Int)]);
    }
    let w = dur((span / 4).max(1));
    let key_eq = || Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0));
    let stateless = PlanBuilder::source("SCN_A")
        .select(Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(0i64)))
        .project(
            vec![Scalar::Field(0), Scalar::Field(1)],
            vec!["key".into(), "seq".into()],
        )
        .into_plan();
    let aggregate = PlanBuilder::source("SCN_A")
        .window(w)
        .group_aggregate(vec![Scalar::Field(0)], AggFunc::Count)
        .into_plan();
    let join = PlanBuilder::source("SCN_A")
        .join(PlanBuilder::source("SCN_B"), key_eq())
        .into_plan();
    let sequence = PlanBuilder::sequence(
        vec![PlanBuilder::source("SCN_A"), PlanBuilder::source("SCN_B")],
        w,
        key_eq(),
    )
    .into_plan();
    let negation = PlanBuilder::source("SCN_A")
        .unless(
            PlanBuilder::source("SCN_C"),
            dur((span / 8).max(1)),
            Pred::True,
        )
        .into_plan();
    [
        ("stateless", stateless),
        ("aggregate", aggregate),
        ("join", join),
        ("sequence", sequence),
        ("negation", negation),
    ]
    .into_iter()
    .map(|(name, plan)| {
        let q = engine
            .register_plan(name, plan, spec)
            .unwrap_or_else(|e| panic!("register {name}: {e}"));
        (name, q)
    })
    .collect()
}

/// One finished engine leg, plus the stall observations the harness made
/// while pumping.
pub struct LegRun {
    pub engine: Engine,
    pub queries: Vec<(&'static str, QueryId)>,
    /// Peak consecutive stalled pump checks (nonzero when a producer went
    /// silent while others kept flushing).
    pub stall_rounds_peak: u64,
    /// Producer keys the pump reported waiting on, in first-seen order.
    pub waited_on: Vec<u64>,
}

/// Drive one scenario through one engine leg: flush each producer's
/// round-`r` emission (silent rounds flush nothing), pump twice per
/// round recording stalls, then disconnect, drain and seal. The driving
/// schedule is a pure function of the trace, so every leg sees the same
/// canonical `(round, producer)` admission order.
pub fn drive_leg(
    trace: &ScenarioTrace,
    spec: ConsistencySpec,
    threads: usize,
    fuse: bool,
    compile: bool,
) -> LegRun {
    let depth = (trace.config.producers * 4).max(64);
    let mut engine = Engine::with_config(
        EngineConfig::threaded(threads)
            .with_fuse(fuse)
            .with_compile_kernels(compile)
            .with_channel_depth(depth),
    );
    let queries = register_families(&mut engine, spec, trace.config.span);
    let mut sources: Vec<ChannelSource> = trace
        .scripts
        .iter()
        .map(|s| {
            engine
                .channel_source(s.event_type)
                .expect("scenario type registered")
                .manual_flush()
        })
        .collect();
    let mut stall_rounds_peak = 0u64;
    let mut waited_on: Vec<u64> = Vec::new();
    for r in 0..trace.rounds() {
        for (p, script) in trace.scripts.iter().enumerate() {
            if let Some(Some(batch)) = script.emissions.get(r) {
                sources[p].stage_batch(batch);
                sources[p].flush();
            }
        }
        // Two pump steps per harness round: the first admits whatever
        // rounds are aligned, the second observes a stall if some lane
        // is behind (e.g. a silent producer).
        for _ in 0..2 {
            let progress = engine.pump().expect("pump");
            stall_rounds_peak = stall_rounds_peak.max(progress.rounds_stalled);
            if let Some(key) = progress.waiting_on {
                if !waited_on.contains(&key) {
                    waited_on.push(key);
                }
            }
        }
    }
    drop(sources);
    engine.run_pipelined().expect("drain");
    engine.seal();
    LegRun {
        engine,
        queries,
        stall_rounds_peak,
        waited_on,
    }
}

/// Assert the bit-identity pin between two finished legs: stamped tape,
/// freshly drained subscription deltas and output CTI, per query.
/// Returns the number of per-query comparisons performed.
pub fn assert_legs_identical(label: &str, a: &LegRun, b: &LegRun) -> usize {
    let mut checks = 0usize;
    for ((name, qa), (_, qb)) in a.queries.iter().zip(b.queries.iter()) {
        assert_eq!(
            a.engine.collector(*qa).stamped(),
            b.engine.collector(*qb).stamped(),
            "{label}: stamped tape diverged on {name}"
        );
        let (mut sa, mut sb) = (
            a.engine.subscribe(*qa).expect("subscribe"),
            b.engine.subscribe(*qb).expect("subscribe"),
        );
        assert_eq!(
            sa.drain_ready(&a.engine),
            sb.drain_ready(&b.engine),
            "{label}: subscription deltas diverged on {name}"
        );
        assert_eq!(
            a.engine.collector(*qa).max_cti(),
            b.engine.collector(*qb).max_cti(),
            "{label}: output guarantee diverged on {name}"
        );
        checks += 1;
    }
    checks
}

/// Deterministic observables for one (scenario, level, family) cell,
/// read from the canonical leg after the identity pin passed.
#[derive(Clone, Debug)]
pub struct FamilyCell {
    pub family: &'static str,
    /// Collector tape: net inserts / retraction repairs / full removals.
    pub inserts: u64,
    pub retractions: u64,
    pub full_removals: u64,
    /// Delta-log volume (consumer-visible churn).
    pub deltas: u64,
    /// Plan-wide blocking: application-time alignment ticks and messages
    /// held back waiting for a guarantee.
    pub blocked_ticks: u64,
    pub blocked_messages: u64,
    /// Plan-wide peaks and Weak-mode forgetting.
    pub state_peak: u64,
    pub held_peak: u64,
    pub forgotten: u64,
    /// Output guarantee reached (None = no CTI emitted).
    pub output_cti: Option<u64>,
    /// F1 of the net output table against the Strong cell of the same
    /// scenario and family (Strong row is 1.0 by construction).
    pub accuracy_vs_strong: f64,
}

/// One (scenario, level) run: the five family cells plus channel-level
/// observations. `wall_*` fields are the only nondeterministic ones —
/// they are for stdout, never for the committed report.
#[derive(Clone, Debug)]
pub struct LevelRun {
    pub level: &'static str,
    pub cells: Vec<FamilyCell>,
    pub stall_rounds_peak: u64,
    pub waited_on: Vec<u64>,
    pub rounds_admitted: u64,
    pub messages_admitted: u64,
    pub identity_checks: usize,
    /// Wall-clock ingest→delta latency (count, mean µs, max µs) from the
    /// canonical leg. **Nondeterministic** — excluded from rendered
    /// markdown.
    pub wall_ingest_to_delta: (u64, f64, f64),
}

/// One scenario's full row of the matrix.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    pub name: String,
    pub characterization: String,
    pub profile: ScenarioProfile,
    pub levels: Vec<LevelRun>,
}

/// The whole matrix: every scenario × level × family, pinned then
/// measured.
#[derive(Clone, Debug)]
pub struct MatrixReport {
    pub seed: u64,
    pub scenarios: Vec<ScenarioResult>,
    /// Total bit-identity comparisons that passed across the run.
    pub identity_checks: usize,
}

/// Run the full matrix over `configs`. Panics (with a labelled message)
/// if any bit-identity pin fails — measurement never proceeds past a
/// divergent cell.
pub fn run_matrix(seed: u64, configs: &[ScenarioConfig]) -> MatrixReport {
    let mut scenarios = Vec::with_capacity(configs.len());
    let mut identity_checks = 0usize;
    for cfg in configs {
        let trace = cfg.generate();
        let mut level_runs = Vec::new();
        let mut strong_nets: Vec<UniTemporalTable> = Vec::new();
        for (level, spec) in levels(cfg.span) {
            let (canon_label, canon_threads, canon_fuse, canon_compile) = LEGS[0];
            let canonical = drive_leg(&trace, spec, canon_threads, canon_fuse, canon_compile);
            let mut checks = 0usize;
            for (leg_label, threads, fuse, compile) in LEGS.iter().skip(1) {
                let other = drive_leg(&trace, spec, *threads, *fuse, *compile);
                checks += assert_legs_identical(
                    &format!("{}/{level}/{canon_label} vs {leg_label}", cfg.name),
                    &canonical,
                    &other,
                );
            }
            identity_checks += checks;
            let nets: Vec<UniTemporalTable> = canonical
                .queries
                .iter()
                .map(|(_, q)| canonical.engine.collector(*q).net_table())
                .collect();
            if level == "Strong" {
                strong_nets = nets.clone();
            }
            let snap = canonical.engine.metrics();
            let cells = canonical
                .queries
                .iter()
                .enumerate()
                .map(|(i, (family, _))| {
                    let qc = &snap.counters.queries[i];
                    FamilyCell {
                        family,
                        inserts: qc.inserts,
                        retractions: qc.retractions,
                        full_removals: qc.full_removals,
                        deltas: qc.deltas_logged,
                        blocked_ticks: qc.total.blocked_ticks,
                        blocked_messages: qc.total.blocked_messages,
                        state_peak: qc.total.state_peak,
                        held_peak: qc.total.held_peak,
                        forgotten: qc.total.forgotten,
                        output_cti: qc.output_cti,
                        accuracy_vs_strong: accuracy_f1(&nets[i], &strong_nets[i]),
                    }
                })
                .collect();
            let channel = snap.counters.channel.as_ref();
            let lat = &snap.timings.ingest_to_delta;
            level_runs.push(LevelRun {
                level,
                cells,
                stall_rounds_peak: canonical.stall_rounds_peak,
                waited_on: canonical.waited_on.clone(),
                rounds_admitted: channel.map_or(0, |c| c.rounds_admitted),
                messages_admitted: channel.map_or(0, |c| c.messages_admitted),
                identity_checks: checks,
                wall_ingest_to_delta: (
                    lat.count(),
                    lat.mean() as f64 / 1_000.0,
                    lat.max() as f64 / 1_000.0,
                ),
            });
        }
        scenarios.push(ScenarioResult {
            name: cfg.name.clone(),
            characterization: trace.characterize(),
            profile: trace.profile(),
            levels: level_runs,
        });
    }
    MatrixReport {
        seed,
        scenarios,
        identity_checks,
    }
}

/// Per-level aggregates across every scenario and family (the spectrum
/// summary table).
#[derive(Clone, Debug, Default)]
pub struct LevelAggregate {
    pub blocked_ticks: u64,
    pub blocked_messages: u64,
    pub retractions: u64,
    pub full_removals: u64,
    pub deltas: u64,
    pub state_peak_sum: u64,
    pub forgotten: u64,
    pub f1_sum: f64,
    pub cells: usize,
}

impl MatrixReport {
    /// Aggregate each level across all scenarios and families.
    pub fn level_aggregates(&self) -> Vec<(&'static str, LevelAggregate)> {
        let mut out: Vec<(&'static str, LevelAggregate)> = Vec::new();
        for scenario in &self.scenarios {
            for run in &scenario.levels {
                let slot = match out.iter_mut().find(|(l, _)| *l == run.level) {
                    Some((_, agg)) => agg,
                    None => {
                        out.push((run.level, LevelAggregate::default()));
                        &mut out.last_mut().expect("just pushed").1
                    }
                };
                for cell in &run.cells {
                    slot.blocked_ticks += cell.blocked_ticks;
                    slot.blocked_messages += cell.blocked_messages;
                    slot.retractions += cell.retractions;
                    slot.full_removals += cell.full_removals;
                    slot.deltas += cell.deltas;
                    slot.state_peak_sum += cell.state_peak;
                    slot.forgotten += cell.forgotten;
                    slot.f1_sum += cell.accuracy_vs_strong;
                    slot.cells += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Silence;

    /// A small scenario so the debug-profile test stays quick.
    fn small(name: &str) -> ScenarioConfig {
        ScenarioConfig {
            events_per_producer: 20,
            disorder: 12,
            retraction_rate: 0.2,
            ..ScenarioConfig::tame(name, 0x7E57)
        }
    }

    #[test]
    fn matrix_cell_pins_then_measures() {
        let report = run_matrix(0x7E57, &[small("smoke")]);
        assert_eq!(report.scenarios.len(), 1);
        let s = &report.scenarios[0];
        assert_eq!(s.levels.len(), 3);
        // 3 levels × 3 non-canonical legs × 5 families.
        assert_eq!(report.identity_checks, 45);
        for run in &s.levels {
            assert_eq!(run.cells.len(), FAMILIES.len());
            assert!(run.messages_admitted > 0);
        }
        let strong = &s.levels[0];
        let middle = &s.levels[1];
        let weak = &s.levels[2];
        // The paper's trade-off shape, measured: Strong blocks and stays
        // repair-free at the tape; Middle repairs instead of blocking;
        // both agree on net content (F1 = 1), Weak forgets.
        assert!(strong.cells.iter().any(|c| c.blocked_ticks > 0));
        assert!(middle.cells.iter().all(|c| c.blocked_ticks == 0));
        assert!(middle.cells.iter().any(|c| c.retractions > 0));
        for cell in middle.cells.iter() {
            assert!(
                (cell.accuracy_vs_strong - 1.0).abs() < 1e-9,
                "middle diverged from strong on {}",
                cell.family
            );
        }
        assert!(weak.cells.iter().map(|c| c.forgotten).sum::<u64>() > 0);
    }

    #[test]
    fn silence_is_observed_by_the_pump() {
        let cfg = ScenarioConfig {
            silence: Some(Silence {
                producer: 1,
                from_round: 2,
                rounds: 5,
            }),
            events_per_producer: 24,
            ..ScenarioConfig::tame("quiet", 0xAB)
        };
        let run = drive_leg(&cfg.generate(), ConsistencySpec::middle(), 1, true, true);
        assert!(
            run.stall_rounds_peak > 0,
            "expected the pump to report stalled rounds"
        );
        assert!(
            !run.waited_on.is_empty(),
            "expected waiting_on to name the silent producer"
        );
    }
}
