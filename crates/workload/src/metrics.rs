//! The **legacy** denotational measurement harness behind the Figure-8/9
//! benches. It pushes messages straight into a lowered plan's dataflow —
//! no engine, no sessions, no channel — which keeps the figure benches
//! fast and self-contained; new measurement code should prefer the
//! engine-surface harness in [`crate::matrix`], which pins bit-identity
//! across workers and fusion legs before measuring.
//!
//! An [`Experiment`] fixes a consistency spec and a delivery regime
//! (orderliness); [`run_experiment`] scrambles each input stream, drives
//! the plan to quiescence, and reports the paper's observables:
//!
//! * **Blocking** — total and mean alignment-buffer residency (CEDR ticks);
//! * **State size** — peak operator state across the plan;
//! * **Output size** — inserts + retractions emitted by all operators;
//! * **accuracy** — F1 of the sink's net content against a reference run
//!   (the weak level trades this away; strong/middle must score 1.0).

use cedr_lang::LoweredPlan;
use cedr_runtime::{ConsistencySpec, OpStats};
use cedr_streams::{DisorderConfig, Message, StreamStats};
use cedr_temporal::UniTemporalTable;

/// One experimental cell: a consistency spec × a delivery regime.
#[derive(Clone, Debug)]
pub struct Experiment {
    pub spec: ConsistencySpec,
    pub disorder: DisorderConfig,
}

/// Measured outcomes.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Plan-wide operator statistics.
    pub total: OpStats,
    /// Sink output stream statistics.
    pub output: StreamStats,
    /// Net logical content of the sink.
    pub sink_net: UniTemporalTable,
}

impl ExperimentResult {
    /// Figure 8's "Output Size" at the sink.
    pub fn sink_output_size(&self) -> usize {
        self.output.data_messages
    }
}

/// Scramble several per-type streams onto ONE global delivery timeline.
///
/// Every data message across all streams gets a delivery key
/// `sync + U[0, max_delay]` (seeded per stream); the merged timeline is
/// sorted by key, so cross-stream arrival order tracks application time
/// plus disorder — the realistic regime for multi-provider queries. Valid
/// per-stream CTIs are re-derived: after every `cti_period` deliveries of
/// stream `s`, a `CTI(t)` with the largest safe `t` for `s` is injected;
/// sealed streams end with `CTI(∞)`.
pub fn merge_scramble(
    streams: &[(usize, &[Message])],
    cfg: &DisorderConfig,
) -> Vec<(usize, Message)> {
    use cedr_temporal::{Duration, TimePoint};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    struct Item {
        key: TimePoint,
        seq: usize,
        source: usize,
        msg: Message,
    }
    let mut items: Vec<Item> = Vec::new();
    let mut remaining: Vec<BTreeMap<TimePoint, usize>> = Vec::new();
    let mut sealed: Vec<bool> = Vec::new();
    let mut seq = 0usize;
    for (src, msgs) in streams {
        let mut rng =
            StdRng::seed_from_u64(cfg.seed ^ (*src as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rem: BTreeMap<TimePoint, usize> = BTreeMap::new();
        sealed.push(matches!(msgs.last(), Some(Message::Cti(t)) if t.is_infinite()));
        for m in msgs.iter() {
            if !m.is_data() {
                continue;
            }
            let delay = if cfg.max_delay == 0 {
                0
            } else {
                rng.gen_range(0..=cfg.max_delay)
            };
            items.push(Item {
                key: m.sync() + Duration(delay),
                seq,
                source: *src,
                msg: m.clone(),
            });
            seq += 1;
            *rem.entry(m.sync()).or_insert(0) += 1;
        }
        remaining.push(rem);
    }
    items.sort_by_key(|i| (i.key, i.seq));

    let src_slot: Vec<usize> = streams.iter().map(|(s, _)| *s).collect();
    let slot_of = |src: usize| src_slot.iter().position(|s| *s == src).expect("known");

    let mut out: Vec<(usize, Message)> = Vec::with_capacity(items.len() + 16);
    let mut since_cti: Vec<usize> = vec![0; streams.len()];
    let mut last_cti: Vec<TimePoint> = vec![TimePoint::ZERO; streams.len()];
    for item in items {
        let slot = slot_of(item.source);
        let sync = item.msg.sync();
        if let Some(c) = remaining[slot].get_mut(&sync) {
            *c -= 1;
            if *c == 0 {
                remaining[slot].remove(&sync);
            }
        }
        out.push((item.source, item.msg));
        since_cti[slot] += 1;
        if let Some(period) = cfg.cti_period {
            if since_cti[slot] >= period {
                since_cti[slot] = 0;
                let safe = remaining[slot]
                    .keys()
                    .next()
                    .copied()
                    .unwrap_or(TimePoint::INFINITY);
                if safe > last_cti[slot] && safe.is_finite() {
                    out.push((item.source, Message::Cti(safe)));
                    last_cti[slot] = safe;
                }
            }
        }
    }
    for (slot, (src, _)) in streams.iter().enumerate() {
        if sealed[slot] {
            out.push((*src, Message::Cti(TimePoint::INFINITY)));
        }
    }
    out
}

/// Run one experiment cell on the merged global timeline.
pub fn run_experiment(
    mut plan: LoweredPlan,
    streams: &[(String, Vec<Message>)],
    exp: &Experiment,
) -> ExperimentResult {
    let routed: Vec<(usize, &[Message])> = streams
        .iter()
        .filter_map(|(ty, msgs)| plan.source_index(ty).map(|idx| (idx, msgs.as_slice())))
        .collect();
    let merged = merge_scramble(&routed, &exp.disorder);
    for (src, msg) in merged {
        plan.dataflow.push_source(src, msg);
    }
    let collector = plan.dataflow.collector(plan.sink);
    ExperimentResult {
        total: plan.dataflow.total_stats(),
        output: collector.stats().clone(),
        sink_net: collector.net_table(),
    }
}

/// Symmetric F1 overlap of two net tables on `(interval, payload)` rows.
pub fn accuracy_f1(a: &UniTemporalTable, b: &UniTemporalTable) -> f64 {
    use std::collections::HashMap;
    let key = |t: &UniTemporalTable| {
        let mut m: HashMap<(cedr_temporal::Interval, cedr_temporal::Payload), usize> =
            HashMap::new();
        for r in &t.without_empty().rows {
            *m.entry((r.interval, r.payload.clone())).or_insert(0) += 1;
        }
        m
    };
    let ma = key(a);
    let mb = key(b);
    let inter: usize = ma
        .iter()
        .map(|(k, ca)| mb.get(k).map_or(0, |cb| (*ca).min(*cb)))
        .sum();
    let na: usize = ma.values().sum();
    let nb: usize = mb.values().sum();
    if na + nb == 0 {
        return 1.0;
    }
    2.0 * inter as f64 / (na + nb) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedr_algebra::expr::Pred;
    use cedr_lang::{lower, Catalog, FieldType, LogicalOp};
    use cedr_temporal::time::dur;
    use cedr_temporal::{Duration, EventId, Interval, Payload, TimePoint, UniTemporalRow, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register_type("A", vec![("v", FieldType::Int)]);
        c.register_type("B", vec![("v", FieldType::Int)]);
        c
    }

    fn seq_plan(spec: ConsistencySpec) -> LoweredPlan {
        let plan = LogicalOp::Sequence {
            inputs: vec![
                LogicalOp::Source {
                    event_type: "A".into(),
                },
                LogicalOp::Source {
                    event_type: "B".into(),
                },
            ],
            w: dur(50),
            pred: Pred::True,
            modes: vec![cedr_algebra::pattern::ScMode::EACH_REUSE; 2],
        };
        lower(&plan, &catalog(), spec).unwrap()
    }

    fn streams() -> Vec<(String, Vec<Message>)> {
        let mk = |base: u64, n: u64, gap: u64| {
            let mut b = cedr_streams::StreamBuilder::with_id_base(base);
            for i in 0..n {
                b.insert_at(
                    TimePoint::new(i * gap + base % 7),
                    Payload::from_values(vec![Value::Int(i as i64)]),
                );
            }
            b.build_ordered(Some(Duration(20)), true)
        };
        vec![
            ("A".to_string(), mk(0, 50, 13)),
            ("B".to_string(), mk(10_000, 50, 17)),
        ]
    }

    #[test]
    fn strong_and_middle_agree_on_net_content() {
        let disorder = DisorderConfig::heavy(99, 120, 10);
        let strong = run_experiment(
            seq_plan(ConsistencySpec::strong()),
            &streams(),
            &Experiment {
                spec: ConsistencySpec::strong(),
                disorder: disorder.clone(),
            },
        );
        let middle = run_experiment(
            seq_plan(ConsistencySpec::middle()),
            &streams(),
            &Experiment {
                spec: ConsistencySpec::middle(),
                disorder,
            },
        );
        assert!(
            (accuracy_f1(&strong.sink_net, &middle.sink_net) - 1.0).abs() < 1e-9,
            "strong and middle must converge to the same net output"
        );
        // And the trade-off shape: strong blocks, middle retracts.
        assert!(strong.total.blocked_ticks > 0);
        assert_eq!(middle.total.blocked_ticks, 0);
    }

    #[test]
    fn ordered_delivery_blocks_far_less_than_disordered() {
        // The Figure-8 shape on the strong row: blocking scales with
        // disorder. (Some blocking remains even when ordered: a binary
        // operator waits for the *other* input's guarantee.)
        let ordered = run_experiment(
            seq_plan(ConsistencySpec::strong()),
            &streams(),
            &Experiment {
                spec: ConsistencySpec::strong(),
                disorder: DisorderConfig::ordered(1),
            },
        );
        let disordered = run_experiment(
            seq_plan(ConsistencySpec::strong()),
            &streams(),
            &Experiment {
                spec: ConsistencySpec::strong(),
                disorder: DisorderConfig::heavy(1, 300, 25),
            },
        );
        assert!(
            disordered.total.mean_blocking() > 2.0 * ordered.total.mean_blocking(),
            "disordered {} vs ordered {}",
            disordered.total.mean_blocking(),
            ordered.total.mean_blocking()
        );
    }

    #[test]
    fn f1_accuracy_measures_overlap() {
        let row = |a: u64, b: u64, v: i64| {
            UniTemporalRow::new(
                EventId(a * 1000 + b),
                Interval::new(TimePoint::new(a), TimePoint::new(b)),
                Payload::from_values(vec![Value::Int(v)]),
            )
        };
        let t1: UniTemporalTable = vec![row(0, 5, 1), row(5, 9, 2)].into_iter().collect();
        let t2: UniTemporalTable = vec![row(0, 5, 1)].into_iter().collect();
        assert!((accuracy_f1(&t1, &t1) - 1.0).abs() < 1e-9);
        let f1 = accuracy_f1(&t1, &t2);
        assert!((f1 - (2.0 / 3.0)).abs() < 1e-9);
        let empty = UniTemporalTable::new();
        assert_eq!(accuracy_f1(&empty, &empty), 1.0);
    }
}
