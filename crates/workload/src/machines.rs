//! The Section 3.1 machine-monitoring workload (CIDR07_Example).
//!
//! Machines emit INSTALL events; most installs are followed by a SHUTDOWN
//! within 12 hours; some shutdowns are followed by a RESTART within 5
//! minutes. The CIDR07_Example query alerts on install→shutdown pairs *not*
//! healed by a restart — the generator tracks the ground-truth alert count
//! so tests can check end-to-end detection exactly.

use cedr_temporal::{Duration, Event, EventId, Interval, Payload, TimePoint, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct MachineWorkloadConfig {
    pub machines: usize,
    /// Install episodes per machine.
    pub episodes: usize,
    /// Probability an install is followed by a shutdown within 12 h.
    pub shutdown_prob: f64,
    /// Probability a shutdown is healed by a restart within 5 min.
    pub restart_prob: f64,
    pub seed: u64,
}

impl Default for MachineWorkloadConfig {
    fn default() -> Self {
        MachineWorkloadConfig {
            machines: 10,
            episodes: 20,
            shutdown_prob: 0.8,
            restart_prob: 0.5,
            seed: 2007,
        }
    }
}

/// A generated trace with ground truth.
#[derive(Clone, Debug, Default)]
pub struct MachineTrace {
    pub installs: Vec<Event>,
    pub shutdowns: Vec<Event>,
    pub restarts: Vec<Event>,
    /// Install→shutdown pairs not healed by a restart: the number of alerts
    /// the CIDR07_Example query must produce.
    pub expected_alerts: usize,
    /// The horizon (max occurrence time) of the trace.
    pub horizon: TimePoint,
}

/// One machine's payload.
fn machine_payload(m: usize) -> Payload {
    Payload::from_values(vec![Value::str(format!("machine-{m:04}"))])
}

/// Generate a trace. Episodes of one machine are spaced more than
/// 12 h + 5 min apart so episodes never interfere, keeping the ground truth
/// exact.
pub fn generate(cfg: &MachineWorkloadConfig) -> MachineTrace {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut trace = MachineTrace::default();
    let mut next_id = 1u64;
    let mut id = || {
        let v = next_id;
        next_id += 1;
        EventId(v)
    };
    let episode_gap = Duration::hours(13).0;
    let mut horizon = 0u64;
    for m in 0..cfg.machines {
        // Per-machine phase offset so machines interleave in time.
        let mut t = rng.gen_range(0..3_600u64);
        for _ in 0..cfg.episodes {
            let payload = machine_payload(m);
            let install_at = t + rng.gen_range(0..1_800u64);
            trace.installs.push(Event::primitive(
                id(),
                Interval::point(TimePoint::new(install_at)),
                payload.clone(),
            ));
            let mut last = install_at;
            if rng.gen_bool(cfg.shutdown_prob) {
                let shutdown_at = install_at + 1 + rng.gen_range(0..Duration::hours(12).0 - 2);
                trace.shutdowns.push(Event::primitive(
                    id(),
                    Interval::point(TimePoint::new(shutdown_at)),
                    payload.clone(),
                ));
                last = shutdown_at;
                if rng.gen_bool(cfg.restart_prob) {
                    let restart_at = shutdown_at + 1 + rng.gen_range(0..Duration::minutes(5).0 - 2);
                    trace.restarts.push(Event::primitive(
                        id(),
                        Interval::point(TimePoint::new(restart_at)),
                        payload,
                    ));
                    last = restart_at;
                } else {
                    trace.expected_alerts += 1;
                }
            }
            horizon = horizon.max(last);
            t = last + episode_gap;
        }
    }
    trace.horizon = TimePoint::new(horizon);
    trace
}

impl MachineTrace {
    /// Total data events.
    pub fn len(&self) -> usize {
        self.installs.len() + self.shutdowns.len() + self.restarts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-type sync-ordered streams `(type name, messages)`, sealed with
    /// `CTI(∞)` and carrying CTIs every `cti_every` ticks.
    pub fn to_streams(
        &self,
        cti_every: Option<Duration>,
    ) -> Vec<(String, Vec<cedr_streams::Message>)> {
        let mk = |events: &[Event]| {
            let mut b = cedr_streams::StreamBuilder::new();
            for e in events {
                b.insert_event(e.clone());
            }
            b.build_ordered(cti_every, true)
        };
        vec![
            ("INSTALL".to_string(), mk(&self.installs)),
            ("SHUTDOWN".to_string(), mk(&self.shutdowns)),
            ("RESTART".to_string(), mk(&self.restarts)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedr_algebra::expr::{CmpOp, Pred, Scalar};

    #[test]
    fn trace_is_deterministic() {
        let cfg = MachineWorkloadConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.installs.len(), b.installs.len());
        assert_eq!(a.expected_alerts, b.expected_alerts);
        assert_eq!(a.installs[3], b.installs[3]);
    }

    #[test]
    fn ground_truth_matches_denotational_semantics() {
        let cfg = MachineWorkloadConfig {
            machines: 5,
            episodes: 10,
            ..Default::default()
        };
        let trace = generate(&cfg);
        // Denotational CIDR07_Example: UNLESS(SEQUENCE(INSTALL, SHUTDOWN,
        // 12h), RESTART, 5min) with Machine_Id correlation.
        let key01 = Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0));
        let seq = cedr_algebra::pattern::sequence(
            &[trace.installs.clone(), trace.shutdowns.clone()],
            Duration::hours(12),
            &key01,
        );
        let alerts = cedr_algebra::pattern::unless(
            &seq,
            &trace.restarts,
            Duration::minutes(5),
            &key01, // seq payload starts with install's Machine_Id
        );
        assert_eq!(alerts.len(), trace.expected_alerts);
    }

    #[test]
    fn episodes_do_not_interfere() {
        // With restart_prob 1.0 every shutdown heals: zero alerts.
        let trace = generate(&MachineWorkloadConfig {
            restart_prob: 1.0,
            ..Default::default()
        });
        assert_eq!(trace.expected_alerts, 0);
        // With restart_prob 0.0 every shutdown alerts.
        let trace2 = generate(&MachineWorkloadConfig {
            restart_prob: 0.0,
            ..Default::default()
        });
        assert_eq!(trace2.expected_alerts, trace2.shutdowns.len());
    }

    #[test]
    fn streams_are_sealed_and_ordered() {
        let trace = generate(&MachineWorkloadConfig::default());
        for (_, msgs) in trace.to_streams(Some(Duration::minutes(30))) {
            assert_eq!(
                msgs.last().and_then(|m| m.as_cti()),
                Some(TimePoint::INFINITY)
            );
            let syncs: Vec<TimePoint> = msgs
                .iter()
                .filter(|m| m.is_data())
                .map(|m| m.sync())
                .collect();
            assert!(syncs.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
