//! Report formatting: aligned ASCII tables (console), CSV (plotting)
//! and GitHub-flavoured markdown (the committed `docs/CONSISTENCY.md`),
//! plus the qualitative classification used to compare measured cells
//! against Figure 8's High/Low/Minimal/None vocabulary.

use std::fmt::Write as _;

/// A simple aligned ASCII table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with column alignment.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                let pad = widths[i] - c.chars().count();
                s.push_str(c);
                s.push_str(&" ".repeat(pad + 2));
            }
            let _ = writeln!(out, "{}", s.trim_end());
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        let _ = writeln!(out, "{}", "-".repeat(total.saturating_sub(2)));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// GitHub-flavoured markdown rendering (for committed reports). The
    /// output is fully determined by the cell strings — no locale, no
    /// width-dependent padding — so generated documents diff cleanly.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "**{}**\n", self.title);
        }
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| " --- ")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// CSV rendering (for downstream plotting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Qualitative classification against a scale, mirroring Figure 8's
/// vocabulary. `unit` is the "low" yardstick; values ≲ 5 % of it are
/// "None"/"Minimal", values ≳ 3× it are "High".
pub fn classify(value: f64, unit: f64) -> &'static str {
    if unit <= 0.0 {
        return if value == 0.0 { "None" } else { "High" };
    }
    let r = value / unit;
    if r < 0.05 {
        "None"
    } else if r < 0.5 {
        "Minimal"
    } else if r < 3.0 {
        "Low"
    } else {
        "High"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "long-header", "c"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec!["100".into(), "x".into(), "yy".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].starts_with("a    long-header"));
        assert!(lines[3].starts_with("1"));
    }

    #[test]
    fn markdown_renders_pipe_table() {
        let mut t = Table::new("spectrum", &["level", "blocking"]);
        t.row(vec!["Strong".into(), "42".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("**spectrum**\n\n| level | blocking |\n"));
        assert!(md.contains("| --- | --- |"));
        assert!(md.ends_with("| Strong | 42 |\n"));
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("", &["x,y", "b"]);
        t.row(vec!["say \"hi\"".into(), "2".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn classification_scale() {
        assert_eq!(classify(0.0, 100.0), "None");
        assert_eq!(classify(10.0, 100.0), "Minimal");
        assert_eq!(classify(100.0, 100.0), "Low");
        assert_eq!(classify(1000.0, 100.0), "High");
        assert_eq!(classify(0.0, 0.0), "None");
        assert_eq!(classify(5.0, 0.0), "High");
    }
}
