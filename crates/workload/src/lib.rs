//! # cedr-workload
//!
//! Workload generators for the paper's motivating scenarios (Section 1's
//! financial-services triple and Section 3.1's machine monitoring), the
//! disorder/orderliness controls of Figure 8, and the measurement harness
//! that turns engine runs into the Figure-8 observables (blocking, state
//! size, output size) plus accuracy-versus-ideal.
//!
//! Everything is seeded and deterministic: the same configuration always
//! produces the same trace, delivery order and measurements.

pub mod finance;
pub mod machines;
pub mod metrics;
pub mod report;

pub use finance::{MarketConfig, NewsConfig, PortfolioConfig};
pub use machines::{MachineTrace, MachineWorkloadConfig};
pub use metrics::{accuracy_f1, merge_scramble, run_experiment, Experiment, ExperimentResult};
pub use report::Table;
