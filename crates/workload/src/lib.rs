//! # cedr-workload
//!
//! Adversarial, *characterized* workloads for the CEDR reproduction, and
//! the harness that turns them into the paper's measured consistency
//! spectrum.
//!
//! * [`scenario`] — the scenario engine: a seeded [`ScenarioConfig`]
//!   with one dial per hostility dimension (burstiness, disorder depth,
//!   retraction rate, key skew, producer skew, producer silence). Every
//!   generated trace renders a one-line characterization combining the
//!   dials with *measured* trace properties, and the curated
//!   [`scenario::gallery`] covers one dial per scenario.
//! * [`matrix`] — the consistency matrix harness: every scenario ×
//!   consistency level × operator family driven through the modern
//!   engine surface (`ChannelSource` + pump + `Subscription`), pinned
//!   bit-identical across 1/4 workers and fused/unfused/interpreted
//!   legs **before** measuring blocking, repair churn, state peaks and
//!   accuracy from [`Engine::metrics`](cedr_core::engine::Engine::metrics).
//!   The committed `docs/CONSISTENCY.md` is this harness's rendered
//!   output (regenerate with the `scenario_matrix` binary in
//!   `cedr-bench`).
//! * [`finance`] / [`machines`] — the paper's motivating domains
//!   (Section 1's financial-services triple, Section 3.1's machine
//!   monitoring) as seeded generators, used by the examples and the
//!   figure benches.
//! * [`metrics`] — the legacy denotational harness behind the Figure-8/9
//!   benches: it drives a lowered plan directly (no engine, no
//!   sessions) and computes the original blocking/state/output/accuracy
//!   observables. New measurement code should prefer [`matrix`].
//! * [`report`] — ASCII/CSV/markdown table rendering and the Figure-8
//!   qualitative classifier.
//!
//! Everything is seeded and deterministic: the same configuration always
//! produces the same trace, delivery order and measurements (see
//! `ScenarioTrace::fingerprint`).

pub mod finance;
pub mod machines;
pub mod matrix;
pub mod metrics;
pub mod report;
pub mod scenario;

pub use finance::{MarketConfig, NewsConfig, PortfolioConfig};
pub use machines::{MachineTrace, MachineWorkloadConfig};
pub use matrix::{run_matrix, FamilyCell, LevelRun, MatrixReport, ScenarioResult};
pub use metrics::{accuracy_f1, merge_scramble, run_experiment, Experiment, ExperimentResult};
pub use report::Table;
pub use scenario::{gallery, ProducerScript, ScenarioConfig, ScenarioProfile, ScenarioTrace};
