//! Adversarial scenario generation: seeded, characterized stream traces.
//!
//! The paper's consistency spectrum is only interesting under *hostile*
//! input — late arrivals, speculative data that gets retracted, skewed
//! keys, lopsided or silent producers. This module generates such input
//! **intentionally**: a [`ScenarioConfig`] exposes one first-class dial
//! per hostility dimension, and every generated trace renders a one-line
//! [characterization](ScenarioTrace::characterize) combining the dial
//! settings with *measured* properties of the trace (actual inversion
//! fraction, actual key concentration, …), so a report reader never has
//! to trust the knobs — the trace describes itself.
//!
//! The dials:
//!
//! * **`burstiness`** — 0 spreads events uniformly over the span; 1
//!   packs them into tight bursts (flash-crowd arrival).
//! * **`disorder`** — maximum delivery delay in application-time ticks,
//!   applied via [`cedr_streams::scramble`]; `cti_period` controls how
//!   often the (still valid) CTIs are re-derived.
//! * **`retraction_rate`** — probability an insert is later revised
//!   (half of revisions are full removals, half lifetime shortenings).
//! * **`key_skew`** — Zipf-ish exponent over the key domain; 0 is
//!   uniform, larger concentrates traffic on few keys.
//! * **`producer_skew`** — rate multiplier for producer 0 (lopsided
//!   sources).
//! * **`silence`** — a producer goes quiet for a stretch of rounds
//!   while the others keep flushing, which stalls round admission (the
//!   harness observes `waiting_on` / `rounds_stalled`).
//!
//! Everything is seeded: the same config always yields the byte-equal
//! trace (see [`ScenarioTrace::fingerprint`]).

use cedr_streams::{disorder_profile, scramble, DisorderConfig, Message, MessageBatch};
use cedr_temporal::{Interval, Payload, TimePoint, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Event types the scenario producers feed, assigned round-robin by
/// producer index (matching the three-stream query catalog in
/// [`crate::matrix`]).
pub const SCENARIO_TYPES: [&str; 3] = ["SCN_A", "SCN_B", "SCN_C"];

/// A stretch of producer silence: `producer` flushes nothing for
/// `rounds` harness rounds starting at `from_round`, then resumes its
/// remaining emissions.
#[derive(Clone, Debug, PartialEq)]
pub struct Silence {
    pub producer: usize,
    pub from_round: usize,
    pub rounds: usize,
}

/// One adversarial scenario: a name, a seed, and the hostility dials.
///
/// Start from [`ScenarioConfig::tame`] and override dials with struct
/// update syntax, or take the whole curated [`gallery`].
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioConfig {
    /// Scenario name (used in reports and assertion labels).
    pub name: String,
    /// Master seed; all per-producer RNGs derive from it.
    pub seed: u64,
    /// Number of concurrent producers (each feeds one event type,
    /// round-robin over [`SCENARIO_TYPES`]).
    pub producers: usize,
    /// Events per producer before `producer_skew` scaling.
    pub events_per_producer: usize,
    /// Application-time span events are drawn from.
    pub span: u64,
    /// Event lifetime (`[Vs, Vs + lifetime)`).
    pub lifetime: u64,
    /// 0.0 = uniform arrivals; 1.0 = tight bursts.
    pub burstiness: f64,
    /// Maximum delivery delay in ticks (0 = in-order delivery).
    pub disorder: u64,
    /// Re-derive a CTI after every this many delivered data messages.
    pub cti_period: usize,
    /// Probability an insert is later revised by a retraction.
    pub retraction_rate: f64,
    /// Key domain size (payload field 0).
    pub keys: usize,
    /// Zipf-ish exponent over the key domain, rounded to halves
    /// (0.0 = uniform). Weights use only IEEE-exact ops (multiply,
    /// sqrt), so traces are bit-stable across platforms.
    pub key_skew: f64,
    /// Event-rate multiplier for producer 0 (1.0 = balanced).
    pub producer_skew: f64,
    /// Optional producer-silence window.
    pub silence: Option<Silence>,
    /// Messages per flushed emission (the unit of round admission).
    pub emission_size: usize,
}

impl ScenarioConfig {
    /// The tame baseline: ordered delivery, uniform keys, balanced
    /// producers, no retractions. Every dial starts from here.
    pub fn tame(name: &str, seed: u64) -> Self {
        ScenarioConfig {
            name: name.to_string(),
            seed,
            producers: 3,
            events_per_producer: 60,
            span: 180,
            lifetime: 24,
            burstiness: 0.0,
            disorder: 0,
            cti_period: 5,
            retraction_rate: 0.0,
            keys: 8,
            key_skew: 0.0,
            producer_skew: 1.0,
            silence: None,
            emission_size: 8,
        }
    }

    /// Generate the trace for this config (deterministic per config).
    pub fn generate(&self) -> ScenarioTrace {
        let scripts = (0..self.producers)
            .map(|p| self.producer_script(p))
            .collect();
        ScenarioTrace {
            config: self.clone(),
            scripts,
        }
    }

    fn producer_script(&self, p: usize) -> ProducerScript {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (p as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let n = if p == 0 {
            ((self.events_per_producer as f64) * self.producer_skew).round() as usize
        } else {
            self.events_per_producer
        }
        .max(1);

        // Arrival times: uniform draws, or clustered bursts.
        let mut times: Vec<u64> = Vec::with_capacity(n);
        if self.burstiness <= 0.0 {
            for _ in 0..n {
                times.push(rng.gen_range(0..self.span.max(1)));
            }
        } else {
            let burst = 1 + (self.burstiness * 15.0).round() as usize;
            while times.len() < n {
                let start = rng.gen_range(0..self.span.max(1));
                for _ in 0..burst.min(n - times.len()) {
                    times.push(start + rng.gen_range(0..3));
                }
            }
        }
        times.sort_unstable();

        // Zipf-ish cumulative key weights, halves-exponent exact ops.
        let halves = (self.key_skew * 2.0).round() as u32;
        let mut cum = Vec::with_capacity(self.keys.max(1));
        let mut total = 0.0f64;
        for r in 0..self.keys.max(1) {
            total += 1.0 / pow_half_steps((r + 1) as f64, halves);
            cum.push(total);
        }

        let mut b = cedr_streams::StreamBuilder::with_id_base(1_000_000 * (p as u64 + 1));
        for (i, &vs) in times.iter().enumerate() {
            let u = rng.gen_range(0.0..total);
            let key = cum.iter().position(|c| u < *c).unwrap_or(self.keys - 1);
            let e = b.insert(
                Interval::new(
                    TimePoint::new(vs),
                    TimePoint::new(vs + self.lifetime.max(1)),
                ),
                Payload::from_values(vec![Value::Int(key as i64), Value::Int(i as i64)]),
            );
            if self.retraction_rate > 0.0 && rng.gen_bool(self.retraction_rate) {
                // Half the revisions kill the event, half shorten it.
                let keep = if rng.gen_bool(0.5) {
                    0
                } else {
                    self.lifetime.max(2) / 2
                };
                b.retract(e.clone(), e.vs() + cedr_temporal::Duration(keep));
            }
        }
        let ordered = b.build_ordered(None, true);
        let scrambled = scramble(
            &ordered,
            &DisorderConfig {
                seed: self.seed ^ (p as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
                max_delay: self.disorder,
                cti_period: Some(self.cti_period.max(1)),
                dup_probability: 0.0,
            },
        );

        let mut emissions: Vec<Option<MessageBatch>> = scrambled
            .chunks(self.emission_size.max(1))
            .map(|c| Some(c.iter().cloned().collect::<MessageBatch>()))
            .collect();
        if let Some(s) = &self.silence {
            if s.producer == p {
                let at = s.from_round.min(emissions.len());
                for _ in 0..s.rounds {
                    emissions.insert(at, None);
                }
            }
        }
        ProducerScript {
            event_type: SCENARIO_TYPES[p % SCENARIO_TYPES.len()],
            emissions,
        }
    }
}

/// `x^(halves/2)` using only IEEE-exact operations (multiplication and
/// square root), so Zipf weights are bit-identical on every platform —
/// a requirement for the byte-identical regeneration of the committed
/// consistency report.
fn pow_half_steps(x: f64, halves: u32) -> f64 {
    let mut acc = 1.0;
    for _ in 0..halves / 2 {
        acc *= x;
    }
    if halves % 2 == 1 {
        acc *= x.sqrt();
    }
    acc
}

/// One producer's emission schedule: the event type it feeds and its
/// per-round emissions. `None` entries are silent rounds — the producer
/// stays connected but flushes nothing, delaying its subsequent
/// emissions relative to the other lanes.
#[derive(Clone, Debug, PartialEq)]
pub struct ProducerScript {
    pub event_type: &'static str,
    pub emissions: Vec<Option<MessageBatch>>,
}

impl ProducerScript {
    /// All messages this producer delivers, in delivery order.
    pub fn delivered(&self) -> Vec<Message> {
        self.emissions
            .iter()
            .flatten()
            .flat_map(|b| b.iter().cloned())
            .collect()
    }
}

/// A generated scenario: the config plus one script per producer.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioTrace {
    pub config: ScenarioConfig,
    pub scripts: Vec<ProducerScript>,
}

/// Measured (not configured) properties of a generated trace.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioProfile {
    /// Total delivered data messages.
    pub events: usize,
    pub inserts: usize,
    pub retractions: usize,
    /// Harness rounds (longest producer schedule).
    pub rounds: usize,
    /// Silent (`None`) emission slots across all producers.
    pub silent_rounds: usize,
    /// Worst per-producer fraction of adjacent out-of-order pairs.
    pub inversion_frac: f64,
    /// Worst per-producer backwards sync jump, in ticks.
    pub max_jump: u64,
    /// Share of inserts carrying the most common key.
    pub top_key_share: f64,
    pub distinct_keys: usize,
    /// Share of data messages from the busiest producer.
    pub top_producer_share: f64,
    /// Peak events in any 16-tick arrival window over the mean window
    /// occupancy (1.0 = perfectly uniform; large = bursty).
    pub burst_peak_ratio: f64,
}

impl ScenarioTrace {
    /// Number of harness rounds: the longest producer schedule.
    pub fn rounds(&self) -> usize {
        self.scripts
            .iter()
            .map(|s| s.emissions.len())
            .max()
            .unwrap_or(0)
    }

    /// Measure the trace (see [`ScenarioProfile`]).
    pub fn profile(&self) -> ScenarioProfile {
        let mut inserts = 0usize;
        let mut retractions = 0usize;
        let mut inversion_frac = 0.0f64;
        let mut max_jump = 0u64;
        let mut key_counts: std::collections::BTreeMap<i64, usize> = Default::default();
        let mut per_producer: Vec<usize> = Vec::new();
        let mut arrival_windows: std::collections::BTreeMap<u64, usize> = Default::default();
        let mut silent_rounds = 0usize;
        for script in &self.scripts {
            silent_rounds += script.emissions.iter().filter(|e| e.is_none()).count();
            let delivered = script.delivered();
            let (frac, jump) = disorder_profile(&delivered);
            inversion_frac = inversion_frac.max(frac);
            max_jump = max_jump.max(jump);
            let mut count = 0usize;
            for m in &delivered {
                match m {
                    Message::Insert(e) => {
                        inserts += 1;
                        count += 1;
                        if let Some(Value::Int(k)) = e.payload.get(0) {
                            *key_counts.entry(*k).or_insert(0) += 1;
                        }
                        *arrival_windows.entry(e.interval.start.0 / 16).or_insert(0) += 1;
                    }
                    Message::Retract(_) => {
                        retractions += 1;
                        count += 1;
                    }
                    Message::Cti(_) => {}
                }
            }
            per_producer.push(count);
        }
        let events = inserts + retractions;
        let top_key = key_counts.values().copied().max().unwrap_or(0);
        let peak_window = arrival_windows.values().copied().max().unwrap_or(0);
        let windows = (self.config.span / 16).max(1) as usize;
        let mean_window = inserts as f64 / windows as f64;
        ScenarioProfile {
            events,
            inserts,
            retractions,
            rounds: self.rounds(),
            silent_rounds,
            inversion_frac,
            max_jump,
            top_key_share: if inserts == 0 {
                0.0
            } else {
                top_key as f64 / inserts as f64
            },
            distinct_keys: key_counts.len(),
            top_producer_share: if events == 0 {
                0.0
            } else {
                per_producer.iter().copied().max().unwrap_or(0) as f64 / events as f64
            },
            burst_peak_ratio: if mean_window <= 0.0 {
                1.0
            } else {
                peak_window as f64 / mean_window
            },
        }
    }

    /// The one-line characterization: dial settings plus measured trace
    /// properties, so the scenario describes itself in every report.
    pub fn characterize(&self) -> String {
        let c = &self.config;
        let p = self.profile();
        let mut s = format!(
            "{}: {}p x {} ev ({} ins / {} ret), {} rounds | burst x{:.1} | \
             disorder <={} (inv {:.0}%, jump {}) | retract {:.0}% | \
             keys {} (top {:.0}%) | top producer {:.0}%",
            c.name,
            c.producers,
            p.events,
            p.inserts,
            p.retractions,
            p.rounds,
            p.burst_peak_ratio,
            c.disorder,
            p.inversion_frac * 100.0,
            p.max_jump,
            if p.events == 0 {
                0.0
            } else {
                p.retractions as f64 / p.events as f64 * 100.0
            },
            p.distinct_keys,
            p.top_key_share * 100.0,
            p.top_producer_share * 100.0,
        );
        match &c.silence {
            Some(q) => {
                s.push_str(&format!(
                    " | silence p{} @r{}+{}",
                    q.producer, q.from_round, q.rounds
                ));
            }
            None => s.push_str(" | no silence"),
        }
        s
    }

    /// FNV-1a fingerprint of the full trace (config-independent byte
    /// identity: equal fingerprints ⟺ byte-equal debug rendering).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in format!("{:?}", self.scripts).bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

/// The curated scenario gallery: seven characterized scenarios, each
/// turning one hostility dial well past the tame baseline.
pub fn gallery(seed: u64) -> Vec<ScenarioConfig> {
    vec![
        ScenarioConfig::tame("baseline", seed),
        ScenarioConfig {
            burstiness: 0.9,
            events_per_producer: 80,
            ..ScenarioConfig::tame("flash_crowd", seed ^ 0x01)
        },
        ScenarioConfig {
            disorder: 40,
            cti_period: 9,
            ..ScenarioConfig::tame("late_storm", seed ^ 0x02)
        },
        ScenarioConfig {
            retraction_rate: 0.35,
            disorder: 10,
            ..ScenarioConfig::tame("retraction_churn", seed ^ 0x03)
        },
        ScenarioConfig {
            keys: 16,
            key_skew: 1.5,
            disorder: 8,
            ..ScenarioConfig::tame("hot_keys", seed ^ 0x04)
        },
        ScenarioConfig {
            producer_skew: 4.0,
            disorder: 6,
            ..ScenarioConfig::tame("lopsided_producers", seed ^ 0x05)
        },
        ScenarioConfig {
            silence: Some(Silence {
                producer: 2,
                from_round: 4,
                rounds: 6,
            }),
            disorder: 6,
            ..ScenarioConfig::tame("silent_partner", seed ^ 0x06)
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_config_same_bytes() {
        let cfg = ScenarioConfig {
            disorder: 20,
            retraction_rate: 0.2,
            key_skew: 1.0,
            ..ScenarioConfig::tame("det", 42)
        };
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let other = ScenarioConfig {
            seed: 43,
            ..cfg.clone()
        };
        assert_ne!(a.fingerprint(), other.generate().fingerprint());
    }

    #[test]
    fn disorder_dial_deepens_measured_disorder() {
        let calm = ScenarioConfig::tame("calm", 7).generate().profile();
        let storm = ScenarioConfig {
            disorder: 40,
            ..ScenarioConfig::tame("storm", 7)
        }
        .generate()
        .profile();
        assert_eq!(calm.inversion_frac, 0.0);
        assert!(storm.inversion_frac > 0.1, "{:?}", storm);
        assert!(storm.max_jump > calm.max_jump);
    }

    #[test]
    fn skew_dials_show_up_in_the_profile() {
        let skewed = ScenarioConfig {
            keys: 16,
            key_skew: 1.5,
            ..ScenarioConfig::tame("hot", 9)
        }
        .generate()
        .profile();
        let uniform = ScenarioConfig {
            keys: 16,
            ..ScenarioConfig::tame("flat", 9)
        }
        .generate()
        .profile();
        assert!(skewed.top_key_share > uniform.top_key_share * 1.5);
        let lopsided = ScenarioConfig {
            producer_skew: 4.0,
            ..ScenarioConfig::tame("lop", 9)
        }
        .generate()
        .profile();
        assert!(lopsided.top_producer_share > 0.5);
    }

    #[test]
    fn burstiness_concentrates_arrivals() {
        let flat = ScenarioConfig::tame("flat", 3).generate().profile();
        let bursty = ScenarioConfig {
            burstiness: 0.9,
            ..ScenarioConfig::tame("bursty", 3)
        }
        .generate()
        .profile();
        assert!(bursty.burst_peak_ratio > flat.burst_peak_ratio * 1.5);
    }

    #[test]
    fn silence_inserts_quiet_rounds() {
        let cfg = ScenarioConfig {
            silence: Some(Silence {
                producer: 1,
                from_round: 2,
                rounds: 4,
            }),
            ..ScenarioConfig::tame("quiet", 5)
        };
        let trace = cfg.generate();
        let p = trace.profile();
        assert_eq!(p.silent_rounds, 4);
        assert!(trace.scripts[1].emissions[2..6].iter().all(|e| e.is_none()));
        // The silent producer still delivers everything it generated.
        let with: usize = trace.scripts[1].delivered().len();
        let without = ScenarioConfig {
            silence: None,
            ..cfg
        }
        .generate()
        .scripts[1]
            .delivered()
            .len();
        assert_eq!(with, without);
    }

    #[test]
    fn gallery_is_characterized_and_diverse() {
        let gallery = gallery(0xC1D7);
        assert!(gallery.len() >= 6);
        let mut lines = std::collections::BTreeSet::new();
        for cfg in &gallery {
            let line = cfg.generate().characterize();
            assert!(line.starts_with(&cfg.name), "{line}");
            assert!(!line.contains('\n'));
            lines.insert(line);
        }
        assert_eq!(lines.len(), gallery.len(), "characterizations collide");
    }
}
