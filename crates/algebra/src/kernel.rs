//! Compiled payload kernels: `Pred`/`Scalar` trees lifted into closures
//! that sweep whole [`PayloadColumns`] slices.
//!
//! The interpreted evaluators ([`Pred::eval_payload`],
//! [`Scalar::eval_payload`]) walk the expression tree once per row,
//! chasing one payload `Arc` per message. A [`PredKernel`] /
//! [`ScalarKernel`] walks the tree **once, at compile (query-register)
//! time**, and emits a closure over contiguous columns: a select becomes
//! one selection-bitmap sweep per run, a projection one typed gather per
//! surviving row. The common comparison shape — payload field against a
//! literal — specialises into a tight loop over a typed column with the
//! null ordering precomputed (null cells compare by type tag, a constant
//! against any fixed literal).
//!
//! # Bit-identity
//!
//! Compilation is an evaluation-strategy change only. For every predicate
//! `p`, payload columns `c` built over rows `r_0..r_n`, and every row `i`:
//! `PredKernel::compile(&p)` sweeps `out[i] ==
//! p.eval_payload(r_i)` — including NaN arithmetic, `Int`-as-`f64`
//! comparison (with its precision loss beyond 2^53), null tag ordering
//! and the type-strict `Value` equality of projected results. And/Or
//! short-circuit at column granularity where the interpreter does row by
//! row — the right operand is swept only over rows the left leaves
//! undecided (see [`PredKernel::sweep_where`]); this is verdict-identical
//! because payload evaluation is pure and total (division by zero is NaN,
//! comparison never panics).
//!
//! Kernels also carry their source expression, so a caller holding a row
//! *without* column backing (the fused pipeline's per-message path, or a
//! message re-released from an alignment buffer after its run's columns
//! were dropped) can fall back to the interpreted evaluator and land on
//! the same verdict.

use crate::expr::{CmpOp, Pred, Scalar};
use cedr_temporal::{Column, Payload, PayloadColumns, Value};
use std::cmp::Ordering;

/// A compiled sweep: fills `out` with one verdict per row, honouring an
/// optional row mask. The contract every sweep upholds: `out[i]` equals
/// the interpreter's verdict wherever the mask is absent or set, and is
/// `false` wherever the mask is unset — so a sweep's output can itself be
/// used as the mask for a later sweep (`And` chains, successive fused
/// select stages) without re-intersecting.
type SweepFn = Box<dyn Fn(&PayloadColumns, Option<&[bool]>, &mut Vec<bool>) + Send>;
type RowFn = Box<dyn Fn(&PayloadColumns, usize) -> Value + Send>;

/// A predicate compiled into a selection-bitmap sweep over payload
/// columns, next to its interpreted form for rows without column backing.
pub struct PredKernel {
    pred: Pred,
    sweep: SweepFn,
}

impl PredKernel {
    /// Compile a predicate tree into a column sweep.
    pub fn compile(pred: &Pred) -> PredKernel {
        PredKernel {
            pred: pred.clone(),
            sweep: sweep_fn(pred),
        }
    }

    /// Evaluate the predicate for every row of `cols`, writing one verdict
    /// per row into `out` (cleared first).
    pub fn sweep(&self, cols: &PayloadColumns, out: &mut Vec<bool>) {
        self.sweep_where(cols, None, out);
    }

    /// [`PredKernel::sweep`] restricted to the rows a `mask` keeps alive:
    /// `out[i]` is the interpreter's verdict where `mask[i]` (or `mask` is
    /// `None`), and `false` elsewhere — masked-out rows skip the expensive
    /// evaluation paths entirely. Because unset rows come out `false`, the
    /// output is directly usable as the mask for the next sweep, which is
    /// how a fused chain short-circuits across its select stages.
    pub fn sweep_where(&self, cols: &PayloadColumns, mask: Option<&[bool]>, out: &mut Vec<bool>) {
        (self.sweep)(cols, mask, out);
        debug_assert_eq!(out.len(), cols.rows());
    }

    /// Interpreted fallback for a single row without column backing.
    pub fn eval_row(&self, payload: &Payload) -> bool {
        self.pred.eval_payload(payload)
    }

    /// The compiled predicate (composed form, for explains and tests).
    pub fn pred(&self) -> &Pred {
        &self.pred
    }
}

impl std::fmt::Debug for PredKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PredKernel({})", self.pred)
    }
}

/// A scalar expression compiled into a per-row gather over payload
/// columns, next to its interpreted form for rows without column backing.
pub struct ScalarKernel {
    expr: Scalar,
    eval: RowFn,
}

impl ScalarKernel {
    /// Compile a scalar tree into a column gather.
    pub fn compile(expr: &Scalar) -> ScalarKernel {
        ScalarKernel {
            expr: expr.clone(),
            eval: row_fn(expr),
        }
    }

    /// Evaluate the expression on row `i` of `cols`.
    pub fn eval_col(&self, cols: &PayloadColumns, i: usize) -> Value {
        (self.eval)(cols, i)
    }

    /// Interpreted fallback for a single row without column backing.
    pub fn eval_row(&self, payload: &Payload) -> Value {
        self.expr.eval_payload(payload)
    }

    /// The compiled expression (composed form, for explains and tests).
    pub fn expr(&self) -> &Scalar {
        &self.expr
    }
}

impl std::fmt::Debug for ScalarKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ScalarKernel({})", self.expr)
    }
}

/// The single-event payload column a scalar reads, if it is a bare read:
/// `Field(j)` and `Of(0, j)`.
fn field_of(s: &Scalar) -> Option<usize> {
    match s {
        Scalar::Field(j) | Scalar::Of(0, j) => Some(*j),
        _ => None,
    }
}

/// AND the mask into a fully-computed verdict buffer (restores the
/// false-outside-mask invariant after a branchless full-column loop).
fn apply_mask(mask: Option<&[bool]>, out: &mut [bool]) {
    if let Some(m) = mask {
        for (o, m) in out.iter_mut().zip(m) {
            *o = *o && *m;
        }
    }
}

fn sweep_fn(p: &Pred) -> SweepFn {
    match p {
        Pred::True => Box::new(|cols, mask, out| {
            out.clear();
            match mask {
                Some(m) => out.extend_from_slice(m),
                None => out.resize(cols.rows(), true),
            }
        }),
        Pred::Not(a) => {
            let ka = sweep_fn(a);
            Box::new(move |cols, mask, out| {
                ka(cols, mask, out);
                for b in out.iter_mut() {
                    *b = !*b;
                }
                // Inversion flips masked-out rows to true; pin them back.
                apply_mask(mask, out);
            })
        }
        // Column-granularity short-circuit, verdict-identical to the
        // interpreter's row-by-row short-circuit because evaluation is
        // pure and total: the right operand is swept only over the rows
        // the left operand leaves undecided.
        Pred::And(a, b) => {
            let (ka, kb) = (sweep_fn(a), sweep_fn(b));
            Box::new(move |cols, mask, out| {
                ka(cols, mask, out);
                // out = mask ∧ a, so it is exactly b's mask; the masked
                // rhs sweep then produces mask ∧ a ∧ b directly.
                let mut rhs = Vec::new();
                kb(cols, Some(out), &mut rhs);
                std::mem::swap(out, &mut rhs);
            })
        }
        Pred::Or(a, b) => {
            let (ka, kb) = (sweep_fn(a), sweep_fn(b));
            Box::new(move |cols, mask, out| {
                ka(cols, mask, out);
                // b matters only where a is false and the mask is set.
                let undecided: Vec<bool> = match mask {
                    Some(m) => m.iter().zip(out.iter()).map(|(m, o)| *m && !*o).collect(),
                    None => out.iter().map(|o| !*o).collect(),
                };
                let mut rhs = Vec::new();
                kb(cols, Some(&undecided), &mut rhs);
                for (o, r) in out.iter_mut().zip(rhs) {
                    *o = *o || r;
                }
            })
        }
        Pred::Cmp(a, op, b) => match (field_of(a), &b, field_of(b), &a) {
            // field ⋈ literal and literal ⋈ field: the typed tight loop.
            (Some(j), Scalar::Lit(lit), _, _) => cmp_field_lit(j, *op, lit.clone(), false),
            (_, _, Some(j), Scalar::Lit(lit)) => cmp_field_lit(j, *op, lit.clone(), true),
            // General shape: compiled row gathers on both sides, skipped
            // entirely on masked-out rows.
            _ => {
                let (ka, kb, op) = (row_fn(a), row_fn(b), *op);
                Box::new(move |cols, mask, out| {
                    out.clear();
                    match mask {
                        Some(m) => out.extend(
                            (0..cols.rows())
                                .map(|i| m[i] && op.apply(ka(cols, i).compare(&kb(cols, i)))),
                        ),
                        None => out.extend(
                            (0..cols.rows()).map(|i| op.apply(ka(cols, i).compare(&kb(cols, i)))),
                        ),
                    }
                })
            }
        },
    }
}

/// The specialised comparison sweep for `payload[j] ⋈ literal` (or, with
/// `flip`, `literal ⋈ payload[j]`). Null cells compare as `Value::Null`
/// against the literal — a constant ordering, hoisted out of the loop.
/// The typed loops stay branchless (cheaper than testing the mask per
/// row); the mask is re-applied in one pass at the end.
fn cmp_field_lit(j: usize, op: CmpOp, lit: Value, flip: bool) -> SweepFn {
    Box::new(move |cols, mask, out| {
        let rows = cols.rows();
        out.clear();
        out.reserve(rows);
        let orient = |ord: Ordering| if flip { ord.reverse() } else { ord };
        let null_ord = orient(Value::Null.compare(&lit));
        let push_cmp = |out: &mut Vec<bool>, ord: Ordering| out.push(op.apply(orient(ord)));
        match cols.col(j) {
            None | Some(Column::Null) => out.resize(rows, op.apply(null_ord)),
            Some(Column::Int { vals, nulls }) => match lit.as_f64() {
                // The interpreter compares Int×numeric through `as_f64`
                // (Value::compare), so the loop does exactly that —
                // including the precision loss beyond 2^53.
                Some(c) if !c.is_nan() => {
                    for (v, null) in vals.iter().zip(nulls) {
                        if *null {
                            out.push(op.apply(null_ord));
                        } else {
                            // Neither side is NaN, so partial_cmp is total here.
                            push_cmp(out, (*v as f64).partial_cmp(&c).expect("non-NaN"));
                        }
                    }
                }
                _ => {
                    for (v, null) in vals.iter().zip(nulls) {
                        if *null {
                            out.push(op.apply(null_ord));
                        } else {
                            push_cmp(out, Value::Int(*v).compare(&lit));
                        }
                    }
                }
            },
            Some(Column::Float { vals, nulls }) => {
                // NaN cells take Value::compare's canonical-bits fallback.
                for (v, null) in vals.iter().zip(nulls) {
                    if *null {
                        out.push(op.apply(null_ord));
                    } else {
                        push_cmp(out, Value::Float(*v).compare(&lit));
                    }
                }
            }
            Some(Column::Str(vals)) => match &lit {
                Value::Str(s) => {
                    for v in vals {
                        match v {
                            Some(v) => push_cmp(out, v.as_ref().cmp(s.as_ref())),
                            None => out.push(op.apply(null_ord)),
                        }
                    }
                }
                _ => {
                    for v in vals {
                        match v {
                            Some(v) => push_cmp(out, Value::Str(v.clone()).compare(&lit)),
                            None => out.push(op.apply(null_ord)),
                        }
                    }
                }
            },
            Some(Column::Values(vals)) => {
                for v in vals {
                    push_cmp(out, v.compare(&lit));
                }
            }
        }
        apply_mask(mask, out);
    })
}

fn row_fn(s: &Scalar) -> RowFn {
    match s {
        Scalar::Field(j) | Scalar::Of(0, j) => {
            let j = *j;
            Box::new(move |cols, i| cols.value_at(j, i))
        }
        Scalar::Of(..) => Box::new(|_, _| Value::Null),
        Scalar::Lit(v) => {
            let v = v.clone();
            Box::new(move |_, _| v.clone())
        }
        Scalar::Add(a, b) => arith_fn(a, b, |x, y| x + y),
        Scalar::Sub(a, b) => arith_fn(a, b, |x, y| x - y),
        Scalar::Mul(a, b) => arith_fn(a, b, |x, y| x * y),
        Scalar::Div(a, b) => arith_fn(a, b, |x, y| if y == 0.0 { f64::NAN } else { x / y }),
    }
}

fn arith_fn(a: &Scalar, b: &Scalar, f: impl Fn(f64, f64) -> f64 + Send + 'static) -> RowFn {
    let (ka, kb) = (row_fn(a), row_fn(b));
    Box::new(move |cols, i| Scalar::arith(ka(cols, i), kb(cols, i), &f))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(vals: Vec<Value>) -> Payload {
        Payload::from_values(vals)
    }

    /// A row set exercising every column layout, raggedness, NaN, big
    /// ints beyond 2^53, explicit nulls and payload-less rows.
    fn fixture() -> Vec<Option<Payload>> {
        vec![
            Some(p(vec![
                Value::Int(3),
                Value::Float(2.5),
                Value::str("alpha"),
                Value::Int(10),
            ])),
            Some(p(vec![
                Value::Int(-7),
                Value::Float(f64::NAN),
                Value::str("beta"),
                Value::Float(4.0),
            ])),
            Some(p(vec![Value::Null, Value::Float(0.0)])),
            Some(p(vec![
                Value::Int(9_007_199_254_740_993), // 2^53 + 1
                Value::Float(-0.0),
                Value::str("alpha"),
                Value::Bool(true),
            ])),
            Some(p(vec![])),
            None,
        ]
    }

    fn cols_of(rows: &[Option<Payload>]) -> PayloadColumns {
        PayloadColumns::from_rows(rows.iter().map(|r| r.as_ref()))
    }

    /// The pin: sweep verdicts equal the interpreter row by row (a
    /// missing payload evaluates as the empty payload — all reads null).
    fn assert_pred_matches(pred: &Pred, rows: &[Option<Payload>]) {
        let cols = cols_of(rows);
        let kernel = PredKernel::compile(pred);
        let mut bits = Vec::new();
        kernel.sweep(&cols, &mut bits);
        assert_eq!(bits.len(), rows.len());
        let empty = Payload::empty();
        for (i, row) in rows.iter().enumerate() {
            let payload = row.as_ref().unwrap_or(&empty);
            assert_eq!(
                bits[i],
                pred.eval_payload(payload),
                "row {i} diverged for {pred}"
            );
            assert_eq!(kernel.eval_row(payload), bits[i], "row fallback {i}");
        }
    }

    fn assert_scalar_matches(expr: &Scalar, rows: &[Option<Payload>]) {
        let cols = cols_of(rows);
        let kernel = ScalarKernel::compile(expr);
        let empty = Payload::empty();
        for (i, row) in rows.iter().enumerate() {
            let payload = row.as_ref().unwrap_or(&empty);
            assert_eq!(
                kernel.eval_col(&cols, i),
                expr.eval_payload(payload),
                "row {i} diverged for {expr}"
            );
        }
    }

    #[test]
    fn field_vs_literal_sweeps_match_interpreter_for_every_op() {
        let rows = fixture();
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for lit in [
                Value::Int(3),
                Value::Int(9_007_199_254_740_992), // 2^53: f64-rounded twin
                Value::Float(2.5),
                Value::Float(f64::NAN),
                Value::str("alpha"),
                Value::Null,
                Value::Bool(true),
            ] {
                let fwd = Pred::cmp(Scalar::Field(0), op, Scalar::Lit(lit.clone()));
                assert_pred_matches(&fwd, &rows);
                // Flipped orientation takes the reversed-ordering path.
                let rev = Pred::cmp(Scalar::Lit(lit.clone()), op, Scalar::Field(0));
                assert_pred_matches(&rev, &rows);
                for j in 1..5 {
                    let p = Pred::cmp(Scalar::Field(j), op, Scalar::Lit(lit.clone()));
                    assert_pred_matches(&p, &rows);
                }
            }
        }
    }

    #[test]
    fn field_vs_field_and_arithmetic_comparisons_match() {
        let rows = fixture();
        for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Ge] {
            assert_pred_matches(&Pred::cmp(Scalar::Field(0), op, Scalar::Field(3)), &rows);
            assert_pred_matches(&Pred::cmp(Scalar::Field(1), op, Scalar::Field(1)), &rows);
            let sum = Scalar::Add(Box::new(Scalar::Field(0)), Box::new(Scalar::Field(1)));
            assert_pred_matches(&Pred::cmp(sum, op, Scalar::lit(1.0)), &rows);
        }
    }

    #[test]
    fn connectives_combine_bitmaps_like_short_circuit_eval() {
        let rows = fixture();
        let a = Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(0i64));
        let b = Pred::cmp(Scalar::Field(2), CmpOp::Eq, Scalar::lit("alpha"));
        assert_pred_matches(&Pred::And(Box::new(a.clone()), Box::new(b.clone())), &rows);
        assert_pred_matches(&Pred::Or(Box::new(a.clone()), Box::new(b.clone())), &rows);
        assert_pred_matches(&Pred::Not(Box::new(a)), &rows);
        assert_pred_matches(&Pred::True, &rows);
    }

    #[test]
    fn masked_sweeps_match_the_interpreter_on_kept_rows_and_are_false_elsewhere() {
        let rows = fixture();
        let cols = cols_of(&rows);
        let a = Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(0i64));
        let b = Pred::cmp(Scalar::Field(2), CmpOp::Eq, Scalar::lit("alpha"));
        let sum = Scalar::Add(Box::new(Scalar::Field(0)), Box::new(Scalar::Field(3)));
        let c = Pred::cmp(sum, CmpOp::Lt, Scalar::lit(10.0));
        let preds = [
            Pred::True,
            a.clone(),
            Pred::And(Box::new(a.clone()), Box::new(b.clone())),
            Pred::Or(Box::new(a.clone()), Box::new(b.clone())),
            Pred::Not(Box::new(Pred::Or(Box::new(a), Box::new(c.clone())))),
            c,
        ];
        let empty = Payload::empty();
        // Every 6-row mask pattern, including all-unset and all-set.
        for pattern in 0u32..64 {
            let mask: Vec<bool> = (0..rows.len()).map(|i| pattern & (1 << i) != 0).collect();
            for pred in &preds {
                let mut bits = Vec::new();
                PredKernel::compile(pred).sweep_where(&cols, Some(&mask), &mut bits);
                for (i, row) in rows.iter().enumerate() {
                    let want = mask[i] && pred.eval_payload(row.as_ref().unwrap_or(&empty));
                    assert_eq!(bits[i], want, "row {i}, mask {pattern:06b}, pred {pred}");
                }
            }
        }
    }

    #[test]
    fn tuple_context_reads_are_null_in_the_single_event_context() {
        let rows = fixture();
        assert_scalar_matches(&Scalar::Of(1, 0), &rows);
        assert_pred_matches(
            &Pred::cmp(Scalar::Of(2, 1), CmpOp::Le, Scalar::lit(3i64)),
            &rows,
        );
    }

    #[test]
    fn scalar_gathers_match_interpreter_including_nan_division() {
        let rows = fixture();
        assert_scalar_matches(&Scalar::Field(0), &rows);
        assert_scalar_matches(&Scalar::Field(9), &rows);
        assert_scalar_matches(&Scalar::Lit(Value::str("k")), &rows);
        let div = Scalar::Div(Box::new(Scalar::Field(0)), Box::new(Scalar::Field(1)));
        assert_scalar_matches(&div, &rows);
        // Division by zero is NaN (row 2 has Float(0.0) in column 1).
        let cols = cols_of(&rows);
        match ScalarKernel::compile(&div).eval_col(&cols, 2) {
            Value::Null => {} // Null numerator: arith yields Null
            other => panic!("expected Null from null/0, got {other:?}"),
        }
        let zero_div = Scalar::Div(Box::new(Scalar::Field(1)), Box::new(Scalar::Field(1)));
        match ScalarKernel::compile(&zero_div).eval_col(&cols, 2) {
            Value::Float(f) => assert!(f.is_nan(), "0/0 is NaN"),
            other => panic!("expected NaN, got {other:?}"),
        }
    }

    #[test]
    fn composition_relates_projected_and_original_payloads() {
        // p ∘ π on the original payload == p on the projected payload.
        let rows = fixture();
        let proj = vec![
            Scalar::Field(1),
            Scalar::Add(Box::new(Scalar::Field(0)), Box::new(Scalar::Field(3))),
            Scalar::Lit(Value::str("tag")),
        ];
        let after: Vec<Pred> = vec![
            Pred::cmp(Scalar::Field(0), CmpOp::Gt, Scalar::lit(1.0)),
            Pred::cmp(Scalar::Field(1), CmpOp::Le, Scalar::Field(0)),
            Pred::cmp(Scalar::Field(2), CmpOp::Eq, Scalar::lit("tag")),
            Pred::cmp(Scalar::Field(7), CmpOp::Eq, Scalar::Lit(Value::Null)),
            Pred::cmp(Scalar::Of(1, 0), CmpOp::Ne, Scalar::lit(0i64)),
        ];
        let empty = Payload::empty();
        for row in &rows {
            let payload = row.as_ref().unwrap_or(&empty);
            let projected =
                Payload::from_values(proj.iter().map(|x| x.eval_payload(payload)).collect());
            for pred in &after {
                assert_eq!(
                    pred.compose_after_project(&proj).eval_payload(payload),
                    pred.eval_payload(&projected),
                    "composition diverged for {pred}"
                );
            }
            // And through a second projection layer.
            let proj2 = vec![Scalar::Field(2), Scalar::Field(1)];
            let projected2 =
                Payload::from_values(proj2.iter().map(|x| x.eval_payload(&projected)).collect());
            for pred in &after {
                let composed = pred
                    .compose_after_project(&proj2)
                    .compose_after_project(&proj);
                assert_eq!(
                    composed.eval_payload(payload),
                    pred.eval_payload(&projected2),
                    "two-layer composition diverged for {pred}"
                );
            }
        }
    }

    #[test]
    fn composed_kernels_sweep_the_original_columns() {
        let rows = fixture();
        let proj = vec![
            Scalar::Mul(Box::new(Scalar::Field(0)), Box::new(Scalar::lit(2i64))),
            Scalar::Field(2),
        ];
        let pred = Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(6i64));
        let composed = pred.compose_after_project(&proj);
        let cols = cols_of(&rows);
        let mut bits = Vec::new();
        PredKernel::compile(&composed).sweep(&cols, &mut bits);
        let empty = Payload::empty();
        for (i, row) in rows.iter().enumerate() {
            let payload = row.as_ref().unwrap_or(&empty);
            let projected =
                Payload::from_values(proj.iter().map(|x| x.eval_payload(payload)).collect());
            assert_eq!(bits[i], pred.eval_payload(&projected), "row {i}");
        }
    }
}
