//! AlterLifetime (Definition 12) and its derived window operators.
//!
//! `Π_{fVs, f∆}(S) = {(|fVs(e)|, |fVs(e)| + |f∆(e)|, e.Payload) | e ∈ E(S)}`
//!
//! AlterLifetime maps events from one valid-time domain to another: the new
//! `Vs` comes from `fVs`, the new lifetime duration from `f∆`. It is the
//! paper's one **non view-update compliant** (but still well-behaved)
//! operator; from it the paper derives:
//!
//! * moving windows `W_wl(S) = Π_{Vs, min(Ve−Vs, wl)}(S)`;
//! * hopping windows via integer division;
//! * `Inserts(S) = Π_{Vs, ∞}(S)` and `Deletes(S) = Π_{Ve, ∞}(S)`.

use crate::EventSet;
use cedr_temporal::{Duration, Event, Interval, TimePoint};
use serde::{Deserialize, Serialize};

/// The `fVs` function: where the new lifetime starts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum VsFn {
    /// Keep `Vs` (windows).
    Vs,
    /// Use `Ve` (the `Deletes` separation).
    Ve,
    /// Snap `Vs` down to a multiple of the period (hopping windows).
    HopVs { period: u64 },
    /// A constant time point.
    Const(TimePoint),
}

impl VsFn {
    pub fn eval(&self, e: &Event) -> TimePoint {
        self.eval_interval(e.interval)
    }

    /// `fVs` only ever reads the validity interval, so it can be evaluated
    /// without an event in hand (the fused pipeline's interval-only form).
    pub fn eval_interval(&self, interval: Interval) -> TimePoint {
        match self {
            VsFn::Vs => interval.start,
            VsFn::Ve => interval.end,
            VsFn::HopVs { period } => {
                let p = (*period).max(1);
                if interval.start.is_infinite() {
                    interval.start
                } else {
                    TimePoint::new(interval.start.0 / p * p)
                }
            }
            VsFn::Const(t) => *t,
        }
    }
}

/// The `f∆` function: the new lifetime duration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeltaFn {
    /// A constant duration.
    Const(Duration),
    /// Unbounded (`∞`): the inserts/deletes separation.
    Infinite,
    /// `min(Ve − Vs, wl)`: the moving-window clip.
    WindowClip { wl: Duration },
    /// Keep the original duration (`Ve − Vs`): the identity lifetime.
    Original,
}

impl DeltaFn {
    pub fn eval(&self, e: &Event) -> Duration {
        self.eval_interval(e.interval)
    }

    /// Interval-only form of [`DeltaFn::eval`]; see [`VsFn::eval_interval`].
    pub fn eval_interval(&self, interval: Interval) -> Duration {
        match self {
            DeltaFn::Const(d) => *d,
            DeltaFn::Infinite => Duration::INFINITE,
            DeltaFn::WindowClip { wl } => {
                let orig = interval.duration();
                if orig <= *wl {
                    orig
                } else {
                    *wl
                }
            }
            DeltaFn::Original => interval.duration(),
        }
    }
}

/// Definition 12: `Π_{fVs, f∆}(S)`.
///
/// Identity, root time and lineage pass through unchanged — AlterLifetime is
/// "a constrained form of project on the temporal fields".
pub fn alter_lifetime(input: &[Event], fvs: VsFn, fdelta: DeltaFn) -> EventSet {
    input
        .iter()
        .map(|e| {
            let vs = fvs.eval(e);
            let ve = vs + fdelta.eval(e);
            Event {
                id: e.id,
                interval: Interval::new(vs, ve),
                root_time: e.root_time,
                lineage: e.lineage.clone(),
                payload: e.payload.clone(),
            }
        })
        .collect()
}

/// The moving window `W_wl(S) = Π_{Vs, min(Ve−Vs, wl)}(S)`: clips each
/// validity interval to at most `wl`.
pub fn moving_window(input: &[Event], wl: Duration) -> EventSet {
    alter_lifetime(input, VsFn::Vs, DeltaFn::WindowClip { wl })
}

/// A hopping window: lifetimes snap to hop boundaries of `period` ticks and
/// extend for `size` ticks ("one can similarly define hopping windows using
/// integer division").
pub fn hopping_window(input: &[Event], period: u64, size: Duration) -> EventSet {
    alter_lifetime(input, VsFn::HopVs { period }, DeltaFn::Const(size))
}

/// `Inserts(S) = Π_{Vs, ∞}(S)`.
pub fn inserts(input: &[Event]) -> EventSet {
    alter_lifetime(input, VsFn::Vs, DeltaFn::Infinite)
}

/// `Deletes(S) = Π_{Ve, ∞}(S)`.
pub fn deletes(input: &[Event]) -> EventSet {
    alter_lifetime(input, VsFn::Ve, DeltaFn::Infinite)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedr_temporal::interval::{iv, iv_inf};
    use cedr_temporal::time::{dur, t};
    use cedr_temporal::{EventId, Payload};

    fn ev(id: u64, a: u64, b: u64) -> Event {
        Event::primitive(EventId(id), iv(a, b), Payload::empty())
    }

    #[test]
    fn window_clips_long_lifetimes_only() {
        let input = vec![ev(1, 0, 100), ev(2, 10, 12)];
        let out = moving_window(&input, dur(5));
        assert_eq!(out[0].interval, iv(0, 5));
        assert_eq!(out[1].interval, iv(10, 12), "short lifetimes unchanged");
    }

    #[test]
    fn window_of_infinite_lifetime() {
        let e = Event::primitive(EventId(1), iv_inf(3), Payload::empty());
        let out = moving_window(&[e], dur(10));
        assert_eq!(out[0].interval, iv(3, 13));
    }

    #[test]
    fn inserts_extends_to_infinity_from_vs() {
        let out = inserts(&[ev(1, 4, 9)]);
        assert_eq!(out[0].interval, iv_inf(4));
    }

    #[test]
    fn deletes_extends_to_infinity_from_ve() {
        let out = deletes(&[ev(1, 4, 9)]);
        assert_eq!(out[0].interval, iv_inf(9));
    }

    #[test]
    fn hopping_window_snaps_to_boundaries() {
        let input = vec![ev(1, 13, 14), ev(2, 19, 20), ev(3, 20, 21)];
        let out = hopping_window(&input, 10, dur(10));
        assert_eq!(out[0].interval, iv(10, 20));
        assert_eq!(out[1].interval, iv(10, 20));
        assert_eq!(out[2].interval, iv(20, 30));
    }

    #[test]
    fn identity_and_lineage_pass_through() {
        let mut e = ev(7, 1, 5);
        e.root_time = t(0);
        let out = alter_lifetime(&[e.clone()], VsFn::Vs, DeltaFn::Original);
        assert_eq!(out[0].id, e.id);
        assert_eq!(out[0].root_time, t(0));
        assert_eq!(out[0].interval, e.interval);
    }

    #[test]
    fn const_vs_relocates_events() {
        let out = alter_lifetime(&[ev(1, 5, 9)], VsFn::Const(t(100)), DeltaFn::Const(dur(2)));
        assert_eq!(out[0].interval, iv(100, 102));
    }

    #[test]
    fn alter_lifetime_is_not_view_update_compliant() {
        // The Definition 11 counterexample: one event [0,10) vs the same
        // payload chopped into [0,5)+[5,10). Equal after `*`, but W_3
        // produces [0,3) vs [0,3)+[5,8): different coalesced states.
        use crate::to_table;
        let whole = vec![ev(1, 0, 10)];
        let chopped = vec![ev(2, 0, 5), ev(3, 5, 10)];
        assert!(to_table(&whole).star_equal(&to_table(&chopped)));
        let w1 = moving_window(&whole, dur(3));
        let w2 = moving_window(&chopped, dur(3));
        assert!(!to_table(&w1).star_equal(&to_table(&w2)));
    }
}
