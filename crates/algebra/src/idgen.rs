//! The `idgen` pairing function (Section 3.3.2).
//!
//! "In order to generate ID for the output events of an operator, we need a
//! pairing function `idgen`, which takes a variable number of input IDs, and
//! produces an ID. It has the property that the different sets of input IDs
//! will generate different output IDs."
//!
//! We realise `idgen` as an order-sensitive SplitMix64 fold. A 64-bit hash
//! cannot be literally injective, but collisions are vanishingly unlikely at
//! workload scale; correctness-critical paths additionally carry the exact
//! `cbt[]` lineage (see `cedr_temporal::Lineage`), so tests never depend on
//! injectivity.

use cedr_temporal::EventId;

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The pairing function over contributor IDs (order sensitive).
pub fn idgen(ids: &[EventId]) -> EventId {
    let mut acc: u64 = 0xCED4_2007; // CEDR, CIDR 2007
    for id in ids {
        acc = splitmix64(acc ^ id.0).wrapping_add(0x9E37_79B9_7F4A_7C15);
    }
    EventId(splitmix64(acc))
}

/// A tagged two-argument variant used for synthesised events that have no
/// contributor lineage (aggregate/difference segments): mixes an operator
/// tag with an arbitrary discriminator.
pub fn idgen2(tag: u64, discriminator: u64) -> EventId {
    EventId(splitmix64(splitmix64(tag) ^ discriminator))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn distinct_inputs_give_distinct_outputs() {
        let mut seen = HashSet::new();
        for a in 0..50u64 {
            for b in 0..50u64 {
                let id = idgen(&[EventId(a), EventId(b)]);
                assert!(seen.insert(id), "collision at ({a},{b})");
            }
        }
    }

    #[test]
    fn idgen_is_order_sensitive() {
        let ab = idgen(&[EventId(1), EventId(2)]);
        let ba = idgen(&[EventId(2), EventId(1)]);
        assert_ne!(ab, ba);
    }

    #[test]
    fn idgen_is_arity_sensitive() {
        // [1] vs [1,0] vs [1,0,0] must all differ.
        let a = idgen(&[EventId(1)]);
        let b = idgen(&[EventId(1), EventId(0)]);
        let c = idgen(&[EventId(1), EventId(0), EventId(0)]);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn idgen_is_deterministic() {
        assert_eq!(
            idgen(&[EventId(7), EventId(9)]),
            idgen(&[EventId(7), EventId(9)])
        );
        assert_eq!(idgen2(3, 14), idgen2(3, 14));
        assert_ne!(idgen2(3, 14), idgen2(4, 14));
    }
}
