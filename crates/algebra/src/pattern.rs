//! The WHEN-clause pattern operators (Section 3.3.2), with predicate
//! injection (Section 3.2) and instance selection/consumption (SC modes).
//!
//! Denotations are transcribed from the paper's two operator tables:
//!
//! ```text
//! ATLEAST(n, E1..Ek, w)  ≡ {(id, ein.Os, ein.Oe, ein.Vs, ei1.Vs+w, [ei1..ein]; p…)
//!                           | ei1.Vs<…<ein.Vs ∧ ein.Vs−ei1.Vs ≤ w ∧ slots distinct}
//! ALL(E1..Ek, w)         ≡ ATLEAST(k, E1..Ek, w)
//! ANY(E1..Ek)            ≡ ATLEAST(1, E1..Ek, 1)
//! SEQUENCE(E1..Ek, w)    ≡ {(id, ek.Os, ek.Oe, ek.Vs, e1.Vs+w, rt, [e1..ek]; p…)
//!                           | e1.Vs<…<ek.Vs ∧ ek.Vs−e1.Vs ≤ w}
//! UNLESS(E1, E2, w)      ≡ {(e1.ID, …, e1.Vs, e1.Vs+w, e1.rt, [e1]; e1.p)
//!                           | ¬∃e2: e1.Vs < e2.Vs < e1.Vs+w}
//! NOT(E, SEQUENCE(…,w))  ≡ {es ∈ SEQUENCE | ¬∃e: es.cbt[1].Vs < e.Vs < es.cbt[k].Vs}
//! CANCEL-WHEN(E1, E2)    ≡ {e1 | ¬∃e2: e1.rt < e2.Vs < e1.Vs}
//! ```
//!
//! Predicate injection: the WHERE clause's parameterized predicates are
//! placed *inside* these denotations — a tuple only matches (and an `e2`
//! only negates) if the predicate holds for it.

use crate::expr::Pred;
use crate::idgen::idgen;
use crate::EventSet;
use cedr_temporal::{Duration, Event, EventId, Interval, Lineage, Payload, TimePoint};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Instance selection policy for one operator input (Section 3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Selection {
    /// Every qualifying instance participates (no restriction).
    #[default]
    Each,
    /// Among matches completed by the same trigger event, prefer the
    /// *earliest* instance in this slot.
    First,
    /// Prefer the *most recent* instance in this slot.
    MostRecent,
}

/// Instance consumption policy for one operator input.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Consumption {
    /// Instances may contribute to any number of future outputs.
    #[default]
    Reuse,
    /// Once an instance has produced output it is consumed and "will never
    /// be involved in producing future output".
    Consume,
}

/// The SC mode of one operator input parameter. Decoupled from operator
/// semantics and attached to inputs, per Section 3.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ScMode {
    pub selection: Selection,
    pub consumption: Consumption,
}

impl ScMode {
    pub const EACH_REUSE: ScMode = ScMode {
        selection: Selection::Each,
        consumption: Consumption::Reuse,
    };

    pub fn new(selection: Selection, consumption: Consumption) -> Self {
        ScMode {
            selection,
            consumption,
        }
    }
}

/// A candidate pattern match: the contributor tuple (in declared slot
/// order; `None` for slots an ATLEAST subset skipped) and the composite
/// output event.
#[derive(Clone, Debug)]
pub struct PatternMatch {
    pub contributors: Vec<Option<Event>>,
    pub output: Event,
}

/// Shared placeholder for unselected slots during predicate evaluation:
/// its payload is empty, so predicates touching it see `Null`.
fn placeholder() -> Event {
    Event::primitive(
        EventId(u64::MAX),
        Interval::empty_at(TimePoint::ZERO),
        Payload::empty(),
    )
}

fn eval_pred(pred: &Pred, contributors: &[Option<Event>]) -> bool {
    let ph = placeholder();
    let tuple: Vec<&Event> = contributors
        .iter()
        .map(|c| c.as_ref().unwrap_or(&ph))
        .collect();
    pred.eval_tuple(&tuple)
}

/// Matches whose composite lifetime `[ein.Vs, ei1.Vs + w)` is empty — the
/// exact-boundary case `ein.Vs − ei1.Vs = w` — describe no state in the
/// unitemporal model and are dropped by the enumeration functions.
fn compose_output(chosen: &[(usize, &Event)], w: Duration) -> Event {
    // `chosen` is in Vs order: first = ei1, last = ein.
    let ids: Vec<EventId> = chosen.iter().map(|(_, e)| e.id).collect();
    let first = chosen.first().expect("non-empty match").1;
    let last = chosen.last().expect("non-empty match").1;
    let rt = chosen
        .iter()
        .map(|(_, e)| e.root_time)
        .min()
        .expect("non-empty match");
    Event::composite(
        idgen(&ids),
        Interval::new(last.vs(), first.vs() + w),
        rt,
        Lineage::of(ids.clone()),
        Payload::concat_all(chosen.iter().map(|(_, e)| &e.payload)),
    )
}

/// SEQUENCE(E1, …, Ek, w) with predicate injection, returning full matches.
pub fn sequence_matches(inputs: &[EventSet], w: Duration, pred: &Pred) -> Vec<PatternMatch> {
    let k = inputs.len();
    if k == 0 {
        return Vec::new();
    }
    // Sort each slot by Vs for scope pruning.
    let mut slots: Vec<Vec<&Event>> = inputs
        .iter()
        .map(|s| {
            let mut v: Vec<&Event> = s.iter().collect();
            v.sort_by_key(|e| (e.vs(), e.id));
            v
        })
        .collect();
    for slot in &mut slots {
        slot.retain(|e| !e.interval.is_empty());
    }

    let mut out = Vec::new();
    let mut stack: Vec<&Event> = Vec::with_capacity(k);

    fn recurse<'a>(
        slots: &[Vec<&'a Event>],
        depth: usize,
        w: Duration,
        pred: &Pred,
        stack: &mut Vec<&'a Event>,
        out: &mut Vec<PatternMatch>,
    ) {
        if depth == slots.len() {
            let contributors: Vec<Option<Event>> =
                stack.iter().map(|e| Some((*e).clone())).collect();
            if !eval_pred(pred, &contributors) {
                return;
            }
            let chosen: Vec<(usize, &Event)> =
                stack.iter().enumerate().map(|(i, e)| (i, *e)).collect();
            let output = compose_output(&chosen, w);
            if output.interval.is_empty() {
                return; // boundary match: vacuous lifetime
            }
            out.push(PatternMatch {
                contributors,
                output,
            });
            return;
        }
        let min_vs = stack.last().map(|e| e.vs());
        let deadline = stack.first().map(|e| e.vs() + w);
        for e in &slots[depth] {
            if let Some(m) = min_vs {
                if e.vs() <= m {
                    continue;
                }
            }
            if let Some(d) = deadline {
                if e.vs() > d {
                    break;
                }
                // The constraint is ek.Vs − e1.Vs ≤ w, i.e. e.Vs ≤ e1.Vs + w.
            }
            stack.push(e);
            recurse(slots, depth + 1, w, pred, stack, out);
            stack.pop();
        }
    }

    recurse(&slots, 0, w, pred, &mut stack, &mut out);
    out
}

/// SEQUENCE(E1, …, Ek, w): the composite output events.
pub fn sequence(inputs: &[EventSet], w: Duration, pred: &Pred) -> EventSet {
    sequence_matches(inputs, w, pred)
        .into_iter()
        .map(|m| m.output)
        .collect()
}

/// ATLEAST(n, E1, …, Ek, w) with predicate injection, returning matches.
///
/// Chooses `n` distinct slots, one event per chosen slot, with strictly
/// increasing `Vs` (ties excluded per the denotation) and scope `w`.
/// Contributor tuples place each event at its *declared* slot; unchosen
/// slots are `None` (predicates over them see `Null`).
pub fn atleast_matches(
    n: usize,
    inputs: &[EventSet],
    w: Duration,
    pred: &Pred,
) -> Vec<PatternMatch> {
    let k = inputs.len();
    if n == 0 || n > k {
        return Vec::new();
    }
    let mut out = Vec::new();
    // Enumerate n-subsets of slots.
    let mut subset: Vec<usize> = Vec::with_capacity(n);

    #[allow(clippy::too_many_arguments)]
    fn choose_slots(
        k: usize,
        n: usize,
        start: usize,
        subset: &mut Vec<usize>,
        inputs: &[EventSet],
        w: Duration,
        pred: &Pred,
        out: &mut Vec<PatternMatch>,
    ) {
        if subset.len() == n {
            enumerate_events(subset, inputs, w, pred, out);
            return;
        }
        for s in start..k {
            subset.push(s);
            choose_slots(k, n, s + 1, subset, inputs, w, pred, out);
            subset.pop();
        }
    }

    fn enumerate_events(
        subset: &[usize],
        inputs: &[EventSet],
        w: Duration,
        pred: &Pred,
        out: &mut Vec<PatternMatch>,
    ) {
        // Cartesian product over the chosen slots.
        let mut picks: Vec<&Event> = Vec::with_capacity(subset.len());
        fn rec<'a>(
            subset: &[usize],
            inputs: &'a [EventSet],
            idx: usize,
            picks: &mut Vec<&'a Event>,
            w: Duration,
            pred: &Pred,
            out: &mut Vec<PatternMatch>,
        ) {
            if idx == subset.len() {
                // Order the picks by Vs; require strict increase and scope.
                let mut ordered: Vec<(usize, &Event)> =
                    subset.iter().copied().zip(picks.iter().copied()).collect();
                ordered.sort_by_key(|(_, e)| (e.vs(), e.id));
                for pair in ordered.windows(2) {
                    if pair[0].1.vs() >= pair[1].1.vs() {
                        return; // strict order violated
                    }
                }
                let first = ordered.first().unwrap().1;
                let last = ordered.last().unwrap().1;
                match last.vs().since(first.vs()) {
                    Some(d) if d <= w => {}
                    _ => return,
                }
                let mut contributors: Vec<Option<Event>> = vec![None; inputs.len()];
                for (slot, e) in &ordered {
                    contributors[*slot] = Some((*e).clone());
                }
                if !eval_pred(pred, &contributors) {
                    return;
                }
                let output = compose_output(&ordered, w);
                if output.interval.is_empty() {
                    return; // boundary match: vacuous lifetime
                }
                out.push(PatternMatch {
                    contributors,
                    output,
                });
                return;
            }
            for e in &inputs[subset[idx]] {
                if e.interval.is_empty() {
                    continue;
                }
                picks.push(e);
                rec(subset, inputs, idx + 1, picks, w, pred, out);
                picks.pop();
            }
        }
        rec(subset, inputs, 0, &mut picks, w, pred, out);
    }

    choose_slots(k, n, 0, &mut subset, inputs, w, pred, &mut out);
    out
}

/// ATLEAST(n, E1, …, Ek, w): the composite output events.
pub fn atleast(n: usize, inputs: &[EventSet], w: Duration, pred: &Pred) -> EventSet {
    atleast_matches(n, inputs, w, pred)
        .into_iter()
        .map(|m| m.output)
        .collect()
}

/// ALL(E1, …, Ek, w) ≡ ATLEAST(k, E1, …, Ek, w).
pub fn all(inputs: &[EventSet], w: Duration, pred: &Pred) -> EventSet {
    atleast(inputs.len(), inputs, w, pred)
}

/// ANY(E1, …, Ek) ≡ ATLEAST(1, E1, …, Ek, 1).
pub fn any(inputs: &[EventSet], pred: &Pred) -> EventSet {
    atleast(1, inputs, Duration(1), pred)
}

/// ATMOST(n, E1, …, Ek, w): "syntactic sugar, which can be expressed with
/// sliding window aggregate (count aggregate)".
///
/// Realisation: extend every contributor occurrence to a lifetime of `w`
/// (AlterLifetime), count the live occurrences over time, and report the
/// maximal segments where `1 ≤ count ≤ n` (an empty relation has no
/// segments). Payload: the count.
pub fn atmost(n: usize, inputs: &[EventSet], w: Duration) -> EventSet {
    use crate::alter_lifetime::{alter_lifetime, DeltaFn, VsFn};
    use crate::relational::{group_aggregate, AggFunc};
    let mut unioned: EventSet = Vec::new();
    for s in inputs {
        unioned.extend(s.iter().cloned());
    }
    let extended = alter_lifetime(&unioned, VsFn::Vs, DeltaFn::Const(w));
    let counted = group_aggregate(&extended, &[], &AggFunc::Count);
    counted
        .into_iter()
        .filter(|e| {
            matches!(e.payload.get(0), Some(cedr_temporal::Value::Int(c)) if (*c as usize) <= n)
        })
        .collect()
}

/// UNLESS(E1, E2, w) with predicate injection: `e1` produces output iff no
/// `e2` with `e1.Vs < e2.Vs < e1.Vs + w` satisfies `neg_pred` over the
/// tuple `[e1, e2]`.
pub fn unless(e1s: &[Event], e2s: &[Event], w: Duration, neg_pred: &Pred) -> EventSet {
    e1s.iter()
        .filter(|e1| !e1.interval.is_empty())
        .filter(|e1| {
            !e2s.iter().any(|e2| {
                !e2.interval.is_empty()
                    && e1.vs() < e2.vs()
                    && e2.vs() < e1.vs() + w
                    && neg_pred.eval_tuple(&[e1, e2])
            })
        })
        .map(|e1| {
            Event::composite(
                e1.id,
                Interval::new(e1.vs(), e1.vs() + w),
                e1.root_time,
                Lineage::of(vec![e1.id]),
                e1.payload.clone(),
            )
        })
        .collect()
}

/// UNLESS′(E1, E2, n, w): the negation scope starts at the `n`-th
/// contributor of the (composite) `e1`, resolved through `contributor_pool`.
/// Output `Vs = max(e1.cbt[n].Vs + w, e1.Vs)`, `Ve = e1.Vs + w`.
///
/// Events whose lineage is shorter than `n` are skipped (the language
/// binder rejects such queries at compile time; see `cedr-lang`).
pub fn unless_prime(
    e1s: &[Event],
    e2s: &[Event],
    n: usize,
    w: Duration,
    neg_pred: &Pred,
    contributor_pool: &[Event],
) -> EventSet {
    let by_id: HashMap<EventId, &Event> = contributor_pool.iter().map(|e| (e.id, e)).collect();
    let mut out = Vec::new();
    for e1 in e1s {
        let Some(cbt_n_id) = e1.lineage.nth(n) else {
            continue;
        };
        let Some(anchor) = by_id.get(&cbt_n_id) else {
            continue;
        };
        let scope_start = anchor.vs();
        let negated = e2s.iter().any(|e2| {
            !e2.interval.is_empty()
                && scope_start < e2.vs()
                && e2.vs() < scope_start + w
                && neg_pred.eval_tuple(&[e1, e2])
        });
        if negated {
            continue;
        }
        let vs_out = TimePoint::max_of(scope_start + w, e1.vs());
        out.push(Event::composite(
            e1.id,
            Interval::new(vs_out, e1.vs() + w),
            e1.root_time,
            Lineage::of(vec![e1.id]),
            e1.payload.clone(),
        ));
    }
    out
}

/// NOT(E, SEQUENCE(E1, …, Ek, w)): sequence outputs survive iff no negated
/// event `e` occurs strictly between the first and last contributor.
/// `neg_pred` is evaluated over the tuple `[e1, …, ek, e]`.
pub fn not_sequence(
    neg: &[Event],
    inputs: &[EventSet],
    w: Duration,
    seq_pred: &Pred,
    neg_pred: &Pred,
) -> EventSet {
    let matches = sequence_matches(inputs, w, seq_pred);
    let ph = placeholder();
    matches
        .into_iter()
        .filter(|m| {
            let first_vs = m
                .contributors
                .first()
                .and_then(|c| c.as_ref())
                .map(|e| e.vs())
                .unwrap_or(TimePoint::ZERO);
            let last_vs = m
                .contributors
                .last()
                .and_then(|c| c.as_ref())
                .map(|e| e.vs())
                .unwrap_or(TimePoint::ZERO);
            !neg.iter().any(|e| {
                if e.interval.is_empty() || e.vs() <= first_vs || e.vs() >= last_vs {
                    return false;
                }
                let mut tuple: Vec<&Event> = m
                    .contributors
                    .iter()
                    .map(|c| c.as_ref().unwrap_or(&ph))
                    .collect();
                tuple.push(e);
                neg_pred.eval_tuple(&tuple)
            })
        })
        .map(|m| m.output)
        .collect()
}

/// CANCEL-WHEN(E1, E2): `e1` survives iff no `e2` occurs strictly between
/// `e1`'s root time and its `Vs` (the window in which `e1`'s detection was
/// "pending"). `neg_pred` is evaluated over `[e1, e2]`.
pub fn cancel_when(e1s: &[Event], e2s: &[Event], neg_pred: &Pred) -> EventSet {
    e1s.iter()
        .filter(|e1| {
            !e2s.iter().any(|e2| {
                !e2.interval.is_empty()
                    && e1.root_time < e2.vs()
                    && e2.vs() < e1.vs()
                    && neg_pred.eval_tuple(&[e1, e2])
            })
        })
        .cloned()
        .collect()
}

/// Apply SC modes to a deterministic match list.
///
/// Matches are processed in detection order — by output `Vs` (the trigger
/// contributor's occurrence), tie-broken by lineage. Selection restricts
/// which matches sharing a trigger event survive; consumption removes used
/// contributor instances from later matches.
pub fn apply_sc_modes(matches: Vec<PatternMatch>, modes: &[ScMode]) -> Vec<PatternMatch> {
    use std::collections::HashSet;

    let all_each_reuse = modes
        .iter()
        .all(|m| m.selection == Selection::Each && m.consumption == Consumption::Reuse);
    if all_each_reuse {
        return matches;
    }

    // Detection order: by trigger (output Vs), then by contributor Vs.
    let mut ordered = matches;
    ordered.sort_by(|a, b| {
        let ka = (a.output.vs(), contributor_key(a));
        let kb = (b.output.vs(), contributor_key(b));
        ka.cmp(&kb)
    });

    // Group by trigger event (the contributor with the greatest Vs).
    let mut consumed: HashSet<EventId> = HashSet::new();
    let mut out: Vec<PatternMatch> = Vec::new();
    let mut i = 0;
    while i < ordered.len() {
        let trigger = trigger_id(&ordered[i]);
        let mut group_end = i + 1;
        while group_end < ordered.len() && trigger_id(&ordered[group_end]) == trigger {
            group_end += 1;
        }
        // Filter out matches using consumed instances.
        let mut group: Vec<&PatternMatch> = ordered[i..group_end]
            .iter()
            .filter(|m| {
                m.contributors
                    .iter()
                    .flatten()
                    .all(|e| !consumed.contains(&e.id))
            })
            .collect();
        // Selection: order the group per slot policy and keep the best if
        // any slot restricts selection.
        let restrictive = modes.iter().any(|m| m.selection != Selection::Each);
        if restrictive && group.len() > 1 {
            group.sort_by(|a, b| {
                for (slot, mode) in modes.iter().enumerate() {
                    let va = slot_vs(a, slot);
                    let vb = slot_vs(b, slot);
                    let ord = match mode.selection {
                        Selection::Each => continue,
                        Selection::First => va.cmp(&vb),
                        Selection::MostRecent => vb.cmp(&va),
                    };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            group.truncate(1);
        }
        for m in group {
            out.push(m.clone());
            for (slot, mode) in modes.iter().enumerate() {
                if mode.consumption == Consumption::Consume {
                    if let Some(Some(e)) = m.contributors.get(slot) {
                        consumed.insert(e.id);
                    }
                }
            }
        }
        i = group_end;
    }
    out
}

fn contributor_key(m: &PatternMatch) -> Vec<(TimePoint, u64)> {
    m.contributors
        .iter()
        .flatten()
        .map(|e| (e.vs(), e.id.0))
        .collect()
}

fn trigger_id(m: &PatternMatch) -> EventId {
    m.contributors
        .iter()
        .flatten()
        .max_by_key(|e| (e.vs(), e.id))
        .map(|e| e.id)
        .unwrap_or(EventId(u64::MAX))
}

fn slot_vs(m: &PatternMatch, slot: usize) -> TimePoint {
    m.contributors
        .get(slot)
        .and_then(|c| c.as_ref())
        .map(|e| e.vs())
        .unwrap_or(TimePoint::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Scalar};
    use cedr_temporal::time::{dur, t};
    use cedr_temporal::Value;

    fn pt(id: u64, vs: u64) -> Event {
        Event::primitive(EventId(id), Interval::point(t(vs)), Payload::empty())
    }

    fn ptp(id: u64, vs: u64, val: &str) -> Event {
        Event::primitive(
            EventId(id),
            Interval::point(t(vs)),
            Payload::from_values(vec![Value::str(val)]),
        )
    }

    #[test]
    fn sequence_matches_ordered_pairs_within_scope() {
        let e1s = vec![pt(1, 10), pt(2, 50)];
        let e2s = vec![pt(3, 15), pt(4, 100)];
        let out = sequence(&[e1s, e2s], dur(10), &Pred::True);
        // Only (e1@10, e3@15) is within scope; (e2@50, e4@100) exceeds w=10.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].interval, Interval::new(t(15), t(20)));
        assert_eq!(out[0].root_time, t(10));
        assert_eq!(out[0].lineage.len(), 2);
    }

    #[test]
    fn sequence_requires_strict_order() {
        let a = vec![pt(1, 10)];
        let b = vec![pt(2, 10)];
        assert!(sequence(&[a.clone(), b.clone()], dur(5), &Pred::True).is_empty());
        // And order matters: E2 before E1 is no match.
        let a2 = vec![pt(3, 20)];
        let b2 = vec![pt(4, 10)];
        assert!(sequence(&[a2, b2], dur(50), &Pred::True).is_empty());
    }

    #[test]
    fn sequence_three_way_with_lineage_order() {
        let out = sequence(
            &[vec![pt(1, 1)], vec![pt(2, 3)], vec![pt(3, 5)]],
            dur(10),
            &Pred::True,
        );
        assert_eq!(out.len(), 1);
        let ids: Vec<EventId> = out[0].lineage.0.to_vec();
        assert_eq!(ids, vec![EventId(1), EventId(2), EventId(3)]);
        assert_eq!(out[0].interval, Interval::new(t(5), t(11)));
    }

    #[test]
    fn sequence_predicate_injection() {
        let installs = vec![ptp(1, 1, "m1"), ptp(2, 2, "m2")];
        let shutdowns = vec![ptp(3, 5, "m1")];
        let key = Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0));
        let out = sequence(&[installs, shutdowns], dur(100), &key);
        assert_eq!(out.len(), 1, "only the m1 pair correlates");
        assert_eq!(out[0].lineage.nth(1), Some(EventId(1)));
    }

    #[test]
    fn atleast_chooses_subsets_of_distinct_slots() {
        // Three slots; n=2; events at 1, 2, 3.
        let out = atleast(
            2,
            &[vec![pt(1, 1)], vec![pt(2, 2)], vec![pt(3, 3)]],
            dur(10),
            &Pred::True,
        );
        // Pairs: (1,2), (1,3), (2,3).
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn atleast_orders_by_vs_not_slot() {
        // Slot 0's event occurs after slot 1's: ATLEAST doesn't care.
        let out = atleast(2, &[vec![pt(1, 9)], vec![pt(2, 4)]], dur(10), &Pred::True);
        assert_eq!(out.len(), 1);
        // ei1 = the earlier event (id 2), ein = id 1: interval [9, 4+10).
        assert_eq!(out[0].interval, Interval::new(t(9), t(14)));
        assert_eq!(out[0].lineage.0.to_vec(), vec![EventId(2), EventId(1)]);
    }

    #[test]
    fn all_requires_every_slot() {
        let slots = [vec![pt(1, 1)], vec![pt(2, 3)], vec![]];
        assert!(all(&slots, dur(10), &Pred::True).is_empty());
        let full = [vec![pt(1, 1)], vec![pt(2, 3)], vec![pt(3, 4)]];
        assert_eq!(all(&full, dur(10), &Pred::True).len(), 1);
    }

    #[test]
    fn any_fires_per_event() {
        let out = any(&[vec![pt(1, 1)], vec![pt(2, 5)]], &Pred::True);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn atmost_counts_live_occurrences() {
        // Events at 0 and 2 with w=5: count 1 on [0,2), 2 on [2,5), 1 on [5,7).
        let out = atmost(1, &[vec![pt(1, 0)], vec![pt(2, 2)]], dur(5));
        let mut ivs: Vec<Interval> = out.iter().map(|e| e.interval).collect();
        ivs.sort();
        assert_eq!(
            ivs,
            vec![Interval::new(t(0), t(2)), Interval::new(t(5), t(7))]
        );
        // With n=2 the whole span qualifies.
        let out2 = atmost(2, &[vec![pt(1, 0)], vec![pt(2, 2)]], dur(5));
        assert_eq!(out2.len(), 3);
    }

    #[test]
    fn unless_emits_on_non_occurrence() {
        let e1s = vec![pt(1, 10)];
        // No e2 in (10, 15): output.
        let out = unless(&e1s, &[pt(9, 9), pt(2, 15)], dur(5), &Pred::True);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].interval, Interval::new(t(10), t(15)));
        assert_eq!(out[0].id, EventId(1), "UNLESS keeps e1's identity");
        // An e2 strictly inside the scope suppresses it.
        let out2 = unless(&e1s, &[pt(3, 12)], dur(5), &Pred::True);
        assert!(out2.is_empty());
    }

    #[test]
    fn unless_scope_boundaries_are_strict() {
        let e1s = vec![pt(1, 10)];
        // e2 exactly at e1.Vs or at e1.Vs+w does NOT negate (strict <).
        assert_eq!(unless(&e1s, &[pt(2, 10)], dur(5), &Pred::True).len(), 1);
        assert_eq!(unless(&e1s, &[pt(2, 15)], dur(5), &Pred::True).len(), 1);
        assert_eq!(unless(&e1s, &[pt(2, 11)], dur(5), &Pred::True).len(), 0);
        assert_eq!(unless(&e1s, &[pt(2, 14)], dur(5), &Pred::True).len(), 0);
    }

    #[test]
    fn unless_predicate_injection_guards_negation() {
        // CIDR07_Example shape: the RESTART only negates if it's the same
        // machine.
        let seq_out = vec![ptp(1, 10, "m1")];
        let restarts = vec![ptp(2, 12, "m2")];
        let same_machine = Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0));
        let out = unless(&seq_out, &restarts, dur(5), &same_machine);
        assert_eq!(out.len(), 1, "other machine's restart must not negate");
        let restarts2 = vec![ptp(3, 12, "m1")];
        assert!(unless(&seq_out, &restarts2, dur(5), &same_machine).is_empty());
    }

    #[test]
    fn unless_prime_scopes_from_nth_contributor() {
        // Composite e1 with contributors at Vs 2 and 10.
        let c1 = pt(100, 2);
        let c2 = pt(101, 10);
        let e1 = Event::composite(
            idgen(&[c1.id, c2.id]),
            Interval::new(t(10), t(20)),
            t(2),
            Lineage::of(vec![c1.id, c2.id]),
            Payload::empty(),
        );
        let pool = vec![c1.clone(), c2.clone()];
        // Scope from cbt[1] (Vs=2), w=5: negation window (2,7).
        let out = unless_prime(
            std::slice::from_ref(&e1),
            &[pt(5, 5)],
            1,
            dur(5),
            &Pred::True,
            &pool,
        );
        assert!(out.is_empty(), "e2 at 5 ∈ (2,7) negates");
        let out2 = unless_prime(
            std::slice::from_ref(&e1),
            &[pt(5, 8)],
            1,
            dur(5),
            &Pred::True,
            &pool,
        );
        assert_eq!(out2.len(), 1);
        // Output Vs = max(cbt[1].Vs + w, e1.Vs) = max(7, 10) = 10.
        assert_eq!(out2[0].interval.start, t(10));
        assert_eq!(out2[0].interval.end, t(15));
        // Lineage shorter than n: skipped.
        let out3 = unless_prime(&[e1], &[], 3, dur(5), &Pred::True, &pool);
        assert!(out3.is_empty());
    }

    #[test]
    fn not_sequence_filters_on_interleaved_events() {
        let inputs = [vec![pt(1, 1)], vec![pt(2, 10)]];
        // Negated event at 5 ∈ (1,10): kills the match.
        let out = not_sequence(&[pt(3, 5)], &inputs, dur(20), &Pred::True, &Pred::True);
        assert!(out.is_empty());
        // At the boundary (Vs=1 or Vs=10): survives (strict inequalities).
        let out2 = not_sequence(
            &[pt(3, 1), pt(4, 10)],
            &inputs,
            dur(20),
            &Pred::True,
            &Pred::True,
        );
        assert_eq!(out2.len(), 1);
    }

    #[test]
    fn not_sequence_neg_predicate_sees_tuple_and_negated_event() {
        let inputs = [vec![ptp(1, 1, "m1")], vec![ptp(2, 10, "m1")]];
        // Negated event on another machine doesn't kill the match when the
        // predicate requires equality with slot 0 (slot index 2 = negated).
        let np = Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(2, 0));
        let out = not_sequence(&[ptp(3, 5, "m2")], &inputs, dur(20), &Pred::True, &np);
        assert_eq!(out.len(), 1);
        let out2 = not_sequence(&[ptp(3, 5, "m1")], &inputs, dur(20), &Pred::True, &np);
        assert!(out2.is_empty());
    }

    #[test]
    fn cancel_when_cancels_pending_detection() {
        // Composite whose detection spans (rt=1, Vs=10).
        let e1 = Event::composite(
            EventId(50),
            Interval::new(t(10), t(20)),
            t(1),
            Lineage::of(vec![EventId(1), EventId(2)]),
            Payload::empty(),
        );
        assert!(cancel_when(std::slice::from_ref(&e1), &[pt(9, 5)], &Pred::True).is_empty());
        // Outside (rt, Vs): survives.
        assert_eq!(
            cancel_when(std::slice::from_ref(&e1), &[pt(9, 1)], &Pred::True).len(),
            1
        );
        assert_eq!(
            cancel_when(std::slice::from_ref(&e1), &[pt(9, 10)], &Pred::True).len(),
            1
        );
        assert_eq!(cancel_when(&[e1], &[pt(9, 30)], &Pred::True).len(), 1);
    }

    #[test]
    fn sc_consume_prevents_reuse() {
        // One E1 at 1; two E2s at 3 and 5. With Consume on slot 0 the first
        // pair consumes e1 and the (1,5) match dies.
        let matches = sequence_matches(
            &[vec![pt(1, 1)], vec![pt(2, 3), pt(3, 5)]],
            dur(10),
            &Pred::True,
        );
        assert_eq!(matches.len(), 2);
        let modes = [
            ScMode::new(Selection::Each, Consumption::Consume),
            ScMode::EACH_REUSE,
        ];
        let kept = apply_sc_modes(matches, &modes);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].contributors[1].as_ref().unwrap().id, EventId(2));
    }

    #[test]
    fn sc_first_selects_earliest_partner() {
        // Two E1s at 1 and 2, one E2 at 5: both pairs share trigger e2.
        let matches = sequence_matches(
            &[vec![pt(1, 1), pt(2, 2)], vec![pt(3, 5)]],
            dur(10),
            &Pred::True,
        );
        assert_eq!(matches.len(), 2);
        let first = apply_sc_modes(
            matches.clone(),
            &[
                ScMode::new(Selection::First, Consumption::Reuse),
                ScMode::EACH_REUSE,
            ],
        );
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].contributors[0].as_ref().unwrap().id, EventId(1));
        let recent = apply_sc_modes(
            matches,
            &[
                ScMode::new(Selection::MostRecent, Consumption::Reuse),
                ScMode::EACH_REUSE,
            ],
        );
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].contributors[0].as_ref().unwrap().id, EventId(2));
    }

    #[test]
    fn sc_each_reuse_is_identity() {
        let matches = sequence_matches(
            &[vec![pt(1, 1), pt(2, 2)], vec![pt(3, 5)]],
            dur(10),
            &Pred::True,
        );
        let kept = apply_sc_modes(matches.clone(), &[ScMode::EACH_REUSE, ScMode::EACH_REUSE]);
        assert_eq!(kept.len(), matches.len());
    }
}
