//! Scalar expressions and predicates over payloads.
//!
//! The WHERE clause of the CEDR language (Section 3.1) contains *simple
//! predicates* (attribute vs constant) and *parameterized predicates*
//! (attribute of a later event compared against the value an earlier event
//! provided, e.g. `x.Machine_Id = y.Machine_Id`). Equality comparisons on a
//! common attribute across contributors form an *equivalence test* on a
//! *correlation key*.
//!
//! Expressions are first-order data (not closures) so that plans are
//! printable, hashable and deterministically comparable.

use cedr_temporal::{Event, Payload, Value};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn apply(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A scalar expression evaluated against a tuple of contributor events.
///
/// `Field(j)` is shorthand for `Of(0, j)` — the single-event context.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Scalar {
    /// Column `j` of the (single) input event's payload.
    Field(usize),
    /// Column `j` of contributor `i`'s payload (tuple context).
    Of(usize, usize),
    /// A literal constant.
    Lit(Value),
    Add(Box<Scalar>, Box<Scalar>),
    Sub(Box<Scalar>, Box<Scalar>),
    Mul(Box<Scalar>, Box<Scalar>),
    Div(Box<Scalar>, Box<Scalar>),
}

impl Scalar {
    pub fn lit(v: impl Into<Value>) -> Scalar {
        Scalar::Lit(v.into())
    }

    /// Evaluate against a contributor tuple. Missing columns yield `Null`.
    pub fn eval_tuple(&self, tuple: &[&Event]) -> Value {
        match self {
            Scalar::Field(j) => tuple
                .first()
                .and_then(|e| e.payload.get(*j))
                .cloned()
                .unwrap_or(Value::Null),
            Scalar::Of(i, j) => tuple
                .get(*i)
                .and_then(|e| e.payload.get(*j))
                .cloned()
                .unwrap_or(Value::Null),
            Scalar::Lit(v) => v.clone(),
            Scalar::Add(a, b) => {
                Self::arith(a.eval_tuple(tuple), b.eval_tuple(tuple), |x, y| x + y)
            }
            Scalar::Sub(a, b) => {
                Self::arith(a.eval_tuple(tuple), b.eval_tuple(tuple), |x, y| x - y)
            }
            Scalar::Mul(a, b) => {
                Self::arith(a.eval_tuple(tuple), b.eval_tuple(tuple), |x, y| x * y)
            }
            Scalar::Div(a, b) => Self::arith(a.eval_tuple(tuple), b.eval_tuple(tuple), |x, y| {
                if y == 0.0 {
                    f64::NAN
                } else {
                    x / y
                }
            }),
        }
    }

    /// Evaluate against a single event's payload.
    pub fn eval_event(&self, event: &Event) -> Value {
        self.eval_tuple(&[event])
    }

    /// Evaluate against a bare payload (no temporal context). Matches
    /// [`Scalar::eval_event`] on the single-event tuple: `Of(i, _)` with
    /// `i > 0` has no contributor and yields `Null`.
    pub fn eval_payload(&self, payload: &Payload) -> Value {
        match self {
            Scalar::Field(j) => payload.get(*j).cloned().unwrap_or(Value::Null),
            Scalar::Of(0, j) => payload.get(*j).cloned().unwrap_or(Value::Null),
            Scalar::Of(..) => Value::Null,
            Scalar::Lit(v) => v.clone(),
            Scalar::Add(a, b) => {
                Self::arith(a.eval_payload(payload), b.eval_payload(payload), |x, y| {
                    x + y
                })
            }
            Scalar::Sub(a, b) => {
                Self::arith(a.eval_payload(payload), b.eval_payload(payload), |x, y| {
                    x - y
                })
            }
            Scalar::Mul(a, b) => {
                Self::arith(a.eval_payload(payload), b.eval_payload(payload), |x, y| {
                    x * y
                })
            }
            Scalar::Div(a, b) => {
                Self::arith(a.eval_payload(payload), b.eval_payload(payload), |x, y| {
                    if y == 0.0 {
                        f64::NAN
                    } else {
                        x / y
                    }
                })
            }
        }
    }

    /// Substitute this expression's payload reads through a projection:
    /// the returned expression, evaluated on a payload `p`, equals `self`
    /// evaluated on `[e.eval_payload(p) for e in exprs]`. `Field(j)` /
    /// `Of(0, j)` become `exprs[j]` (or `Lit(Null)` beyond the projection
    /// arity, matching the `get(j)` fallback); `Of(i, _)` with `i > 0` has
    /// no contributor in the single-event context and is `Lit(Null)`.
    /// This is what lets a fused chain's compiled kernels all read the
    /// chain-original payload columns, no matter how many projections sit
    /// upstream of them.
    pub fn compose_after_project(&self, exprs: &[Scalar]) -> Scalar {
        let bin = |a: &Scalar, b: &Scalar| {
            (
                Box::new(a.compose_after_project(exprs)),
                Box::new(b.compose_after_project(exprs)),
            )
        };
        match self {
            Scalar::Field(j) | Scalar::Of(0, j) => {
                exprs.get(*j).cloned().unwrap_or(Scalar::Lit(Value::Null))
            }
            Scalar::Of(..) => Scalar::Lit(Value::Null),
            Scalar::Lit(v) => Scalar::Lit(v.clone()),
            Scalar::Add(a, b) => {
                let (a, b) = bin(a, b);
                Scalar::Add(a, b)
            }
            Scalar::Sub(a, b) => {
                let (a, b) = bin(a, b);
                Scalar::Sub(a, b)
            }
            Scalar::Mul(a, b) => {
                let (a, b) = bin(a, b);
                Scalar::Mul(a, b)
            }
            Scalar::Div(a, b) => {
                let (a, b) = bin(a, b);
                Scalar::Div(a, b)
            }
        }
    }

    /// Collect the payload columns this expression reads through the
    /// single-input views (`Field(j)` / `Of(0, j)`). Other contributor
    /// slots evaluate to `Null` in payload context and read no column.
    pub fn payload_fields(&self, out: &mut Vec<usize>) {
        match self {
            Scalar::Field(j) | Scalar::Of(0, j) => out.push(*j),
            Scalar::Of(..) | Scalar::Lit(_) => {}
            Scalar::Add(a, b) | Scalar::Sub(a, b) | Scalar::Mul(a, b) | Scalar::Div(a, b) => {
                a.payload_fields(out);
                b.payload_fields(out);
            }
        }
    }

    pub(crate) fn arith(a: Value, b: Value, f: impl Fn(f64, f64) -> f64) -> Value {
        match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => {
                let r = f(x, y);
                // Keep integers integral when both sides were ints and the
                // result is exact; otherwise float.
                Value::Float(r)
            }
            _ => Value::Null,
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Field(j) => write!(f, "$.{j}"),
            Scalar::Of(i, j) => write!(f, "${i}.{j}"),
            Scalar::Lit(v) => write!(f, "{v}"),
            Scalar::Add(a, b) => write!(f, "({a} + {b})"),
            Scalar::Sub(a, b) => write!(f, "({a} - {b})"),
            Scalar::Mul(a, b) => write!(f, "({a} * {b})"),
            Scalar::Div(a, b) => write!(f, "({a} / {b})"),
        }
    }
}

/// A boolean predicate over a contributor tuple (or single event).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Pred {
    True,
    Cmp(Scalar, CmpOp, Scalar),
    And(Box<Pred>, Box<Pred>),
    Or(Box<Pred>, Box<Pred>),
    Not(Box<Pred>),
}

impl Pred {
    pub fn cmp(lhs: Scalar, op: CmpOp, rhs: Scalar) -> Pred {
        Pred::Cmp(lhs, op, rhs)
    }

    /// Conjunction of many predicates (`True` if empty).
    pub fn and_all(preds: impl IntoIterator<Item = Pred>) -> Pred {
        let mut it = preds.into_iter();
        let Some(first) = it.next() else {
            return Pred::True;
        };
        it.fold(first, |acc, p| Pred::And(Box::new(acc), Box::new(p)))
    }

    /// The *equivalence test* shorthand (Section 3.1): all contributors in
    /// `slots` agree on payload column `col` — the correlation key.
    pub fn correlation_key(col: usize, slots: &[usize]) -> Pred {
        let mut preds = Vec::new();
        for w in slots.windows(2) {
            preds.push(Pred::Cmp(
                Scalar::Of(w[0], col),
                CmpOp::Eq,
                Scalar::Of(w[1], col),
            ));
        }
        Pred::and_all(preds)
    }

    /// The `[attr EQUAL 'literal']` shorthand: every contributor in `slots`
    /// has `col == value`.
    pub fn correlation_key_equal(col: usize, slots: &[usize], value: Value) -> Pred {
        Pred::and_all(
            slots
                .iter()
                .map(|&s| Pred::Cmp(Scalar::Of(s, col), CmpOp::Eq, Scalar::Lit(value.clone()))),
        )
    }

    pub fn eval_tuple(&self, tuple: &[&Event]) -> bool {
        match self {
            Pred::True => true,
            Pred::Cmp(a, op, b) => {
                let va = a.eval_tuple(tuple);
                let vb = b.eval_tuple(tuple);
                op.apply(va.compare(&vb))
            }
            Pred::And(a, b) => a.eval_tuple(tuple) && b.eval_tuple(tuple),
            Pred::Or(a, b) => a.eval_tuple(tuple) || b.eval_tuple(tuple),
            Pred::Not(a) => !a.eval_tuple(tuple),
        }
    }

    pub fn eval_event(&self, event: &Event) -> bool {
        self.eval_tuple(&[event])
    }

    /// Evaluate against a bare payload (no temporal context). Predicates
    /// only ever read payload columns, so this agrees with
    /// [`Pred::eval_event`] on any event carrying `payload` — the form the
    /// fused pipeline uses to avoid materialising intermediate events.
    pub fn eval_payload(&self, payload: &Payload) -> bool {
        match self {
            Pred::True => true,
            Pred::Cmp(a, op, b) => {
                let va = a.eval_payload(payload);
                let vb = b.eval_payload(payload);
                op.apply(va.compare(&vb))
            }
            Pred::And(a, b) => a.eval_payload(payload) && b.eval_payload(payload),
            Pred::Or(a, b) => a.eval_payload(payload) || b.eval_payload(payload),
            Pred::Not(a) => !a.eval_payload(payload),
        }
    }

    /// Substitute every payload read through a projection — the predicate
    /// analogue of [`Scalar::compose_after_project`]: the result evaluated
    /// on a payload `p` equals `self` evaluated on the projected payload
    /// `[e.eval_payload(p) for e in exprs]`.
    pub fn compose_after_project(&self, exprs: &[Scalar]) -> Pred {
        match self {
            Pred::True => Pred::True,
            Pred::Cmp(a, op, b) => Pred::Cmp(
                a.compose_after_project(exprs),
                *op,
                b.compose_after_project(exprs),
            ),
            Pred::And(a, b) => Pred::And(
                Box::new(a.compose_after_project(exprs)),
                Box::new(b.compose_after_project(exprs)),
            ),
            Pred::Or(a, b) => Pred::Or(
                Box::new(a.compose_after_project(exprs)),
                Box::new(b.compose_after_project(exprs)),
            ),
            Pred::Not(a) => Pred::Not(Box::new(a.compose_after_project(exprs))),
        }
    }

    /// Collect the payload columns this predicate reads in single-input
    /// payload context — the predicate analogue of
    /// [`Scalar::payload_fields`].
    pub fn payload_fields(&self, out: &mut Vec<usize>) {
        match self {
            Pred::True => {}
            Pred::Cmp(a, _, b) => {
                a.payload_fields(out);
                b.payload_fields(out);
            }
            Pred::And(a, b) | Pred::Or(a, b) => {
                a.payload_fields(out);
                b.payload_fields(out);
            }
            Pred::Not(a) => a.payload_fields(out),
        }
    }

    /// Which contributor slots does this predicate mention?
    pub fn slots(&self) -> Vec<usize> {
        fn scan_scalar(s: &Scalar, out: &mut Vec<usize>) {
            match s {
                Scalar::Field(_) => out.push(0),
                Scalar::Of(i, _) => out.push(*i),
                Scalar::Lit(_) => {}
                Scalar::Add(a, b) | Scalar::Sub(a, b) | Scalar::Mul(a, b) | Scalar::Div(a, b) => {
                    scan_scalar(a, out);
                    scan_scalar(b, out);
                }
            }
        }
        fn scan(p: &Pred, out: &mut Vec<usize>) {
            match p {
                Pred::True => {}
                Pred::Cmp(a, _, b) => {
                    scan_scalar(a, out);
                    scan_scalar(b, out);
                }
                Pred::And(a, b) | Pred::Or(a, b) => {
                    scan(a, out);
                    scan(b, out);
                }
                Pred::Not(a) => scan(a, out),
            }
        }
        let mut out = Vec::new();
        scan(self, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::True => write!(f, "TRUE"),
            Pred::Cmp(a, op, b) => write!(f, "{a} {op} {b}"),
            Pred::And(a, b) => write!(f, "({a} AND {b})"),
            Pred::Or(a, b) => write!(f, "({a} OR {b})"),
            Pred::Not(a) => write!(f, "NOT {a}"),
        }
    }
}

/// A predicate evaluated over an (n+1)-tuple: the contributor tuple of a
/// pattern extended by the negated event in the last slot. Used by
/// predicate injection into UNLESS / NOT / CANCEL-WHEN, where the WHERE
/// clause may reference the negated contributor (`z` in the paper's
/// CIDR07_Example).
pub type TuplePred = Pred;

#[cfg(test)]
mod tests {
    use super::*;
    use cedr_temporal::interval::iv;
    use cedr_temporal::{Event, EventId, Payload};

    fn ev(id: u64, vals: Vec<Value>) -> Event {
        Event::primitive(EventId(id), iv(0, 1), Payload::from_values(vals))
    }

    #[test]
    fn simple_predicate_compares_to_constant() {
        let e = ev(1, vec![Value::str("BARGA_XP03"), Value::Int(5)]);
        let p = Pred::cmp(Scalar::Field(0), CmpOp::Eq, Scalar::lit("BARGA_XP03"));
        assert!(p.eval_event(&e));
        let p2 = Pred::cmp(Scalar::Field(1), CmpOp::Gt, Scalar::lit(10i64));
        assert!(!p2.eval_event(&e));
    }

    #[test]
    fn parameterized_predicate_compares_contributors() {
        let x = ev(1, vec![Value::str("m1")]);
        let y = ev(2, vec![Value::str("m1")]);
        let z = ev(3, vec![Value::str("m2")]);
        let p = Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0));
        assert!(p.eval_tuple(&[&x, &y]));
        assert!(!p.eval_tuple(&[&x, &z]));
    }

    #[test]
    fn correlation_key_desugars_to_pairwise_equality() {
        let x = ev(1, vec![Value::str("m")]);
        let y = ev(2, vec![Value::str("m")]);
        let z = ev(3, vec![Value::str("m")]);
        let bad = ev(4, vec![Value::str("n")]);
        let p = Pred::correlation_key(0, &[0, 1, 2]);
        assert!(p.eval_tuple(&[&x, &y, &z]));
        assert!(!p.eval_tuple(&[&x, &y, &bad]));
    }

    #[test]
    fn correlation_key_equal_pins_a_value() {
        let x = ev(1, vec![Value::str("m")]);
        let y = ev(2, vec![Value::str("m")]);
        let p = Pred::correlation_key_equal(0, &[0, 1], Value::str("m"));
        assert!(p.eval_tuple(&[&x, &y]));
        let q = Pred::correlation_key_equal(0, &[0, 1], Value::str("other"));
        assert!(!q.eval_tuple(&[&x, &y]));
    }

    #[test]
    fn arithmetic_and_numeric_coercion() {
        let e = ev(1, vec![Value::Int(10), Value::Float(2.5)]);
        let s = Scalar::Mul(Box::new(Scalar::Field(0)), Box::new(Scalar::Field(1)));
        assert_eq!(s.eval_event(&e), Value::Float(25.0));
        let p = Pred::cmp(s, CmpOp::Ge, Scalar::lit(25.0));
        assert!(p.eval_event(&e));
    }

    #[test]
    fn division_by_zero_is_nan_not_panic() {
        let e = ev(1, vec![Value::Int(1), Value::Int(0)]);
        let s = Scalar::Div(Box::new(Scalar::Field(0)), Box::new(Scalar::Field(1)));
        match s.eval_event(&e) {
            Value::Float(f) => assert!(f.is_nan()),
            other => panic!("expected NaN, got {other:?}"),
        }
    }

    #[test]
    fn boolean_connectives() {
        let e = ev(1, vec![Value::Int(5)]);
        let lt = Pred::cmp(Scalar::Field(0), CmpOp::Lt, Scalar::lit(10i64));
        let gt = Pred::cmp(Scalar::Field(0), CmpOp::Gt, Scalar::lit(10i64));
        assert!(Pred::Or(Box::new(lt.clone()), Box::new(gt.clone())).eval_event(&e));
        assert!(!Pred::And(Box::new(lt.clone()), Box::new(gt)).eval_event(&e));
        assert!(!Pred::Not(Box::new(lt)).eval_event(&e));
        assert!(Pred::True.eval_event(&e));
    }

    #[test]
    fn missing_columns_are_null() {
        let e = ev(1, vec![]);
        assert_eq!(Scalar::Field(3).eval_event(&e), Value::Null);
        // NULL = NULL holds under the total comparison (documented choice).
        assert!(Pred::cmp(Scalar::Field(3), CmpOp::Eq, Scalar::Lit(Value::Null)).eval_event(&e));
    }

    #[test]
    fn slot_analysis() {
        let p = Pred::And(
            Box::new(Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(2, 0))),
            Box::new(Pred::cmp(Scalar::Of(1, 1), CmpOp::Lt, Scalar::lit(5i64))),
        );
        assert_eq!(p.slots(), vec![0, 1, 2]);
        assert_eq!(Pred::True.slots(), Vec::<usize>::new());
    }

    #[test]
    fn and_all_of_empty_is_true() {
        assert_eq!(Pred::and_all(Vec::new()), Pred::True);
    }
}
