//! The relational view-update operators (Definitions 7–9 and the family the
//! paper lists alongside them: union, difference, group-by, aggregates).
//!
//! All of these are **view update compliant** (Definition 11): they treat
//! the input streams as changing relations and are insensitive to how the
//! state changes are packaged into events; the property tests in
//! `compliance.rs` check this literally against the `*` operator.

use crate::expr::{Pred, Scalar};
use crate::idgen::{idgen, idgen2};
use crate::EventSet;
use cedr_temporal::{Duration, Event, Interval, Lineage, Payload, TimePoint, Value};
use std::collections::BTreeMap;

/// Definition 7 — SQL projection `π_f(S)`:
/// `{(e.Vs, e.Ve, f(e.Payload)) | e ∈ E(S)}`.
///
/// `f` is a list of scalar expressions producing the output payload; it
/// cannot affect the timestamp attributes (enforced by construction).
pub fn project(input: &[Event], exprs: &[Scalar]) -> EventSet {
    input
        .iter()
        .map(|e| {
            let payload = Payload::from_values(exprs.iter().map(|x| x.eval_event(e)).collect());
            Event {
                id: e.id,
                interval: e.interval,
                root_time: e.root_time,
                lineage: e.lineage.clone(),
                payload,
            }
        })
        .collect()
}

/// Definition 8 — Selection `σ_f(S)`:
/// `{(e.Vs, e.Ve, e.Payload) | e ∈ E(S) where f(e.Payload)}`.
pub fn select(input: &[Event], pred: &Pred) -> EventSet {
    input
        .iter()
        .filter(|e| pred.eval_event(e))
        .cloned()
        .collect()
}

/// Definition 9 — Join `⋈_θ(S1, S2)`: payload concatenation over the
/// intersection of valid intervals, for pairs satisfying `θ` (a tuple
/// predicate over both payloads: slot 0 = left, slot 1 = right).
pub fn join(left: &[Event], right: &[Event], theta: &Pred) -> EventSet {
    let mut out = Vec::new();
    for e1 in left {
        for e2 in right {
            let iv = e1.interval.intersect(&e2.interval);
            if iv.is_empty() {
                continue;
            }
            if !theta.eval_tuple(&[e1, e2]) {
                continue;
            }
            out.push(Event {
                id: idgen(&[e1.id, e2.id]),
                interval: iv,
                root_time: TimePoint::min_of(e1.root_time, e2.root_time),
                lineage: Lineage::of(vec![e1.id, e2.id]),
                payload: e1.payload.concat(&e2.payload),
            });
        }
    }
    out
}

/// Union: the bag union of the two changing relations.
pub fn union(left: &[Event], right: &[Event]) -> EventSet {
    left.iter().chain(right.iter()).cloned().collect()
}

/// Temporal difference `S1 − S2` under set semantics: for each payload, the
/// output covers exactly the times where the payload is in `S1`'s relation
/// but not in `S2`'s.
///
/// Output events are synthesised per maximal segment with
/// `idgen2`-derived IDs (they have no single contributor pair).
pub fn difference(left: &[Event], right: &[Event]) -> EventSet {
    // Coverage per payload on each side.
    let mut cover: BTreeMap<Payload, (Vec<Interval>, Vec<Interval>)> = BTreeMap::new();
    for e in left {
        if !e.interval.is_empty() {
            cover
                .entry(e.payload.clone())
                .or_default()
                .0
                .push(e.interval);
        }
    }
    for e in right {
        if !e.interval.is_empty() {
            cover
                .entry(e.payload.clone())
                .or_default()
                .1
                .push(e.interval);
        }
    }
    let mut out = Vec::new();
    for (payload, (l, r)) in cover {
        let pos = merge_cover(&l);
        let neg = merge_cover(&r);
        let segs = subtract_cover(&pos, &neg);
        for seg in segs {
            let id = idgen2(
                0xD1FF_0000 ^ hash_payload(&payload),
                seg.start.0 ^ seg.end.0.rotate_left(32),
            );
            out.push(Event::primitive(id, seg, payload.clone()));
        }
    }
    out
}

/// Aggregate functions over a payload column.
#[derive(Clone, Debug, PartialEq)]
pub enum AggFunc {
    Count,
    Sum(Scalar),
    Min(Scalar),
    Max(Scalar),
    Avg(Scalar),
}

impl AggFunc {
    /// Fold the aggregate over the payload snapshot of live events.
    pub fn eval(&self, live: &[&Event]) -> Value {
        match self {
            AggFunc::Count => Value::Int(live.len() as i64),
            AggFunc::Sum(s) => {
                Value::Float(live.iter().filter_map(|e| s.eval_event(e).as_f64()).sum())
            }
            AggFunc::Min(s) => live
                .iter()
                .map(|e| s.eval_event(e))
                .min_by(|a, b| a.compare(b))
                .unwrap_or(Value::Null),
            AggFunc::Max(s) => live
                .iter()
                .map(|e| s.eval_event(e))
                .max_by(|a, b| a.compare(b))
                .unwrap_or(Value::Null),
            AggFunc::Avg(s) => {
                let vals: Vec<f64> = live
                    .iter()
                    .filter_map(|e| s.eval_event(e).as_f64())
                    .collect();
                if vals.is_empty() {
                    Value::Null
                } else {
                    Value::Float(vals.iter().sum::<f64>() / vals.len() as f64)
                }
            }
        }
    }

    /// Operator tag for synthesised IDs.
    fn tag(&self) -> u64 {
        match self {
            AggFunc::Count => 0xA660_0001,
            AggFunc::Sum(_) => 0xA660_0002,
            AggFunc::Min(_) => 0xA660_0003,
            AggFunc::Max(_) => 0xA660_0004,
            AggFunc::Avg(_) => 0xA660_0005,
        }
    }
}

/// Group-by + aggregate with view update semantics: the output describes,
/// per group, the changing value of the aggregate as a step function of
/// time. One output event per maximal constant segment, payload =
/// `group key values ++ [aggregate value]`.
///
/// Segments with no live input rows produce no output (the group is absent
/// from the relation there).
pub fn group_aggregate(input: &[Event], key: &[Scalar], agg: &AggFunc) -> EventSet {
    let mut groups: BTreeMap<Vec<Value>, Vec<&Event>> = BTreeMap::new();
    for e in input {
        if e.interval.is_empty() {
            continue;
        }
        let k: Vec<Value> = key.iter().map(|s| s.eval_event(e)).collect();
        groups.entry(k).or_default().push(e);
    }
    let mut out = Vec::new();
    for (kvals, members) in groups {
        // Edge points: all interval endpoints in the group.
        let mut edges: Vec<TimePoint> = Vec::with_capacity(members.len() * 2);
        for e in &members {
            edges.push(e.interval.start);
            edges.push(e.interval.end);
        }
        edges.sort_unstable();
        edges.dedup();
        for w in edges.windows(2) {
            let seg = Interval::new(w[0], w[1]);
            if seg.is_empty() {
                continue;
            }
            let live: Vec<&Event> = members
                .iter()
                .filter(|e| e.interval.contains(seg.start))
                .copied()
                .collect();
            if live.is_empty() {
                continue;
            }
            let value = agg.eval(&live);
            let mut payload: Vec<Value> = kvals.clone();
            payload.push(value);
            let payload = Payload::from_values(payload);
            let id = idgen2(
                agg.tag() ^ hash_payload(&payload),
                seg.start.0 ^ seg.end.0.rotate_left(32),
            );
            out.push(Event::primitive(id, seg, payload));
        }
    }
    // Adjacent segments with equal values are distinct events here; the `*`
    // operator (coalescing) identifies them, which is exactly why these
    // outputs are view-update compliant rather than syntactically canonical.
    out
}

fn hash_payload(p: &Payload) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    p.hash(&mut h);
    h.finish()
}

/// Merge intervals into a minimal sorted disjoint cover (union of segments;
/// meeting or overlapping intervals fuse).
pub fn merge_cover(ivs: &[Interval]) -> Vec<Interval> {
    let mut sorted: Vec<Interval> = ivs.iter().filter(|i| !i.is_empty()).copied().collect();
    sorted.sort();
    let mut out: Vec<Interval> = Vec::with_capacity(sorted.len());
    for iv in sorted {
        match out.last_mut() {
            Some(last) if iv.start <= last.end => {
                last.end = TimePoint::max_of(last.end, iv.end);
            }
            _ => out.push(iv),
        }
    }
    out
}

/// Subtract a disjoint sorted cover from another: `pos − neg`.
pub fn subtract_cover(pos: &[Interval], neg: &[Interval]) -> Vec<Interval> {
    let mut out = Vec::new();
    for p in pos {
        let mut cur = *p;
        for n in neg {
            if n.end <= cur.start {
                continue;
            }
            if n.start >= cur.end {
                break;
            }
            if n.start > cur.start {
                out.push(Interval::new(cur.start, n.start));
            }
            cur = Interval::new(TimePoint::max_of(cur.start, n.end), cur.end);
            if cur.is_empty() {
                break;
            }
        }
        if !cur.is_empty() {
            out.push(cur);
        }
    }
    out
}

/// One tick past `t`, used by snapshot probes in tests.
pub fn tick_after(t: TimePoint) -> TimePoint {
    t + Duration(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::to_table;
    use cedr_temporal::interval::iv;
    use cedr_temporal::time::t;
    use cedr_temporal::EventId;

    fn ev(id: u64, a: u64, b: u64, vals: Vec<Value>) -> Event {
        Event::primitive(EventId(id), iv(a, b), Payload::from_values(vals))
    }

    #[test]
    fn projection_rewrites_payload_only() {
        let input = vec![ev(1, 2, 9, vec![Value::Int(10), Value::Int(20)])];
        let out = project(&input, &[Scalar::Field(1), Scalar::lit(99i64)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].interval, iv(2, 9), "f cannot affect timestamps");
        assert_eq!(out[0].payload.get(0), Some(&Value::Int(20)));
        assert_eq!(out[0].payload.get(1), Some(&Value::Int(99)));
        assert_eq!(out[0].id, EventId(1), "projection keeps identity");
    }

    #[test]
    fn selection_filters_on_payload() {
        let input = vec![
            ev(1, 0, 5, vec![Value::Int(1)]),
            ev(2, 0, 5, vec![Value::Int(7)]),
        ];
        let out = select(
            &input,
            &Pred::cmp(Scalar::Field(0), CmpOp::Gt, Scalar::lit(3i64)),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, EventId(2));
    }

    #[test]
    fn join_intersects_lifetimes_and_concatenates() {
        // Figure 10's two rows joined on TRUE: intersection is [4,5).
        let l = vec![ev(1, 1, 5, vec![Value::str("P1")])];
        let r = vec![ev(2, 4, 9, vec![Value::str("P2")])];
        let out = join(&l, &r, &Pred::True);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].interval, iv(4, 5));
        assert_eq!(out[0].payload.len(), 2);
        assert_eq!(out[0].root_time, t(1), "rt = min of contributors");
        assert_eq!(out[0].lineage.len(), 2);
    }

    #[test]
    fn join_theta_and_disjoint_lifetimes() {
        let l = vec![ev(1, 1, 3, vec![Value::Int(5)])];
        let r = vec![ev(2, 5, 9, vec![Value::Int(5)])];
        // Disjoint: nothing, even with matching payloads.
        assert!(join(&l, &r, &Pred::True).is_empty());
        let r2 = vec![ev(3, 2, 9, vec![Value::Int(6)])];
        let theta = Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0));
        assert!(join(&l, &r2, &theta).is_empty());
        let r3 = vec![ev(4, 2, 9, vec![Value::Int(5)])];
        assert_eq!(join(&l, &r3, &theta).len(), 1);
    }

    #[test]
    fn union_is_bag_union() {
        let l = vec![ev(1, 0, 5, vec![Value::Int(1)])];
        let r = vec![ev(2, 3, 8, vec![Value::Int(2)])];
        assert_eq!(union(&l, &r).len(), 2);
    }

    #[test]
    fn difference_clips_by_right_side_coverage() {
        let p = vec![Value::str("P")];
        let l = vec![ev(1, 0, 10, p.clone())];
        let r = vec![ev(2, 3, 5, p.clone()), ev(3, 7, 8, p.clone())];
        let out = difference(&l, &r);
        let ivs: Vec<Interval> = {
            let mut v: Vec<Interval> = out.iter().map(|e| e.interval).collect();
            v.sort();
            v
        };
        assert_eq!(ivs, vec![iv(0, 3), iv(5, 7), iv(8, 10)]);
    }

    #[test]
    fn difference_ignores_unmatched_payloads() {
        let l = vec![ev(1, 0, 10, vec![Value::str("P")])];
        let r = vec![ev(2, 0, 10, vec![Value::str("Q")])];
        let out = difference(&l, &r);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].interval, iv(0, 10));
    }

    #[test]
    fn group_aggregate_count_steps_over_time() {
        // Two overlapping events in one group: count is 1,2,1 across edges.
        let g = vec![Value::str("g")];
        let input = vec![ev(1, 0, 10, g.clone()), ev(2, 4, 6, g.clone())];
        let out = group_aggregate(&input, &[Scalar::Field(0)], &AggFunc::Count);
        let mut segs: Vec<(Interval, Value)> = out
            .iter()
            .map(|e| (e.interval, e.payload.get(1).cloned().unwrap()))
            .collect();
        segs.sort_by_key(|(i, _)| *i);
        assert_eq!(
            segs,
            vec![
                (iv(0, 4), Value::Int(1)),
                (iv(4, 6), Value::Int(2)),
                (iv(6, 10), Value::Int(1)),
            ]
        );
    }

    #[test]
    fn group_aggregate_partitions_by_key() {
        let input = vec![
            ev(1, 0, 5, vec![Value::str("a"), Value::Int(10)]),
            ev(2, 0, 5, vec![Value::str("b"), Value::Int(20)]),
            ev(3, 0, 5, vec![Value::str("a"), Value::Int(30)]),
        ];
        let out = group_aggregate(&input, &[Scalar::Field(0)], &AggFunc::Sum(Scalar::Field(1)));
        assert_eq!(out.len(), 2);
        let mut by_key: Vec<(Value, Value)> = out
            .iter()
            .map(|e| {
                (
                    e.payload.get(0).cloned().unwrap(),
                    e.payload.get(1).cloned().unwrap(),
                )
            })
            .collect();
        by_key.sort_by(|a, b| a.0.compare(&b.0));
        assert_eq!(by_key[0], (Value::str("a"), Value::Float(40.0)));
        assert_eq!(by_key[1], (Value::str("b"), Value::Float(20.0)));
    }

    #[test]
    fn aggregates_min_max_avg() {
        let g = |v: i64| vec![Value::str("g"), Value::Int(v)];
        let input = vec![ev(1, 0, 4, g(10)), ev(2, 0, 4, g(2)), ev(3, 0, 4, g(6))];
        let key = [Scalar::Field(0)];
        let min = group_aggregate(&input, &key, &AggFunc::Min(Scalar::Field(1)));
        assert_eq!(min[0].payload.get(1), Some(&Value::Int(2)));
        let max = group_aggregate(&input, &key, &AggFunc::Max(Scalar::Field(1)));
        assert_eq!(max[0].payload.get(1), Some(&Value::Int(10)));
        let avg = group_aggregate(&input, &key, &AggFunc::Avg(Scalar::Field(1)));
        assert_eq!(avg[0].payload.get(1), Some(&Value::Float(6.0)));
    }

    #[test]
    fn empty_segments_produce_no_rows() {
        let g = vec![Value::str("g")];
        // Gap between [0,2) and [5,7).
        let input = vec![ev(1, 0, 2, g.clone()), ev(2, 5, 7, g.clone())];
        let out = group_aggregate(&input, &[Scalar::Field(0)], &AggFunc::Count);
        let covered: Vec<Interval> = out.iter().map(|e| e.interval).collect();
        assert!(covered.iter().all(|i| !i.overlaps(&iv(2, 5))));
    }

    #[test]
    fn cover_arithmetic() {
        assert_eq!(
            merge_cover(&[iv(0, 3), iv(2, 5), iv(7, 8)]),
            vec![iv(0, 5), iv(7, 8)]
        );
        assert_eq!(
            merge_cover(&[iv(0, 3), iv(3, 5)]),
            vec![iv(0, 5)],
            "meeting fuses"
        );
        assert_eq!(
            subtract_cover(&[iv(0, 10)], &[iv(2, 4), iv(6, 7)]),
            vec![iv(0, 2), iv(4, 6), iv(7, 10)]
        );
        assert_eq!(
            subtract_cover(&[iv(0, 5)], &[iv(0, 5)]),
            Vec::<Interval>::new()
        );
    }

    #[test]
    fn join_view_state_matches_relational_view() {
        // Sanity: snapshot of the join at t equals join of snapshots.
        let l = vec![
            ev(1, 0, 6, vec![Value::Int(1)]),
            ev(2, 3, 9, vec![Value::Int(2)]),
        ];
        let r = vec![ev(3, 2, 7, vec![Value::Int(1)])];
        let theta = Pred::cmp(Scalar::Of(0, 0), CmpOp::Eq, Scalar::Of(1, 0));
        let out = join(&l, &r, &theta);
        let out_table = to_table(&out);
        for probe in [0u64, 2, 4, 6, 8] {
            let live_l: Vec<&Event> = l.iter().filter(|e| e.interval.contains(t(probe))).collect();
            let live_r: Vec<&Event> = r.iter().filter(|e| e.interval.contains(t(probe))).collect();
            let mut expected = 0;
            for a in &live_l {
                for b in &live_r {
                    if theta.eval_tuple(&[a, b]) {
                        expected += 1;
                    }
                }
            }
            assert_eq!(
                out_table.snapshot_at(t(probe)).len(),
                expected,
                "probe {probe}"
            );
        }
    }
}
