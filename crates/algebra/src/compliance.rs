//! Checkable formulations of the paper's behavioural properties.
//!
//! * **View update compliance** (Definition 11): for all `R`, `S` with
//!   `*(R) = *(S)`, also `*(O(R)) = *(O(S))` — the operator is insensitive
//!   to how state changes are packaged into events.
//! * **Well-behavedness** (Definition 6): logically equivalent inputs
//!   produce logically equivalent outputs (checked at the ideal-table level
//!   here; the runtime crate checks it under disorder and retractions).
//!
//! The functions here produce *repackagings* — alternative event encodings
//! of the same coalesced state — that property tests feed to operators.

use crate::EventSet;
use cedr_temporal::{Duration, Event, EventId, Interval, TimePoint};

/// Split an event's lifetime into `pieces` meeting sub-events with the same
/// payload (the canonical Definition-11 repackaging). IDs are derived from
/// the original. Events too short to split are returned unchanged.
pub fn chop_event(e: &Event, pieces: usize) -> Vec<Event> {
    if pieces <= 1 || e.interval.is_empty() || e.interval.end.is_infinite() {
        return vec![e.clone()];
    }
    let total = e.interval.duration().0;
    if total < pieces as u64 {
        return vec![e.clone()];
    }
    let step = total / pieces as u64;
    let mut out = Vec::with_capacity(pieces);
    let mut start = e.interval.start;
    for i in 0..pieces {
        let end = if i == pieces - 1 {
            e.interval.end
        } else {
            start + Duration(step)
        };
        let mut piece = e.clone();
        // High-bit tagged so piece IDs can never collide with source IDs.
        piece.id = EventId(
            0x9E37_79B9_0000_0000 ^ e.id.0.wrapping_mul(1_000_003).wrapping_add(i as u64 + 1),
        );
        piece.interval = Interval::new(start, end);
        piece.root_time = piece.interval.start;
        out.push(piece);
        start = end;
    }
    out
}

/// Repackage a whole event set: event `i` is chopped into
/// `1 + (i + salt) % 3` pieces. Produces a set with identical coalesced
/// state (`*`) but different packaging.
pub fn repackage(events: &[Event], salt: usize) -> EventSet {
    let mut out = Vec::new();
    for (i, e) in events.iter().enumerate() {
        out.extend(chop_event(e, 1 + (i + salt) % 3));
    }
    out
}

/// Check Definition 11 for a unary operator `op` against one input and a
/// set of repackagings: all packagings must produce `*`-equal outputs.
pub fn check_view_update_compliance(
    op: impl Fn(&[Event]) -> EventSet,
    input: &[Event],
    packagings: usize,
) -> bool {
    let reference = crate::to_table(&op(input)).star();
    for salt in 1..=packagings {
        let alt = repackage(input, salt);
        debug_assert!(
            crate::to_table(input).star_equal(&crate::to_table(&alt)),
            "repackaging must preserve coalesced state"
        );
        let out = crate::to_table(&op(&alt)).star();
        if !reference.star_equal(&out) {
            return false;
        }
    }
    true
}

/// A deterministic pseudo-random event set for compliance fixtures (kept
/// here so unit tests and benches share workloads without depending on
/// `rand` in the library itself).
///
/// The result satisfies the relation precondition of Definition 10: events
/// with equal payloads never overlap (each payload kind advances a cursor),
/// and occasionally *meet* exactly so coalescing has work to do.
pub fn fixture_events(n: u64, span: u64, payload_kinds: u64) -> EventSet {
    let kinds = payload_kinds.max(1);
    let mut out = Vec::with_capacity(n as usize);
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let mut cursors = vec![0u64; kinds as usize];
    let mut step = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 16
    };
    for i in 0..n {
        let kind = step() % kinds;
        // Every third event meets the previous one of its kind exactly.
        let gap = if step() % 3 == 0 {
            0
        } else {
            1 + step() % (span / 8 + 1)
        };
        let len = 1 + step() % (span / 4 + 1);
        let vs = cursors[kind as usize] + gap;
        cursors[kind as usize] = vs + len;
        out.push(Event::primitive(
            EventId(i),
            Interval::new(TimePoint::new(vs), TimePoint::new(vs + len)),
            cedr_temporal::Payload::from_values(vec![cedr_temporal::Value::Int(kind as i64)]),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Pred, Scalar};
    use crate::relational::{group_aggregate, select, AggFunc};
    use crate::{alter_lifetime, to_table};
    use cedr_temporal::time::dur;

    #[test]
    fn chopping_preserves_coalesced_state() {
        let events = fixture_events(20, 50, 1);
        for salt in 0..4 {
            let alt = repackage(&events, salt);
            assert!(to_table(&events).star_equal(&to_table(&alt)));
        }
    }

    #[test]
    fn chop_boundary_cases() {
        let e = Event::primitive(
            EventId(1),
            Interval::new(TimePoint::new(0), TimePoint::new(2)),
            cedr_temporal::Payload::empty(),
        );
        assert_eq!(chop_event(&e, 1).len(), 1);
        assert_eq!(chop_event(&e, 2).len(), 2);
        assert_eq!(chop_event(&e, 5).len(), 1, "too short to split 5 ways");
        let inf = Event::primitive(
            EventId(2),
            Interval::from(TimePoint::new(3)),
            cedr_temporal::Payload::empty(),
        );
        assert_eq!(chop_event(&inf, 3).len(), 1, "infinite lifetimes unchopped");
    }

    #[test]
    fn selection_is_view_update_compliant() {
        // Distinct payload kinds so the relation precondition holds.
        let events = fixture_events(15, 40, 15);
        let pred = Pred::cmp(Scalar::Field(0), CmpOp::Ge, Scalar::lit(5i64));
        assert!(check_view_update_compliance(
            |input| select(input, &pred),
            &events,
            3
        ));
    }

    #[test]
    fn count_aggregate_is_view_update_compliant() {
        let events = fixture_events(10, 30, 10);
        assert!(check_view_update_compliance(
            |input| group_aggregate(input, &[], &AggFunc::Count),
            &events,
            3
        ));
    }

    #[test]
    fn window_is_not_view_update_compliant() {
        // The moving window W_5 must FAIL the check on an input containing a
        // long event: "the features which are considered unique to streams,
        // like windows … are not view update compliant".
        let e = Event::primitive(
            EventId(1),
            Interval::new(TimePoint::new(0), TimePoint::new(30)),
            cedr_temporal::Payload::empty(),
        );
        assert!(!check_view_update_compliance(
            |input| alter_lifetime::moving_window(input, dur(5)),
            &[e],
            3
        ));
    }
}
