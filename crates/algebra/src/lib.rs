//! # cedr-algebra
//!
//! The *denotational* operator semantics of CEDR, transcribed from the paper:
//!
//! * Definitions 7–12 (Section 6): SQL projection, selection, join, the
//!   relational view-update family (union, difference, group-by and
//!   aggregates), and the novel **AlterLifetime** operator from which
//!   windows and insert/delete separation are derived;
//! * the Section 3.3.2 tables: the sequencing operators (ATLEAST, ATMOST,
//!   ALL, ANY, SEQUENCE) and the negation operators (UNLESS, UNLESS′,
//!   NOT(·, SEQUENCE), CANCEL-WHEN), including contributor lineage `cbt[]`,
//!   root times and the `idgen` pairing function;
//! * predicate injection (Section 3.2): WHERE-clause predicates placed into
//!   the denotation of the WHEN-clause operators.
//!
//! Everything here computes on *complete* unitemporal ideal history tables
//! (Section 6): no arrival order, no retractions. These functions are the
//! ground truth that the incremental physical operators of `cedr-runtime`
//! are property-tested against (well-behavedness, Definition 6).

pub mod alter_lifetime;
pub mod compliance;
pub mod expr;
pub mod idgen;
pub mod kernel;
pub mod pattern;
pub mod relational;

pub use alter_lifetime::{
    alter_lifetime, deletes, hopping_window, inserts, moving_window, DeltaFn, VsFn,
};
pub use expr::{CmpOp, Pred, Scalar, TuplePred};
pub use idgen::{idgen, idgen2};
pub use kernel::{PredKernel, ScalarKernel};
pub use pattern::{
    all, any, atleast, atmost, cancel_when, not_sequence, sequence, unless, unless_prime,
};
pub use relational::{difference, group_aggregate, join, project, select, union, AggFunc};

use cedr_temporal::{Event, UniTemporalRow, UniTemporalTable};

/// A denotational stream value: the set of events in the unitemporal ideal
/// history table (Section 6, `E(S)`).
pub type EventSet = Vec<Event>;

/// View an event set as a unitemporal table (drops header fields the table
/// does not carry).
pub fn to_table(events: &[Event]) -> UniTemporalTable {
    events
        .iter()
        .map(|e| UniTemporalRow::new(e.id, e.interval, e.payload.clone()))
        .collect()
}

/// Lift unitemporal rows into (primitive) events.
pub fn from_table(table: &UniTemporalTable) -> EventSet {
    table
        .rows
        .iter()
        .map(|r| Event::primitive(r.id, r.interval, r.payload.clone()))
        .collect()
}

/// Sort events deterministically (by interval, then payload, then id) so
/// denotational outputs are directly comparable, dropping empty lifetimes.
pub fn normalize(mut events: EventSet) -> EventSet {
    events.retain(|e| !e.interval.is_empty());
    events.sort_by(|a, b| (a.interval, &a.payload, a.id).cmp(&(b.interval, &b.payload, b.id)));
    events
}
