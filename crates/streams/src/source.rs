//! Building ordered source streams.
//!
//! `StreamBuilder` produces a *perfectly ordered* message sequence — sorted
//! by `Sync` with optional periodic CTIs — which is the canonical member of
//! its logical-equivalence class (no retraction reordering, no disorder).
//! Feeding it through [`crate::disorder::scramble`] yields the logically
//! equivalent but physically perturbed streams the consistency machinery is
//! tested against.

use crate::message::{Message, Retraction};
use cedr_temporal::{Duration, Event, EventId, Interval, Payload, TimePoint};

/// Accumulates events and retractions, then emits them in `Sync` order.
#[derive(Clone, Debug, Default)]
pub struct StreamBuilder {
    messages: Vec<Message>,
    next_id: u64,
}

impl StreamBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Start IDs at `base` (useful to keep IDs disjoint across streams).
    pub fn with_id_base(base: u64) -> Self {
        StreamBuilder {
            messages: Vec::new(),
            next_id: base,
        }
    }

    /// Add a primitive event with an auto-assigned ID; returns the event.
    pub fn insert(&mut self, interval: Interval, payload: Payload) -> Event {
        let ev = Event::primitive(EventId(self.next_id), interval, payload);
        self.next_id += 1;
        self.messages.push(Message::insert_event(ev.clone()));
        ev
    }

    /// Add a point event `[t, t+1)` — the common shape for CEP sources.
    pub fn insert_at(&mut self, t: TimePoint, payload: Payload) -> Event {
        self.insert(Interval::point(t), payload)
    }

    /// Add an explicit event (caller-controlled ID).
    pub fn insert_event(&mut self, ev: impl Into<std::sync::Arc<Event>>) {
        self.messages.push(Message::insert_event(ev));
    }

    /// Add a retraction shortening `event` to `[Vs, new_end)`.
    pub fn retract(&mut self, event: Event, new_end: TimePoint) {
        self.messages
            .push(Message::Retract(Retraction::new(event, new_end)));
    }

    /// Number of data messages so far.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Emit the stream in `Sync` order (stable for ties), interleaving a
    /// `CTI` after the batch of messages at each multiple of `cti_every`
    /// sync ticks, and a final `CTI(∞)` if `seal` is set.
    pub fn build_ordered(&self, cti_every: Option<Duration>, seal: bool) -> Vec<Message> {
        let mut data = self.messages.clone();
        data.sort_by_key(|m| m.sync());
        let mut out = Vec::with_capacity(data.len() + 8);
        let mut next_cti: Option<TimePoint> = cti_every.map(|_| TimePoint::ZERO);
        for m in data {
            if let (Some(period), Some(due)) = (cti_every, next_cti) {
                let sync = m.sync();
                if sync > due {
                    // The guarantee "no future message has Sync < sync" holds
                    // because the stream is emitted in sync order.
                    out.push(Message::Cti(sync));
                    let mut d = due;
                    while d <= sync {
                        d += period;
                    }
                    next_cti = Some(d);
                }
            }
            out.push(m);
        }
        if seal {
            out.push(Message::Cti(TimePoint::INFINITY));
        }
        out
    }

    /// The messages in insertion order, without CTIs (raw provider output).
    pub fn build_raw(&self) -> Vec<Message> {
        self.messages.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedr_temporal::interval::iv;
    use cedr_temporal::time::{dur, t};

    #[test]
    fn ordered_stream_sorts_by_sync() {
        let mut b = StreamBuilder::new();
        let e1 = b.insert(iv(5, 9), Payload::empty());
        b.insert(iv(1, 4), Payload::empty());
        b.retract(e1, t(7)); // sync 7
        let out = b.build_ordered(None, false);
        let syncs: Vec<_> = out.iter().map(|m| m.sync()).collect();
        assert_eq!(syncs, vec![t(1), t(5), t(7)]);
    }

    #[test]
    fn ctis_are_legal_watermarks() {
        let mut b = StreamBuilder::new();
        for i in 0..10 {
            b.insert_at(t(i * 3), Payload::empty());
        }
        let out = b.build_ordered(Some(dur(5)), true);
        // Every CTI must be ≤ the sync of every later data message.
        for (i, m) in out.iter().enumerate() {
            if let Message::Cti(c) = m {
                for later in &out[i + 1..] {
                    if later.is_data() {
                        assert!(later.sync() >= *c, "illegal CTI {c} before {later:?}");
                    }
                }
            }
        }
        assert_eq!(out.last(), Some(&Message::Cti(TimePoint::INFINITY)));
        assert!(out.iter().filter(|m| !m.is_data()).count() >= 3);
    }

    #[test]
    fn ids_are_unique_and_sequential() {
        let mut b = StreamBuilder::with_id_base(100);
        let a = b.insert_at(t(1), Payload::empty());
        let c = b.insert_at(t(2), Payload::empty());
        assert_eq!(a.id, EventId(100));
        assert_eq!(c.id, EventId(101));
    }
}
