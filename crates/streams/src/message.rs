//! Stream messages: the physical state updates of Section 5's "stream of
//! input state updates", in the unitemporal regime of Section 6.
//!
//! Three message kinds flow between operators:
//!
//! * `Insert(e)` — a new event with lifetime `[Vs, Ve)`;
//! * `Retract { e, new_end }` — shorten `e`'s lifetime to `[Vs, new_end)`
//!   (with `new_end == Vs` removing it entirely), the paper's retraction;
//! * `Cti(t)` — a *current time increment*: the "occurrence time guarantee
//!   on subsequent inputs" of Figure 7, promising that every future message
//!   has `Sync ≥ t`.
//!
//! The `Sync` attribute follows Figure 6: `Sync = Vs` for an insert and
//! `Sync = new_end` for a retraction (valid time playing the role of
//! occurrence time in the merged unitemporal regime).
//!
//! Events are carried behind [`Arc`] so that fanning a message out to many
//! standing queries or dataflow subscribers is a reference-count bump, not
//! a payload deep-copy. `Message::clone` is therefore O(1) and safe to use
//! on every edge of a dataflow graph.

use cedr_temporal::{Event, EventId, Interval, Payload, TimePoint};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A retraction: shorten `event`'s lifetime to `[Vs, new_end)`.
///
/// The full pre-retraction event is carried (shared) so that stateless
/// operators can transform retractions without consulting state.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Retraction {
    pub event: Arc<Event>,
    pub new_end: TimePoint,
}

impl Retraction {
    pub fn new(event: impl Into<Arc<Event>>, new_end: TimePoint) -> Self {
        let event = event.into();
        debug_assert!(
            new_end <= event.interval.end,
            "retractions may only shorten lifetimes"
        );
        debug_assert!(
            new_end >= event.interval.start,
            "retraction below Vs; use new_end == Vs for full removal"
        );
        Retraction { event, new_end }
    }

    /// Does this retraction remove the event entirely (`Oe := Os`)?
    pub fn is_full_removal(&self) -> bool {
        self.new_end <= self.event.interval.start
    }

    /// The event as it stands after this retraction is applied.
    pub fn retracted_event(&self) -> Event {
        self.event.shortened(self.new_end)
    }

    /// The Figure-6 `Sync` value of a retraction: its new `Oe`/`Ve`.
    pub fn sync(&self) -> TimePoint {
        self.new_end
    }
}

impl fmt::Debug for Retraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "retract {} {} -> [{}, {})",
            self.event.id, self.event.interval, self.event.interval.start, self.new_end
        )
    }
}

/// A physical stream message. Data variants share their [`Event`] behind an
/// [`Arc`]: cloning a `Message` never copies the payload.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Message {
    Insert(Arc<Event>),
    Retract(Retraction),
    Cti(TimePoint),
}

impl Message {
    /// Build an insert message for a primitive event.
    pub fn insert(id: u64, interval: Interval, payload: Payload) -> Message {
        Message::Insert(Arc::new(Event::primitive(EventId(id), interval, payload)))
    }

    /// Wrap an event (owned or already shared) as an insert message.
    pub fn insert_event(event: impl Into<Arc<Event>>) -> Message {
        Message::Insert(event.into())
    }

    /// Build a retraction message shortening `event` to `[Vs, new_end)`.
    pub fn retract_event(event: impl Into<Arc<Event>>, new_end: TimePoint) -> Message {
        Message::Retract(Retraction::new(event, new_end))
    }

    /// The `Sync` value inducing the global out-of-order criterion
    /// (Section 4): `Vs` for inserts, new `Ve` for retractions, `t` for a
    /// CTI.
    pub fn sync(&self) -> TimePoint {
        match self {
            Message::Insert(e) => e.interval.start,
            Message::Retract(r) => r.sync(),
            Message::Cti(t) => *t,
        }
    }

    /// Is this a data message (insert or retract)?
    pub fn is_data(&self) -> bool {
        !matches!(self, Message::Cti(_))
    }

    pub fn as_insert(&self) -> Option<&Event> {
        match self {
            Message::Insert(e) => Some(e),
            _ => None,
        }
    }

    pub fn as_retract(&self) -> Option<&Retraction> {
        match self {
            Message::Retract(r) => Some(r),
            _ => None,
        }
    }

    pub fn as_cti(&self) -> Option<TimePoint> {
        match self {
            Message::Cti(t) => Some(*t),
            _ => None,
        }
    }
}

impl fmt::Debug for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Message::Insert(e) => write!(f, "insert {e:?}"),
            Message::Retract(r) => write!(f, "{r:?}"),
            Message::Cti(t) => write!(f, "cti {t}"),
        }
    }
}

/// A message stamped with its CEDR (arrival) time — the `Cs` column.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stamped {
    pub cedr_time: TimePoint,
    pub message: Message,
}

impl Stamped {
    pub fn new(cedr_time: TimePoint, message: Message) -> Self {
        Stamped { cedr_time, message }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedr_temporal::interval::iv;
    use cedr_temporal::time::t;

    fn ev(id: u64, a: u64, b: u64) -> Event {
        Event::primitive(EventId(id), iv(a, b), Payload::empty())
    }

    #[test]
    fn sync_values_follow_figure6() {
        assert_eq!(Message::insert_event(ev(1, 3, 9)).sync(), t(3));
        let r = Retraction::new(ev(1, 3, 9), t(5));
        assert_eq!(Message::Retract(r).sync(), t(5));
        assert_eq!(Message::Cti(t(7)).sync(), t(7));
    }

    #[test]
    fn full_removal_detection() {
        let r = Retraction::new(ev(1, 3, 9), t(3));
        assert!(r.is_full_removal());
        assert!(r.retracted_event().interval.is_empty());
        let partial = Retraction::new(ev(1, 3, 9), t(6));
        assert!(!partial.is_full_removal());
        assert_eq!(partial.retracted_event().interval, iv(3, 6));
    }

    #[test]
    #[should_panic]
    fn lengthening_retractions_rejected_in_debug() {
        let _ = Retraction::new(ev(1, 3, 9), t(11));
    }

    #[test]
    fn accessors() {
        let m = Message::insert(4, iv(1, 2), Payload::empty());
        assert!(m.is_data());
        assert!(m.as_insert().is_some());
        assert!(m.as_retract().is_none());
        assert_eq!(Message::Cti(t(4)).as_cti(), Some(t(4)));
        assert!(!Message::Cti(t(4)).is_data());
    }

    #[test]
    fn cloning_a_message_shares_the_event() {
        let m = Message::insert_event(ev(1, 3, 9));
        let m2 = m.clone();
        let (Message::Insert(a), Message::Insert(b)) = (&m, &m2) else {
            panic!("inserts expected");
        };
        assert!(Arc::ptr_eq(a, b), "clone must share, not deep-copy");
    }
}
