//! Deterministic resequencing of concurrently produced batches.
//!
//! Concurrent providers hand their batches to the engine over a channel,
//! and the channel interleaves them in whatever order the threads happen
//! to run. CEDR's order-insensitivity claim (the paper's Section 1
//! promise that speculative output with retractions makes query results
//! independent of arrival order) is proven *end to end* by restoring a
//! canonical order **before** execution: every emission carries an origin
//! stamp `(producer key, emission seq)` — the same stamp vocabulary as
//! the sharded scheduler's deterministic merge — and a [`Resequencer`]
//! releases emissions in **canonical round order**:
//!
//! > round of an emission = the producer's *base round* (the round at
//! > which the producer was registered) + its emission seq; rounds are
//! > released in ascending order, ties broken by ascending producer key.
//!
//! This order is a pure function of the logical program (who produced
//! which emission, in which per-producer order), never of thread timing:
//! any interleaving of arrivals yields the same release sequence. The
//! price is a *watermark stall*: a round cannot be released until every
//! producer that owes it an emission has either delivered it or closed
//! ([`Resequencer::close`]), so one silent open producer holds back the
//! line — the classic watermark trade-off of streaming systems, made
//! explicit by [`RoundStatus::Pending`] naming the lane being waited on.
//!
//! The resequencer is payload-generic; `cedr-core` drives it with staged
//! [`MessageBatch`](crate::MessageBatch)es whose events stay `Arc`-shared
//! across the thread hand-off (a batch crossing threads is refcount
//! bumps, never a payload copy — see the `Send` assertions in the tests).

use std::collections::BTreeMap;

/// What [`Resequencer::next_round`] found.
#[derive(Debug, PartialEq, Eq)]
pub enum RoundStatus<T> {
    /// The next canonical round, as `(producer key, emission)` pairs in
    /// ascending key order. A round holds one emission from every
    /// producer whose virtual round had come due.
    Ready(Vec<(u64, T)>),
    /// The next round is owed an emission by `waiting_on` (an open or
    /// draining lane whose emission has not arrived yet). Nothing can be
    /// released until it arrives or the lane closes.
    Pending { waiting_on: u64 },
    /// Every lane is closed and drained; no further emission can exist.
    Idle,
}

/// One producer's lane: its base round and the emissions buffered out of
/// arrival order.
#[derive(Debug)]
struct Lane<T> {
    base: u64,
    /// Next per-producer emission seq to release.
    next_seq: u64,
    /// Emissions that arrived ahead of their turn, keyed by seq.
    buffered: BTreeMap<u64, T>,
    /// Total emissions the producer will ever make, once known (set by
    /// [`Resequencer::close`]). `None` = still open.
    final_seq: Option<u64>,
}

impl<T> Lane<T> {
    /// A closed lane whose every emission has been released is dead.
    fn exhausted(&self) -> bool {
        self.final_seq.is_some_and(|f| self.next_seq >= f)
    }

    /// The virtual round of the lane's next emission.
    fn virtual_round(&self) -> u64 {
        self.base.saturating_add(self.next_seq)
    }
}

/// Restores the canonical `(round, producer key)` order over emissions
/// that arrive in arbitrary thread interleaving (see the module docs).
#[derive(Debug)]
pub struct Resequencer<T> {
    lanes: BTreeMap<u64, Lane<T>>,
    /// Base round assigned to the next registered lane: one past the last
    /// released round, so late-registered producers join the stream at
    /// the current position instead of owing history.
    frontier: u64,
    /// Emissions currently buffered across all lanes.
    buffered: usize,
}

impl<T> Default for Resequencer<T> {
    fn default() -> Self {
        Resequencer {
            lanes: BTreeMap::new(),
            frontier: 0,
            buffered: 0,
        }
    }
}

impl<T> Resequencer<T> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a lane for `key`. Its emissions join the canonical order at
    /// the current frontier (base round = one past the last released
    /// round). Keys must be unique; re-registering an existing key is a
    /// no-op so the caller cannot corrupt a live lane.
    pub fn register(&mut self, key: u64) {
        let base = self.frontier;
        self.lanes.entry(key).or_insert(Lane {
            base,
            next_seq: 0,
            buffered: BTreeMap::new(),
            final_seq: None,
        });
    }

    /// Accept emission `seq` of producer `key`, in whatever order it fell
    /// out of the channel. Unknown keys open a lane at the frontier (the
    /// deterministic path is to [`register`](Resequencer::register) keys
    /// up front; first-arrival registration makes the base round depend
    /// on arrival timing and is only as deterministic as the caller).
    pub fn accept(&mut self, key: u64, seq: u64, item: T) {
        self.register(key);
        let lane = self.lanes.get_mut(&key).expect("just registered");
        debug_assert!(
            seq >= lane.next_seq,
            "emission {seq} of producer {key} arrived twice"
        );
        if lane.buffered.insert(seq, item).is_none() {
            self.buffered += 1;
        }
    }

    /// Declare that producer `key` has finished after exactly `emitted`
    /// emissions (seqs `0..emitted`). Emissions still in flight are
    /// awaited; anything beyond is impossible. Closing an unknown key
    /// opens-and-closes an empty lane, so a producer that never emitted
    /// still retires cleanly.
    pub fn close(&mut self, key: u64, emitted: u64) {
        self.register(key);
        let lane = self.lanes.get_mut(&key).expect("just registered");
        debug_assert!(
            lane.final_seq.is_none_or(|f| f == emitted),
            "producer {key} closed twice with different emission counts"
        );
        debug_assert!(
            emitted >= lane.next_seq,
            "producer {key} closed below its released seq"
        );
        lane.final_seq = Some(emitted);
        if lane.exhausted() {
            self.lanes.remove(&key);
        }
    }

    /// Release the next canonical round if every emission it needs has
    /// arrived (see [`RoundStatus`]).
    pub fn next_round(&mut self) -> RoundStatus<T> {
        // The next round is the smallest virtual round any lane owes.
        let Some(round) = self.lanes.values().map(Lane::virtual_round).min() else {
            return RoundStatus::Idle;
        };
        // Every lane due this round must have its emission buffered; a
        // closed lane past its final seq was already removed, so any due
        // lane without a buffered emission is genuinely awaited.
        for (&key, lane) in &self.lanes {
            if lane.virtual_round() == round && !lane.buffered.contains_key(&lane.next_seq) {
                return RoundStatus::Pending { waiting_on: key };
            }
        }
        let due: Vec<u64> = self
            .lanes
            .iter()
            .filter(|(_, l)| l.virtual_round() == round)
            .map(|(&k, _)| k)
            .collect();
        let mut out = Vec::with_capacity(due.len());
        for key in due {
            let lane = self.lanes.get_mut(&key).expect("due lane exists");
            let item = lane.buffered.remove(&lane.next_seq).expect("checked above");
            self.buffered -= 1;
            lane.next_seq += 1;
            out.push((key, item));
            if lane.exhausted() {
                self.lanes.remove(&key);
            }
        }
        self.frontier = round.saturating_add(1);
        RoundStatus::Ready(out)
    }

    /// Lanes that have not closed yet (producers still able to emit).
    pub fn open_lanes(&self) -> usize {
        self.lanes
            .values()
            .filter(|l| l.final_seq.is_none())
            .count()
    }

    /// Lanes still alive: open, or closed with emissions not yet
    /// released. `0` means [`RoundStatus::Idle`].
    pub fn live_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Emissions buffered ahead of their canonical turn (the skew between
    /// fast and slow producers; bounded by the channel in steady state).
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// Per-lane view for checkpointing: `(key, base, next_seq, final_seq,
    /// buffered len)` in ascending key order, without cloning payloads.
    pub fn lane_cursors(&self) -> Vec<(u64, u64, u64, Option<u64>, usize)> {
        self.lanes
            .iter()
            .map(|(&k, l)| (k, l.base, l.next_seq, l.final_seq, l.buffered.len()))
            .collect()
    }

    /// Decompose into plain checkpointable parts. Lanes come out in
    /// ascending key order and buffered emissions in ascending seq order,
    /// so the decomposition is deterministic.
    pub fn to_parts(&self) -> ResequencerParts<T>
    where
        T: Clone,
    {
        ResequencerParts {
            frontier: self.frontier,
            lanes: self
                .lanes
                .iter()
                .map(|(&key, lane)| LaneParts {
                    key,
                    base: lane.base,
                    next_seq: lane.next_seq,
                    final_seq: lane.final_seq,
                    buffered: lane
                        .buffered
                        .iter()
                        .map(|(&seq, item)| (seq, item.clone()))
                        .collect(),
                })
                .collect(),
        }
    }

    /// Rebuild a resequencer from checkpointed parts. Inverse of
    /// [`Resequencer::to_parts`].
    pub fn from_parts(parts: ResequencerParts<T>) -> Self {
        let mut buffered = 0;
        let lanes = parts
            .lanes
            .into_iter()
            .map(|lp| {
                buffered += lp.buffered.len();
                (
                    lp.key,
                    Lane {
                        base: lp.base,
                        next_seq: lp.next_seq,
                        buffered: lp.buffered.into_iter().collect(),
                        final_seq: lp.final_seq,
                    },
                )
            })
            .collect();
        Resequencer {
            lanes,
            frontier: parts.frontier,
            buffered,
        }
    }
}

/// One producer lane of a [`Resequencer`], decomposed for checkpointing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneParts<T> {
    pub key: u64,
    pub base: u64,
    pub next_seq: u64,
    pub final_seq: Option<u64>,
    /// Out-of-turn emissions, `(seq, item)` in ascending seq order.
    pub buffered: Vec<(u64, T)>,
}

/// A [`Resequencer`] decomposed into plain data for checkpointing: the
/// frontier plus every lane (buffered emissions included) in ascending
/// producer-key order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResequencerParts<T> {
    pub frontier: u64,
    pub lanes: Vec<LaneParts<T>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(r: &mut Resequencer<&'static str>) -> Vec<Vec<(u64, &'static str)>> {
        let mut rounds = Vec::new();
        while let RoundStatus::Ready(round) = r.next_round() {
            rounds.push(round);
        }
        rounds
    }

    #[test]
    fn releases_rounds_in_key_order_regardless_of_arrival() {
        let mut r = Resequencer::new();
        r.register(1);
        r.register(2);
        // Arrival order scrambled across producers and seqs.
        r.accept(2, 1, "b1");
        r.accept(1, 0, "a0");
        r.accept(2, 0, "b0");
        r.accept(1, 1, "a1");
        r.close(1, 2);
        r.close(2, 2);
        assert_eq!(
            drain(&mut r),
            vec![vec![(1, "a0"), (2, "b0")], vec![(1, "a1"), (2, "b1")]],
        );
        assert_eq!(r.next_round(), RoundStatus::Idle);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn stalls_on_the_slowest_open_producer() {
        let mut r = Resequencer::new();
        r.register(1);
        r.register(2);
        r.accept(2, 0, "b0");
        r.accept(2, 1, "b1");
        // Producer 1 owes round 0: nothing may be released.
        assert_eq!(r.next_round(), RoundStatus::Pending { waiting_on: 1 });
        assert_eq!(r.buffered(), 2);
        r.accept(1, 0, "a0");
        assert_eq!(
            r.next_round(),
            RoundStatus::Ready(vec![(1, "a0"), (2, "b0")])
        );
        // Round 1: producer 1 again.
        assert_eq!(r.next_round(), RoundStatus::Pending { waiting_on: 1 });
        // Closing it releases the rest of producer 2's line.
        r.close(1, 1);
        assert_eq!(r.next_round(), RoundStatus::Ready(vec![(2, "b1")]));
        r.close(2, 2);
        assert_eq!(r.next_round(), RoundStatus::Idle);
    }

    #[test]
    fn close_with_in_flight_emissions_still_awaits_them() {
        let mut r = Resequencer::new();
        r.register(7);
        r.close(7, 2); // announced 2 emissions; none arrived yet
        assert_eq!(r.next_round(), RoundStatus::Pending { waiting_on: 7 });
        assert_eq!(r.open_lanes(), 0, "closed, but still live");
        assert_eq!(r.live_lanes(), 1);
        r.accept(7, 0, "x0");
        r.accept(7, 1, "x1");
        assert_eq!(r.next_round(), RoundStatus::Ready(vec![(7, "x0")]));
        assert_eq!(r.next_round(), RoundStatus::Ready(vec![(7, "x1")]));
        assert_eq!(r.next_round(), RoundStatus::Idle);
    }

    #[test]
    fn late_registration_joins_at_the_frontier() {
        let mut r = Resequencer::new();
        r.register(1);
        r.accept(1, 0, "a0");
        r.accept(1, 1, "a1");
        assert!(matches!(r.next_round(), RoundStatus::Ready(_)));
        // Producer 2 appears after round 0 was released: its seq 0 maps
        // to the current frontier (round 1), not to the past.
        r.register(2);
        r.accept(2, 0, "b0");
        assert_eq!(
            r.next_round(),
            RoundStatus::Ready(vec![(1, "a1"), (2, "b0")])
        );
        r.close(1, 2);
        r.close(2, 1);
        assert_eq!(r.next_round(), RoundStatus::Idle);
    }

    #[test]
    fn canonical_order_is_arrival_invariant() {
        // Two producers × 3 emissions, released under every arrival
        // permutation of the 6 emissions: the release sequence never
        // changes.
        let emissions: Vec<(u64, u64)> = vec![(1, 0), (1, 1), (1, 2), (2, 0), (2, 1), (2, 2)];
        let mut reference: Option<Vec<Vec<u64>>> = None;
        // Deterministic permutation sampling (no rand in unit tests):
        // rotate + swap sweeps enough distinct orders to catch ordering
        // bugs without a factorial loop.
        for rot in 0..emissions.len() {
            for swap in 0..emissions.len() {
                let mut order = emissions.clone();
                order.rotate_left(rot);
                order.swap(0, swap);
                let mut r: Resequencer<u64> = Resequencer::new();
                r.register(1);
                r.register(2);
                for &(k, s) in &order {
                    r.accept(k, s, k * 100 + s);
                }
                r.close(1, 3);
                r.close(2, 3);
                let mut rounds = Vec::new();
                while let RoundStatus::Ready(round) = r.next_round() {
                    rounds.push(round.into_iter().map(|(_, v)| v).collect::<Vec<_>>());
                }
                match &reference {
                    None => reference = Some(rounds),
                    Some(want) => assert_eq!(&rounds, want, "order diverged for {order:?}"),
                }
            }
        }
    }

    #[test]
    fn never_emitting_producer_retires_cleanly() {
        let mut r: Resequencer<&str> = Resequencer::new();
        r.register(3);
        r.close(3, 0);
        assert_eq!(r.next_round(), RoundStatus::Idle);
    }
}
