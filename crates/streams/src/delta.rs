//! Output deltas: the consumable changelog of a query's output stream.
//!
//! The paper's output model is not a table to poll but a *stream of state
//! updates*: inserts, retractions and CTIs, in CEDR-time order (Section 5).
//! [`OutputDelta`] is that model made consumable — each delta is one entry
//! of a [`Collector`](crate::Collector)'s append-only **delta log**, stamped
//! with the CEDR (arrival) time the sink observed it. Subscriptions (see
//! `cedr-core`) hold cursors into this log and drain it incrementally, so a
//! consumer observes exactly the insert/retract/CTI change stream the query
//! emitted — bit-identical to [`Collector::stamped`](crate::Collector::stamped)
//! — instead of re-reading whole output tables.
//!
//! Events are carried behind [`Arc`], so a delta is a refcount bump to
//! clone; logging deltas next to the stamped tape costs no payload copies.

use cedr_temporal::{Event, TimePoint};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// One entry of a query's output changelog, stamped with the CEDR time at
/// which the sink observed it.
///
/// The variants mirror the three physical message kinds of
/// [`Message`](crate::Message); a drained delta stream therefore carries
/// the same information, in the same order, as the collector's stamped
/// tape — pinned bit-for-bit by the `sessioned_io` integration tests at
/// every consistency level and thread count.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutputDelta {
    /// A new output event with lifetime `[Vs, Ve)`.
    Insert {
        cedr_time: TimePoint,
        event: Arc<Event>,
    },
    /// A repair: `event`'s lifetime shrinks to `[Vs, new_end)`
    /// (`new_end == Vs` removes it entirely).
    Retract {
        cedr_time: TimePoint,
        event: Arc<Event>,
        new_end: TimePoint,
    },
    /// An output progress guarantee: every later delta has `Sync ≥ t`.
    Cti {
        cedr_time: TimePoint,
        guarantee: TimePoint,
    },
}

impl OutputDelta {
    /// The CEDR (arrival) time stamped on this delta.
    pub fn cedr_time(&self) -> TimePoint {
        match self {
            OutputDelta::Insert { cedr_time, .. }
            | OutputDelta::Retract { cedr_time, .. }
            | OutputDelta::Cti { cedr_time, .. } => *cedr_time,
        }
    }

    /// The Figure-6 `Sync` value: `Vs` for inserts, the new `Ve` for
    /// retractions, `t` for a CTI.
    pub fn sync(&self) -> TimePoint {
        match self {
            OutputDelta::Insert { event, .. } => event.interval.start,
            OutputDelta::Retract { new_end, .. } => *new_end,
            OutputDelta::Cti { guarantee, .. } => *guarantee,
        }
    }

    /// Is this a data delta (insert or retract)?
    pub fn is_data(&self) -> bool {
        !matches!(self, OutputDelta::Cti { .. })
    }

    /// The event this delta concerns, if it is a data delta.
    pub fn event(&self) -> Option<&Arc<Event>> {
        match self {
            OutputDelta::Insert { event, .. } | OutputDelta::Retract { event, .. } => Some(event),
            OutputDelta::Cti { .. } => None,
        }
    }
}

impl fmt::Debug for OutputDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OutputDelta::Insert { cedr_time, event } => {
                write!(f, "@{cedr_time} +insert {event:?}")
            }
            OutputDelta::Retract {
                cedr_time,
                event,
                new_end,
            } => write!(
                f,
                "@{cedr_time} -retract {} {} -> [{}, {})",
                event.id, event.interval, event.interval.start, new_end
            ),
            OutputDelta::Cti {
                cedr_time,
                guarantee,
            } => write!(f, "@{cedr_time} cti {guarantee}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedr_temporal::interval::iv;
    use cedr_temporal::time::t;
    use cedr_temporal::{EventId, Payload};

    fn ev(id: u64, a: u64, b: u64) -> Arc<Event> {
        Arc::new(Event::primitive(EventId(id), iv(a, b), Payload::empty()))
    }

    #[test]
    fn sync_and_kind_accessors() {
        let i = OutputDelta::Insert {
            cedr_time: t(0),
            event: ev(1, 3, 9),
        };
        assert_eq!(i.sync(), t(3));
        assert!(i.is_data());
        assert!(i.event().is_some());

        let r = OutputDelta::Retract {
            cedr_time: t(1),
            event: ev(1, 3, 9),
            new_end: t(5),
        };
        assert_eq!(r.sync(), t(5));
        assert_eq!(r.cedr_time(), t(1));

        let c = OutputDelta::Cti {
            cedr_time: t(2),
            guarantee: t(7),
        };
        assert_eq!(c.sync(), t(7));
        assert!(!c.is_data());
        assert!(c.event().is_none());
    }

    #[test]
    fn deltas_share_events_on_clone() {
        let d = OutputDelta::Insert {
            cedr_time: t(0),
            event: ev(4, 1, 2),
        };
        let d2 = d.clone();
        let (Some(a), Some(b)) = (d.event(), d2.event()) else {
            panic!("data deltas expected");
        };
        assert!(Arc::ptr_eq(a, b), "clone must share, not deep-copy");
    }
}
